package ttdc_test

import (
	"bytes"
	"strings"
	"testing"

	ttdc "repro"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	orig, err := ttdc.PolynomialSchedule(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ttdc.EncodeSchedule(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ttdc.DecodeSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.L() != orig.L() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", got.N(), got.L(), orig.N(), orig.L())
	}
	for i := 0; i < orig.L(); i++ {
		if !got.T(i).Equal(orig.T(i)) || !got.R(i).Equal(orig.R(i)) {
			t.Fatalf("slot %d changed", i)
		}
	}
}

func TestDecodeScheduleErrors(t *testing.T) {
	if _, err := ttdc.DecodeSchedule(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Valid JSON, invalid schedule (overlapping T/R in a slot).
	bad := `{"n":3,"t":[[0,1]],"r":[[1,2]]}`
	if _, err := ttdc.DecodeSchedule(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
