package ttdc_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	ttdc "repro"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	orig, err := ttdc.PolynomialSchedule(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ttdc.EncodeSchedule(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ttdc.DecodeSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.L() != orig.L() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", got.N(), got.L(), orig.N(), orig.L())
	}
	for i := 0; i < orig.L(); i++ {
		if !got.T(i).Equal(orig.T(i)) || !got.R(i).Equal(orig.R(i)) {
			t.Fatalf("slot %d changed", i)
		}
	}
}

// oversizedSlots renders a JSON array of count empty slot lists, for
// exercising the maxDecodedDimension guards (2^20 entries ≈ 3 MB of text).
func oversizedSlots(count int) string {
	var b strings.Builder
	b.Grow(3*count + 2)
	b.WriteByte('[')
	for i := 0; i < count; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("[]")
	}
	b.WriteByte(']')
	return b.String()
}

func TestDecodeScheduleErrors(t *testing.T) {
	const over = 1<<20 + 1 // maxDecodedDimension + 1
	cases := []struct {
		name    string
		input   string
		wantSub string
	}{
		{"bad JSON", `{not json`, "decode schedule"},
		{"empty input", ``, "decode schedule"},
		{"n below 1", `{"n":0,"t":[[]],"r":[[]]}`, "outside [1,"},
		{"n negative", `{"n":-1,"t":[[]],"r":[[]]}`, "outside [1,"},
		{"n oversized", fmt.Sprintf(`{"n":%d,"t":[[]],"r":[[]]}`, over), "outside [1,"},
		{"T oversized", fmt.Sprintf(`{"n":2,"t":%s,"r":[[]]}`, oversizedSlots(over)), "frame length"},
		{"R oversized", fmt.Sprintf(`{"n":2,"t":[[]],"r":%s}`, oversizedSlots(over)), "receiver slot count"},
		{"T/R length mismatch", `{"n":3,"t":[[0],[1]],"r":[[1]]}`, "|T| = 2 but |R| = 1"},
		{"empty frame", `{"n":3,"t":[],"r":[]}`, "positive"},
		{"T/R overlap in a slot", `{"n":3,"t":[[0,1]],"r":[[1,2]]}`, "both transmitting and receiving"},
		{"node out of range", `{"n":3,"t":[[3]],"r":[[]]}`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ttdc.DecodeSchedule(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("invalid document accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
