# Verification targets for the ttdc reproduction. `make check` is the
# tier-1 gate: vet + build + domain lint + full test suite + race
# detector over every package.

GO ?= go

.PHONY: check vet build lint lint-alloc lint-sarif lint-bench test race race-conc race-sim race-sim-par fuzz bench bench-serve bench-scale benchall serve

check: vet build lint lint-alloc test race race-conc race-sim race-sim-par

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The domain linter (see internal/lint): reproducibility,
# exact-arithmetic, and concurrency invariants, plus gofmt cleanliness
# over the whole tree (including testdata fixtures, which plain
# `go fmt ./...` skips). The baseline is the ratchet: it ships empty and
# absorbs nothing today; accepted debt would be recorded there with
# `-write-baseline`, and entries that no longer match fail the run so
# fixed findings cannot linger in the file.
lint:
	$(GO) run ./cmd/ttdclint -baseline lint-baseline.json ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

# The hot-path allocation contracts alone (//ttdc:hotpath — see DESIGN.md
# §15): a fast loop when annotating warm-path functions. `make lint`
# already runs these three analyzers with the rest of the suite; this
# names the gate in `make check` output. The runtime half of the same
# contract is the generated alloc_gate_test.go files, which `make test`
# runs and ttdclint's tests drift-check.
lint-alloc:
	$(GO) run ./cmd/ttdclint -enable allocflow,boxing,growloop ./...

# SARIF 2.1.0 report for code-scanning UIs (upload lint.sarif).
lint-sarif:
	$(GO) run ./cmd/ttdclint -baseline lint-baseline.json -sarif lint.sarif ./...

test:
	$(GO) test ./...

# The whole suite is race-clean, so new concurrent packages are covered
# by default rather than opt-in.
race:
	$(GO) test -race ./...

# The two subsystems whose concurrency the flow-aware analyzers model get
# a named race gate of their own: `race` already covers them, but this
# target keeps them explicit in `make check` output and gives a fast
# local loop (`make race-conc`) when touching engine or cache internals.
race-conc:
	$(GO) test -race ./internal/engine ./internal/schedcache

# The struct-of-arrays simulator fast path shares pooled scratch and
# immutable kernels across the engine worker pool; this gate runs the
# differential matrix (fast vs legacy byte-identity) and the kernel-sharing
# campaigns under the race detector.
race-sim:
	$(GO) test -race ./internal/sim/... ./internal/engine/...

# The intra-run sharded kernels: word-range workers writing pooled scratch
# with no locks. The multi-word differential test (shards=1 vs N byte
# identity at n=130) under the race detector is the proof that the ranges
# really are disjoint; `race-sim` covers the package too, but this names
# the gate and gives a fast loop when touching shard.go or the kernels.
race-sim-par:
	$(GO) test -race -run 'Shard' ./internal/sim/

# Short smoke runs of every fuzz target (seeds always run under plain
# `go test`; this explores a little beyond them).
fuzz:
	$(GO) test -fuzz FuzzDecodeSchedule -fuzztime 10s .
	$(GO) test -fuzz FuzzScheduleFromSlotSets -fuzztime 10s .
	$(GO) test -fuzz FuzzCacheGet -fuzztime 10s ./internal/schedcache
	$(GO) test -fuzz FuzzSimEquivalence -fuzztime 10s ./internal/sim
	$(GO) test -fuzz FuzzDecodeWire -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzIgnoreDirective -fuzztime 10s ./internal/lint
	$(GO) test -run '^$$' -fuzz FuzzHotpathDirective -fuzztime 10s ./internal/lint

# Benchmarks with -benchmem, captured as the machine-readable perf
# trajectory: BENCH_engine.json (serial-vs-parallel Workers1/WorkersMax
# pairs for the sweep and campaign engines) and BENCH_core.json (naive-vs-
# prefix-cached kernel pairs for the Requirement/throughput verifiers).
# Time-based -benchtime: fixed tiny iteration counts (3x) made the
# Workers1/WorkersMax ratio a noise measurement — one GC pause in a
# 3-iteration run moved the pair by ±20%. Non-gating: runs alongside
# `make check`, not inside it.
bench: lint-bench bench-serve
	$(GO) test -run xxx -bench . -benchmem -benchtime 1s ./internal/engine ./internal/schedcache \
		| $(GO) run ./cmd/ttdcbench -o BENCH_engine.json
	$(GO) test -run xxx -bench . -benchmem -benchtime 1s ./internal/core \
		| $(GO) run ./cmd/ttdcbench -o BENCH_core.json
	$(GO) test -run xxx -bench . -benchmem -benchtime 1s ./internal/sim \
		| $(GO) run ./cmd/ttdcbench -o BENCH_sim.json

# The TTDC_SCALE campaign: the n=10^5 convergecast grid and the n=10^6
# saturation frame, one iteration each (the runs are seconds long and
# deterministic — averaging adds minutes, not information), merged into
# BENCH_sim.json next to the standard entries. Each entry records
# GOMAXPROCS, NumCPU, and the process peak RSS (VmHWM) in its "extra" map,
# and ttdcbench derives the Shards1/ShardsMax speedup pairs. Non-gating,
# like `bench`.
bench-scale:
	TTDC_SCALE=1 $(GO) test -run xxx -bench Scale -benchmem -benchtime 1x -timeout 60m ./internal/sim \
		| $(GO) run ./cmd/ttdcbench -merge -o BENCH_sim.json

# End-to-end serving-tier load: a 3-peer in-process consistent-hash ring
# driven by the ttdcload generator (zipf key mix, ETag revalidation, wire
# and JSON bodies), captured as BENCH_serve.json with client-observed
# hit/miss/304 counts and latency quantiles.
bench-serve:
	$(GO) run ./cmd/ttdcload -inproc 3 -requests 12000 -c 16 -seed 42 -o BENCH_serve.json

# Linter self-benchmarks: loader (serial and parallel), call-graph +
# summary fixpoint, per-analyzer wall time, and the full LintAll path,
# captured as BENCH_lint.json so analyzer regressions show up in the perf
# trajectory alongside the engine and kernel numbers.
lint-bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1s ./internal/lint \
		| $(GO) run ./cmd/ttdcbench -o BENCH_lint.json

# One pass over every package's benchmarks, for spot checks.
benchall:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

serve:
	$(GO) run ./cmd/ttdcserve -addr :8080
