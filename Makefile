# Verification targets for the ttdc reproduction. `make check` is the
# tier-1 gate: vet + build + full test suite + race detector over the
# concurrent packages.

GO ?= go

.PHONY: check vet build test race fuzz bench serve

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector over every package that spawns goroutines: the
# schedule cache + HTTP server, the simulator, and the parallel checkers.
race:
	$(GO) test -race ./internal/schedcache ./internal/sim ./internal/core ./cmd/ttdcserve

# Short smoke runs of every fuzz target (seeds always run under plain
# `go test`; this explores a little beyond them).
fuzz:
	$(GO) test -fuzz FuzzDecodeSchedule -fuzztime 10s .
	$(GO) test -fuzz FuzzScheduleFromSlotSets -fuzztime 10s .
	$(GO) test -fuzz FuzzCacheGet -fuzztime 10s ./internal/schedcache

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

serve:
	$(GO) run ./cmd/ttdcserve -addr :8080
