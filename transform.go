package ttdc

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/plan"
)

// Requirements captures an application's needs for PlanBest; see
// internal/plan.Requirements.
type Requirements = plan.Requirements

// Plan is a planned schedule with its projected figures of merit.
type Plan = plan.Plan

// PlanBest searches the construction space — base cover-free family ×
// (αT, αR) caps — and returns the feasible schedule with the longest
// projected battery lifetime, subject to the latency/lifetime/throughput
// constraints in req. It makes the paper's "αT and αR capture applications'
// requirements" mapping executable.
func PlanBest(req Requirements) (*Plan, error) { return plan.Best(req) }

// Schedule transformations (node relabeling, frame phase, composition) and
// the randomized cover-free search. All transformations document which
// guarantees they preserve; see the corresponding functions in package
// core.

// PermuteNodes relabels node identities by perm (a permutation of [0, n)).
// Topology transparency and every throughput figure are invariant.
func PermuteNodes(s *Schedule, perm []int) (*Schedule, error) {
	return core.PermuteNodes(s, perm)
}

// RotateSlots shifts the frame so the input's slot k becomes slot 0. All
// analysis quantities are invariant.
func RotateSlots(s *Schedule, k int) *Schedule { return core.RotateSlots(s, k) }

// Concat plays a's frame then b's frame. If either input is
// topology-transparent for N(n, D), so is the result; the average
// throughput is the length-weighted mean.
func Concat(a, b *Schedule) (*Schedule, error) { return core.Concat(a, b) }

// Repeat plays s's frame k times per combined frame; all analysis
// quantities are invariant.
func Repeat(s *Schedule, k int) (*Schedule, error) { return core.Repeat(s, k) }

// Restrict keeps only nodes [0, m); a TT schedule for N(n, D) restricts to
// a TT schedule for N(m, D) (for m > D).
func Restrict(s *Schedule, m int) (*Schedule, error) { return core.Restrict(s, m) }

// SearchSchedule builds a topology-transparent non-sleeping schedule for
// N(n, D) with frame length exactly l, found by randomized local repair
// over cover-free families. Unlike the algebraic constructions it can hit
// frame lengths between the quantized construction sizes; it returns an
// error when the search budget is exhausted (which does not prove
// impossibility).
func SearchSchedule(n, d, l int, seed uint64) (*Schedule, error) {
	fam, err := cff.Search(cff.SearchOptions{N: n, D: d, L: l, Seed: seed})
	if err != nil {
		return nil, err
	}
	return core.ScheduleFromFamily(fam.L, fam.Sets)
}

// ShortestSearchedSchedule scans frame lengths downward from hi to lo and
// returns the topology-transparent non-sleeping schedule with the shortest
// frame the randomized search can certify.
func ShortestSearchedSchedule(n, d, lo, hi int, seed uint64) (*Schedule, error) {
	fam, err := cff.FindShortest(n, d, lo, hi, seed)
	if err != nil {
		return nil, err
	}
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		return nil, fmt.Errorf("ttdc: searched family invalid: %w", err)
	}
	return s, nil
}
