package ttdc_test

import (
	"fmt"

	ttdc "repro"
)

// The full pipeline: construct a topology-transparent schedule for a
// network class, duty-cycle it, and read off the exact guarantees.
func Example() {
	// Class N(25, 2): at most 25 nodes, degree at most 2. No topology!
	ns, _ := ttdc.PolynomialSchedule(25, 2)
	duty, _ := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 5, D: 2})

	fmt.Println("frame length:", duty.L())
	fmt.Println("active fraction:", duty.ActiveFraction())
	fmt.Println("topology-transparent:", ttdc.IsTopologyTransparent(duty, 2))
	fmt.Println("Thr^ave:", ttdc.AvgThroughput(duty, 2).RatString())
	// Output:
	// frame length: 200
	// active fraction: 0.32
	// topology-transparent: true
	// Thr^ave: 21/920
}

// TDMA is the simplest topology-transparent schedule: frame length n, each
// node owning one slot.
func ExampleTDMA() {
	s, _ := ttdc.TDMA(6)
	fmt.Println("L:", s.L())
	fmt.Println("node 2 transmits in slots:", s.Tran(2))
	fmt.Println("Thr^min:", ttdc.MinThroughput(s, 3).RatString())
	// Output:
	// L: 6
	// node 2 transmits in slots: {2}
	// Thr^min: 1/6
}

// OptimalTransmitters computes the Theorem 3 optimum αT★ ≈ (n-D)/(D+1).
func ExampleOptimalTransmitters() {
	fmt.Println(ttdc.OptimalTransmitters(25, 2))
	fmt.Println(ttdc.GeneralThroughputBound(25, 2).RatString())
	// Output:
	// 8
	// 272/1725
}

// CheckRequirement3 returns a concrete witness when a schedule is not
// topology-transparent.
func ExampleCheckRequirement3() {
	// Node 0 is never allowed to transmit.
	s, _ := ttdc.NewSchedule(4,
		[][]int{{1}, {2}, {3}},
		[][]int{{0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	w := ttdc.CheckRequirement3(s, 2)
	fmt.Println(w)
	// Output:
	// node 0 has no free slot against neighbourhood [1 2]
}

// WorstCaseHopLatency bounds the wait for a guaranteed collision-free slot
// on any link in the class.
func ExampleWorstCaseHopLatency() {
	s, _ := ttdc.TDMA(8)
	bound, ok := ttdc.WorstCaseHopLatency(s, 3)
	fmt.Println(bound, ok)
	// Output:
	// 7 true
}

// RunSaturation cross-validates the analysis: under worst-case traffic the
// simulator observes exactly the guaranteed slots.
func ExampleRunSaturation() {
	s, _ := ttdc.TDMA(6)
	g := ttdc.Ring(6)
	res, _ := ttdc.RunSaturation(g, s, 2, ttdc.DefaultEnergy())
	fmt.Println("min deliveries per frame per link:", res.MinLinkPerFrame)
	fmt.Println("collisions:", res.CollisionSlots)
	// Output:
	// min deliveries per frame per link: 1
	// collisions: 0
}

// SteinerSchedule packs D=2 classes into far shorter frames than TDMA.
func ExampleSteinerSchedule() {
	s, _ := ttdc.SteinerSchedule(26) // 26 nodes from STS(13)'s blocks
	fmt.Println("frame:", s.L(), "vs TDMA's", 26)
	fmt.Println("TT:", ttdc.IsTopologyTransparent(s, 2))
	// Output:
	// frame: 13 vs TDMA's 26
	// TT: true
}

// ProjectiveSchedule extends the Steiner approach to larger degree bounds:
// lines of PG(2, p) support D up to p.
func ExampleProjectiveSchedule() {
	s, _ := ttdc.ProjectiveSchedule(31, 5) // PG(2,5): v = 31
	fmt.Println("frame:", s.L())
	fmt.Println("TT at D=5:", ttdc.IsTopologyTransparent(s, 5))
	// Output:
	// frame: 31
	// TT at D=5: true
}

// MinFrameLowerBound certifies when Construct's frame length is optimal.
func ExampleMinFrameLowerBound() {
	ns, _ := ttdc.TDMA(6)
	duty, _ := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 1, AlphaR: 2, D: 2})
	fmt.Println("Construct frame:", duty.L())
	fmt.Println("lower bound:    ", ttdc.MinFrameLowerBound(6, 1, 2))
	// Output:
	// Construct frame: 18
	// lower bound:     18
}

// EstimateLifetime projects battery lifetime from a schedule's role
// densities — the number deployments actually plan around.
func ExampleEstimateLifetime() {
	ns, _ := ttdc.PolynomialSchedule(25, 2)
	duty, _ := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 5, D: 2})
	full, _ := ttdc.EstimateLifetime(ns, ttdc.DefaultEnergy(), 20000)
	cycled, _ := ttdc.EstimateLifetime(duty, ttdc.DefaultEnergy(), 20000)
	fmt.Printf("duty cycling extends first-death lifetime %.1fx\n",
		cycled.MinSeconds/full.MinSeconds)
	// Output:
	// duty cycling extends first-death lifetime 2.6x
}

// PlanBest maps application requirements onto a concrete schedule.
func ExamplePlanBest() {
	p, _ := ttdc.PlanBest(ttdc.Requirements{
		MaxNodes:             25,
		MaxDegree:            2,
		MaxHopLatencySeconds: 0.5, // 10 ms slots
	})
	fmt.Println("latency within cap:", p.HopLatencySeconds <= 0.5)
	fmt.Println("schedule sleeps:", p.ActiveFraction < 1)
	// Output:
	// latency within cap: true
	// schedule sleeps: true
}
