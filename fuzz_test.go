package ttdc_test

import (
	"bytes"
	"strings"
	"testing"

	ttdc "repro"
)

// FuzzDecodeSchedule hardens the JSON entry point: arbitrary bytes must
// never panic, and anything that decodes must re-encode and decode to an
// identical schedule. (Run with `go test -fuzz FuzzDecodeSchedule` to
// explore; the seed corpus runs in normal `go test`.)
func FuzzDecodeSchedule(f *testing.F) {
	good, err := ttdc.TDMA(4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ttdc.EncodeSchedule(&buf, good); err != nil {
		f.Fatal(err)
	}
	// A duty-cycled schedule exercises sleeping slots in the corpus too.
	if ns, err := ttdc.PolynomialSchedule(9, 2); err == nil {
		if duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 2, AlphaR: 4, D: 2}); err == nil {
			var dbuf bytes.Buffer
			if err := ttdc.EncodeSchedule(&dbuf, duty); err == nil {
				f.Add(dbuf.String())
			}
		}
	}
	f.Add(buf.String())
	f.Add(`{"n":3,"t":[[0]],"r":[[1,2]]}`)
	f.Add(`{"n":3,"t":[[0,1]],"r":[[1]]}`)     // overlap: must error, not panic
	f.Add(`{"n":3,"t":[[0],[1]],"r":[[1]]}`)   // |T| != |R|: must error, not panic
	f.Add(`{"n":3,"t":[[0,0]],"r":[[1,1,2]]}`) // duplicate nodes in a slot
	f.Add(`{"n":3,"t":[[-1]],"r":[[9]]}`)      // nodes outside [0, n)
	f.Add(`{"n":-1}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"n":1000000,"t":[],"r":[]}`)
	f.Add(`{"n":1048577,"t":[[]],"r":[[]]}`)    // n > maxDecodedDimension
	f.Add(`{"n":2,"t":[[]],"r":[[],[],[],[]]}`) // R longer than T
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ttdc.DecodeSchedule(strings.NewReader(data))
		if err != nil {
			return
		}
		// Round trip must be stable.
		var out bytes.Buffer
		if err := ttdc.EncodeSchedule(&out, s); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, err := ttdc.DecodeSchedule(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.N() != s.N() || s2.L() != s.L() {
			t.Fatal("round trip changed shape")
		}
		for i := 0; i < s.L(); i++ {
			if !s2.T(i).Equal(s.T(i)) || !s2.R(i).Equal(s.R(i)) {
				t.Fatal("round trip changed content")
			}
		}
	})
}

// FuzzScheduleFromSlotSets hardens the slot-set constructor: arbitrary
// (frameLen, flattened sets) must never panic; successful construction
// implies a structurally valid non-sleeping schedule.
func FuzzScheduleFromSlotSets(f *testing.F) {
	f.Add(3, 3, []byte{0, 1, 2})
	f.Add(2, 5, []byte{0, 0})
	f.Add(0, 0, []byte{})
	f.Fuzz(func(t *testing.T, frameLen, n int, raw []byte) {
		if frameLen < 0 || frameLen > 64 || n < 0 || n > 16 || len(raw) > 64 {
			return
		}
		sets := make([][]int, n)
		for i, b := range raw {
			if n == 0 {
				break
			}
			sets[i%n] = append(sets[i%n], int(b))
		}
		s, err := ttdc.ScheduleFromSlotSets(frameLen, sets)
		if err != nil {
			return
		}
		if !s.IsNonSleeping() {
			t.Fatal("slot-set schedule should be non-sleeping")
		}
		if s.L() != frameLen || s.N() != n {
			t.Fatal("shape mismatch")
		}
	})
}
