package ttdc

import (
	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Topology, simulation, and baseline re-exports: one import serves a whole
// experiment.

// Graph is an undirected network graph over nodes {0..n-1}.
type Graph = topology.Graph

// Deployment is a unit-square node placement with its induced unit-disk
// graph; Step implements a simple mobility model.
type Deployment = topology.Deployment

// RNG is the deterministic random generator used by every randomized
// component; same seed, same stream, on every platform.
type RNG = stats.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return topology.NewGraph(n) }

// Ring returns the n-cycle (every degree 2).
func Ring(n int) *Graph { return topology.Ring(n) }

// Line returns the n-node path.
func Line(n int) *Graph { return topology.Line(n) }

// Star returns the n-node star centred at node 0.
func Star(n int) *Graph { return topology.Star(n) }

// Grid returns the rows×cols 4-neighbour grid.
func Grid(rows, cols int) *Graph { return topology.Grid(rows, cols) }

// Regularish returns a deterministic d-regular graph on n nodes (the
// worst-case topology: every node at the degree bound).
func Regularish(n, d int) *Graph { return topology.Regularish(n, d) }

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within radius (the standard WSN deployment model).
func RandomGeometric(n int, radius float64, rng *RNG) *Deployment {
	return topology.RandomGeometric(n, radius, rng)
}

// RandomBoundedDegree returns a connected random graph with max degree d.
func RandomBoundedDegree(n, d, extraEdges int, rng *RNG) *Graph {
	return topology.RandomBoundedDegree(n, d, extraEdges, rng)
}

// EnergyModel holds radio power draws; DefaultEnergy is CC2420-class.
type EnergyModel = sim.EnergyModel

// DefaultEnergy returns the CC2420-class energy model.
func DefaultEnergy() EnergyModel { return sim.DefaultEnergy() }

// SaturationResult reports a worst-case saturation simulation.
type SaturationResult = sim.SaturationResult

// RunSaturation simulates the paper's worst case: every node transmits in
// every eligible slot; per-link collision-free deliveries are counted.
func RunSaturation(g *Graph, s *Schedule, frames int, em EnergyModel) (*SaturationResult, error) {
	return sim.RunSaturation(g, s, frames, em)
}

// RunSaturationLegacy is the slot-by-slot reference loop for RunSaturation,
// retained as the differential baseline for the struct-of-arrays fast path.
func RunSaturationLegacy(g *Graph, s *Schedule, frames int, em EnergyModel) (*SaturationResult, error) {
	return sim.RunSaturationLegacy(g, s, frames, em)
}

// RunSaturationSharded is RunSaturation with the frame resolution split
// across word-aligned node ranges (0 or 1 shard = sequential, negative =
// one per CPU). Results are byte-identical at every shard count.
func RunSaturationSharded(g *Graph, s *Schedule, frames int, em EnergyModel, shards int) (*SaturationResult, error) {
	return sim.RunSaturationSharded(g, s, frames, em, shards)
}

// SaturationKernel is the reusable topology-independent precomputation of
// the saturation fast path; build one per (schedule, n) and share it across
// the topologies of a campaign.
type SaturationKernel = sim.SaturationKernel

// NewSaturationKernel precomputes the saturation fast path for schedule s
// over graphs on exactly n nodes.
func NewSaturationKernel(s *Schedule, n int) (*SaturationKernel, error) {
	return sim.NewSaturationKernel(s, n)
}

// ConvergecastKernel is the reusable precomputation of the convergecast
// fast path for one (graph, schedule, sink) triple; build one per grid
// point and share it across a campaign's replications.
type ConvergecastKernel = sim.ConvergecastKernel

// NewConvergecastKernel validates the triple and precomputes the
// convergecast fast path.
func NewConvergecastKernel(g *Graph, s *Schedule, sink int) (*ConvergecastKernel, error) {
	return sim.NewConvergecastKernel(g, s, sink)
}

// GuaranteedPerLink computes the analytical per-frame guaranteed delivery
// count for every directed link of g under s.
func GuaranteedPerLink(g *Graph, s *Schedule) map[int]map[int]int {
	return sim.GuaranteedPerLink(g, s)
}

// ConvergecastConfig parameterizes a Poisson data-collection simulation.
type ConvergecastConfig = sim.ConvergecastConfig

// TrafficPhase is one segment of a time-varying load pattern.
type TrafficPhase = sim.TrafficPhase

// ConvergecastResult reports a data-collection simulation.
type ConvergecastResult = sim.ConvergecastResult

// RunConvergecast simulates Poisson data collection to a sink over a BFS
// routing tree under schedule s.
func RunConvergecast(g *Graph, s *Schedule, cfg ConvergecastConfig) (*ConvergecastResult, error) {
	return sim.RunConvergecast(g, s, cfg)
}

// Protocol abstracts "who does what in a slot"; implementations include
// ScheduleProtocol (this library's MAC) and the contention baselines below.
type Protocol = sim.Protocol

// ScheduleProtocol drives roles from a Schedule.
type ScheduleProtocol = sim.ScheduleProtocol

// NewAloha returns slotted ALOHA with per-slot transmit probability p —
// the always-listening contention reference.
func NewAloha(p float64, seed uint64) Protocol { return sim.NewAloha(p, seed) }

// NewDutyAloha returns uncoordinated duty-cycled ALOHA: transmit with
// probability pTx, otherwise listen with probability pListen, else sleep.
func NewDutyAloha(pTx, pListen float64, seed uint64) Protocol {
	return sim.NewDutyAloha(pTx, pListen, seed)
}

// NewQuorum returns grid-quorum duty cycling (awake in one row + one
// column of a side×side slot grid): guaranteed pairwise rendezvous, no
// collision freedom — the classic asynchronous power-saving baseline.
func NewQuorum(n, side int, p float64, seed uint64) (*sim.QuorumProtocol, error) {
	return sim.NewQuorum(n, side, p, seed)
}

// RunConvergecastProtocol is RunConvergecast for an arbitrary Protocol.
func RunConvergecastProtocol(g *Graph, p Protocol, cfg ConvergecastConfig) (*ConvergecastResult, error) {
	return sim.RunConvergecastProtocol(g, p, cfg)
}

// FloodConfig parameterizes a dissemination run.
type FloodConfig = sim.FloodConfig

// FloodResult reports a dissemination run.
type FloodResult = sim.FloodResult

// RunFlood simulates network-wide dissemination from a source. Under a
// topology-transparent schedule the frontier advances at least one hop per
// frame, so completion takes at most Eccentricity(g, source) frames.
func RunFlood(g *Graph, p Protocol, cfg FloodConfig) (*FloodResult, error) {
	return sim.RunFlood(g, p, cfg)
}

// Eccentricity returns the greatest BFS distance from src (-1 if g is
// disconnected): the analytic flood-completion bound in frames.
func Eccentricity(g *Graph, src int) int { return sim.Eccentricity(g, src) }

// DiscoveryResult reports a neighbour-discovery run.
type DiscoveryResult = sim.DiscoveryResult

// RunDiscovery simulates neighbour discovery (all nodes beaconing). Under a
// topology-transparent schedule every directed link is discovered within
// the first frame.
func RunDiscovery(g *Graph, p Protocol, maxFrames int, em EnergyModel, seed uint64) (*DiscoveryResult, error) {
	return sim.RunDiscovery(g, p, maxFrames, em, seed)
}

// ScaleFreeBounded grows a hub-heavy preferential-attachment graph with a
// degree cap.
func ScaleFreeBounded(n, m, maxDeg int, rng *RNG) *Graph {
	return topology.ScaleFreeBounded(n, m, maxDeg, rng)
}

// TwoCommunities builds two dense communities joined by a thin bridge (a
// convergecast bottleneck), degrees capped at maxDeg.
func TwoCommunities(sizeA, sizeB, bridges, maxDeg int, rng *RNG) *Graph {
	return topology.TwoCommunities(sizeA, sizeB, bridges, maxDeg, rng)
}

// Corridor builds a rows×length strip deployment (tunnel/pipeline
// monitoring: long diameter, small cross-section).
func Corridor(rows, length int) *Graph { return topology.Corridor(rows, length) }

// AdaptiveProtocol switches between a low-power and a high-throughput
// topology-transparent schedule at frame boundaries based on observed load.
// Every frame is a complete frame of a TT schedule, so every link keeps a
// guaranteed slot per frame regardless of the switching sequence.
type AdaptiveProtocol = sim.AdaptiveProtocol

// NewAdaptive builds an adaptive protocol over two schedules on the same
// node universe with hysteresis thresholds (switch up when frame load
// exceeds up, down when it falls below down).
func NewAdaptive(low, high *Schedule, up, down float64) (*AdaptiveProtocol, error) {
	return sim.NewAdaptive(low, high, up, down)
}

// Gini returns the Gini coefficient of non-negative values (0 = perfectly
// equal): the fairness metric for per-node energy expenditure.
func Gini(values []float64) float64 { return stats.Gini(values) }

// Channel models non-collision packet losses (erasures, capture effect);
// the zero value is the paper's ideal collision-only channel.
type Channel = sim.Channel

// ClockModel models imperfect slot synchronization (crystal drift, guard
// bands, periodic resynchronization).
type ClockModel = sim.ClockModel

// RequiredResyncInterval returns the largest resynchronization period (in
// slots) that keeps every node pair within the clock model's guard band.
func RequiredResyncInterval(m ClockModel) int { return sim.RequiredResyncInterval(m) }

// Tracer consumes slot-level simulator events (set ConvergecastConfig.
// Tracer); see internal/trace for the Ring/Counter/Writer implementations.
type Tracer = trace.Tracer

// TraceEvent is one simulator occurrence.
type TraceEvent = trace.Event

// NewTraceRing returns a tracer retaining the most recent capacity events.
func NewTraceRing(capacity int) *trace.Ring { return trace.NewRing(capacity) }

// NewTraceCounter returns a tracer aggregating per-kind event counts.
func NewTraceCounter() *trace.Counter { return trace.NewCounter() }

// LifetimeEstimate is the analytical battery-lifetime projection.
type LifetimeEstimate = sim.LifetimeEstimate

// EstimateLifetime projects per-node battery lifetime under s from the
// schedule's role densities (saturated-traffic assumption; see sim).
func EstimateLifetime(s *Schedule, em EnergyModel, batteryJoules float64) (*LifetimeEstimate, error) {
	return sim.EstimateLifetime(s, em, batteryJoules)
}

// ColoringTDMA builds a topology-DEPENDENT distance-2-coloring TDMA
// schedule for a known graph — collision-free there, no guarantee after
// topology change (the foil for topology transparency).
func ColoringTDMA(g *Graph) (*Schedule, error) { return baseline.ColoringTDMA(g) }

// RandomDutyCycle builds an uncoordinated random schedule (no guarantees).
func RandomDutyCycle(n, l int, pTx, pRx float64, rng *RNG) (*Schedule, error) {
	return baseline.RandomDutyCycle(n, l, pTx, pRx, rng)
}

// Symmetric builds the (α, α)-schedule special case via Construct.
func Symmetric(ns *Schedule, d, alpha int) (*Schedule, error) {
	return baseline.Symmetric(ns, d, alpha)
}
