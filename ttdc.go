// Package ttdc is a library for topology-transparent duty cycling in
// wireless sensor networks, reproducing Chen, Fleury and Syrotiuk,
// "Topology-Transparent Duty Cycling for Wireless Sensor Networks"
// (IPDPS/IPPS 2007).
//
// A schedule ⟨T,R⟩ assigns every node one of three roles per slot —
// transmit-eligible, receive-eligible, or sleep — and repeats with frame
// length L. The schedule is topology-transparent for the network class
// N(n, D) (at most n nodes, degree at most D) when every node is
// guaranteed a collision-free slot toward every neighbour once per frame
// in every topology of the class. The package provides:
//
//   - Constructions of topology-transparent non-sleeping schedules from
//     cover-free families: plain TDMA, the orthogonal-array (polynomial
//     over GF(q)) construction, and Steiner triple systems.
//   - The paper's Construct algorithm, which converts any such schedule
//     into an (αT, αR)-schedule — at most αT transmitters and αR receivers
//     awake per slot — that remains topology-transparent (Theorem 6), with
//     analytical frame-length, average-throughput and minimum-throughput
//     guarantees (Theorems 7-9).
//   - Exact (rational-arithmetic) worst-case throughput analysis:
//     Definitions 1-2, the Theorem 2 closed form, and the Theorem 3/4
//     upper bounds with their optimal per-slot transmitter counts.
//   - Requirement checkers (Requirements 1-3) with violation witnesses.
//   - A slot-level WSN simulator (collision model, Poisson convergecast,
//     CC2420-class energy accounting) and topology generators to exercise
//     schedules on concrete networks.
//   - Baselines: topology-dependent coloring TDMA, uncoordinated random
//     duty cycling, and the symmetric (α, α) construction.
//
// # Quick start
//
//	ns, _ := ttdc.PolynomialSchedule(25, 2)        // TT non-sleeping, N(25, 2)
//	duty, _ := ttdc.Construct(ns, ttdc.ConstructOptions{
//	    AlphaT: 3, AlphaR: 5, D: 2,
//	})
//	fmt.Println(ttdc.AvgThroughput(duty, 2))       // exact rational
//	fmt.Println(duty.ActiveFraction())             // energy proxy
//
// All randomized components take explicit seeds; every result in this
// repository is reproducible bit-for-bit.
package ttdc

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/schedcache"
)

// Schedule is a periodic ⟨T,R⟩ activity schedule. See core.Schedule for
// the full method set (Tran, Recv, FreeSlots, Sigma, TSlots, RoleOf,
// ActiveFraction, ...).
type Schedule = core.Schedule

// Role is a node's activity in a slot: Transmit, Receive or Sleep.
type Role = core.Role

// Node roles.
const (
	Sleep    = core.Sleep
	Transmit = core.Transmit
	Receive  = core.Receive
)

// ConstructOptions parameterizes Construct; see the field documentation in
// package core.
type ConstructOptions = core.ConstructOptions

// DivisionStrategy selects how Construct splits transmitter sets; see the
// constants below.
type DivisionStrategy = core.DivisionStrategy

// Division strategies for Construct.
const (
	Sequential = core.Sequential
	Balanced   = core.Balanced
)

// Witness is a violation certificate from the Requirement-1/3 checkers.
type Witness = core.Witness

// Req2Witness is a violation certificate from the Requirement-2 checker.
type Req2Witness = core.Req2Witness

// NewSchedule builds a schedule from explicit per-slot transmitter and
// receiver node lists over the universe {0..n-1}.
func NewSchedule(n int, t, r [][]int) (*Schedule, error) { return core.New(n, t, r) }

// NewNonSleeping builds a non-sleeping schedule (R[i] = V - T[i]) from
// per-slot transmitter lists.
func NewNonSleeping(n int, t [][]int) (*Schedule, error) { return core.NonSleeping(n, t) }

// TDMA returns the round-robin TDMA schedule on n nodes: frame length n,
// node i transmits in slot i, everyone else listens. It is
// topology-transparent for every D <= n-1, at the cost of the longest
// per-node wait.
func TDMA(n int) (*Schedule, error) {
	fam, err := cff.Identity(n)
	if err != nil {
		return nil, err
	}
	return core.ScheduleFromFamily(fam.L, fam.Sets)
}

// PolynomialSchedule returns a topology-transparent non-sleeping schedule
// for N(n, D) built from the orthogonal-array (polynomial over GF(q))
// cover-free family of Chlamtac-Farago and Ju-Li, using the smallest
// feasible field. Frame length is q² with q the least prime power
// admitting n nodes at degree bound D.
func PolynomialSchedule(n, d int) (*Schedule, error) {
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	return core.ScheduleFromFamily(fam.L, fam.Sets)
}

// SteinerSchedule returns a topology-transparent non-sleeping schedule for
// N(n, 2) built from a Steiner triple system (member sets are blocks;
// distinct blocks share at most one point). Only D = 2 is supported by
// this construction; for larger D see ProjectiveSchedule.
func SteinerSchedule(n int) (*Schedule, error) {
	fam, err := cff.Steiner(n)
	if err != nil {
		return nil, err
	}
	return core.ScheduleFromFamily(fam.L, fam.Sets)
}

// ProjectiveSchedule returns a topology-transparent non-sleeping schedule
// for N(n, D) whose transmission sets are lines of a projective plane
// PG(2, p) built from a Singer difference set — the Steiner system
// S(2, p+1, p²+p+1) generalizing triple systems to D up to p. The least
// prime p >= D with p²+p+1 >= n is used; the frame length is p²+p+1.
func ProjectiveSchedule(n, d int) (*Schedule, error) {
	fam, err := cff.ProjectiveFor(n, d)
	if err != nil {
		return nil, err
	}
	return core.ScheduleFromFamily(fam.L, fam.Sets)
}

// ScheduleFromSlotSets builds a non-sleeping schedule from per-node
// transmission slot sets given as plain slices: node x transmits in the
// slots listed in sets[x] ⊆ [0, frameLen).
func ScheduleFromSlotSets(frameLen int, sets [][]int) (*Schedule, error) {
	fam := make([][]int, len(sets))
	copy(fam, sets)
	t := make([][]int, frameLen)
	for x, slots := range fam {
		for _, i := range slots {
			if i < 0 || i >= frameLen {
				return nil, fmt.Errorf("ttdc: node %d slot %d out of range [0,%d)", x, i, frameLen)
			}
			t[i] = append(t[i], x)
		}
	}
	return core.NonSleeping(len(sets), t)
}

// Construct runs the paper's Figure 2 algorithm: from a
// topology-transparent non-sleeping schedule it builds an (αT, αR)
// duty-cycling schedule that is still topology-transparent for N(n, D).
func Construct(ns *Schedule, opts ConstructOptions) (*Schedule, error) {
	return core.Construct(ns, opts)
}

// ScheduleCache is a concurrency-safe, size-bounded (LRU) memoizing cache
// over schedule construction with singleflight deduplication: N concurrent
// requests for the same (n, D, αT, αR, strategy) key trigger exactly one
// construction. See internal/schedcache and cmd/ttdcserve.
type ScheduleCache = schedcache.Cache

// ScheduleCacheKey identifies a cached schedule request; zero AlphaT and
// AlphaR request the non-sleeping base schedule.
type ScheduleCacheKey = schedcache.Key

// ScheduleCacheStats is an atomic snapshot of cache counters.
type ScheduleCacheStats = schedcache.Stats

// NewScheduleCache returns a schedule cache holding at most capacity
// entries (a default when capacity <= 0).
func NewScheduleCache(capacity int) *ScheduleCache { return schedcache.New(capacity) }

// IsTopologyTransparent reports whether s satisfies Requirement 3
// (equivalently Requirement 2, Theorem 1) for the class N(s.N(), d).
func IsTopologyTransparent(s *Schedule, d int) bool { return core.IsTopologyTransparent(s, d) }

// CheckRequirement1 exhaustively verifies the non-sleeping (cover-free)
// condition on ⟨T⟩ and returns a violation witness or nil.
func CheckRequirement1(s *Schedule, d int) *Witness { return core.CheckRequirement1(s, d) }

// CheckRequirement2 exhaustively verifies Requirement 2 and returns a
// violation witness or nil.
func CheckRequirement2(s *Schedule, d int) *Req2Witness { return core.CheckRequirement2(s, d) }

// CheckRequirement3 exhaustively verifies Requirement 3 and returns a
// violation witness or nil.
func CheckRequirement3(s *Schedule, d int) *Witness { return core.CheckRequirement3(s, d) }

// CheckRequirement1Parallel is CheckRequirement1 distributed over worker
// goroutines (0 = GOMAXPROCS); deterministic smallest-x witness.
func CheckRequirement1Parallel(s *Schedule, d, workers int) *Witness {
	return core.CheckRequirement1Parallel(s, d, workers)
}

// CheckRequirement3Parallel is CheckRequirement3 distributed over worker
// goroutines (0 = GOMAXPROCS); deterministic smallest-x witness.
func CheckRequirement3Parallel(s *Schedule, d, workers int) *Witness {
	return core.CheckRequirement3Parallel(s, d, workers)
}
