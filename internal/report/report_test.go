package report

import (
	"strings"
	"testing"

	"repro/internal/cff"
	"repro/internal/core"
)

func polySchedule(t *testing.T, n, d int) *core.Schedule {
	t.Helper()
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateFullReport(t *testing.T) {
	ns := polySchedule(t, 9, 2)
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(duty, Options{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"class N(9, 2)",
		"topology-transparent: yes",
		"Thr^ave",
		"Theorem 3 bound",
		"Theorem 4 bound",
		"optimality ratio",
		"Thr^min",
		"hop latency bound",
		"lifetime",
		"Gini",
		"role grid",
		"attains the Theorem 4 optimum",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateNonTTReport(t *testing.T) {
	// Node 0 never transmits.
	s, err := core.New(4, [][]int{{1}, {2}, {3}}, [][]int{{0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(s, Options{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "topology-transparent: NO") {
		t.Fatalf("non-TT verdict missing:\n%s", out)
	}
	if !strings.Contains(out, "witness") {
		t.Fatal("witness missing")
	}
	if !strings.Contains(out, "unbounded") {
		t.Fatal("latency should report unbounded")
	}
}

func TestGenerateSkipsExpensiveScan(t *testing.T) {
	s := polySchedule(t, 25, 2)
	out, err := Generate(s, Options{D: 2, SkipMinThroughput: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Thr^min") {
		t.Fatal("SkipMinThroughput did not skip")
	}
}

func TestGenerateLargeFrameOmitsGrid(t *testing.T) {
	ns := polySchedule(t, 25, 2)
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if duty.L() <= 120 {
		t.Skip("frame unexpectedly small")
	}
	out, err := Generate(duty, Options{D: 2, SkipMinThroughput: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "role grid") {
		t.Fatal("large frame should omit the grid by default")
	}
	// But an explicit width forces it.
	out2, err := Generate(duty, Options{D: 2, SkipMinThroughput: true, GridWidth: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "role grid") {
		t.Fatal("explicit GridWidth should include the grid")
	}
}

func TestGenerateValidation(t *testing.T) {
	s := polySchedule(t, 9, 2)
	if _, err := Generate(s, Options{D: 0}); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := Generate(s, Options{D: 9}); err == nil {
		t.Fatal("D=n accepted")
	}
}
