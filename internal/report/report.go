// Package report renders a complete plain-text analysis of a schedule: the
// topology-transparency verdict, every worst-case throughput figure against
// its theorem bound, the latency bound, energy and lifetime projections,
// per-node duty statistics, and (for small frames) the role grid. It backs
// `ttdcanalyze -report` and gives library users a one-call health check.
package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablewriter"
)

// Options configures Generate.
type Options struct {
	// D is the degree bound of the network class to analyze against.
	D int
	// SkipMinThroughput skips the Θ(n²·C(n-2,D-1)) minimum-throughput and
	// latency scans (the rest of the report is cheap).
	SkipMinThroughput bool
	// BatteryJoules sizes the lifetime projection; 0 means 20000 J (2xAA).
	BatteryJoules float64
	// Energy is the radio model; zero value means sim.DefaultEnergy.
	Energy sim.EnergyModel
	// GridWidth caps the role-grid rendering width; 0 disables the grid
	// for frames longer than 120 slots.
	GridWidth int
}

// Generate renders the report for schedule s.
func Generate(s *core.Schedule, opts Options) (string, error) {
	n := s.N()
	if opts.D < 1 || opts.D > n-1 {
		return "", fmt.Errorf("report: D = %d outside [1, %d]", opts.D, n-1)
	}
	d := opts.D
	em := opts.Energy
	if em == (sim.EnergyModel{}) {
		em = sim.DefaultEnergy()
	}
	battery := opts.BatteryJoules
	if battery == 0 {
		battery = 20000
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SCHEDULE ANALYSIS — class N(%d, %d)\n", n, d)
	fmt.Fprintf(&b, "%s\n\n", strings.Repeat("=", 40))

	fmt.Fprintf(&b, "shape:       n=%d, frame L=%d, non-sleeping=%v\n", n, s.L(), s.IsNonSleeping())
	if aT, aR := s.MaxTransmitters(), s.MaxReceivers(); aT >= 1 && aR >= 1 {
		fmt.Fprintf(&b, "frame bound: counting lower bound for (%d, %d)-schedules is %d slots\n",
			aT, aR, core.MinFrameLowerBound(n, aT, aR))
	}
	fmt.Fprintf(&b, "per slot:    transmitters %d..%d, receivers <= %d\n",
		s.MinTransmitters(), s.MaxTransmitters(), s.MaxReceivers())
	fmt.Fprintf(&b, "energy:      active fraction %.4f\n\n", s.ActiveFraction())

	// Topology transparency.
	if w := core.CheckRequirement3(s, d); w != nil {
		fmt.Fprintf(&b, "topology-transparent: NO\n  witness: %v\n\n", w)
	} else {
		fmt.Fprintf(&b, "topology-transparent: yes (Requirement 3 verified exhaustively)\n\n")
	}

	// Throughput vs bounds.
	avg := core.AvgThroughput(s, d)
	fmt.Fprintf(&b, "Thr^ave            = %-12s (%.6f)\n", avg.RatString(), ratF(avg))
	t3 := core.GeneralThroughputBound(n, d)
	fmt.Fprintf(&b, "Theorem 3 bound    = %-12s (%.6f), αT★ = %d\n",
		t3.RatString(), ratF(t3), core.OptimalTransmitters(n, d))
	aT, aR := s.MaxTransmitters(), s.MaxReceivers()
	if aT >= 1 && aR >= 1 {
		t4 := core.CappedThroughputBound(n, d, aT, aR)
		ratio := core.OptimalityRatio(s, d, aT, aR)
		fmt.Fprintf(&b, "Theorem 4 bound    = %-12s (%.6f) for caps (%d, %d)\n",
			t4.RatString(), ratF(t4), aT, aR)
		fmt.Fprintf(&b, "optimality ratio   = %.6f", ratF(ratio))
		if ratio.Num().Cmp(ratio.Denom()) == 0 {
			fmt.Fprintf(&b, "  ← attains the Theorem 4 optimum")
		}
		fmt.Fprintln(&b)
	}
	if !opts.SkipMinThroughput {
		min := core.MinThroughput(s, d)
		fmt.Fprintf(&b, "Thr^min            = %-12s (%.6f)\n", min.RatString(), ratF(min))
		if bound, ok := core.WorstCaseHopLatency(s, d); ok {
			fmt.Fprintf(&b, "hop latency bound  = %d slots (out of L-1 = %d)\n", bound, s.L()-1)
		} else {
			fmt.Fprintf(&b, "hop latency bound  = unbounded (not topology-transparent)\n")
		}
	}
	fmt.Fprintln(&b)

	// Lifetime.
	if est, err := sim.EstimateLifetime(s, em, battery); err == nil {
		const year = 365.25 * 24 * 3600
		fmt.Fprintf(&b, "lifetime (%.0f J battery, saturated): first death %.2f y (node %d), mean %.2f y\n",
			battery, est.MinSeconds/year, est.MinNode, est.MeanSeconds/year)
	}

	// Per-node duty.
	duty := make([]float64, n)
	tab := tablewriter.New("", "node", "tx slots", "rx slots", "duty cycle")
	for x := 0; x < n; x++ {
		tx, rx := s.Tran(x).Count(), s.Recv(x).Count()
		duty[x] = float64(tx + rx)
		if x < 10 {
			tab.AddRow(x, tx, rx, fmt.Sprintf("%.3f", s.DutyCycle(x)))
		}
	}
	fmt.Fprintf(&b, "per-node activity Gini = %.4f (0 = perfectly balanced)\n\n", stats.Gini(duty))
	if err := tab.WriteText(&b); err != nil {
		return "", err
	}
	if n > 10 {
		fmt.Fprintf(&b, "... (%d more nodes)\n", n-10)
	}

	// Grid for small frames.
	width := opts.GridWidth
	if width == 0 && s.L() <= 120 {
		width = 120
	}
	if width > 0 {
		fmt.Fprintf(&b, "\nrole grid (T=transmit, R=receive, .=sleep):\n%s", s.Grid(width))
	}
	return b.String(), nil
}

func ratF(r interface{ Float64() (float64, bool) }) float64 {
	f, _ := r.Float64()
	return f
}
