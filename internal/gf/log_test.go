package gf

import (
	"reflect"
	"testing"
)

func TestPrimeFactors(t *testing.T) {
	cases := map[int][]int{
		1: nil, 2: {2}, 12: {2, 3}, 30: {2, 3, 5}, 49: {7}, 97: {97},
		360: {2, 3, 5},
	}
	for n, want := range cases {
		if got := primeFactors(n); !reflect.DeepEqual(got, want) {
			t.Errorf("primeFactors(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPrimitiveElementOrder(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7, 8, 9, 11, 16, 25, 27, 49} {
		f, err := NewOrder(q)
		if err != nil {
			t.Fatal(err)
		}
		g := f.PrimitiveElement()
		// g generates all q-1 nonzero elements.
		seen := map[int]bool{}
		v := 1
		for i := 0; i < q-1; i++ {
			if seen[v] {
				t.Fatalf("GF(%d): generator %d has order < %d", q, g, q-1)
			}
			seen[v] = true
			v = f.Mul(v, g)
		}
		if v != 1 {
			t.Fatalf("GF(%d): generator %d order wrong", q, g)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): generator %d covered %d elements", q, g, len(seen))
		}
	}
}

func TestTablesMatchField(t *testing.T) {
	for _, q := range []int{3, 4, 8, 9, 16, 25, 27} {
		f, err := NewOrder(q)
		if err != nil {
			t.Fatal(err)
		}
		tb := NewTables(f)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if tb.Mul(a, b) != f.Mul(a, b) {
					t.Fatalf("GF(%d): Mul(%d,%d) mismatch", q, a, b)
				}
				if b != 0 && tb.Div(a, b) != f.Div(a, b) {
					t.Fatalf("GF(%d): Div(%d,%d) mismatch", q, a, b)
				}
			}
			if a != 0 && tb.Inv(a) != f.Inv(a) {
				t.Fatalf("GF(%d): Inv(%d) mismatch", q, a)
			}
			for e := 0; e < 7; e++ {
				if tb.Pow(a, e) != f.Pow(a, e) {
					t.Fatalf("GF(%d): Pow(%d,%d) mismatch", q, a, e)
				}
			}
		}
	}
}

func TestTablesEval(t *testing.T) {
	f, err := NewOrder(9)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTables(f)
	coeffs := []int{4, 7, 2, 5}
	for x := 0; x < 9; x++ {
		if tb.Eval(coeffs, x) != f.Eval(coeffs, x) {
			t.Fatalf("Eval mismatch at %d", x)
		}
	}
}

func TestTablesPanics(t *testing.T) {
	f, _ := NewOrder(5)
	tb := NewTables(f)
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { tb.Inv(0) },
		"Div(1,0)": func() { tb.Div(1, 0) },
		"Pow(-1)":  func() { tb.Pow(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTablesGF2(t *testing.T) {
	f, _ := NewOrder(2)
	tb := NewTables(f)
	if tb.Generator() != 1 {
		t.Fatalf("GF(2) generator = %d", tb.Generator())
	}
	if tb.Mul(1, 1) != 1 || tb.Mul(0, 1) != 0 {
		t.Fatal("GF(2) table multiplication wrong")
	}
}

func BenchmarkFieldMulGF27(b *testing.B) {
	f, _ := NewOrder(27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(i%27, (i+11)%27)
	}
}

func BenchmarkTablesMulGF27(b *testing.B) {
	f, _ := NewOrder(27)
	tb := NewTables(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Mul(i%27, (i+11)%27)
	}
}
