package gf

import "fmt"

// Field is a finite field GF(p^m). Elements are integers in [0, Q()); the
// base-p digits of an element are the coefficients (lowest degree first) of
// its residue polynomial modulo the field's irreducible polynomial.
//
// A Field is immutable and safe for concurrent use.
type Field struct {
	p, m, q int
	// irred holds the coefficients of the monic irreducible polynomial of
	// degree m used for reduction, lowest degree first, length m+1, with
	// irred[m] == 1. Unused (nil) when m == 1.
	irred []int
}

// New returns the field GF(p^m). p must be prime and m >= 1. For m > 1 a
// monic irreducible polynomial of degree m over GF(p) is found by exhaustive
// search (field sizes used in schedule constructions are small).
func New(p, m int) (*Field, error) {
	if !IsPrime(p) {
		return nil, fmt.Errorf("gf: %d is not prime", p)
	}
	if m < 1 {
		return nil, fmt.Errorf("gf: extension degree %d < 1", m)
	}
	q := 1
	for i := 0; i < m; i++ {
		if q > (1<<31)/p {
			return nil, fmt.Errorf("gf: field GF(%d^%d) too large", p, m)
		}
		q *= p
	}
	f := &Field{p: p, m: m, q: q}
	if m > 1 {
		ir, err := findIrreducible(p, m)
		if err != nil {
			return nil, err
		}
		f.irred = ir
	}
	return f, nil
}

// NewOrder returns GF(q) for a prime power q.
func NewOrder(q int) (*Field, error) {
	p, m, ok := PrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	return New(p, m)
}

// P returns the field characteristic.
func (f *Field) P() int { return f.p }

// M returns the extension degree.
func (f *Field) M() int { return f.m }

// Q returns the field order p^m.
func (f *Field) Q() int { return f.q }

// Irreducible returns a copy of the reduction polynomial's coefficients
// (lowest degree first), or nil for prime fields.
func (f *Field) Irreducible() []int {
	if f.irred == nil {
		return nil
	}
	return append([]int(nil), f.irred...)
}

func (f *Field) check(a int) {
	if a < 0 || a >= f.q {
		panic(fmt.Sprintf("gf: element %d out of range [0,%d)", a, f.q))
	}
}

// digits expands element a into its m base-p coefficient digits.
func (f *Field) digits(a int, out []int) {
	for i := 0; i < f.m; i++ {
		out[i] = a % f.p
		a /= f.p
	}
}

// undigits packs coefficient digits back into an element.
func (f *Field) undigits(d []int) int {
	v := 0
	for i := f.m - 1; i >= 0; i-- {
		v = v*f.p + d[i]
	}
	return v
}

// Add returns a + b.
func (f *Field) Add(a, b int) int {
	f.check(a)
	f.check(b)
	if f.m == 1 {
		return (a + b) % f.p
	}
	v := 0
	pow := 1
	for i := 0; i < f.m; i++ {
		da, db := a%f.p, b%f.p
		a /= f.p
		b /= f.p
		v += ((da + db) % f.p) * pow
		pow *= f.p
	}
	return v
}

// Neg returns -a.
func (f *Field) Neg(a int) int {
	f.check(a)
	if f.m == 1 {
		return (f.p - a) % f.p
	}
	v := 0
	pow := 1
	for i := 0; i < f.m; i++ {
		d := a % f.p
		a /= f.p
		v += ((f.p - d) % f.p) * pow
		pow *= f.p
	}
	return v
}

// Sub returns a - b.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a * b.
func (f *Field) Mul(a, b int) int {
	f.check(a)
	f.check(b)
	if f.m == 1 {
		return (a * b) % f.p
	}
	da := make([]int, f.m)
	db := make([]int, f.m)
	f.digits(a, da)
	f.digits(b, db)
	// Schoolbook product, degree <= 2m-2.
	prod := make([]int, 2*f.m-1)
	for i, x := range da {
		if x == 0 {
			continue
		}
		for j, y := range db {
			prod[i+j] = (prod[i+j] + x*y) % f.p
		}
	}
	f.reduce(prod)
	return f.undigits(prod[:f.m])
}

// reduce reduces the polynomial prod (coefficients lowest-first) modulo the
// field's irreducible polynomial, in place. len(prod) may exceed m.
func (f *Field) reduce(prod []int) {
	for d := len(prod) - 1; d >= f.m; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		// x^d == x^(d-m) * x^m == x^(d-m) * (-(irred[0..m-1]))
		for i := 0; i < f.m; i++ {
			if f.irred[i] == 0 {
				continue
			}
			k := d - f.m + i
			prod[k] = (prod[k] + c*(f.p-f.irred[i])) % f.p
		}
	}
}

// Pow returns a^e for e >= 0 (a^0 == 1, including 0^0 == 1 by convention).
func (f *Field) Pow(a, e int) int {
	if e < 0 {
		panic("gf: negative exponent; use Inv then Pow")
	}
	f.check(a)
	result := 1 % f.q
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a. It panics for a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	// a^(q-2) by Fermat/Lagrange; fields here are tiny.
	return f.Pow(a, f.q-2)
}

// Div returns a / b. It panics for b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Eval evaluates the polynomial with the given coefficients (lowest degree
// first, each a field element) at the point x, by Horner's rule.
func (f *Field) Eval(coeffs []int, x int) int {
	f.check(x)
	v := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = f.Add(f.Mul(v, x), coeffs[i])
	}
	return v
}

// findIrreducible returns the lexicographically smallest monic irreducible
// polynomial of degree m over GF(p), as coefficients lowest-first with the
// leading 1 included (length m+1).
func findIrreducible(p, m int) ([]int, error) {
	// Enumerate the p^m monic candidates by their low-order coefficients.
	total := 1
	for i := 0; i < m; i++ {
		total *= p
	}
	coeffs := make([]int, m+1)
	coeffs[m] = 1
	for enc := 0; enc < total; enc++ {
		e := enc
		for i := 0; i < m; i++ {
			coeffs[i] = e % p
			e /= p
		}
		if polyIrreducible(coeffs, p) {
			return append([]int(nil), coeffs...), nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", m, p)
}

// polyIrreducible reports whether the monic polynomial f (lowest-first,
// leading coefficient 1) is irreducible over GF(p), by trial division by
// every monic polynomial of degree 1..deg(f)/2.
func polyIrreducible(f []int, p int) bool {
	deg := len(f) - 1
	if deg <= 0 {
		return false
	}
	if deg == 1 {
		return true
	}
	if f[0] == 0 {
		return false // divisible by x
	}
	for d := 1; 2*d <= deg; d++ {
		// All monic divisor candidates of degree d.
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		g := make([]int, d+1)
		g[d] = 1
		for enc := 0; enc < count; enc++ {
			e := enc
			for i := 0; i < d; i++ {
				g[i] = e % p
				e /= p
			}
			if polyDivides(g, f, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic g divides f over GF(p).
func polyDivides(g, f []int, p int) bool {
	rem := append([]int(nil), f...)
	dg := len(g) - 1
	for d := len(rem) - 1; d >= dg; d-- {
		c := rem[d]
		if c == 0 {
			continue
		}
		// g is monic, so the quotient coefficient is c.
		for i := 0; i <= dg; i++ {
			k := d - dg + i
			rem[k] = (rem[k] + c*(p-g[i])) % p
		}
	}
	for _, c := range rem[:dg] {
		if c != 0 {
			return false
		}
	}
	return true
}
