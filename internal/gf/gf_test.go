package gf

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true,
		101: true, 7919: true,
		0: false, 1: false, 4: false, 9: false, 15: false, 91: false,
		100: false, 7917: false, -3: false,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := [][2]int{{0, 2}, {2, 2}, {3, 3}, {4, 5}, {90, 97}, {7908, 7919}}
	for _, c := range cases {
		if got := NextPrime(c[0]); got != c[1] {
			t.Errorf("NextPrime(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPrimePower(t *testing.T) {
	type pp struct{ p, m int }
	cases := map[int]pp{
		2: {2, 1}, 3: {3, 1}, 4: {2, 2}, 8: {2, 3}, 9: {3, 2}, 16: {2, 4},
		25: {5, 2}, 27: {3, 3}, 49: {7, 2}, 121: {11, 2}, 128: {2, 7},
	}
	for q, want := range cases {
		p, m, ok := PrimePower(q)
		if !ok || p != want.p || m != want.m {
			t.Errorf("PrimePower(%d) = (%d,%d,%v), want (%d,%d,true)", q, p, m, ok, want.p, want.m)
		}
	}
	for _, q := range []int{0, 1, 6, 10, 12, 15, 24, 100} {
		if _, _, ok := PrimePower(q); ok {
			t.Errorf("PrimePower(%d) should not be a prime power", q)
		}
	}
}

func TestNextPrimePower(t *testing.T) {
	cases := [][2]int{{0, 2}, {5, 5}, {6, 7}, {10, 11}, {26, 27}, {28, 29}, {126, 127}}
	for _, c := range cases {
		if got := NextPrimePower(c[0]); got != c[1] {
			t.Errorf("NextPrimePower(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(4, 1); err == nil {
		t.Error("New(4,1) should fail: 4 not prime")
	}
	if _, err := New(5, 0); err == nil {
		t.Error("New(5,0) should fail: degree 0")
	}
	if _, err := NewOrder(12); err == nil {
		t.Error("NewOrder(12) should fail: not a prime power")
	}
}

// fieldAxioms exhaustively checks the field axioms for a small field.
func fieldAxioms(t *testing.T, f *Field) {
	t.Helper()
	q := f.Q()
	// Closure + commutativity + identities + inverses.
	for a := 0; a < q; a++ {
		if got := f.Add(a, 0); got != a {
			t.Fatalf("GF(%d): %d+0 = %d", q, a, got)
		}
		if got := f.Mul(a, 1%q); got != a {
			t.Fatalf("GF(%d): %d*1 = %d", q, a, got)
		}
		if got := f.Add(a, f.Neg(a)); got != 0 {
			t.Fatalf("GF(%d): %d + (-%d) = %d", q, a, a, got)
		}
		if a != 0 {
			if got := f.Mul(a, f.Inv(a)); got != 1 {
				t.Fatalf("GF(%d): %d * inv = %d", q, a, got)
			}
		}
		for b := 0; b < q; b++ {
			ab := f.Add(a, b)
			if ab < 0 || ab >= q {
				t.Fatalf("GF(%d): add not closed", q)
			}
			if ab != f.Add(b, a) {
				t.Fatalf("GF(%d): add not commutative", q)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("GF(%d): mul not commutative", q)
			}
			if f.Sub(ab, b) != a {
				t.Fatalf("GF(%d): (%d+%d)-%d != %d", q, a, b, b, a)
			}
		}
	}
	// Associativity + distributivity on a sample (full cube for tiny q).
	limit := q
	if q > 16 {
		limit = 16
	}
	for a := 0; a < limit; a++ {
		for b := 0; b < limit; b++ {
			for c := 0; c < limit; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("GF(%d): add not associative", q)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("GF(%d): mul not associative", q)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("GF(%d): not distributive", q)
				}
			}
		}
	}
	// No zero divisors.
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.Mul(a, b) == 0 {
				t.Fatalf("GF(%d): zero divisor %d*%d", q, a, b)
			}
		}
	}
}

func TestFieldAxiomsPrime(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 11, 13} {
		f, err := New(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Q() != p || f.P() != p || f.M() != 1 {
			t.Fatalf("GF(%d) metadata wrong", p)
		}
		fieldAxioms(t, f)
	}
}

func TestFieldAxiomsExtension(t *testing.T) {
	for _, pm := range [][2]int{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {5, 2}, {3, 3}} {
		f, err := New(pm[0], pm[1])
		if err != nil {
			t.Fatal(err)
		}
		fieldAxioms(t, f)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	// The multiplicative group of GF(q) is cyclic of order q-1: every nonzero
	// a satisfies a^(q-1) == 1.
	for _, q := range []int{4, 8, 9, 16, 25, 27} {
		f, err := NewOrder(q)
		if err != nil {
			t.Fatal(err)
		}
		for a := 1; a < q; a++ {
			if got := f.Pow(a, q-1); got != 1 {
				t.Fatalf("GF(%d): %d^(q-1) = %d", q, a, got)
			}
		}
	}
}

func TestIrreducibleIsIrreducible(t *testing.T) {
	f, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ir := f.Irreducible()
	if len(ir) != 5 || ir[4] != 1 {
		t.Fatalf("irreducible poly = %v", ir)
	}
	// No roots in GF(2) (necessary condition; full irreducibility is what
	// findIrreducible guarantees and the axioms above corroborate).
	base, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 2; x++ {
		if base.Eval(ir, x) == 0 {
			t.Fatalf("irreducible poly has root %d", x)
		}
	}
	if New2, _ := New(2, 1); New2.Irreducible() != nil {
		t.Fatal("prime field should have nil irreducible")
	}
}

func TestEvalHorner(t *testing.T) {
	f, err := New(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = 3 + 2x + x^2 over GF(7)
	coeffs := []int{3, 2, 1}
	for x := 0; x < 7; x++ {
		want := (3 + 2*x + x*x) % 7
		if got := f.Eval(coeffs, x); got != want {
			t.Fatalf("Eval at %d = %d, want %d", x, got, want)
		}
	}
	// Empty polynomial is the zero function.
	if got := f.Eval(nil, 3); got != 0 {
		t.Fatalf("Eval(nil) = %d", got)
	}
}

func TestQuickPolynomialAgreementBound(t *testing.T) {
	// Two distinct polynomials of degree <= k over GF(q) agree on at most k
	// points. This is the algebraic fact the OA schedule construction rests
	// on, so it gets its own property test.
	f, err := NewOrder(9)
	if err != nil {
		t.Fatal(err)
	}
	q := f.Q()
	const k = 2
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		a := make([]int, k+1)
		b := make([]int, k+1)
		for i := range a {
			a[i] = r.Intn(q)
			b[i] = r.Intn(q)
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if same {
			return true
		}
		agree := 0
		for x := 0; x < q; x++ {
			if f.Eval(a, x) == f.Eval(b, x) {
				agree++
			}
		}
		return agree <= k
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowEdgeCases(t *testing.T) {
	f, _ := New(5, 1)
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 should be 1 by convention")
	}
	if f.Pow(3, 0) != 1 {
		t.Fatal("a^0 should be 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Fatal("0^5 should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative exponent should panic")
		}
	}()
	f.Pow(2, -1)
}

func TestInvZeroPanics(t *testing.T) {
	f, _ := New(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	f.Inv(0)
}

func TestOutOfRangePanics(t *testing.T) {
	f, _ := New(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range should panic")
		}
	}()
	f.Add(3, 0)
}

func BenchmarkMulGF9(b *testing.B) {
	f, _ := NewOrder(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(i%9, (i+5)%9)
	}
}

func BenchmarkEvalGF49(b *testing.B) {
	f, _ := NewOrder(49)
	coeffs := []int{3, 17, 25, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Eval(coeffs, i%49)
	}
}
