package gf

import "fmt"

// Exp/log tables. The multiplicative group of GF(q) is cyclic; fixing a
// generator g, every nonzero element is g^i for a unique i in [0, q-1).
// Precomputing g^i (exp) and its inverse (log) turns multiplication,
// division and inversion into integer additions modulo q-1 — the classical
// fast path for repeated polynomial evaluation in the schedule
// constructions.

// PrimitiveElement returns a generator of GF(q)'s multiplicative group,
// found by checking each candidate's order against the prime factors of
// q-1 (a is a generator iff a^((q-1)/p) != 1 for every prime p | q-1).
func (f *Field) PrimitiveElement() int {
	order := f.q - 1
	if order == 1 {
		// GF(2): the group is trivial; 1 generates it.
		return 1
	}
	factors := primeFactors(order)
	for a := 2; a < f.q; a++ {
		ok := true
		for _, p := range factors {
			if f.Pow(a, order/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return a
		}
	}
	panic(fmt.Sprintf("gf: no primitive element in GF(%d); field arithmetic broken", f.q))
}

// primeFactors returns the distinct prime factors of n >= 1 in increasing
// order.
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Tables holds exp/log tables over a fixed generator, giving O(1)
// multiplication without polynomial reduction. Build once per field; safe
// for concurrent use.
type Tables struct {
	f   *Field
	gen int
	exp []int // exp[i] = g^i, i in [0, 2(q-1)) doubled to skip a mod
	log []int // log[a] = i with g^i = a; log[0] unused (-1)
}

// NewTables builds exp/log tables for the field.
func NewTables(f *Field) *Tables {
	q := f.Q()
	t := &Tables{
		f:   f,
		gen: f.PrimitiveElement(),
		exp: make([]int, 2*(q-1)),
		log: make([]int, q),
	}
	t.log[0] = -1
	v := 1
	for i := 0; i < q-1; i++ {
		t.exp[i] = v
		t.exp[i+q-1] = v
		t.log[v] = i
		v = f.Mul(v, t.gen)
	}
	if v != 1 {
		panic("gf: generator order mismatch; field arithmetic broken")
	}
	return t
}

// Generator returns the generator the tables are built on.
func (t *Tables) Generator() int { return t.gen }

// Mul returns a*b via table lookups.
func (t *Tables) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return t.exp[t.log[a]+t.log[b]]
}

// Inv returns the multiplicative inverse of a; it panics for a == 0.
func (t *Tables) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return t.exp[(t.f.Q()-1)-t.log[a]]
}

// Div returns a/b; it panics for b == 0.
func (t *Tables) Div(a, b int) int {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return t.exp[t.log[a]-t.log[b]+(t.f.Q()-1)]
}

// Pow returns a^e for e >= 0 via the tables.
func (t *Tables) Pow(a, e int) int {
	if e < 0 {
		panic("gf: negative exponent")
	}
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	return t.exp[(t.log[a]*e)%(t.f.Q()-1)]
}

// Eval evaluates the polynomial with the given coefficients (lowest degree
// first) at x by Horner's rule, using table multiplication.
func (t *Tables) Eval(coeffs []int, x int) int {
	v := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = t.f.Add(t.Mul(v, x), coeffs[i])
	}
	return v
}
