// Package gf implements arithmetic in finite (Galois) fields GF(p) and
// GF(p^m), which underlie the orthogonal-array construction of
// topology-transparent non-sleeping schedules (Chlamtac-Farago 1994,
// Ju-Li 1998): node codewords are polynomials over GF(q) and frame slots are
// (evaluation point, value) pairs.
//
// Elements of GF(p^m) are represented as integers in [0, p^m) whose base-p
// digits are the coefficients of a residue polynomial modulo a fixed monic
// irreducible polynomial of degree m. For m == 1 this degenerates to plain
// modular arithmetic. Field sizes in this repository are small (q is on the
// order of the degree bound times the maximum node degree), so all
// operations compute directly; no log tables are required.
package gf

// IsPrime reports whether n is prime, by trial division. The field sizes
// used here are tiny, so no probabilistic machinery is warranted.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n (and 2 for n < 2).
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}

// PrimePower decomposes q as p^m for prime p and m >= 1. ok is false when q
// is not a prime power (including q < 2).
func PrimePower(q int) (p, m int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			// d is the smallest prime factor; q must be a power of d.
			m := 0
			for q > 1 {
				if q%d != 0 {
					return 0, 0, false
				}
				q /= d
				m++
			}
			return d, m, true
		}
	}
	return q, 1, true // q itself is prime
}

// NextPrimePower returns the smallest prime power >= n (and 2 for n < 2).
func NextPrimePower(n int) int {
	if n < 2 {
		return 2
	}
	for {
		if _, _, ok := PrimePower(n); ok {
			return n
		}
		n++
	}
}
