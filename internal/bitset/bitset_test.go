package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("Min/Max of empty set = %d/%d, want -1/-1", s.Min(), s.Max())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after double Remove = %d, want 7", got)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(10).Add(10)
}

func TestContainsOutOfRangeIsFalse(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("out-of-range Contains should be false")
	}
}

func TestFromSliceElements(t *testing.T) {
	in := []int{5, 3, 99, 0, 64}
	s := FromSlice(100, in)
	sort.Ints(in)
	if got := s.Elements(); !reflect.DeepEqual(got, in) {
		t.Fatalf("Elements = %v, want %v", got, in)
	}
}

func TestMinMax(t *testing.T) {
	s := FromSlice(200, []int{17, 130, 64, 5})
	if s.Min() != 5 {
		t.Fatalf("Min = %d, want 5", s.Min())
	}
	if s.Max() != 130 {
		t.Fatalf("Max = %d, want 130", s.Max())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(128, []int{1, 2, 3, 70})
	b := FromSlice(128, []int{3, 4, 70, 100})

	if got := Union(a, b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 70, 100}) {
		t.Fatalf("Union = %v", got)
	}
	if got := Intersect(a, b).Elements(); !reflect.DeepEqual(got, []int{3, 70}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := Difference(a, b).Elements(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	if a.SubsetOf(b) {
		t.Fatal("SubsetOf = true, want false")
	}
	if !Intersect(a, b).SubsetOf(a) {
		t.Fatal("a∩b should be subset of a")
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Fatalf("DifferenceCount = %d, want 2", got)
	}
}

func TestMixedCapacities(t *testing.T) {
	small := FromSlice(10, []int{1, 2})
	big := FromSlice(1000, []int{2, 3, 999})

	u := Union(small, big)
	if got := u.Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 999}) {
		t.Fatalf("Union mixed caps = %v", got)
	}
	if small.Equal(big) {
		t.Fatal("Equal across caps should be false here")
	}
	s2 := FromSlice(10, []int{2, 3})
	b2 := FromSlice(1000, []int{2, 3})
	if !s2.Equal(b2) || !b2.Equal(s2) {
		t.Fatal("Equal should ignore trailing zero capacity")
	}
	if !s2.SubsetOf(big) {
		t.Fatal("small {2,3} should be subset of big {2,3,999}")
	}
	if big.SubsetOf(s2) {
		t.Fatal("big should not be subset of small")
	}
	if got := big.DifferenceCount(s2); got != 1 {
		t.Fatalf("DifferenceCount = %d, want 1", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice(64, []int{1, 2, 3})
	b := FromSlice(64, []int{3, 4})

	c := a.Clone()
	c.UnionWith(b)
	if got := c.Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("UnionWith = %v", got)
	}
	c = a.Clone()
	c.IntersectWith(b)
	if got := c.Elements(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("IntersectWith = %v", got)
	}
	c = a.Clone()
	c.DifferenceWith(b)
	if got := c.Elements(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("DifferenceWith = %v", got)
	}
	// Original untouched.
	if got := a.Elements(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("a mutated: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(64, []int{1})
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopy(t *testing.T) {
	a := FromSlice(64, []int{1, 5})
	b := New(64)
	b.Copy(a)
	if !b.Equal(a) {
		t.Fatal("Copy mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Copy across capacities should panic")
		}
	}()
	New(10).Copy(a)
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(64, []int{1, 2, 3, 4})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(64, []int{1, 2, 3})
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear did not empty the set")
	}
	if s.Cap() != 64 {
		t.Fatal("Clear changed capacity")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("String empty = %q", got)
	}
}

// randomSet builds a random subset of [0, n) using r.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

// Property-based tests: classic set-algebra laws over random sets.

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| + |a ∩ b| == |a| + |b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		return Union(a, b).Count()+Intersect(a, b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferencePartition(t *testing.T) {
	// a = (a\b) ⊎ (a∩b), disjointly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		d := Difference(a, b)
		i := Intersect(a, b)
		if d.Intersects(i) {
			return false
		}
		return Union(d, i).Equal(a) && d.Count()+i.Count() == a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountsMatchAllocFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		if a.IntersectionCount(b) != Intersect(a, b).Count() {
			return false
		}
		if a.DifferenceCount(b) != Difference(a, b).Count() {
			return false
		}
		if a.Intersects(b) != (Intersect(a, b).Count() > 0) {
			return false
		}
		return a.SubsetOf(b) == Difference(a, b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyThenDifference(t *testing.T) {
	a := FromSlice(130, []int{0, 5, 64, 100, 129})
	b := FromSlice(130, []int{5, 100})
	dst := New(130)
	dst.Add(7) // stale content must be overwritten
	if dst.CopyThenDifference(a, b) {
		t.Fatal("non-empty difference reported empty")
	}
	if !dst.Equal(Difference(a, b)) {
		t.Fatalf("CopyThenDifference = %v, want %v", dst, Difference(a, b))
	}
	if dst.Contains(7) {
		t.Fatal("stale element survived")
	}
	// Shorter operand b: the tail of a must be copied through.
	short := FromSlice(10, []int{0})
	if dst.CopyThenDifference(a, short) {
		t.Fatal("reported empty")
	}
	if !dst.Equal(Difference(a, short)) {
		t.Fatalf("short-operand difference = %v", dst)
	}
	// Empty result is reported.
	if !dst.CopyThenDifference(a, a.Clone()) {
		t.Fatal("a \\ a not reported empty")
	}
	if !dst.Empty() {
		t.Fatal("a \\ a not empty")
	}
}

func TestCopyThenDifferenceCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch accepted")
		}
	}()
	New(10).CopyThenDifference(New(20), New(20))
}

func TestQuickCopyThenDifference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		dst := New(n)
		empty := dst.CopyThenDifference(a, b)
		return dst.Equal(Difference(a, b)) && empty == dst.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferenceIntersectionCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b, m := randomSet(r, n), randomSet(r, n), randomSet(r, n)
		want := Intersect(Difference(a, b), m).Count()
		if a.DifferenceIntersectionCount(b, m) != want {
			return false
		}
		// Shorter operands behave as zero-padded.
		bs := randomSet(r, 1+r.Intn(n))
		ms := randomSet(r, 1+r.Intn(n))
		return a.DifferenceIntersectionCount(bs, ms) == Intersect(Difference(a, bs), ms).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordsViewMatchesElements(t *testing.T) {
	s := FromSlice(130, []int{0, 63, 64, 129})
	w := s.Words()
	if len(w) != 3 {
		t.Fatalf("words = %d, want 3", len(w))
	}
	if w[0] != 1|1<<63 || w[1] != 1 || w[2] != 2 {
		t.Fatalf("words = %#x", w)
	}
}

func TestQuickElementsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randomSet(r, n)
		return FromSlice(n, a.Elements()).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 4096)
	y := randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 4096)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(e int) bool { sum += e; return true })
	}
	_ = sum
}
