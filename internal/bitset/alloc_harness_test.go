//go:build !race

// The race detector instruments memory operations in ways that can
// allocate, so the allocation gates only run in the plain test pass.

package bitset

import "testing"

// Result sinks keep the measured calls from being optimized away without
// allocating inside the measured closures.
var (
	gateSinkBool  bool
	gateSinkCount int
)

// allocGateHarness binds one warm call per symbol listed in the generated
// alloc_gate_test.go. The sets span two backing words so the word loops
// actually iterate, and every receiver is preallocated outside the closure.
func allocGateHarness(t *testing.T, sym string) func() {
	t.Helper()
	a := FromSlice(130, []int{0, 3, 64, 99, 129})
	b := FromSlice(130, []int{3, 64, 70})
	mask := FromSlice(130, []int{0, 64, 99, 129})
	dst := New(130)
	switch sym {
	case "(*repro/internal/bitset.Set).Contains":
		return func() { gateSinkBool = a.Contains(99) }
	case "(*repro/internal/bitset.Set).CopyThenDifference":
		return func() { gateSinkBool = dst.CopyThenDifference(a, b) }
	case "(*repro/internal/bitset.Set).DifferenceIntersectionCount":
		return func() { gateSinkCount = a.DifferenceIntersectionCount(b, mask) }
	case "(*repro/internal/bitset.Set).DifferenceWith":
		return func() { dst.DifferenceWith(b) }
	case "(*repro/internal/bitset.Set).IntersectWith":
		return func() { dst.IntersectWith(b) }
	case "(*repro/internal/bitset.Set).IntersectionCount":
		return func() { gateSinkCount = a.IntersectionCount(b) }
	case "(*repro/internal/bitset.Set).Intersects":
		return func() { gateSinkBool = a.Intersects(b) }
	case "(*repro/internal/bitset.Set).UnionWith":
		return func() { dst.UnionWith(b) }
	}
	t.Fatalf("no alloc-gate harness for %s; add one in alloc_harness_test.go", sym)
	return nil
}
