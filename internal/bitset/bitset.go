// Package bitset provides a dense, fixed-capacity bitset used throughout the
// library to represent node sets (subsets of V_n) and slot sets (subsets of
// a frame [0, L)).
//
// Topology-transparency checks and worst-case throughput computations iterate
// over very large numbers of subsets (on the order of C(n-1, D) per node), so
// the representation is a flat []uint64 with no per-element allocation, and
// all binary operations have in-place variants.
//
// A Set has a fixed capacity chosen at creation; all elements must lie in
// [0, capacity). Operations between sets of different capacities are allowed
// and behave as if the shorter set were padded with zero bits.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset. The zero value is an empty set with capacity 0;
// use New to create a set with room for elements.
type Set struct {
	words []uint64
	cap   int
}

// New returns an empty set with capacity for elements in [0, capacity).
func New(capacity int) *Set {
	if capacity < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", capacity))
	}
	return &Set{
		words: make([]uint64, (capacity+wordBits-1)/wordBits),
		cap:   capacity,
	}
}

// FromSlice returns a set with the given capacity containing every element
// of elems. It panics if an element is out of range.
func FromSlice(capacity int, elems []int) *Set {
	s := New(capacity)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Cap returns the capacity of the set: elements lie in [0, Cap()).
func (s *Set) Cap() int { return s.cap }

func (s *Set) check(i int) {
	if i < 0 || i >= s.cap {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.cap))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set. Out-of-range values are simply
// not contained (no panic), which lets callers probe safely.
//
//ttdc:hotpath membership probe on the simulator slot loops; one shift and one AND
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.cap {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping the capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), cap: s.cap}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o. The sets must have the same
// capacity.
func (s *Set) Copy(o *Set) {
	if s.cap != o.cap {
		panic(fmt.Sprintf("bitset: Copy capacity mismatch %d != %d", s.cap, o.cap))
	}
	copy(s.words, o.words)
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UnionWith adds every element of o to s (s |= o). Elements of o beyond
// s's capacity cause a panic.
//
//ttdc:hotpath in-place set union on the verification walks; word loop over existing backing arrays
func (s *Set) UnionWith(o *Set) {
	if o.cap > s.cap {
		// Permit only if the extra words are zero.
		for i := len(s.words); i < len(o.words); i++ {
			if o.words[i] != 0 {
				panic("bitset: UnionWith operand exceeds receiver capacity")
			}
		}
	}
	for i := 0; i < minInt(len(s.words), len(o.words)); i++ {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith keeps only the elements of s that are also in o (s &= o).
//
//ttdc:hotpath in-place set intersection on the verification walks
func (s *Set) IntersectWith(o *Set) {
	n := minInt(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// DifferenceWith removes every element of o from s (s &^= o).
//
//ttdc:hotpath in-place set difference; the naive kernels pay it D times per subset
func (s *Set) DifferenceWith(o *Set) {
	for i := 0; i < minInt(len(s.words), len(o.words)); i++ {
		s.words[i] &^= o.words[i]
	}
}

// CopyThenDifference overwrites s with a \ b in a single pass (s = a &^ b)
// and reports whether the result is empty. It fuses the Copy+DifferenceWith
// pair on the verification hot path: one level of the subset-enumeration
// tree costs exactly one call, and the emptiness flag (needed for pruning)
// falls out of the same word loop for free. s and a must have the same
// capacity; b is treated as zero-padded beyond its own.
//
//ttdc:hotpath one fused word pass per prefix extension of every verification walk
func (s *Set) CopyThenDifference(a, b *Set) bool {
	if s.cap != a.cap {
		panic(fmt.Sprintf("bitset: CopyThenDifference capacity mismatch %d != %d", s.cap, a.cap))
	}
	any := uint64(0)
	n := minInt(len(a.words), len(b.words))
	for i := 0; i < n; i++ {
		w := a.words[i] &^ b.words[i]
		s.words[i] = w
		any |= w
	}
	for i := n; i < len(a.words); i++ {
		w := a.words[i]
		s.words[i] = w
		any |= w
	}
	return any == 0
}

// Union returns a new set containing the union of s and o, with the larger
// of the two capacities.
func Union(s, o *Set) *Set {
	if o.cap > s.cap {
		s, o = o, s
	}
	r := s.Clone()
	r.UnionWith(o)
	return r
}

// Intersect returns a new set containing the intersection of s and o.
func Intersect(s, o *Set) *Set {
	if o.cap > s.cap {
		s, o = o, s
	}
	r := s.Clone()
	r.IntersectWith(o)
	return r
}

// Difference returns a new set containing s \ o.
func Difference(s, o *Set) *Set {
	r := s.Clone()
	r.DifferenceWith(o)
	return r
}

// Intersects reports whether s and o share at least one element, without
// allocating.
//
//ttdc:hotpath condition-(2) probe of the requirement checks; short-circuiting word scan
func (s *Set) Intersects(o *Set) bool {
	for i := 0; i < minInt(len(s.words), len(o.words)); i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	n := minInt(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	for i := n; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectionCount returns |s ∩ o| without allocating.
//
//ttdc:hotpath popcount reduction on the throughput scans
func (s *Set) IntersectionCount(o *Set) int {
	n := 0
	for i := 0; i < minInt(len(s.words), len(o.words)); i++ {
		n += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return n
}

// DifferenceCount returns |s \ o| without allocating.
func (s *Set) DifferenceCount(o *Set) int {
	n := 0
	m := minInt(len(s.words), len(o.words))
	for i := 0; i < m; i++ {
		n += bits.OnesCount64(s.words[i] &^ o.words[i])
	}
	for i := m; i < len(s.words); i++ {
		n += bits.OnesCount64(s.words[i])
	}
	return n
}

// DifferenceEmpty reports whether s \ o is empty, i.e. s ⊆ o, restricted to
// shared words; it is an alias of SubsetOf kept for call-site readability in
// freeSlots-style expressions.
func (s *Set) DifferenceEmpty(o *Set) bool { return s.SubsetOf(o) }

// DifferenceIntersectionCount returns |(s \ o) ∩ mask| without
// materializing the difference. This is the 𝒯(x, y, S) cardinality of the
// throughput scan — |freeSlots ∩ recv(y)| — evaluated at the last level of
// the enumeration tree in one pass. o and mask are treated as zero-padded
// beyond their own capacities.
//
//ttdc:hotpath the D == 1 throughput cardinality, one fused popcount pass per pair
func (s *Set) DifferenceIntersectionCount(o, mask *Set) int {
	n := 0
	m := minInt(len(s.words), len(mask.words))
	ov := minInt(m, len(o.words))
	for i := 0; i < ov; i++ {
		n += bits.OnesCount64(s.words[i] &^ o.words[i] & mask.words[i])
	}
	for i := ov; i < m; i++ {
		n += bits.OnesCount64(s.words[i] & mask.words[i])
	}
	return n
}

// Words exposes the backing word slice (bit i of word w is element
// 64*w + i). It exists for the verification kernels in internal/core, whose
// innermost leaf loops fuse several set operations into single word scans;
// callers must treat the slice as read-only and must not retain it past the
// set's lifetime. All other callers should use the set operations above.
func (s *Set) Words() []uint64 { return s.words }

// ForEach calls fn for each element of the set in increasing order. If fn
// returns false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
