package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/schedcache"
)

// maxStoredRuns bounds the in-memory campaign table; past it, submissions
// are refused rather than growing without limit.
const maxStoredRuns = 256

// Campaign run states.
const (
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed" // the engine itself errored (not: some jobs failed)
)

// campaignRun is one submitted campaign: the engine executing it (whose
// Stats snapshot is readable while it runs) and, once finished, its
// report.
type campaignRun struct {
	id   string
	name string
	jobs int
	eng  *engine.Engine

	mu     sync.Mutex
	state  string
	report *engine.Report
	err    error
}

// Jobs implements the async campaign endpoints:
//
//	POST /jobs        submit a campaign JSON document; returns its run ID
//	GET  /jobs        list runs in submission order
//	GET  /jobs/{id}   progress snapshot; full results once done
//
// Runs execute in-process on the engine worker pool and share the
// service's schedule cache, so repeated grid points across campaigns hit
// warm schedules. Every accepted run is tracked by a WaitGroup so a
// shutting-down server can Drain: wait for accepted work, cancelling it
// if the drain deadline expires first.
type Jobs struct {
	cache *schedcache.Cache

	// baseCtx parents every run; cancel aborts them all when a drain
	// deadline expires.
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool

	mu    sync.Mutex
	runs  map[string]*campaignRun
	order []string
	seq   int
}

// NewJobs builds the campaign API over cache.
func NewJobs(cache *schedcache.Cache) *Jobs {
	//lint:ignore ctxcancel cancel is retained on the struct: Drain calls it when its deadline expires, aborting in-flight campaign runs
	ctx, cancel := context.WithCancel(context.Background())
	return &Jobs{cache: cache, baseCtx: ctx, cancel: cancel, runs: make(map[string]*campaignRun)}
}

// Drain blocks until every accepted campaign run has finished. If ctx
// expires first, the runs are cancelled (the engine honors cancellation
// promptly), the wait completes, and ctx's error is returned. New
// submissions are refused once draining starts.
func (a *Jobs) Drain(ctx context.Context) error {
	a.draining.Store(true)
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		a.cancel()
		<-done
		return ctx.Err()
	}
}

type submitResponse struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Jobs  int    `json:"jobs"`
	State string `json:"state"`
	Path  string `json:"path"`
}

type statusResponse struct {
	ID         string          `json:"id"`
	Name       string          `json:"name,omitempty"`
	Jobs       int             `json:"jobs"`
	State      string          `json:"state"`
	Stats      engine.Snapshot `json:"stats"`
	Error      string          `json:"error,omitempty"`
	FailedJobs []string        `json:"failedJobs,omitempty"`
	Results    []engine.Record `json:"results,omitempty"`
}

func (a *Jobs) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if a.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("ttdcserve: draining; not accepting campaigns"))
		return
	}
	c, err := engine.DecodeCampaign(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := engine.Jobs(c, a.cache)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	a.mu.Lock()
	if len(a.runs) >= maxStoredRuns {
		a.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("ttdcserve: %d campaigns stored; drain before submitting more", maxStoredRuns))
		return
	}
	a.seq++
	run := &campaignRun{
		id:    fmt.Sprintf("c%d", a.seq),
		name:  c.Name,
		jobs:  len(jobs),
		eng:   engine.New(engine.Options{}),
		state: stateRunning,
	}
	a.runs[run.id] = run
	a.order = append(a.order, run.id)
	a.mu.Unlock()

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		rep, err := run.eng.Run(a.baseCtx, jobs)
		run.mu.Lock()
		defer run.mu.Unlock()
		run.report = rep
		if err != nil {
			run.state = stateFailed
			run.err = err
			return
		}
		run.state = stateDone
	}()

	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: run.id, Name: run.name, Jobs: run.jobs, State: stateRunning, Path: "/jobs/" + run.id,
	})
}

func (a *Jobs) handleGet(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	run, ok := a.runs[r.PathValue("id")]
	a.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("ttdcserve: no campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run.status(true))
}

func (a *Jobs) handleList(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	ids := append([]string(nil), a.order...)
	a.mu.Unlock()
	out := make([]statusResponse, 0, len(ids))
	for _, id := range ids {
		a.mu.Lock()
		run := a.runs[id]
		a.mu.Unlock()
		out = append(out, run.status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

// status snapshots the run; withResults attaches the full record list of a
// finished run (the list endpoint omits it).
func (run *campaignRun) status(withResults bool) statusResponse {
	run.mu.Lock()
	defer run.mu.Unlock()
	resp := statusResponse{
		ID: run.id, Name: run.name, Jobs: run.jobs,
		State: run.state, Stats: run.eng.Stats(),
	}
	if run.err != nil {
		resp.Error = run.err.Error()
	}
	if run.report != nil {
		resp.FailedJobs = run.report.FailedIDs()
		if withResults {
			resp.Results = run.report.Records
		}
	}
	return resp
}

// metrics aggregates every run's counters for /metrics.
func (a *Jobs) metrics() map[string]int64 {
	a.mu.Lock()
	ids := append([]string(nil), a.order...)
	a.mu.Unlock()
	out := map[string]int64{
		"campaigns": int64(len(ids)), "running": 0,
		"jobs_total": 0, "jobs_done": 0, "jobs_failed": 0, "jobs_in_flight": 0,
	}
	for _, id := range ids {
		a.mu.Lock()
		run := a.runs[id]
		a.mu.Unlock()
		run.mu.Lock()
		if run.state == stateRunning {
			out["running"]++
		}
		run.mu.Unlock()
		s := run.eng.Stats()
		out["jobs_total"] += s.Total
		out["jobs_done"] += s.Done
		out["jobs_failed"] += s.Failed
		out["jobs_in_flight"] += s.InFlight
	}
	return out
}
