package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	ttdc "repro"
	"repro/internal/schedcache"
	"repro/internal/shard"
)

// Content types the /schedule endpoint can serve.
const (
	// WireContentType selects the binary frame (internal/wire); request it
	// with Accept: application/x-ttdc-wire or ?format=wire.
	WireContentType = "application/x-ttdc-wire"
	JSONContentType = "application/json"
)

// DefaultMaxAge is the Cache-Control max-age (seconds) when Options
// leaves it zero. Schedules are immutable functions of their key, so a
// long client-side lifetime is safe; revalidation via ETag costs one
// round trip and no body.
const DefaultMaxAge = 3600

// Options configures the HTTP handler.
type Options struct {
	// MaxAge is the Cache-Control max-age in seconds (DefaultMaxAge when
	// 0; negative disables the header).
	MaxAge int
	// Forwarder, when set, shards /schedule across its ring: keys owned
	// by other peers are forwarded one hop.
	Forwarder *shard.Forwarder
	// Warmer, when set, only contributes its snapshot to /metrics; the
	// caller owns running it.
	Warmer *shard.Warmer
}

type errorResponse struct {
	Error string `json:"error"`
}

// latencyBuckets are the upper bounds of the /metrics request-latency
// histogram; a final +Inf bucket catches the rest.
var latencyBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// histogram is a fixed-bucket latency histogram with atomic counters;
// counts[len(latencyBuckets)] is the +Inf bucket.
type histogram struct {
	counts []atomic.Int64
	total  atomic.Int64 // observations
	sumNS  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBuckets) && d > latencyBuckets[i]; i++ {
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

// snapshot renders cumulative ("le") bucket counts, expvar-style.
func (h *histogram) snapshot() map[string]int64 {
	out := make(map[string]int64, len(latencyBuckets)+3)
	var cum int64
	for i, b := range latencyBuckets {
		cum += h.counts[i].Load()
		out["le_"+b.String()] = cum
	}
	cum += h.counts[len(latencyBuckets)].Load()
	out["le_inf"] = cum
	out["count"] = h.total.Load()
	out["sum_ns"] = h.sumNS.Load()
	return out
}

// server holds the handler state over the Service.
type server struct {
	svc         *Service
	opts        Options
	latency     *histogram
	requests    atomic.Int64
	notModified atomic.Int64
	started     time.Time
}

// NewHandler builds the ttdcserve HTTP API over svc:
//
//	GET  /schedule?n=&D=&alphaT=&alphaR=&strategy=  schedule + analysis
//	POST /jobs                                      submit a batch campaign
//	GET  /jobs                                      list submitted campaigns
//	GET  /jobs/{id}                                 campaign progress + results
//	GET  /healthz                                   liveness probe
//	GET  /metrics                                   cache/engine/shard stats
//
// /schedule serves JSON by default and the binary wire frame under
// Accept: application/x-ttdc-wire (or ?format=wire); both carry a strong
// ETag derived from the wire content digest, honor If-None-Match with
// 304, and a Cache-Control lifetime from Options.MaxAge. With a
// Forwarder configured, keys owned by other ring peers are proxied one
// hop; a forwarded request for a key this peer does not own is refused
// with 421 (loop guard).
//
// It is exported (and cmd/ttdcserve is a thin wrapper) so tests and the
// in-process loadgen ring drive it through net/http/httptest without
// binding ports.
func NewHandler(svc *Service, opts Options) http.Handler {
	if opts.MaxAge == 0 {
		opts.MaxAge = DefaultMaxAge
	}
	s := &server{svc: svc, opts: opts, latency: newHistogram(), started: time.Now()}
	jobs := svc.Jobs()
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("POST /jobs", jobs.handleSubmit)
	mux.HandleFunc("GET /jobs", jobs.handleList)
	mux.HandleFunc("GET /jobs/{id}", jobs.handleGet)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", JSONContentType)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// intParam parses query parameter name as an int, with def when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return i, nil
}

// negotiate picks the response representation: the explicit ?format=
// override first, then the Accept header (wire only when the client asks
// for it by exact media type), defaulting to JSON.
func negotiate(r *http.Request) (wantWire bool, err error) {
	switch f := r.URL.Query().Get("format"); f {
	case "wire":
		return true, nil
	case "json":
		return false, nil
	case "":
	default:
		return false, fmt.Errorf("parameter format=%q must be \"wire\" or \"json\"", f)
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := part
		if i := strings.Index(mt, ";"); i >= 0 {
			mt = mt[:i]
		}
		if strings.TrimSpace(mt) == WireContentType {
			return true, nil
		}
	}
	return false, nil
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags (weak prefixes tolerated) or "*".
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimPrefix(strings.TrimSpace(part), "W/")
		if tag == "*" || tag == etag {
			return true
		}
	}
	return false
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latency.observe(time.Since(start)) }()
	s.requests.Add(1)

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	n, err := intParam(r, "n", 0)
	if err == nil && n == 0 {
		err = fmt.Errorf("parameter n is required")
	}
	var d int
	if err == nil {
		d, err = intParam(r, "D", 0)
		if d == 0 && err == nil {
			err = fmt.Errorf("parameter D is required")
		}
	}
	var alphaT, alphaR int
	if err == nil {
		alphaT, err = intParam(r, "alphaT", 0)
	}
	if err == nil {
		alphaR, err = intParam(r, "alphaR", 0)
	}
	var strategy = ttdc.Sequential
	if err == nil {
		strategy, err = schedcache.ParseStrategy(r.URL.Query().Get("strategy"))
	}
	var wantWire bool
	if err == nil {
		wantWire, err = negotiate(r)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := schedcache.Key{N: n, D: d, AlphaT: alphaT, AlphaR: alphaR, Strategy: strategy}
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if f := s.opts.Forwarder; f != nil {
		canon := key.Canonical()
		if owner := f.Owner(canon); owner != f.Self() {
			if r.Header.Get(shard.ForwardedHeader) != "" {
				// Second hop: the forwarding peer believed we own this key,
				// we believe someone else does. Refuse loudly rather than
				// bouncing the request around an inconsistent ring.
				f.RejectLoop()
				writeError(w, http.StatusMisdirectedRequest,
					fmt.Errorf("serve: peer %s does not own %s (ring says %s); rings disagree", f.Self(), canon, owner))
				return
			}
			if err := f.Forward(w, r, owner); err == nil {
				return
			}
			// Owner unreachable or in backoff: nothing was written; serve
			// locally so the tier degrades to per-peer caching.
		}
	}

	a, hit, err := s.svc.Artifact(key)
	if err != nil {
		// The key parsed but no schedule exists for it (infeasible caps,
		// no admissible field, ...): the request is semantically broken.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	// One content digest, one ETag per representation: wire and JSON
	// bodies differ, so their entity tags must too.
	suffix := "-j"
	body, ct := a.JSON, JSONContentType
	if wantWire {
		suffix = "-w"
		body, ct = a.Wire, WireContentType
	}
	etag := `"` + a.Digest + suffix + `"`

	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "Accept")
	if s.opts.MaxAge >= 0 {
		h.Set("Cache-Control", fmt.Sprintf("public, max-age=%d", s.opts.MaxAge))
	}
	state := "miss"
	if hit {
		state = "hit"
	}
	h.Set(shard.CacheHeader, state)
	if f := s.opts.Forwarder; f != nil {
		h.Set(shard.ServedByHeader, f.Self())
	}
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", ct)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(body) //nolint:errcheck // client gone; nothing to do
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Cache().Stats()
	m := map[string]any{
		"cache": map[string]int64{
			"hits":          st.Hits,
			"misses":        st.Misses,
			"inflight":      st.Inflight,
			"evictions":     st.Evictions,
			"constructions": st.Constructions,
			"errors":        st.Errors,
			"entries":       st.Entries,
			"capacity":      int64(s.svc.Cache().Capacity()),
			"bytes":         st.Bytes,
			"evictedBytes":  st.EvictedBytes,
		},
		"artifacts":        s.svc.ArtifactStats(),
		"engine":           s.svc.Jobs().metrics(),
		"requests":         s.requests.Load(),
		"not_modified":     s.notModified.Load(),
		"schedule_latency": s.latency.snapshot(),
		"uptime_seconds":   time.Since(s.started).Seconds(),
	}
	if f := s.opts.Forwarder; f != nil {
		m["shard"] = f.Metrics()
	}
	if wm := s.opts.Warmer; wm != nil {
		m["warmer"] = wm.Snapshot()
	}
	writeJSON(w, http.StatusOK, m)
}
