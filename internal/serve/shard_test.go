package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/schedcache"
	"repro/internal/shard"
)

// swappable lets httptest servers start before their handlers exist —
// the forwarder config needs every peer's URL up front.
type swappable struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappable) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// testRing spins up n in-process peers, each a full serve handler with a
// forwarder over the shared ring. Returns the servers and forwarders in
// peer order; the caller must Close the servers.
func testRing(t *testing.T, n int) ([]*httptest.Server, []*shard.Forwarder) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	swaps := make([]*swappable, n)
	urls := make([]string, n)
	for i := range servers {
		swaps[i] = &swappable{}
		servers[i] = httptest.NewServer(swaps[i])
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	fwds := make([]*shard.Forwarder, n)
	for i := range servers {
		f, err := shard.NewForwarder(shard.Config{Self: urls[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		fwds[i] = f
		swaps[i].set(NewHandler(NewService(32), Options{Forwarder: f}))
	}
	return servers, fwds
}

// ownedBy finds a schedule path whose key the ring assigns to peer
// urls[idx].
func ownedBy(t *testing.T, f *shard.Forwarder, owner string) (string, schedcache.Key) {
	t.Helper()
	for n := 5; n < 200; n++ {
		k := schedcache.Key{N: n, D: 2, AlphaT: 1, AlphaR: 2}
		if f.Owner(k.Canonical()) == owner {
			return "/schedule?" + k.Canonical(), k
		}
	}
	t.Fatalf("no key owned by %s", owner)
	return "", schedcache.Key{}
}

// TestShardForwarding: a request landing on the wrong peer is proxied one
// hop to the owner, and both peers' metrics agree on who served it.
func TestShardForwarding(t *testing.T) {
	servers, fwds := testRing(t, 3)
	owner := servers[1].URL
	path, _ := ownedBy(t, fwds[0], owner)
	if fwds[0].Self() == owner {
		t.Fatal("test needs a non-owner entry peer")
	}

	resp, err := http.Get(servers[0].URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(shard.ServedByHeader); got != owner {
		t.Fatalf("%s = %q, want owner %q", shard.ServedByHeader, got, owner)
	}
	var sr scheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("forwarded body not a schedule response: %v", err)
	}
	m := fwds[0].Metrics()
	var forwards int64
	for _, p := range m.Peers {
		forwards += p.Forwards
	}
	if forwards != 1 || m.LoopRejects != 0 {
		t.Fatalf("entry peer metrics: %+v", m)
	}

	// Hitting the owner directly serves locally: no second hop recorded.
	resp2, err := http.Get(owner + path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck // test
	resp2.Body.Close()              //nolint:errcheck // test
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner-direct status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(shard.CacheHeader); got != "hit" {
		t.Fatalf("owner should have the schedule cached after the forward, got %q", got)
	}
}

// TestShardLoopGuard: a request already marked forwarded, arriving at a
// peer that does not own its key, must be refused with 421 — never
// forwarded a second time.
func TestShardLoopGuard(t *testing.T) {
	_, fwds := testRing(t, 3)
	// A key NOT owned by peer 0.
	var path string
	for n := 5; n < 200; n++ {
		k := schedcache.Key{N: n, D: 2}
		if !fwds[0].Owns(k.Canonical()) {
			path = "/schedule?" + k.Canonical()
			break
		}
	}
	if path == "" {
		t.Fatal("peer 0 owns everything?")
	}
	svc := NewService(8)
	h := NewHandler(svc, Options{Forwarder: fwds[0]})
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set(shard.ForwardedHeader, "http://someone")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("second hop status %d, want 421", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("421 body: %s", rec.Body.Bytes())
	}
	if m := fwds[0].Metrics(); m.LoopRejects != 1 {
		t.Fatalf("loopRejects = %d, want 1", m.LoopRejects)
	}
	// The same forwarded request at the actual owner is served normally.
	ownerIdx := -1
	for i, f := range fwds {
		if f.Owns(pathKey(path)) {
			ownerIdx = i
			break
		}
	}
	if ownerIdx < 0 {
		t.Fatal("no owner in ring")
	}
	h2 := NewHandler(NewService(8), Options{Forwarder: fwds[ownerIdx]})
	req2 := httptest.NewRequest(http.MethodGet, path, nil)
	req2.Header.Set(shard.ForwardedHeader, "http://someone")
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("owner refused a forwarded request: %d %s", rec2.Code, rec2.Body.Bytes())
	}
}

// pathKey recovers the canonical key string from a /schedule?... path.
func pathKey(path string) string {
	return path[len("/schedule?"):]
}

// TestShardLocalFallback: when the owner is unreachable the entry peer
// serves the key itself instead of failing the request.
func TestShardLocalFallback(t *testing.T) {
	// A two-peer ring where the second peer is a dead address.
	dead := "http://127.0.0.1:1"
	self := "http://self.invalid"
	f, err := shard.NewForwarder(shard.Config{Self: self, Peers: []string{self, dead}})
	if err != nil {
		t.Fatal(err)
	}
	path, _ := ownedBy(t, f, dead)
	h := NewHandler(NewService(8), Options{Forwarder: f})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("fallback status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get(shard.ServedByHeader); got != self {
		t.Fatalf("%s = %q, want local %q", shard.ServedByHeader, got, self)
	}
	m := f.Metrics()
	if m.LocalFallbacks != 1 {
		t.Fatalf("localFallbacks = %d, want 1", m.LocalFallbacks)
	}
}

// TestShardMetricsExposed: the /metrics document carries the shard and
// warmer fragments when configured.
func TestShardMetricsExposed(t *testing.T) {
	_, fwds := testRing(t, 2)
	svc := NewService(8)
	wm, err := shard.NewWarmer(shard.WarmerConfig{
		Classes: []shard.Class{{N: 9, D: 2}},
		Build:   svc.Schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(svc, Options{Forwarder: fwds[0], Warmer: wm})
	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m struct {
		Shard  *shard.Metrics        `json:"shard"`
		Warmer *shard.WarmerSnapshot `json:"warmer"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Shard == nil || m.Shard.Self != fwds[0].Self() {
		t.Fatalf("shard fragment missing or wrong: %+v", m.Shard)
	}
	if m.Warmer == nil || m.Warmer.Done {
		t.Fatalf("warmer fragment missing or already done: %+v", m.Warmer)
	}
}
