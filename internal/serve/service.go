// Package serve is the transport-agnostic schedule-serving layer behind
// cmd/ttdcserve. It owns everything between "a validated cache key" and
// "bytes a fleet client downloads": the memoized schedule construction
// (internal/schedcache), the per-key serving artifacts — the binary wire
// frame, the legacy JSON document, and the content digest that becomes
// the HTTP ETag — and the async campaign runs, with a drain path so a
// shutting-down server finishes what it accepted.
//
// The HTTP handler in http.go is one transport over this layer; tests
// (and the in-process loadgen ring) drive the same Service through
// httptest without binding ports.
package serve

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	ttdc "repro"
	"repro/internal/core"
	"repro/internal/schedcache"
	"repro/internal/wire"
)

// scheduleResponse is the JSON /schedule payload: the EncodeSchedule wire
// format embedded verbatim, plus the analysis figures a node (or an
// operator) wants alongside it. The binary representation carries the
// same information as a wire.Frame.
type scheduleResponse struct {
	// Schedule is the exact EncodeSchedule JSON document
	// ({"n":..., "t":[[...]], "r":[[...]]}); DecodeSchedule accepts it.
	Schedule json.RawMessage `json:"schedule"`
	// Request echo.
	N        int    `json:"n"`
	D        int    `json:"d"`
	AlphaT   int    `json:"alphaT"`
	AlphaR   int    `json:"alphaR"`
	Strategy string `json:"strategy"`
	// Analysis.
	L                  int     `json:"l"`
	ActiveFraction     float64 `json:"activeFraction"`
	AvgThroughput      string  `json:"avgThroughput"` // exact Theorem-2 rational
	AvgThroughputFloat float64 `json:"avgThroughputFloat"`
}

// Artifact is everything the serving tier ever sends for one key, built
// once and immutable afterwards: callers must not mutate the byte slices.
type Artifact struct {
	Key   schedcache.Key
	Frame *wire.Frame
	// Wire is the binary frame (wire.Encode output).
	Wire []byte
	// JSON is the scheduleResponse document, newline-terminated exactly
	// as the streaming encoder used to produce it.
	JSON []byte
	// Digest is the 128-bit hex content digest of Wire; the HTTP layer
	// derives the per-representation ETag from it.
	Digest string
}

// ArtifactStats counts the artifact cache's traffic. EvictedBytes is the
// cumulative size of everything evicted, so an operator can tell a cache
// that churns gigabytes through a tight budget from one that evicted a few
// cold entries once.
type ArtifactStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Entries       int64 `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacityBytes"`
	EvictedBytes  int64 `json:"evictedBytes"`
}

// DefaultArtifactBytes bounds the artifact cache when no explicit budget
// is configured. Entry-count capacity alone is no bound at all here: one
// n=4096 schedule's wire+JSON encodings outweigh thousands of small ones,
// so a count-capped cache could quietly hold gigabytes.
const DefaultArtifactBytes int64 = 64 << 20

// artifactCache is a small LRU over encoded artifacts, bounded both by
// entry count and by encoded bytes. Encoding is cheap next to construction
// but not next to a warm hit — a fleet pulling the same few hundred keys
// should not re-serialize a schedule per request.
type artifactCache struct {
	capacity int
	maxBytes int64

	mu      sync.Mutex
	lru     *list.List // element values are *Artifact
	entries map[schedcache.Key]*list.Element
	bytes   int64

	hits, misses, evictions, evictedBytes atomic.Int64
}

func newArtifactCache(capacity int, maxBytes int64) *artifactCache {
	if maxBytes <= 0 {
		maxBytes = DefaultArtifactBytes
	}
	return &artifactCache{
		capacity: capacity,
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[schedcache.Key]*list.Element),
	}
}

//ttdc:hotpath the fully warm serving hit: map probe, LRU repositioning, and atomic counters only
func (c *artifactCache) get(k schedcache.Key) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*Artifact), true
}

func (c *artifactCache) add(a *Artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[a.Key]; ok { // lost a race with another builder
		c.lru.MoveToFront(el)
		return
	}
	c.entries[a.Key] = c.lru.PushFront(a)
	c.bytes += int64(len(a.Wire) + len(a.JSON))
	// Evict from the cold end until both bounds hold. An artifact bigger
	// than the whole byte budget evicts everything including itself: the
	// budget is a hard ceiling, oversized artifacts are just never cached
	// (the caller already holds the one it built).
	for len(c.entries) > c.capacity || c.bytes > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		e := tail.Value.(*Artifact)
		delete(c.entries, e.Key)
		sz := int64(len(e.Wire) + len(e.JSON))
		c.bytes -= sz
		c.evictions.Add(1)
		c.evictedBytes.Add(sz)
	}
}

func (c *artifactCache) stats() ArtifactStats {
	c.mu.Lock()
	entries, bytes := int64(len(c.entries)), c.bytes
	c.mu.Unlock()
	return ArtifactStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
		Bytes:         bytes,
		CapacityBytes: c.maxBytes,
		EvictedBytes:  c.evictedBytes.Load(),
	}
}

// Service is the transport-agnostic serving core: schedule cache,
// artifact cache, and async campaign runs.
type Service struct {
	cache *schedcache.Cache
	arts  *artifactCache
	jobs  *Jobs
}

// NewService builds a service over a fresh schedule cache of the given
// capacity (schedcache.DefaultCapacity when <= 0). The artifact cache
// mirrors the schedule cache's entry capacity and is additionally bounded
// by DefaultArtifactBytes of encoded payload.
func NewService(capacity int) *Service {
	return NewServiceBytes(capacity, 0)
}

// NewServiceBytes is NewService with an explicit artifact-cache byte
// budget (<= 0 means DefaultArtifactBytes).
func NewServiceBytes(capacity int, artifactBytes int64) *Service {
	cache := schedcache.New(capacity)
	return &Service{
		cache: cache,
		arts:  newArtifactCache(cache.Capacity(), artifactBytes),
		jobs:  NewJobs(cache),
	}
}

// Cache exposes the schedule cache (stats, warm-path byte budget).
func (s *Service) Cache() *schedcache.Cache { return s.cache }

// Jobs exposes the async campaign API.
func (s *Service) Jobs() *Jobs { return s.jobs }

// ArtifactStats snapshots the artifact cache counters.
func (s *Service) ArtifactStats() ArtifactStats { return s.arts.stats() }

// Artifact returns the serving artifact for k, building and caching the
// schedule and its encodings on first use. The bool reports whether the
// artifact came from the artifact cache (a fully warm hit).
func (s *Service) Artifact(k schedcache.Key) (*Artifact, bool, error) {
	if a, ok := s.arts.get(k); ok {
		return a, true, nil
	}
	sched, err := s.cache.Get(k)
	if err != nil {
		return nil, false, err
	}
	a, err := buildArtifact(k, sched)
	if err != nil {
		return nil, false, err
	}
	s.arts.add(a)
	return a, false, nil
}

// Schedule is the warmer's entry point: it fills both caches for k and
// returns the schedule.
func (s *Service) Schedule(k schedcache.Key) (*core.Schedule, error) {
	a, _, err := s.Artifact(k)
	if err != nil {
		return nil, err
	}
	return a.Frame.Schedule, nil
}

// buildArtifact encodes both representations and the content digest.
func buildArtifact(k schedcache.Key, sched *core.Schedule) (*Artifact, error) {
	frame := &wire.Frame{
		N: k.N, D: k.D, AlphaT: k.AlphaT, AlphaR: k.AlphaR, Strategy: k.Strategy,
		Schedule:       sched,
		AvgThroughput:  core.AvgThroughput(sched, k.D),
		ActiveFraction: sched.ActiveFraction(),
	}
	wireBytes, err := wire.Encode(frame)
	if err != nil {
		return nil, err
	}
	var sj bytes.Buffer
	if err := ttdc.EncodeSchedule(&sj, sched); err != nil {
		return nil, err
	}
	doc := scheduleResponse{
		Schedule:           json.RawMessage(bytes.TrimSpace(sj.Bytes())),
		N:                  k.N,
		D:                  k.D,
		AlphaT:             k.AlphaT,
		AlphaR:             k.AlphaR,
		Strategy:           schedcache.StrategyName(k.Strategy),
		L:                  sched.L(),
		ActiveFraction:     frame.ActiveFraction,
		AvgThroughput:      frame.AvgThroughput.RatString(),
		AvgThroughputFloat: ttdc.RatFloat(frame.AvgThroughput),
	}
	jsonBytes, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	jsonBytes = append(jsonBytes, '\n')
	return &Artifact{
		Key:    k,
		Frame:  frame,
		Wire:   wireBytes,
		JSON:   jsonBytes,
		Digest: wire.Digest(wireBytes),
	}, nil
}

// Drain waits for every accepted campaign run to finish. If ctx expires
// first, the runs are cancelled, the wait completes (the engine honors
// cancellation promptly), and ctx's error is returned.
func (s *Service) Drain(ctx context.Context) error {
	return s.jobs.Drain(ctx)
}
