package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func postCampaign(t *testing.T, ts *httptest.Server, doc string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s status = %d", id, resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitDone polls the status endpoint until the run leaves stateRunning.
func awaitDone(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State != stateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s still running after 10s", id)
	return statusResponse{}
}

func TestJobsSubmitAndFetch(t *testing.T) {
	ts := httptest.NewServer(NewHandler(NewService(0), Options{}))
	defer ts.Close()

	sub := postCampaign(t, ts,
		`{"name":"api","n":[9,16],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],"workload":"flood","frames":3,"seed":11}`)
	if sub.Jobs != 2 || sub.Path != "/jobs/"+sub.ID {
		t.Fatalf("submit = %+v", sub)
	}
	st := awaitDone(t, ts, sub.ID)
	if st.State != stateDone {
		t.Fatalf("state = %s, error = %s", st.State, st.Error)
	}
	if len(st.Results) != 2 || len(st.FailedJobs) != 0 {
		t.Fatalf("results = %d, failed = %v", len(st.Results), st.FailedJobs)
	}
	var m engine.Metrics
	if err := json.Unmarshal(st.Results[0].Result, &m); err != nil {
		t.Fatal(err)
	}
	if m.Covered == 0 {
		t.Fatalf("flood metrics = %+v", m)
	}
	if st.Stats.Done != 2 {
		t.Fatalf("stats = %+v", st.Stats)
	}
}

func TestJobsRejectsBadCampaign(t *testing.T) {
	ts := httptest.NewServer(NewHandler(NewService(0), Options{}))
	defer ts.Close()
	for _, doc := range []string{`{"n":[9],"d":[2],"workload":"warp"}`, `{`, `{"n":[],"d":[2]}`} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %q: status %d, want 400", doc, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/c999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing campaign: status %d, want 404", resp.StatusCode)
	}
}

func TestJobsListAndMetrics(t *testing.T) {
	ts := httptest.NewServer(NewHandler(NewService(0), Options{}))
	defer ts.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		sub := postCampaign(t, ts, fmt.Sprintf(`{"n":[9],"d":[2],"workload":"analysis","seed":%d}`, i))
		ids = append(ids, sub.ID)
	}
	for _, id := range ids {
		awaitDone(t, ts, id)
	}
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	var list []statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
		if len(st.Results) != 0 {
			t.Errorf("list endpoint leaked %d results", len(st.Results))
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close() //nolint:errcheck // test
	var metrics struct {
		Engine map[string]int64 `json:"engine"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Engine["campaigns"] != 3 || metrics.Engine["jobs_done"] != 3 {
		t.Errorf("engine metrics = %v", metrics.Engine)
	}
}

// TestDrainWaitsForRuns submits a campaign and drains: Drain must block
// until the run finishes and then report it done.
func TestDrainWaitsForRuns(t *testing.T) {
	svc := NewService(0)
	ts := httptest.NewServer(NewHandler(svc, Options{}))
	defer ts.Close()

	sub := postCampaign(t, ts,
		`{"name":"drain","n":[9,16,25],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],"workload":"flood","frames":50,"seed":7}`)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := getStatus(t, ts, sub.ID); st.State == stateRunning {
		t.Fatalf("campaign still running after Drain: %+v", st)
	}
}

// TestDrainCancelledContext drains with an already-cancelled context: the
// in-flight run is aborted rather than awaited, no run is left in
// stateRunning afterwards, and new submissions are refused.
func TestDrainCancelledContext(t *testing.T) {
	svc := NewService(0)
	ts := httptest.NewServer(NewHandler(svc, Options{}))
	defer ts.Close()

	sub := postCampaign(t, ts,
		`{"name":"abort","n":[25],"d":[2,3],"duty":[{"alphaT":2,"alphaR":4},{"alphaT":3,"alphaR":5}],"workload":"flood","frames":5000,"seed":3}`)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Either the run was cancelled (ctx error) or it finished in the gap
	// before Drain observed the cancellation; both leave nothing running.
	if err := svc.Drain(ctx); err != nil && err != context.Canceled {
		t.Fatalf("Drain: %v", err)
	}
	if st := getStatus(t, ts, sub.ID); st.State == stateRunning {
		t.Fatalf("campaign still running after cancelled Drain: %+v", st)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"n":[9],"d":[2],"workload":"analysis"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d, want 503", resp.StatusCode)
	}
}
