package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	ttdc "repro"
	"repro/internal/schedcache"
	"repro/internal/wire"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, body
}

func TestScheduleEndpoint(t *testing.T) {
	svc := NewService(16)
	h := NewHandler(svc, Options{})
	rec, body := get(t, h, "/schedule?n=25&D=2&alphaT=3&alphaR=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if resp.N != 25 || resp.D != 2 || resp.AlphaT != 3 || resp.AlphaR != 5 || resp.Strategy != "sequential" {
		t.Fatalf("request echo wrong: %+v", resp)
	}
	// The embedded schedule must be the DecodeSchedule wire format.
	s, err := ttdc.DecodeSchedule(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatalf("embedded schedule does not decode: %v", err)
	}
	if s.N() != 25 || s.L() != resp.L {
		t.Fatalf("embedded schedule shape n=%d L=%d vs l=%d", s.N(), s.L(), resp.L)
	}
	if !s.IsAlphaSchedule(3, 5) || !ttdc.IsTopologyTransparent(s, 2) {
		t.Fatal("served schedule violates caps or topology transparency")
	}
	if got := s.ActiveFraction(); got != resp.ActiveFraction {
		t.Fatalf("activeFraction %v vs %v", resp.ActiveFraction, got)
	}
	want := ttdc.AvgThroughput(s, 2)
	if resp.AvgThroughput != want.RatString() {
		t.Fatalf("avgThroughput %q, want %q", resp.AvgThroughput, want.RatString())
	}
	if resp.AvgThroughputFloat != ttdc.RatFloat(want) {
		t.Fatalf("avgThroughputFloat %v, want %v", resp.AvgThroughputFloat, ttdc.RatFloat(want))
	}
	if st := svc.Cache().Stats(); st.Constructions != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after one request: %+v", st)
	}
	// Second identical request: a fully warm artifact hit — the schedule
	// cache is not even consulted.
	rec2, _ := get(t, h, "/schedule?n=25&D=2&alphaT=3&alphaR=5")
	if rec2.Code != http.StatusOK {
		t.Fatalf("repeat status %d", rec2.Code)
	}
	if got := rec2.Header().Get("X-Ttdc-Cache"); got != "hit" {
		t.Fatalf("repeat X-Ttdc-Cache = %q, want hit", got)
	}
	if st := svc.Cache().Stats(); st.Constructions != 1 {
		t.Fatalf("cache stats after repeat: %+v", st)
	}
	if as := svc.ArtifactStats(); as.Hits != 1 || as.Misses != 1 || as.Entries != 1 {
		t.Fatalf("artifact stats after repeat: %+v", as)
	}
}

func TestScheduleNonSleepingDefault(t *testing.T) {
	h := NewHandler(NewService(4), Options{})
	rec, body := get(t, h, "/schedule?n=9&D=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	s, err := ttdc.DecodeSchedule(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsNonSleeping() {
		t.Fatal("capless request should serve the non-sleeping base schedule")
	}
	if resp.ActiveFraction != 1 {
		t.Fatalf("non-sleeping activeFraction = %v", resp.ActiveFraction)
	}
}

func TestScheduleBadRequests(t *testing.T) {
	h := NewHandler(NewService(4), Options{})
	cases := []struct {
		path string
		code int
	}{
		{"/schedule", http.StatusBadRequest},                                    // n missing
		{"/schedule?n=25", http.StatusBadRequest},                               // D missing
		{"/schedule?n=x&D=2", http.StatusBadRequest},                            // non-integer
		{"/schedule?n=25&D=2&alphaT=3", http.StatusBadRequest},                  // αR missing
		{"/schedule?n=25&D=2&strategy=zigzag", http.StatusBadRequest},           // unknown strategy
		{"/schedule?n=9&D=2&format=yaml", http.StatusBadRequest},                // unknown format
		{"/schedule?n=9&D=2&alphaT=8&alphaR=8", http.StatusUnprocessableEntity}, // infeasible caps
		{"/schedule?n=2&D=9", http.StatusBadRequest},                            // D > n-1
		{"/schedule?n=999999999&D=3&alphaT=2&alphaR=4", http.StatusBadRequest},  // n past the serving bound
		{"/schedule?n=65536&D=1000", http.StatusUnprocessableEntity},            // past the build budget
	}
	for _, tc := range cases {
		rec, body := get(t, h, tc.path)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, rec.Code, tc.code, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.path, body)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule?n=9&D=2", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestConcurrentScheduleRequests serves 100 concurrent /schedule requests
// over 4 distinct keys and asserts the construction layer deduplicated
// every burst to exactly one construction per distinct key. Must pass
// under -race.
func TestConcurrentScheduleRequests(t *testing.T) {
	svc := NewService(16)
	h := NewHandler(svc, Options{})
	paths := []string{
		"/schedule?n=25&D=2&alphaT=3&alphaR=5",
		"/schedule?n=25&D=2&alphaT=3&alphaR=5&strategy=balanced",
		"/schedule?n=16&D=2&alphaT=2&alphaR=4",
		"/schedule?n=9&D=2",
	}
	const requests = 100
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	done.Add(requests)
	for i := 0; i < requests; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil))
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d", i, rec.Code)
			}
		}(i)
	}
	start.Done()
	done.Wait()
	st := svc.Cache().Stats()
	if want := int64(len(paths)); st.Constructions != want {
		t.Fatalf("constructions = %d, want %d (one per distinct key); stats %+v", st.Constructions, want, st)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d", st.Inflight)
	}
	as := svc.ArtifactStats()
	if as.Hits+as.Misses != requests {
		t.Fatalf("artifact hits %d + misses %d != %d requests", as.Hits, as.Misses, requests)
	}
	if as.Entries != int64(len(paths)) {
		t.Fatalf("artifact entries = %d, want %d", as.Entries, len(paths))
	}
}

// TestConditionalRequests drives the ETag / If-None-Match / Cache-Control
// flow a fleet client uses to revalidate a schedule for free.
func TestConditionalRequests(t *testing.T) {
	h := NewHandler(NewService(8), Options{})
	rec, body := get(t, h, "/schedule?n=9&D=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	etag := rec.Header().Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `-j"`) {
		t.Fatalf("JSON ETag %q not a quoted -j tag", etag)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != fmt.Sprintf("public, max-age=%d", DefaultMaxAge) {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if got := rec.Header().Get("X-Ttdc-Cache"); got != "miss" {
		t.Fatalf("first X-Ttdc-Cache = %q, want miss", got)
	}

	// Revalidation with the matching tag: 304, no body, tag echoed.
	req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", rec2.Code)
	}
	if rec2.Body.Len() != 0 {
		t.Fatalf("304 carried a %d-byte body", rec2.Body.Len())
	}
	if rec2.Header().Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", rec2.Header().Get("ETag"), etag)
	}

	// A list containing the tag, and the * wildcard, both match.
	for _, inm := range []string{`"nope", ` + etag, "*"} {
		req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
		req.Header.Set("If-None-Match", inm)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, rec.Code)
		}
	}

	// The JSON tag must NOT revalidate the wire representation.
	req = httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2&format=wire", nil)
	req.Header.Set("If-None-Match", etag)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("wire with JSON tag: status %d, want 200", rec3.Code)
	}
	wireTag := rec3.Header().Get("ETag")
	if !strings.HasSuffix(wireTag, `-w"`) {
		t.Fatalf("wire ETag %q not a -w tag", wireTag)
	}
	if strings.TrimSuffix(etag, `-j"`) != strings.TrimSuffix(wireTag, `-w"`) {
		t.Fatalf("representations disagree on content digest: %q vs %q", etag, wireTag)
	}
}

// TestWireNegotiation covers the Accept header and ?format override, and
// pins the wire body byte-identical to a direct internal/wire encoding.
func TestWireNegotiation(t *testing.T) {
	svc := NewService(8)
	h := NewHandler(svc, Options{})

	req := httptest.NewRequest(http.MethodGet, "/schedule?n=25&D=2&alphaT=3&alphaR=5", nil)
	req.Header.Set("Accept", "application/x-ttdc-wire, application/json;q=0.5")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if ct := rec.Header().Get("Content-Type"); ct != WireContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, WireContentType)
	}
	body := rec.Body.Bytes()
	f, err := wire.Decode(body)
	if err != nil {
		t.Fatalf("served wire frame does not decode: %v", err)
	}
	if f.N != 25 || f.D != 2 || f.AlphaT != 3 || f.AlphaR != 5 {
		t.Fatalf("decoded frame echo: %+v", f)
	}
	a, _, err := svc.Artifact(schedcache.Key{N: f.N, D: f.D, AlphaT: f.AlphaT, AlphaR: f.AlphaR, Strategy: f.Strategy})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, a.Wire) {
		t.Fatal("HTTP wire body differs from the artifact encoding")
	}
	reenc, err := wire.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, reenc) {
		t.Fatal("decode+re-encode of the HTTP body is not byte-identical")
	}
	if got := `"` + wire.Digest(body) + `-w"`; rec.Header().Get("ETag") != got {
		t.Fatalf("wire ETag %q, want digest-derived %q", rec.Header().Get("ETag"), got)
	}

	// ?format=json overrides an Accept asking for wire.
	req2 := httptest.NewRequest(http.MethodGet, "/schedule?n=25&D=2&alphaT=3&alphaR=5&format=json", nil)
	req2.Header.Set("Accept", WireContentType)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if ct := rec2.Header().Get("Content-Type"); rec2.Code != http.StatusOK || ct != JSONContentType {
		t.Fatalf("format=json override: %d %q", rec2.Code, ct)
	}
	// Plain Accept gets JSON.
	rec3, _ := get(t, h, "/schedule?n=25&D=2&alphaT=3&alphaR=5")
	if ct := rec3.Header().Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("default Content-Type = %q", ct)
	}
}

func TestHeadRequest(t *testing.T) {
	h := NewHandler(NewService(4), Options{})
	req := httptest.NewRequest(http.MethodHead, "/schedule?n=9&D=2", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HEAD status %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD carried a %d-byte body", rec.Body.Len())
	}
	if cl := rec.Header().Get("Content-Length"); cl == "" || cl == "0" {
		t.Fatalf("HEAD Content-Length = %q", cl)
	}
	if rec.Header().Get("ETag") == "" {
		t.Fatal("HEAD lost the ETag")
	}
}

func TestMaxAgeOption(t *testing.T) {
	h := NewHandler(NewService(4), Options{MaxAge: 60})
	rec, _ := get(t, h, "/schedule?n=9&D=2")
	if cc := rec.Header().Get("Cache-Control"); cc != "public, max-age=60" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	h = NewHandler(NewService(4), Options{MaxAge: -1})
	rec, _ = get(t, h, "/schedule?n=9&D=2")
	if cc := rec.Header().Get("Cache-Control"); cc != "" {
		t.Fatalf("MaxAge<0 still sent Cache-Control %q", cc)
	}
}

func TestHealthz(t *testing.T) {
	rec, body := get(t, NewHandler(NewService(4), Options{}), "/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", rec.Code, body)
	}
}

func TestMetrics(t *testing.T) {
	svc := NewService(4)
	h := NewHandler(svc, Options{})
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, h, "/schedule?n=9&D=2"); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d", rec.Code)
		}
	}
	get(t, h, "/schedule?n=bogus&D=2") // a 400 also counts as a request

	// One revalidation so the 304 counter is visible.
	req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
	req.Header.Set("If-None-Match", "*")
	h.ServeHTTP(httptest.NewRecorder(), req)

	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m struct {
		Cache       map[string]int64 `json:"cache"`
		Artifacts   ArtifactStats    `json:"artifacts"`
		Requests    int64            `json:"requests"`
		NotModified int64            `json:"not_modified"`
		Latency     map[string]int64 `json:"schedule_latency"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Cache["misses"] != 1 || m.Cache["constructions"] != 1 {
		t.Fatalf("cache metrics: %v", m.Cache)
	}
	if m.Cache["capacity"] != 4 || m.Cache["entries"] != 1 {
		t.Fatalf("cache shape metrics: %v", m.Cache)
	}
	if m.Cache["bytes"] <= 0 {
		t.Fatalf("cache bytes gauge = %d, want > 0", m.Cache["bytes"])
	}
	if m.Artifacts.Misses != 1 || m.Artifacts.Hits != 3 || m.Artifacts.Bytes <= 0 {
		t.Fatalf("artifact metrics: %+v", m.Artifacts)
	}
	if m.Requests != 5 {
		t.Fatalf("requests = %d, want 5", m.Requests)
	}
	if m.NotModified != 1 {
		t.Fatalf("not_modified = %d, want 1", m.NotModified)
	}
	if m.Latency["count"] != 5 || m.Latency["le_inf"] != 5 {
		t.Fatalf("latency histogram: %v", m.Latency)
	}
	// Cumulative buckets must be monotone up to le_inf.
	prev := int64(0)
	for _, b := range latencyBuckets {
		cur := m.Latency["le_"+b.String()]
		if cur < prev {
			t.Fatalf("histogram not cumulative: %v", m.Latency)
		}
		prev = cur
	}
	if m.Latency["le_inf"] < prev {
		t.Fatalf("le_inf below last bucket: %v", m.Latency)
	}
}

func ExampleNewHandler() {
	h := NewHandler(NewService(4), Options{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/schedule?n=25&D=2&alphaT=3&alphaR=5", nil))
	var resp scheduleResponse
	json.Unmarshal(rec.Body.Bytes(), &resp) //nolint:errcheck
	fmt.Println(rec.Code, resp.L, resp.AvgThroughput)
	// Output: 200 200 21/920
}
