package serve

import (
	"testing"

	"repro/internal/schedcache"
)

// TestArtifactCacheByteBudget pins the artifact cache's byte bound: the
// resident encoded bytes never exceed the budget, evictions are counted in
// both entries and bytes, and the budget is visible in the stats (and so
// in /metrics).
func TestArtifactCacheByteBudget(t *testing.T) {
	// Measure one artifact to size the budget relative to real payloads.
	probe := NewService(8)
	a, _, err := probe.Artifact(schedcache.Key{N: 9, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	unit := int64(len(a.Wire) + len(a.JSON))
	if unit == 0 {
		t.Fatal("empty artifact")
	}

	// Room for roughly two n=9 artifacts; the larger classes below must
	// push earlier entries out.
	budget := 2*unit + unit/2
	svc := NewServiceBytes(8, budget)
	keys := []schedcache.Key{{N: 9, D: 2}, {N: 16, D: 2}, {N: 25, D: 2}, {N: 36, D: 2}}
	for _, k := range keys {
		if _, _, err := svc.Artifact(k); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.ArtifactStats()
	if st.CapacityBytes != budget {
		t.Fatalf("CapacityBytes = %d, want %d", st.CapacityBytes, budget)
	}
	if st.Bytes > budget {
		t.Fatalf("resident bytes %d exceed the %d budget", st.Bytes, budget)
	}
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("expected byte-bound evictions, got %+v", st)
	}
	if st.Entries >= int64(len(keys)) {
		t.Fatalf("all %d entries resident under a ~2-entry byte budget: %+v", len(keys), st)
	}

	// An evicted key is rebuilt on demand — a miss, not an error.
	misses := st.Misses
	if _, warm, err := svc.Artifact(keys[0]); err != nil {
		t.Fatal(err)
	} else if warm {
		t.Fatal("evicted artifact reported as a warm hit")
	}
	if got := svc.ArtifactStats().Misses; got != misses+1 {
		t.Fatalf("Misses = %d after rebuilding an evicted key, want %d", got, misses+1)
	}

	// An artifact larger than the whole budget is served but never cached:
	// the ceiling is hard.
	tiny := NewServiceBytes(8, unit-1)
	if _, _, err := tiny.Artifact(schedcache.Key{N: 9, D: 2}); err != nil {
		t.Fatal(err)
	}
	if st := tiny.ArtifactStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized artifact stayed resident: %+v", st)
	}
}
