// Package combin provides the exact combinatorial arithmetic that the
// throughput analysis of topology-transparent schedules relies on: binomial
// coefficients as big integers, exact rationals built from them, and
// iterators over k-subsets.
//
// Every throughput formula in the paper (Theorems 2, 3, 4, 8) is a ratio of
// products of binomial coefficients. Floating point cannot certify the
// paper's "equality holds if and only if" claims, so all analysis-side
// computation is exact.
package combin

import (
	"fmt"
	"math/big"
)

// Binomial returns C(n, k) as a big.Int. By the usual convention it is 0
// when k < 0 or k > n, and C(n, 0) == 1 for n >= 0. Negative n panics:
// the schedules never produce it, so it always indicates a caller bug.
func Binomial(n, k int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("combin: Binomial with negative n = %d", n))
	}
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialRat returns C(n, k) as a big.Rat.
func BinomialRat(n, k int) *big.Rat {
	return new(big.Rat).SetInt(Binomial(n, k))
}

// Rat returns the exact rational a/b. It panics if b == 0.
func Rat(a, b int64) *big.Rat {
	return big.NewRat(a, b)
}

// RatFromInts returns num/den for big.Int inputs. It panics if den == 0.
func RatFromInts(num, den *big.Int) *big.Rat {
	if den.Sign() == 0 {
		panic("combin: zero denominator")
	}
	return new(big.Rat).SetFrac(num, den)
}

// Enumerator holds the reusable scratch of the subset iterators. The
// package-level Combinations and CombinationsOf allocate their index
// buffers on every call, which the exhaustive verifiers in internal/core
// pay millions of times; an Enumerator amortizes that to zero steady-state
// allocations. The zero value is ready to use; an Enumerator is not safe
// for concurrent use, and its methods must not be re-entered from their own
// callbacks.
type Enumerator struct {
	idx []int // combination indices / walk prefix, grown on demand
	buf []int // universe-mapped subset for CombinationsOf
}

// NewEnumerator returns an Enumerator. Equivalent to new(Enumerator); it
// exists so call sites read as intent rather than zero-value trivia.
func NewEnumerator() *Enumerator { return new(Enumerator) }

// scratch returns a length-k int slice backed by *store, growing the
// backing array only when k exceeds every previous request.
//
//ttdc:hotpath amortized grow-once scratch behind a cap guard; steady state reslices only
func scratch(store *[]int, k int) []int {
	if cap(*store) < k {
		*store = make([]int, k)
	}
	return (*store)[:k]
}

// Combinations is the reusable-scratch form of the package-level
// Combinations: identical order, callback contract, and return value.
func (e *Enumerator) Combinations(n, k int, fn func(subset []int) bool) int {
	if k < 0 || n < 0 {
		panic(fmt.Sprintf("combin: Combinations(%d, %d)", n, k))
	}
	if k > n {
		return 0
	}
	idx := scratch(&e.idx, k)
	for i := range idx {
		idx[i] = i
	}
	count := 0
	for {
		count++
		if !fn(idx) {
			return count
		}
		// Advance to next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return count
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CombinationsOf is the reusable-scratch form of the package-level
// CombinationsOf.
func (e *Enumerator) CombinationsOf(universe []int, k int, fn func(subset []int) bool) int {
	buf := scratch(&e.buf, k)
	return e.Combinations(len(universe), k, func(pos []int) bool {
		for i, p := range pos {
			buf[i] = universe[p]
		}
		return fn(buf)
	})
}

// WalkControl directs WalkKSubsets at each node of the enumeration tree.
type WalkControl int

const (
	// WalkDescend continues into the node's children (for a leaf: accepts
	// it and moves on to the next subset).
	WalkDescend WalkControl = iota
	// WalkPrune skips the entire subtree below the current node — all
	// C(n-1-pos, k-depth) completions of the current prefix — and resumes
	// with the node's next sibling.
	WalkPrune
	// WalkStop aborts the whole walk immediately.
	WalkStop
)

// WalkKSubsets drives a depth-first walk over the k-subsets of {0..n-1},
// visiting full subsets in exactly the lexicographic order of Combinations.
// Unlike Combinations, the walk exposes every prefix: visit is called once
// per tree node — once for each strictly increasing sequence of elements
// that can still be completed to a k-subset — with the current prefix
// (length 1..k; a prefix of length k is a complete subset). This is the
// shape that lets callers cache per-prefix state (e.g. the running
// free-slot intersection of the topology-transparency checks) and prune
// whole subtrees: extending a prefix costs one visit instead of re-deriving
// k elements per subset.
//
// The prefix slice is reused between calls and must not be retained. The
// return value reports whether the walk ran to completion (false iff some
// visit returned WalkStop). k == 0 has a single empty subset and no
// prefixes, so visit is never called; k > n walks nothing.
//
//ttdc:hotpath drives every prefix-cached verification walk; reuses the enumerator scratch across calls
func (e *Enumerator) WalkKSubsets(n, k int, visit func(prefix []int) WalkControl) bool {
	if k < 0 || n < 0 {
		panic(fmt.Sprintf("combin: WalkKSubsets(%d, %d)", n, k))
	}
	if k == 0 || k > n {
		return true
	}
	prefix := scratch(&e.idx, k)
	return walk(prefix, n, 0, 0, visit)
}

// walk extends prefix[:depth] with every element in [start, n-(k-depth-1))
// — the positions that leave room for the remaining k-depth-1 elements —
// recursing one level per chosen element. It returns false when a visit
// requested WalkStop.
//
//ttdc:hotpath the recursive enumeration spine; per-node cost is one visit call and scalar index math
func walk(prefix []int, n, depth, start int, visit func(prefix []int) WalkControl) bool {
	k := len(prefix)
	for pos := start; pos < n-(k-depth-1); pos++ {
		prefix[depth] = pos
		switch visit(prefix[:depth+1]) {
		case WalkStop:
			return false
		case WalkPrune:
			continue
		}
		if depth+1 < k {
			if !walk(prefix, n, depth+1, pos+1, visit) {
				return false
			}
		}
	}
	return true
}

// Combinations calls fn with each k-subset of {0, ..., n-1} in
// lexicographic order. The slice passed to fn is reused between calls; the
// callback must copy it if it needs to retain it. If fn returns false,
// enumeration stops early. The number of subsets visited is returned.
//
// k == 0 yields a single empty subset. k > n yields nothing. Callers on a
// hot path should prefer an Enumerator, which reuses the index scratch
// across calls.
func Combinations(n, k int, fn func(subset []int) bool) int {
	var e Enumerator
	return e.Combinations(n, k, fn)
}

// CombinationsOf enumerates the k-subsets of the given universe slice, in
// lexicographic order of positions. As with Combinations, the slice passed
// to fn is reused, and hot paths should prefer the Enumerator form.
func CombinationsOf(universe []int, k int, fn func(subset []int) bool) int {
	var e Enumerator
	return e.CombinationsOf(universe, k, fn)
}

// ArgmaxInt returns the x in candidates maximizing f(x), breaking ties in
// favour of the earliest candidate (matching the paper's floor-first tie
// rule for the optimal transmitter count). It panics on an empty slice.
// Values of f are compared exactly as big.Int.
func ArgmaxInt(candidates []int, f func(x int) *big.Int) int {
	if len(candidates) == 0 {
		panic("combin: ArgmaxInt of empty candidate list")
	}
	best := candidates[0]
	bestV := f(best)
	for _, c := range candidates[1:] {
		if v := f(c); v.Cmp(bestV) > 0 {
			best, bestV = c, v
		}
	}
	return best
}

// CeilDiv returns ceil(a / b) for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("combin: CeilDiv with non-positive divisor %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// FloorDiv returns floor(a / b) for positive b and non-negative a.
func FloorDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("combin: FloorDiv with non-positive divisor %d", b))
	}
	if a < 0 {
		panic(fmt.Sprintf("combin: FloorDiv with negative dividend %d", a))
	}
	return a / b
}

// Factorial returns n! as a big.Int; n must be non-negative.
func Factorial(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("combin: Factorial(%d)", n))
	}
	return new(big.Int).MulRange(1, int64(n))
}

// RatFloat returns the float64 value of r (for reporting only; analysis
// comparisons must stay exact).
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
