// Package combin provides the exact combinatorial arithmetic that the
// throughput analysis of topology-transparent schedules relies on: binomial
// coefficients as big integers, exact rationals built from them, and
// iterators over k-subsets.
//
// Every throughput formula in the paper (Theorems 2, 3, 4, 8) is a ratio of
// products of binomial coefficients. Floating point cannot certify the
// paper's "equality holds if and only if" claims, so all analysis-side
// computation is exact.
package combin

import (
	"fmt"
	"math/big"
)

// Binomial returns C(n, k) as a big.Int. By the usual convention it is 0
// when k < 0 or k > n, and C(n, 0) == 1 for n >= 0. Negative n panics:
// the schedules never produce it, so it always indicates a caller bug.
func Binomial(n, k int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("combin: Binomial with negative n = %d", n))
	}
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialRat returns C(n, k) as a big.Rat.
func BinomialRat(n, k int) *big.Rat {
	return new(big.Rat).SetInt(Binomial(n, k))
}

// Rat returns the exact rational a/b. It panics if b == 0.
func Rat(a, b int64) *big.Rat {
	return big.NewRat(a, b)
}

// RatFromInts returns num/den for big.Int inputs. It panics if den == 0.
func RatFromInts(num, den *big.Int) *big.Rat {
	if den.Sign() == 0 {
		panic("combin: zero denominator")
	}
	return new(big.Rat).SetFrac(num, den)
}

// Combinations calls fn with each k-subset of {0, ..., n-1} in
// lexicographic order. The slice passed to fn is reused between calls; the
// callback must copy it if it needs to retain it. If fn returns false,
// enumeration stops early. The number of subsets visited is returned.
//
// k == 0 yields a single empty subset. k > n yields nothing.
func Combinations(n, k int, fn func(subset []int) bool) int {
	if k < 0 || n < 0 {
		panic(fmt.Sprintf("combin: Combinations(%d, %d)", n, k))
	}
	if k > n {
		return 0
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	count := 0
	for {
		count++
		if !fn(idx) {
			return count
		}
		// Advance to next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return count
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CombinationsOf enumerates the k-subsets of the given universe slice, in
// lexicographic order of positions. As with Combinations, the slice passed
// to fn is reused.
func CombinationsOf(universe []int, k int, fn func(subset []int) bool) int {
	buf := make([]int, k)
	return Combinations(len(universe), k, func(pos []int) bool {
		for i, p := range pos {
			buf[i] = universe[p]
		}
		return fn(buf)
	})
}

// ArgmaxInt returns the x in candidates maximizing f(x), breaking ties in
// favour of the earliest candidate (matching the paper's floor-first tie
// rule for the optimal transmitter count). It panics on an empty slice.
// Values of f are compared exactly as big.Int.
func ArgmaxInt(candidates []int, f func(x int) *big.Int) int {
	if len(candidates) == 0 {
		panic("combin: ArgmaxInt of empty candidate list")
	}
	best := candidates[0]
	bestV := f(best)
	for _, c := range candidates[1:] {
		if v := f(c); v.Cmp(bestV) > 0 {
			best, bestV = c, v
		}
	}
	return best
}

// CeilDiv returns ceil(a / b) for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("combin: CeilDiv with non-positive divisor %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// FloorDiv returns floor(a / b) for positive b and non-negative a.
func FloorDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("combin: FloorDiv with non-positive divisor %d", b))
	}
	if a < 0 {
		panic(fmt.Sprintf("combin: FloorDiv with negative dividend %d", a))
	}
	return a / b
}

// Factorial returns n! as a big.Int; n must be non-negative.
func Factorial(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("combin: Factorial(%d)", n))
	}
	return new(big.Int).MulRange(1, int64(n))
}

// RatFloat returns the float64 value of r (for reporting only; analysis
// comparisons must stay exact).
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
