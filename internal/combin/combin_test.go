package combin

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 3, 120},
		{10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {10, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Binomial(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialNegativeNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 0) did not panic")
		}
	}()
	Binomial(-1, 0)
}

func TestQuickPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		k := r.Intn(n + 1)
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80)
		k := 0
		if n > 0 {
			k = r.Intn(n + 1)
		}
		return Binomial(n, k).Cmp(Binomial(n, n-k)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialRowSum(t *testing.T) {
	// sum_k C(n,k) == 2^n
	for n := 0; n <= 20; n++ {
		sum := new(big.Int)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Binomial(n, k))
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if sum.Cmp(want) != 0 {
			t.Fatalf("row %d sum = %v, want %v", n, sum, want)
		}
	}
}

func TestCombinationsCount(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n+1; k++ {
			got := 0
			Combinations(n, k, func([]int) bool { got++; return true })
			want := int(Binomial(n, k).Int64())
			if got != want {
				t.Fatalf("Combinations(%d,%d) yielded %d subsets, want %d", n, k, got, want)
			}
		}
	}
}

func TestCombinationsOrderAndValidity(t *testing.T) {
	var all [][]int
	Combinations(5, 3, func(s []int) bool {
		cp := append([]int(nil), s...)
		all = append(all, cp)
		return true
	})
	if len(all) != 10 {
		t.Fatalf("got %d subsets, want 10", len(all))
	}
	if got := all[0]; got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("first subset = %v", got)
	}
	if got := all[9]; got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("last subset = %v", got)
	}
	seen := map[[3]int]bool{}
	for _, s := range all {
		// strictly increasing, in range
		if !(0 <= s[0] && s[0] < s[1] && s[1] < s[2] && s[2] < 5) {
			t.Fatalf("invalid subset %v", s)
		}
		var key [3]int
		copy(key[:], s)
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	n := 0
	visited := Combinations(10, 2, func([]int) bool {
		n++
		return n < 3
	})
	if n != 3 || visited != 3 {
		t.Fatalf("early stop visited %d (returned %d), want 3", n, visited)
	}
}

func TestCombinationsEmptySubset(t *testing.T) {
	count := 0
	Combinations(4, 0, func(s []int) bool {
		if len(s) != 0 {
			t.Fatalf("empty-subset call got %v", s)
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("k=0 visited %d subsets, want 1", count)
	}
}

func TestCombinationsOf(t *testing.T) {
	var got [][]int
	CombinationsOf([]int{10, 20, 30}, 2, func(s []int) bool {
		got = append(got, append([]int(nil), s...))
		return true
	})
	want := [][]int{{10, 20}, {10, 30}, {20, 30}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEnumeratorMatchesPackageForms(t *testing.T) {
	e := NewEnumerator()
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n+1; k++ {
			var want, got [][]int
			Combinations(n, k, func(s []int) bool {
				want = append(want, append([]int(nil), s...))
				return true
			})
			e.Combinations(n, k, func(s []int) bool {
				got = append(got, append([]int(nil), s...))
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): %d subsets, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if !equalInts(got[i], want[i]) {
					t.Fatalf("(%d,%d) subset %d = %v, want %v", n, k, i, got[i], want[i])
				}
			}
		}
	}
	// The universe-mapped form, reusing the same enumerator with a larger k
	// than some previous call (scratch must regrow correctly).
	var got [][]int
	e.CombinationsOf([]int{7, 8, 9, 10}, 3, func(s []int) bool {
		got = append(got, append([]int(nil), s...))
		return true
	})
	if len(got) != 4 || !equalInts(got[0], []int{7, 8, 9}) || !equalInts(got[3], []int{8, 9, 10}) {
		t.Fatalf("CombinationsOf = %v", got)
	}
}

func TestEnumeratorEarlyStopCount(t *testing.T) {
	e := NewEnumerator()
	n := 0
	visited := e.Combinations(10, 2, func([]int) bool {
		n++
		return n < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d, want 3", visited)
	}
}

// walkLeaves collects the complete subsets a WalkKSubsets visit sequence
// produces, asserting prefixes arrive in parent-before-child order.
func walkLeaves(t *testing.T, e *Enumerator, n, k int) [][]int {
	t.Helper()
	var leaves [][]int
	var last []int
	e.WalkKSubsets(n, k, func(prefix []int) WalkControl {
		if len(prefix) == 0 || len(prefix) > k {
			t.Fatalf("prefix length %d outside [1,%d]", len(prefix), k)
		}
		for i := 1; i < len(prefix); i++ {
			if prefix[i-1] >= prefix[i] {
				t.Fatalf("non-increasing prefix %v", prefix)
			}
		}
		// Every non-root prefix must extend the previously seen node's
		// prefix chain (DFS order).
		if len(prefix) > 1 && (last == nil || !equalInts(prefix[:len(prefix)-1], last[:len(prefix)-1])) {
			t.Fatalf("prefix %v does not extend walk position %v", prefix, last)
		}
		last = append(last[:0], prefix...)
		if len(prefix) == k {
			leaves = append(leaves, append([]int(nil), prefix...))
		}
		return WalkDescend
	})
	return leaves
}

func TestWalkKSubsetsMatchesCombinations(t *testing.T) {
	e := NewEnumerator()
	for n := 0; n <= 8; n++ {
		for k := 1; k <= n+1; k++ {
			var want [][]int
			Combinations(n, k, func(s []int) bool {
				want = append(want, append([]int(nil), s...))
				return true
			})
			got := walkLeaves(t, e, n, k)
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): %d leaves, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if !equalInts(got[i], want[i]) {
					t.Fatalf("(%d,%d) leaf %d = %v, want %v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWalkKSubsetsPrune(t *testing.T) {
	// Pruning every prefix starting with 0 must drop exactly the C(4,2)
	// leaves {0,_,_} and keep the rest in lexicographic order.
	e := NewEnumerator()
	var leaves [][]int
	e.WalkKSubsets(5, 3, func(prefix []int) WalkControl {
		if len(prefix) == 1 && prefix[0] == 0 {
			return WalkPrune
		}
		if len(prefix) == 3 {
			leaves = append(leaves, append([]int(nil), prefix...))
		}
		return WalkDescend
	})
	want := [][]int{{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}}
	if len(leaves) != len(want) {
		t.Fatalf("leaves = %v, want %v", leaves, want)
	}
	for i := range want {
		if !equalInts(leaves[i], want[i]) {
			t.Fatalf("leaves = %v, want %v", leaves, want)
		}
	}
	// Pruning a leaf is equivalent to accepting it: the sibling scan goes on.
	count := 0
	e.WalkKSubsets(4, 2, func(prefix []int) WalkControl {
		if len(prefix) == 2 {
			count++
			return WalkPrune
		}
		return WalkDescend
	})
	if count != 6 {
		t.Fatalf("leaf prune visited %d leaves, want 6", count)
	}
}

func TestWalkKSubsetsStop(t *testing.T) {
	e := NewEnumerator()
	visits := 0
	done := e.WalkKSubsets(6, 3, func(prefix []int) WalkControl {
		visits++
		if len(prefix) == 2 {
			return WalkStop
		}
		return WalkDescend
	})
	if done {
		t.Fatal("stopped walk reported complete")
	}
	if visits != 2 { // {0}, then {0,1}
		t.Fatalf("visits = %d, want 2", visits)
	}
	if !e.WalkKSubsets(6, 3, func([]int) WalkControl { return WalkDescend }) {
		t.Fatal("complete walk reported stopped")
	}
}

func TestWalkKSubsetsDegenerate(t *testing.T) {
	e := NewEnumerator()
	calls := 0
	if !e.WalkKSubsets(4, 0, func([]int) WalkControl { calls++; return WalkDescend }) {
		t.Fatal("k=0 walk reported stopped")
	}
	if !e.WalkKSubsets(2, 5, func([]int) WalkControl { calls++; return WalkDescend }) {
		t.Fatal("k>n walk reported stopped")
	}
	if calls != 0 {
		t.Fatalf("degenerate walks visited %d nodes, want 0", calls)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestArgmaxInt(t *testing.T) {
	f := func(x int) *big.Int { return big.NewInt(int64(-(x - 3) * (x - 3))) }
	if got := ArgmaxInt([]int{0, 1, 2, 3, 4, 5}, f); got != 3 {
		t.Fatalf("ArgmaxInt = %d, want 3", got)
	}
	// Tie breaks to earliest candidate.
	g := func(x int) *big.Int { return big.NewInt(7) }
	if got := ArgmaxInt([]int{4, 9}, g); got != 4 {
		t.Fatalf("tie-break ArgmaxInt = %d, want 4", got)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	if got := CeilDiv(7, 3); got != 3 {
		t.Fatalf("CeilDiv(7,3) = %d", got)
	}
	if got := CeilDiv(6, 3); got != 2 {
		t.Fatalf("CeilDiv(6,3) = %d", got)
	}
	if got := CeilDiv(0, 3); got != 0 {
		t.Fatalf("CeilDiv(0,3) = %d", got)
	}
	if got := FloorDiv(7, 3); got != 2 {
		t.Fatalf("FloorDiv(7,3) = %d", got)
	}
}

func TestQuickCeilDivIdentity(t *testing.T) {
	// ceil(a/b) == floor((a+b-1)/b), and b*ceil(a/b) >= a > b*(ceil(a/b)-1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 1 + r.Intn(10000)
		b := 1 + r.Intn(100)
		c := CeilDiv(a, b)
		return b*c >= a && b*(c-1) < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("Factorial(%d) = %v, want %d", n, got, w)
		}
	}
	// C(n,k) == n! / (k!(n-k)!)
	n, k := 12, 5
	denom := new(big.Int).Mul(Factorial(k), Factorial(n-k))
	q := new(big.Int).Div(Factorial(n), denom)
	if q.Cmp(Binomial(n, k)) != 0 {
		t.Fatal("factorial identity violated")
	}
}

func TestRatHelpers(t *testing.T) {
	r := Rat(1, 3)
	if r.RatString() != "1/3" {
		t.Fatalf("Rat = %s", r.RatString())
	}
	v := RatFromInts(big.NewInt(10), big.NewInt(4))
	if v.RatString() != "5/2" {
		t.Fatalf("RatFromInts = %s", v.RatString())
	}
	if f := RatFloat(Rat(1, 2)); f != 0.5 {
		t.Fatalf("RatFloat = %v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RatFromInts with zero denominator did not panic")
		}
	}()
	RatFromInts(big.NewInt(1), big.NewInt(0))
}

func BenchmarkCombinations20C5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Combinations(20, 5, func([]int) bool { return true })
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Binomial(500, 250)
	}
}
