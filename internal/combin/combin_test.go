package combin

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 3, 120},
		{10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {10, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Binomial(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialNegativeNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 0) did not panic")
		}
	}()
	Binomial(-1, 0)
}

func TestQuickPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		k := r.Intn(n + 1)
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80)
		k := 0
		if n > 0 {
			k = r.Intn(n + 1)
		}
		return Binomial(n, k).Cmp(Binomial(n, n-k)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialRowSum(t *testing.T) {
	// sum_k C(n,k) == 2^n
	for n := 0; n <= 20; n++ {
		sum := new(big.Int)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Binomial(n, k))
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if sum.Cmp(want) != 0 {
			t.Fatalf("row %d sum = %v, want %v", n, sum, want)
		}
	}
}

func TestCombinationsCount(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n+1; k++ {
			got := 0
			Combinations(n, k, func([]int) bool { got++; return true })
			want := int(Binomial(n, k).Int64())
			if got != want {
				t.Fatalf("Combinations(%d,%d) yielded %d subsets, want %d", n, k, got, want)
			}
		}
	}
}

func TestCombinationsOrderAndValidity(t *testing.T) {
	var all [][]int
	Combinations(5, 3, func(s []int) bool {
		cp := append([]int(nil), s...)
		all = append(all, cp)
		return true
	})
	if len(all) != 10 {
		t.Fatalf("got %d subsets, want 10", len(all))
	}
	if got := all[0]; got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("first subset = %v", got)
	}
	if got := all[9]; got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("last subset = %v", got)
	}
	seen := map[[3]int]bool{}
	for _, s := range all {
		// strictly increasing, in range
		if !(0 <= s[0] && s[0] < s[1] && s[1] < s[2] && s[2] < 5) {
			t.Fatalf("invalid subset %v", s)
		}
		var key [3]int
		copy(key[:], s)
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	n := 0
	visited := Combinations(10, 2, func([]int) bool {
		n++
		return n < 3
	})
	if n != 3 || visited != 3 {
		t.Fatalf("early stop visited %d (returned %d), want 3", n, visited)
	}
}

func TestCombinationsEmptySubset(t *testing.T) {
	count := 0
	Combinations(4, 0, func(s []int) bool {
		if len(s) != 0 {
			t.Fatalf("empty-subset call got %v", s)
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("k=0 visited %d subsets, want 1", count)
	}
}

func TestCombinationsOf(t *testing.T) {
	var got [][]int
	CombinationsOf([]int{10, 20, 30}, 2, func(s []int) bool {
		got = append(got, append([]int(nil), s...))
		return true
	})
	want := [][]int{{10, 20}, {10, 30}, {20, 30}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestArgmaxInt(t *testing.T) {
	f := func(x int) *big.Int { return big.NewInt(int64(-(x - 3) * (x - 3))) }
	if got := ArgmaxInt([]int{0, 1, 2, 3, 4, 5}, f); got != 3 {
		t.Fatalf("ArgmaxInt = %d, want 3", got)
	}
	// Tie breaks to earliest candidate.
	g := func(x int) *big.Int { return big.NewInt(7) }
	if got := ArgmaxInt([]int{4, 9}, g); got != 4 {
		t.Fatalf("tie-break ArgmaxInt = %d, want 4", got)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	if got := CeilDiv(7, 3); got != 3 {
		t.Fatalf("CeilDiv(7,3) = %d", got)
	}
	if got := CeilDiv(6, 3); got != 2 {
		t.Fatalf("CeilDiv(6,3) = %d", got)
	}
	if got := CeilDiv(0, 3); got != 0 {
		t.Fatalf("CeilDiv(0,3) = %d", got)
	}
	if got := FloorDiv(7, 3); got != 2 {
		t.Fatalf("FloorDiv(7,3) = %d", got)
	}
}

func TestQuickCeilDivIdentity(t *testing.T) {
	// ceil(a/b) == floor((a+b-1)/b), and b*ceil(a/b) >= a > b*(ceil(a/b)-1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 1 + r.Intn(10000)
		b := 1 + r.Intn(100)
		c := CeilDiv(a, b)
		return b*c >= a && b*(c-1) < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("Factorial(%d) = %v, want %d", n, got, w)
		}
	}
	// C(n,k) == n! / (k!(n-k)!)
	n, k := 12, 5
	denom := new(big.Int).Mul(Factorial(k), Factorial(n-k))
	q := new(big.Int).Div(Factorial(n), denom)
	if q.Cmp(Binomial(n, k)) != 0 {
		t.Fatal("factorial identity violated")
	}
}

func TestRatHelpers(t *testing.T) {
	r := Rat(1, 3)
	if r.RatString() != "1/3" {
		t.Fatalf("Rat = %s", r.RatString())
	}
	v := RatFromInts(big.NewInt(10), big.NewInt(4))
	if v.RatString() != "5/2" {
		t.Fatalf("RatFromInts = %s", v.RatString())
	}
	if f := RatFloat(Rat(1, 2)); f != 0.5 {
		t.Fatalf("RatFloat = %v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RatFromInts with zero denominator did not panic")
		}
	}()
	RatFromInts(big.NewInt(1), big.NewInt(0))
}

func BenchmarkCombinations20C5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Combinations(20, 5, func([]int) bool { return true })
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Binomial(500, 250)
	}
}
