//go:build !race

// The race detector instruments memory operations in ways that can
// allocate, so the allocation gates only run in the plain test pass.

package combin

import "testing"

// gateSinkWalked keeps the measured walk from being optimized away.
var gateSinkWalked bool

// allocGateHarness binds one warm call per symbol listed in the generated
// alloc_gate_test.go. The visit closure is bound once out here — handing a
// fresh literal to the walker inside the measured closure would itself
// allocate and mask the scratch-reuse guarantee under test.
func allocGateHarness(t *testing.T, sym string) func() {
	t.Helper()
	e := NewEnumerator()
	visit := func(prefix []int) WalkControl { return WalkDescend }
	switch sym {
	case "(*repro/internal/combin.Enumerator).WalkKSubsets":
		return func() { gateSinkWalked = e.WalkKSubsets(9, 3, visit) }
	}
	t.Fatalf("no alloc-gate harness for %s; add one in alloc_harness_test.go", sym)
	return nil
}
