package shard

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/schedcache"
)

// keyOwnedBy scans the duty-point lattice for a canonical key the ring
// assigns to owner.
func keyOwnedBy(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for n := 5; n < 200; n++ {
		for at := 0; at <= 3; at++ {
			k := schedcache.Key{N: n, D: 2, AlphaT: at, AlphaR: at}.Canonical()
			if r.Owner(k) == owner {
				return k
			}
		}
	}
	t.Fatalf("no key found owned by %s", owner)
	return ""
}

func TestForwarderSelfShortCircuit(t *testing.T) {
	f, err := NewForwarder(Config{Self: "http://self", Peers: []string{"http://self", "http://other"}})
	if err != nil {
		t.Fatal(err)
	}
	selfKey := keyOwnedBy(t, f.Ring(), "http://self")
	otherKey := keyOwnedBy(t, f.Ring(), "http://other")
	if !f.Owns(selfKey) || f.Owns(otherKey) {
		t.Fatalf("ownership check wrong: Owns(%s)=%v Owns(%s)=%v", selfKey, f.Owns(selfKey), otherKey, f.Owns(otherKey))
	}
	// Forwarding to yourself is a caller bug, not a network call.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
	if err := f.Forward(rec, req, "http://self"); err == nil {
		t.Fatal("Forward to self did not error")
	}
	if rec.Body.Len() != 0 || rec.Header().Get(ServedByHeader) != "" {
		t.Fatal("failed Forward wrote to the ResponseWriter")
	}
}

func TestForwarderRejectsStranger(t *testing.T) {
	f, err := NewForwarder(Config{Self: "http://self", Peers: []string{"http://self", "http://other"}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
	if err := f.Forward(rec, req, "http://not-in-ring"); err == nil {
		t.Fatal("Forward to a peer outside the ring did not error")
	}
}

func TestForwarderSelfMustBeMember(t *testing.T) {
	if _, err := NewForwarder(Config{Self: "http://ghost", Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Fatal("self outside the ring accepted")
	}
}

// TestForwarderRelaysResponse proxies one hop to a live backend and
// checks status, body, and header relay (including the loop-guard header
// arriving at the owner).
func TestForwarderRelaysResponse(t *testing.T) {
	var sawForwarded string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawForwarded = r.Header.Get(ForwardedHeader)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", `"abc-j"`)
		w.Header().Set("Cache-Control", "public, max-age=60")
		w.Header().Set(CacheHeader, "hit")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck // test backend
	}))
	defer backend.Close()

	f, err := NewForwarder(Config{Self: "http://self", Peers: []string{"http://self", backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
	req.Header.Set("If-None-Match", `"abc-j"`)
	if err := f.Forward(rec, req, backend.URL); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if sawForwarded != "http://self" {
		t.Fatalf("owner saw %s=%q, want the forwarding peer", ForwardedHeader, sawForwarded)
	}
	if rec.Code != http.StatusOK || rec.Body.String() != `{"ok":true}` {
		t.Fatalf("relayed %d %q", rec.Code, rec.Body.String())
	}
	for h, want := range map[string]string{
		"Content-Type":  "application/json",
		"ETag":          `"abc-j"`,
		"Cache-Control": "public, max-age=60",
		CacheHeader:     "hit",
		ServedByHeader:  backend.URL,
	} {
		if got := rec.Header().Get(h); got != want {
			t.Errorf("relayed header %s = %q, want %q", h, got, want)
		}
	}
	m := f.Metrics()
	if len(m.Peers) != 1 || m.Peers[0].Forwards != 1 || m.Peers[0].Failures != 0 {
		t.Fatalf("metrics after success: %+v", m)
	}
}

// TestForwarderDeadPeerBackoff drives a dead owner past the failure
// threshold with a deterministic clock: the forwarder must stop dialing
// (errPeerDown, local fallback) until the backoff expires, then try the
// network again.
func TestForwarderDeadPeerBackoff(t *testing.T) {
	now := time.Unix(1000, 0)
	dead := "http://127.0.0.1:1" // reserved port: immediate connection refused
	f, err := NewForwarder(Config{
		Self:          "http://self",
		Peers:         []string{"http://self", dead},
		Timeout:       500 * time.Millisecond,
		FailThreshold: 3,
		Backoff:       10 * time.Second,
		now:           func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd := func() error {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil)
		return f.Forward(rec, req, dead)
	}
	for i := 0; i < 3; i++ {
		if err := fwd(); err == nil || err == errPeerDown {
			t.Fatalf("attempt %d: err = %v, want transport error", i, err)
		}
	}
	// Threshold reached: the next attempts short-circuit without dialing.
	for i := 0; i < 2; i++ {
		if err := fwd(); err != errPeerDown {
			t.Fatalf("in backoff: err = %v, want errPeerDown", err)
		}
	}
	m := f.Metrics()
	if m.Peers[0].Failures != 3 {
		t.Fatalf("failures = %d, want 3 (backoff attempts must not dial)", m.Peers[0].Failures)
	}
	if !m.Peers[0].InBackoff {
		t.Fatal("metrics do not show the peer in backoff")
	}
	if m.LocalFallbacks != 5 {
		t.Fatalf("localFallbacks = %d, want 5 (3 dial failures + 2 short-circuits)", m.LocalFallbacks)
	}
	// Past the backoff deadline the forwarder dials again.
	now = now.Add(11 * time.Second)
	if err := fwd(); err == nil || err == errPeerDown {
		t.Fatalf("after backoff: err = %v, want a fresh transport error", err)
	}
	if m := f.Metrics(); m.Peers[0].Failures != 4 {
		t.Fatalf("failures after backoff expiry = %d, want 4", m.Peers[0].Failures)
	}
}

// TestForwarderServerErrorCountsAsFailure: a 5xx from the owner is
// relayed to the client but still counts against the owner's health.
func TestForwarderServerErrorCountsAsFailure(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer backend.Close()
	f, err := NewForwarder(Config{Self: "http://self", Peers: []string{"http://self", backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	if err := f.Forward(rec, httptest.NewRequest(http.MethodGet, "/schedule?n=9&D=2", nil), backend.URL); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("relayed status %d, want 500", rec.Code)
	}
	if m := f.Metrics(); m.Peers[0].Failures != 1 || m.Peers[0].Forwards != 0 {
		t.Fatalf("metrics after 5xx: %+v", m)
	}
}
