package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/schedcache"
)

// Class is one (n, D) network class whose duty-point lattice the warmer
// precomputes.
type Class struct {
	N int `json:"n"`
	D int `json:"d"`
}

// Warmer defaults.
const (
	DefaultWarmConcurrency = 2
	// DefaultCellBudget bounds the total predicted n×L footprint one
	// warm pass may build (Theorem 7 closed form, summed over points):
	// 2^24 cells is a few hundred MB of bitsets at the densities the
	// serving bound allows, well below a cache that will also take live
	// traffic.
	DefaultCellBudget = int64(1) << 24
)

// WarmerConfig configures a warm pass.
type WarmerConfig struct {
	// Classes are the (n, D) classes to walk.
	Classes []Class
	// MaxAlphaT / MaxAlphaR clip the duty-point lattice per class; 0
	// means no clip beyond the structural αT + αR <= n.
	MaxAlphaT, MaxAlphaR int
	// Strategies are the division strategies to warm per duty point
	// (default: Sequential only).
	Strategies []core.DivisionStrategy
	// Concurrency bounds simultaneous constructions
	// (DefaultWarmConcurrency if 0).
	Concurrency int
	// CellBudget bounds the summed predicted n×L footprint
	// (DefaultCellBudget if 0; negative means unlimited).
	CellBudget int64
	// ByteBudget, when positive, stops the pass once Stats reports the
	// cache's resident bytes at or past it — the warmer must not evict
	// its way through a cache that live traffic is using.
	ByteBudget int64

	// Build constructs (and caches) one key, returning the schedule.
	// Typically serve.Service.Schedule's warm entry point.
	Build func(k schedcache.Key) (*core.Schedule, error)
	// Owns filters the lattice to this peer's keys (nil warms all —
	// the single-process deployment).
	Owns func(k schedcache.Key) bool
	// Stats feeds the byte budget (required when ByteBudget > 0).
	Stats func() schedcache.Stats
}

// WarmerSnapshot is the warmer's /metrics fragment. Planned counts every
// lattice point considered; each is then warmed, skipped (not owned, over
// a budget, or infeasible by closed form), or failed.
type WarmerSnapshot struct {
	Done             bool  `json:"done"`
	Classes          int   `json:"classes"`
	Planned          int64 `json:"planned"`
	Warmed           int64 `json:"warmed"`
	Failed           int64 `json:"failed"`
	SkippedOwnership int64 `json:"skippedOwnership"`
	SkippedBudget    int64 `json:"skippedBudget"`
	StoppedByBytes   bool  `json:"stoppedByBytes"`
	CellsPlanned     int64 `json:"cellsPlanned"`
	CellsWarmed      int64 `json:"cellsWarmed"`
}

// Warmer walks the reachable duty-point lattice of its configured classes
// at bounded concurrency, precomputing every owned key whose predicted
// footprint fits the budgets. Safe for one Run at a time; Snapshot may be
// called concurrently from the metrics path.
type Warmer struct {
	cfg WarmerConfig

	planned, warmed, failed         atomic.Int64
	skippedOwnership, skippedBudget atomic.Int64
	cellsPlanned, cellsWarmed       atomic.Int64
	done, stoppedByBytes            atomic.Bool
}

// NewWarmer validates cfg and applies defaults.
func NewWarmer(cfg WarmerConfig) (*Warmer, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("shard: warmer needs a Build function")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("shard: warmer needs at least one (n, D) class")
	}
	for _, c := range cfg.Classes {
		if err := (schedcache.Key{N: c.N, D: c.D}).Validate(); err != nil {
			return nil, fmt.Errorf("shard: warm class (%d, %d): %w", c.N, c.D, err)
		}
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultWarmConcurrency
	}
	if cfg.CellBudget == 0 {
		cfg.CellBudget = DefaultCellBudget
	}
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = []core.DivisionStrategy{core.Sequential}
	}
	if cfg.ByteBudget > 0 && cfg.Stats == nil {
		return nil, fmt.Errorf("shard: ByteBudget needs a Stats function")
	}
	return &Warmer{cfg: cfg}, nil
}

// Run walks the lattice until done, the context is cancelled, or the byte
// budget trips. It returns the context error on cancellation, nil
// otherwise (individual point failures are counted, not fatal).
func (w *Warmer) Run(ctx context.Context) error {
	defer w.done.Store(true)
	sem := make(chan struct{}, w.cfg.Concurrency)
	var wg sync.WaitGroup
	defer wg.Wait()

	var cellsCommitted int64 // owner-goroutine only; snapshot via cellsPlanned
	for _, class := range w.cfg.Classes {
		base, err := w.warmBase(class)
		if err != nil {
			// The whole class is unreachable (no admissible field, over
			// the build budget, ...): count the failed base and move on.
			w.failed.Add(1)
			continue
		}
		maxT, maxR := w.cfg.MaxAlphaT, w.cfg.MaxAlphaR
		if maxT <= 0 || maxT > class.N {
			maxT = class.N
		}
		if maxR <= 0 || maxR > class.N {
			maxR = class.N
		}
		for alphaT := 1; alphaT <= maxT; alphaT++ {
			for alphaR := 1; alphaR <= maxR && alphaT+alphaR <= class.N; alphaR++ {
				for _, strat := range w.cfg.Strategies {
					if err := ctx.Err(); err != nil {
						return err
					}
					if w.overByteBudget() {
						w.stoppedByBytes.Store(true)
						return nil
					}
					k := schedcache.Key{N: class.N, D: class.D, AlphaT: alphaT, AlphaR: alphaR, Strategy: strat}
					w.planned.Add(1)
					if w.cfg.Owns != nil && !w.cfg.Owns(k) {
						w.skippedOwnership.Add(1)
						continue
					}
					cells := schedcache.PredictedCells(k, base)
					if w.cfg.CellBudget > 0 && cellsCommitted+cells > w.cfg.CellBudget {
						w.skippedBudget.Add(1)
						continue
					}
					cellsCommitted += cells
					w.cellsPlanned.Add(cells)
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
						return ctx.Err()
					}
					wg.Add(1)
					go func(k schedcache.Key, cells int64) {
						defer wg.Done()
						defer func() { <-sem }()
						if _, err := w.cfg.Build(k); err != nil {
							w.failed.Add(1)
							return
						}
						w.warmed.Add(1)
						w.cellsWarmed.Add(cells)
					}(k, cells)
				}
			}
		}
	}
	return nil
}

// warmBase builds (and caches) the class's non-sleeping base schedule,
// which doubles as the Theorem 7 input for every duty point's closed-form
// footprint. Ownership does not matter here: the base is needed locally
// for prediction either way, and it is the cheapest point of the class.
func (w *Warmer) warmBase(class Class) (*core.Schedule, error) {
	k := schedcache.Key{N: class.N, D: class.D}
	w.planned.Add(1)
	s, err := w.cfg.Build(k)
	if err != nil {
		return nil, err
	}
	w.warmed.Add(1)
	w.cellsWarmed.Add(int64(class.N) * int64(s.L()))
	w.cellsPlanned.Add(int64(class.N) * int64(s.L()))
	return s, nil
}

func (w *Warmer) overByteBudget() bool {
	return w.cfg.ByteBudget > 0 && w.cfg.Stats().Bytes >= w.cfg.ByteBudget
}

// Snapshot reports progress; safe during Run.
func (w *Warmer) Snapshot() WarmerSnapshot {
	return WarmerSnapshot{
		Done:             w.done.Load(),
		Classes:          len(w.cfg.Classes),
		Planned:          w.planned.Load(),
		Warmed:           w.warmed.Load(),
		Failed:           w.failed.Load(),
		SkippedOwnership: w.skippedOwnership.Load(),
		SkippedBudget:    w.skippedBudget.Load(),
		StoppedByBytes:   w.stoppedByBytes.Load(),
		CellsPlanned:     w.cellsPlanned.Load(),
		CellsWarmed:      w.cellsWarmed.Load(),
	}
}
