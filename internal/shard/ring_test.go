package shard

import (
	"fmt"
	"testing"

	"repro/internal/schedcache"
)

func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://c", "http://a", "http://b"}
	r1, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in any order (plus duplicates) must yield identical
	// ownership — every peer computes the ring from its own config.
	r2, err := NewRing([]string{"http://b", "http://b", "http://a", "http://c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := schedcache.Key{N: 9 + i, D: 2, AlphaT: 1 + i%5, AlphaR: 1 + i%7}.Canonical()
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %s: owners disagree (%s vs %s)", k, r1.Owner(k), r2.Owner(k))
		}
	}
	if got := r1.Peers(); len(got) != 3 || got[0] != "http://a" || got[2] != "http://c" {
		t.Fatalf("Peers() = %v", got)
	}
}

// TestRingOwnershipPinned pins a few concrete assignments: any change to
// the hash function, vnode naming, or tie-break silently reshards every
// deployed fleet, so it must show up in review as a test diff.
func TestRingOwnershipPinned(t *testing.T) {
	r, err := NewRing([]string{"http://peer0", "http://peer1", "http://peer2"}, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	pins := map[string]string{
		"n=9&D=2&alphaT=0&alphaR=0&strategy=sequential":   "http://peer2",
		"n=25&D=2&alphaT=3&alphaR=5&strategy=sequential":  "http://peer0",
		"n=25&D=2&alphaT=3&alphaR=5&strategy=balanced":    "http://peer1",
		"n=121&D=3&alphaT=4&alphaR=9&strategy=sequential": "http://peer1",
	}
	for k, want := range pins {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%s) = %s, want %s", k, got, want)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	const peers = 4
	names := make([]string, peers)
	for i := range names {
		names[i] = fmt.Sprintf("http://peer%d", i)
	}
	r, err := NewRing(names, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	total := 0
	for n := 5; n <= 60; n++ {
		for at := 0; at <= 4; at++ {
			for ar := 0; ar <= 4; ar++ {
				k := schedcache.Key{N: n, D: 2, AlphaT: at, AlphaR: ar}.Canonical()
				counts[r.Owner(k)]++
				total++
			}
		}
	}
	// 128 vnodes/peer won't be perfectly uniform, but no peer should own
	// more than twice or less than a third of its fair share.
	fair := total / peers
	for _, name := range names {
		c := counts[name]
		if c < fair/3 || c > 2*fair {
			t.Fatalf("peer %s owns %d of %d keys (fair share %d): %v", name, c, total, fair, counts)
		}
	}
}

// TestRingMinimalMovement: removing one peer may only move keys that the
// removed peer owned — consistent hashing's defining property.
func TestRingMinimalMovement(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d"}
	rAll, err := NewRing(all, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	rLess, err := NewRing(all[:3], DefaultReplicas) // drop http://d
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		k := schedcache.Key{N: 5 + i, D: 2}.Canonical()
		before, after := rAll.Owner(k), rLess.Owner(k)
		if before == after {
			kept++
			continue
		}
		if before != "http://d" {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before, after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("dropping a peer moved no keys at all")
	}
	if kept == 0 {
		t.Fatal("dropping a peer moved every key")
	}
}

// TestRingOwnershipShares checks the analytic keyspace shares: they sum to
// 1, every peer owns a sane slice, a single-peer ring owns everything, and
// the shares agree with the empirical key distribution they predict.
func TestRingOwnershipShares(t *testing.T) {
	const peers = 4
	names := make([]string, peers)
	for i := range names {
		names[i] = fmt.Sprintf("http://peer%d", i)
	}
	r, err := NewRing(names, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.OwnershipShares()
	if len(shares) != peers {
		t.Fatalf("shares for %d peers, want %d: %v", len(shares), peers, shares)
	}
	sum := 0.0
	for _, name := range names {
		s := shares[name]
		if s < 1.0/(3*peers) || s > 2.0/peers {
			t.Fatalf("peer %s owns share %.4f, outside [1/3, 2]x fair: %v", name, s, shares)
		}
		sum += s
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("shares sum to %.12f, want 1", sum)
	}

	// The analytic shares and the sampled Owner() distribution describe
	// the same ring; with ~14k sampled keys they should agree within a few
	// points of keyspace.
	counts := make(map[string]int)
	total := 0
	for n := 5; n <= 60; n++ {
		for at := 0; at <= 4; at++ {
			for ar := 0; ar <= 4; ar++ {
				k := schedcache.Key{N: n, D: 2, AlphaT: at, AlphaR: ar}.Canonical()
				counts[r.Owner(k)]++
				total++
			}
		}
	}
	for _, name := range names {
		empirical := float64(counts[name]) / float64(total)
		if diff := empirical - shares[name]; diff < -0.05 || diff > 0.05 {
			t.Fatalf("peer %s: empirical share %.4f vs analytic %.4f", name, empirical, shares[name])
		}
	}

	solo, err := NewRing([]string{"http://only"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := solo.OwnershipShares(); s["http://only"] != 1 {
		t.Fatalf("single-vnode ring shares = %v, want 1", s)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 8); err == nil {
		t.Fatal("empty peer name accepted")
	}
}
