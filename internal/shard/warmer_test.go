package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/schedcache"
)

// countingBuild wraps a real schedule cache so warms construct genuine
// schedules while the test observes exactly which keys were built.
func countingBuild(c *schedcache.Cache) (func(schedcache.Key) (*core.Schedule, error), *sync.Map, *atomic.Int64) {
	var keys sync.Map
	var calls atomic.Int64
	return func(k schedcache.Key) (*core.Schedule, error) {
		calls.Add(1)
		keys.Store(k, true)
		return c.Get(k)
	}, &keys, &calls
}

func TestWarmerWalksLattice(t *testing.T) {
	build, keys, _ := countingBuild(schedcache.New(64))
	w, err := NewWarmer(WarmerConfig{
		Classes:   []Class{{N: 9, D: 2}},
		MaxAlphaT: 2, MaxAlphaR: 2,
		Concurrency: 4,
		Build:       build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	// Base + the 2x2 duty lattice: 5 points, all feasible at n=9.
	if snap.Planned != 5 || snap.Warmed != 5 || snap.Failed != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !snap.Done || snap.SkippedOwnership != 0 || snap.SkippedBudget != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.CellsWarmed <= 0 || snap.CellsWarmed != snap.CellsPlanned {
		t.Fatalf("cell accounting: %+v", snap)
	}
	for at := 1; at <= 2; at++ {
		for ar := 1; ar <= 2; ar++ {
			k := schedcache.Key{N: 9, D: 2, AlphaT: at, AlphaR: ar}
			if _, ok := keys.Load(k); !ok {
				t.Errorf("lattice point %+v never built", k)
			}
		}
	}
}

func TestWarmerBuildIsRequired(t *testing.T) {
	if _, err := NewWarmer(WarmerConfig{Classes: []Class{{N: 9, D: 2}}}); err == nil {
		t.Fatal("warmer without Build accepted")
	}
	if _, err := NewWarmer(WarmerConfig{Build: func(schedcache.Key) (*core.Schedule, error) { return nil, nil }}); err == nil {
		t.Fatal("warmer without classes accepted")
	}
	if _, err := NewWarmer(WarmerConfig{
		Build:   func(schedcache.Key) (*core.Schedule, error) { return nil, nil },
		Classes: []Class{{N: 2, D: 9}}, // D > n-1: invalid key
	}); err == nil {
		t.Fatal("invalid class accepted")
	}
	if _, err := NewWarmer(WarmerConfig{
		Build:      func(schedcache.Key) (*core.Schedule, error) { return nil, nil },
		Classes:    []Class{{N: 9, D: 2}},
		ByteBudget: 1, // needs Stats
	}); err == nil {
		t.Fatal("ByteBudget without Stats accepted")
	}
}

func TestWarmerOwnershipFilter(t *testing.T) {
	build, _, _ := countingBuild(schedcache.New(64))
	w, err := NewWarmer(WarmerConfig{
		Classes:   []Class{{N: 9, D: 2}},
		MaxAlphaT: 2, MaxAlphaR: 2,
		Build: build,
		Owns:  func(k schedcache.Key) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	// The base always warms locally (it feeds the Theorem 7 prediction);
	// every duty point is someone else's.
	if snap.Warmed != 1 || snap.SkippedOwnership != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWarmerCellBudget(t *testing.T) {
	build, _, _ := countingBuild(schedcache.New(64))
	w, err := NewWarmer(WarmerConfig{
		Classes:   []Class{{N: 9, D: 2}},
		MaxAlphaT: 2, MaxAlphaR: 2,
		CellBudget: 1, // below any duty point's n*L footprint
		Build:      build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if snap.Warmed != 1 || snap.SkippedBudget != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWarmerByteBudgetStops(t *testing.T) {
	build, _, calls := countingBuild(schedcache.New(64))
	w, err := NewWarmer(WarmerConfig{
		Classes:   []Class{{N: 9, D: 2}},
		MaxAlphaT: 3, MaxAlphaR: 3,
		ByteBudget: 1,
		Stats:      func() schedcache.Stats { return schedcache.Stats{Bytes: 100} },
		Build:      build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if !snap.StoppedByBytes {
		t.Fatalf("byte budget did not trip: %+v", snap)
	}
	// Only the class base was built before the first lattice check.
	if calls.Load() != 1 || snap.Warmed != 1 {
		t.Fatalf("calls = %d, snapshot = %+v", calls.Load(), snap)
	}
}

func TestWarmerContextCancel(t *testing.T) {
	build, _, _ := countingBuild(schedcache.New(64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := NewWarmer(WarmerConfig{
		Classes: []Class{{N: 9, D: 2}},
		Build:   build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(ctx); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if snap := w.Snapshot(); !snap.Done {
		t.Fatal("cancelled run not marked done")
	}
}

// TestWarmerInfeasibleClass: a class with no admissible construction
// counts one failure and does not abort the pass for other classes.
func TestWarmerInfeasibleClass(t *testing.T) {
	build, _, _ := countingBuild(schedcache.New(64))
	w, err := NewWarmer(WarmerConfig{
		Classes:   []Class{{N: 65535, D: 8000}, {N: 9, D: 2}}, // first is past the build budget
		MaxAlphaT: 1, MaxAlphaR: 1,
		Build: build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if snap.Failed != 1 {
		t.Fatalf("failed = %d, want 1: %+v", snap.Failed, snap)
	}
	// The healthy class still warmed: base + (1,1).
	if snap.Warmed != 2 {
		t.Fatalf("warmed = %d, want 2: %+v", snap.Warmed, snap)
	}
}
