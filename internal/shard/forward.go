package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardedHeader marks a request that already crossed one peer hop. The
// owner of a key serves such a request locally; any peer that is NOT the
// owner rejects it with 421 instead of forwarding again, so an
// inconsistent ring configuration can never produce a forwarding loop.
const ForwardedHeader = "X-Ttdc-Forwarded"

// ServedByHeader names the peer whose cache actually answered, for
// operators and the loadgen's forward accounting.
const ServedByHeader = "X-Ttdc-Served-By"

// Forwarder defaults.
const (
	DefaultTimeout       = 2 * time.Second
	DefaultFailThreshold = 3
	DefaultBackoff       = 10 * time.Second
)

// Config configures a Forwarder.
type Config struct {
	// Self is this peer's own base URL as it appears in Peers. Keys whose
	// owner equals Self are served locally.
	Self string
	// Peers is the full ring membership, including Self.
	Peers []string
	// Replicas is the virtual-node count per peer (DefaultReplicas if 0).
	Replicas int
	// Timeout bounds one forwarded request (DefaultTimeout if 0).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that puts a peer
	// into backoff (DefaultFailThreshold if 0).
	FailThreshold int
	// Backoff is how long a peer past the threshold is skipped — its
	// keys are served locally — before forwarding is retried
	// (DefaultBackoff if 0).
	Backoff time.Duration

	// now is injected by tests to step backoff deadlines deterministically.
	now func() time.Time
}

// peerState tracks one remote peer's health under Forwarder.mu.
type peerState struct {
	consecFails int
	failures    int64 // lifetime failures, for metrics
	forwards    int64 // lifetime successful forwards
	downUntil   time.Time
}

// Forwarder owns the routing decision for one peer of the tier: whether a
// key is served locally, and the single-hop proxying (with per-peer
// timeout, failure counting, and backoff) when it is not.
type Forwarder struct {
	ring          *Ring
	self          string
	timeout       time.Duration
	failThreshold int
	backoff       time.Duration
	client        *http.Client
	now           func() time.Time

	mu    sync.Mutex
	peers map[string]*peerState

	loopRejects    atomic.Int64
	localFallbacks atomic.Int64
}

// NewForwarder builds the forwarder for cfg.Self within cfg.Peers.
func NewForwarder(cfg Config) (*Forwarder, error) {
	ring, err := NewRing(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("shard: self %q is not among the ring peers %v", cfg.Self, ring.Peers())
	}
	f := &Forwarder{
		ring:          ring,
		self:          cfg.Self,
		timeout:       cfg.Timeout,
		failThreshold: cfg.FailThreshold,
		backoff:       cfg.Backoff,
		client:        &http.Client{},
		now:           cfg.now,
		peers:         make(map[string]*peerState),
	}
	if f.timeout <= 0 {
		f.timeout = DefaultTimeout
	}
	if f.failThreshold <= 0 {
		f.failThreshold = DefaultFailThreshold
	}
	if f.backoff <= 0 {
		f.backoff = DefaultBackoff
	}
	if f.now == nil {
		f.now = time.Now
	}
	for _, p := range ring.Peers() {
		if p != f.self {
			f.peers[p] = &peerState{}
		}
	}
	return f, nil
}

// Self returns this peer's own name.
func (f *Forwarder) Self() string { return f.self }

// Ring exposes the underlying ring (for warm-path ownership checks).
func (f *Forwarder) Ring() *Ring { return f.ring }

// Owner returns the owning peer of a canonical key.
func (f *Forwarder) Owner(key string) string { return f.ring.Owner(key) }

// Owns reports whether this peer serves the canonical key itself.
func (f *Forwarder) Owns(key string) bool { return f.ring.Owner(key) == f.self }

// RejectLoop records a loop-guard rejection (the HTTP layer answers 421).
func (f *Forwarder) RejectLoop() { f.loopRejects.Add(1) }

// errPeerDown is returned without any network attempt while a peer is in
// backoff; the caller serves locally.
var errPeerDown = fmt.Errorf("shard: peer is in failure backoff")

// Forward proxies r to owner one hop and writes the proxied response to
// w. On any error nothing has been written to w — the caller falls back
// to serving the key locally (and should count it; Metrics already
// records the failure). Responses with 5xx status also count against the
// owner's failure threshold, but are still relayed: the owner answered,
// just unhappily.
func (f *Forwarder) Forward(w http.ResponseWriter, r *http.Request, owner string) error {
	f.mu.Lock()
	st, ok := f.peers[owner]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("shard: %q is not a remote peer", owner)
	}
	if f.now().Before(st.downUntil) {
		f.mu.Unlock()
		f.localFallbacks.Add(1)
		return errPeerDown
	}
	f.mu.Unlock()

	ctx, cancel := context.WithTimeout(r.Context(), f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, owner+r.URL.RequestURI(), nil)
	if err != nil {
		return err
	}
	// Carry only the negotiation and revalidation headers; everything
	// else is hop-local.
	for _, h := range []string{"Accept", "If-None-Match"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, f.self)

	resp, err := f.client.Do(req)
	if err != nil {
		f.recordFailure(owner)
		f.localFallbacks.Add(1)
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // drained below
	if resp.StatusCode >= 500 {
		f.recordFailure(owner)
	} else {
		f.recordSuccess(owner)
	}
	for _, h := range []string{"Content-Type", "ETag", "Cache-Control", CacheHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(ServedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	_, err = io.Copy(w, resp.Body)
	return err
}

// CacheHeader is set by the serving layer to "hit" or "miss" so clients
// (and the loadgen) can attribute latency without scraping /metrics. It
// is declared here because the forwarder relays it across the hop.
const CacheHeader = "X-Ttdc-Cache"

func (f *Forwarder) recordFailure(owner string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.peers[owner]
	st.failures++
	st.consecFails++
	if st.consecFails >= f.failThreshold {
		st.downUntil = f.now().Add(f.backoff)
		st.consecFails = 0
	}
}

func (f *Forwarder) recordSuccess(owner string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.peers[owner]
	st.forwards++
	st.consecFails = 0
	st.downUntil = time.Time{}
}

// PeerMetrics is one remote peer's health snapshot.
type PeerMetrics struct {
	Peer      string `json:"peer"`
	Forwards  int64  `json:"forwards"`
	Failures  int64  `json:"failures"`
	InBackoff bool   `json:"inBackoff"`
}

// Metrics is the forwarder's /metrics fragment. OwnershipShares maps every
// ring peer (self included) to its fraction of the hash keyspace, so
// forward-count skew can be read against the keyspace split that causes it.
type Metrics struct {
	Self            string             `json:"self"`
	Peers           []PeerMetrics      `json:"peers"`
	OwnershipShares map[string]float64 `json:"ownershipShares"`
	LoopRejects     int64              `json:"loopRejects"`
	LocalFallbacks  int64              `json:"localFallbacks"`
}

// Metrics snapshots routing health, peers sorted by name.
func (f *Forwarder) Metrics() Metrics {
	m := Metrics{
		Self:            f.self,
		OwnershipShares: f.ring.OwnershipShares(),
		LoopRejects:     f.loopRejects.Load(),
		LocalFallbacks:  f.localFallbacks.Load(),
	}
	f.mu.Lock()
	now := f.now()
	names := make([]string, 0, len(f.peers))
	for p := range f.peers {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		st := f.peers[p]
		m.Peers = append(m.Peers, PeerMetrics{
			Peer:      p,
			Forwards:  st.forwards,
			Failures:  st.failures,
			InBackoff: now.Before(st.downUntil),
		})
	}
	f.mu.Unlock()
	return m
}
