// Package shard turns N independent ttdcserve processes into one serving
// tier for the (n, D, αT, αR, strategy) keyspace. Schedules are pure
// functions of their key, so any peer can build any schedule — sharding
// is purely a cache-efficiency decision: if every key has one owner, the
// fleet's aggregate cache holds N× more distinct schedules than any
// single LRU, and a warm request never constructs twice anywhere.
//
// Ownership comes from a consistent-hash ring over the peers' base URLs
// (replicated virtual nodes smooth the key distribution, and adding or
// removing one peer moves only ~1/N of the keyspace). Requests for keys a
// peer does not own are forwarded one hop to the owner — never more: the
// forwarded request carries a loop-guard header, and a peer that receives
// a guarded request for a key it does not own answers 421 instead of
// forwarding again, so misconfigured rings degrade loudly rather than
// looping silently. A per-peer failure counter with backoff keeps a dead
// owner from stalling the tier: after enough consecutive failures the
// forwarder serves those keys locally until the backoff expires.
//
// The package also hosts the background warmer, which walks the reachable
// duty-point lattice of configured (n, D) classes and precomputes the
// schedules this peer owns, budgeted by Theorem 7's closed-form frame
// length so warm cost is known before any work is done.
package shard

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer when a Ring is built
// with replicas <= 0. 128 vnodes keep the per-peer keyspace share within
// a few percent of uniform for small fleets.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over peer base URLs. All
// methods are safe for concurrent use.
type Ring struct {
	peers  []string // sorted unique peer names
	hashes []uint64 // sorted virtual-node positions
	owners []string // owners[i] owns arc ending at hashes[i]
}

// hash64 is the ring's position function: FNV-1a, chosen because it is
// deterministic across processes, platforms, and Go versions — every
// peer must compute identical ownership from identical configuration.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum64()
}

// NewRing builds a ring over the given peers with the given virtual-node
// replication (DefaultReplicas when <= 0). Peers are deduplicated; at
// least one is required.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make(map[string]bool, len(peers))
	var sorted []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("shard: empty peer name")
		}
		if !uniq[p] {
			uniq[p] = true
			sorted = append(sorted, p)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one peer")
	}
	sort.Strings(sorted)

	type vnode struct {
		h     uint64
		owner string
	}
	vnodes := make([]vnode, 0, len(sorted)*replicas)
	for _, p := range sorted {
		for i := 0; i < replicas; i++ {
			vnodes = append(vnodes, vnode{h: hash64(fmt.Sprintf("%s#%d", p, i)), owner: p})
		}
	}
	// Sort by position; on the (astronomically unlikely) equal-hash tie,
	// the lexicographically smaller owner wins on every peer alike.
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].h != vnodes[j].h {
			return vnodes[i].h < vnodes[j].h
		}
		return vnodes[i].owner < vnodes[j].owner
	})
	r := &Ring{
		peers:  sorted,
		hashes: make([]uint64, len(vnodes)),
		owners: make([]string, len(vnodes)),
	}
	for i, v := range vnodes {
		r.hashes[i] = v.h
		r.owners[i] = v.owner
	}
	return r, nil
}

// Owner returns the peer owning key (its canonical string form,
// schedcache.Key.Canonical): the first virtual node at or clockwise after
// the key's position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the top of the ring
	}
	return r.owners[i]
}

// Peers returns the sorted unique peer list.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// OwnershipShares returns each peer's fraction of the hash keyspace: the
// summed length of the arcs its virtual nodes own, as a fraction of 2⁶⁴.
// Virtual node i owns the arc (hashes[i-1], hashes[i]]; the first owns the
// wrap-around arc past the top of the ring, which uint64 subtraction
// computes directly (hashes[0] - hashes[last] mod 2⁶⁴). The shares sum to
// 1 up to float64 rounding and quantify how uneven the vnode smoothing
// actually left the keyspace — a fleet operator reads them next to the
// per-peer forward counters to tell hash skew from hot keys.
func (r *Ring) OwnershipShares() map[string]float64 {
	shares := make(map[string]float64, len(r.peers))
	for _, p := range r.peers {
		shares[p] = 0
	}
	if len(r.hashes) == 1 {
		shares[r.owners[0]] = 1
		return shares
	}
	for i, h := range r.hashes {
		prev := r.hashes[(i+len(r.hashes)-1)%len(r.hashes)]
		shares[r.owners[i]] += math.Ldexp(float64(h-prev), -64)
	}
	return shares
}
