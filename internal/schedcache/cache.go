// Package schedcache memoizes schedule construction. Schedules are pure
// functions of (n, D, αT, αR, strategy), and building one — polynomial
// cover-free family over GF(q) plus the paper's Construct algorithm — is
// orders of magnitude more expensive than a map lookup, so a serving
// deployment wants every distinct key built exactly once.
//
// Cache is a concurrency-safe, size-bounded (LRU by entry count) cache
// with singleflight-style deduplication: N concurrent Gets for the same
// missing key trigger exactly one construction, and the other N-1 callers
// block until the leader finishes and then share its result. Construction
// errors are returned to every waiter but never cached, so a transient
// bad key does not poison the table. Hit/miss/eviction/construction
// counters are maintained atomically and exposed via Stats.
package schedcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cff"
	"repro/internal/core"
)

// Key identifies a schedule request. AlphaT = AlphaR = 0 requests the
// topology-transparent non-sleeping base schedule for N(n, D); otherwise
// both caps must be >= 1 and the paper's Construct algorithm converts the
// base into an (αT, αR)-schedule using the given division strategy.
type Key struct {
	N, D           int
	AlphaT, AlphaR int
	Strategy       core.DivisionStrategy
}

// MaxN bounds the class size a cache will construct. Untrusted callers
// (the HTTP API) reach construction through Get, and an unbounded n lets
// one request allocate per-slot bitsets for an arbitrarily large node
// universe.
const MaxN = 1 << 16

// maxBuildCells bounds the n×L footprint of any schedule this package
// will construct, base or duty-cycled. n×L is the first-order cost of a
// schedule in both time and memory (per-slot and per-node bitset views),
// and — unlike n alone — it also catches degree bounds that force a huge
// field: L = q² with q > D, so a large D inflates the frame even for
// modest n. Checked against closed forms before any materialization, so
// rejection is O(1)-ish, never a partial build.
const maxBuildCells = 1 << 26

// Limits bounds what a cache will validate and construct. The right
// bounds depend on who is asking: a serving deployment takes keys from
// the network and must cap what one request can allocate, while an
// operator running a local campaign asked for that footprint on purpose.
type Limits struct {
	// MaxN bounds the class size n.
	MaxN int
	// MaxCells bounds the n×L schedule footprint, checked against closed
	// forms before any materialization.
	MaxCells int64
}

// ServingLimits is the default: sized for untrusted input (the HTTP
// serving tier), where one request must not allocate a million-node
// schedule.
var ServingLimits = Limits{MaxN: MaxN, MaxCells: maxBuildCells}

// TrustedLimits is for operator-driven local tooling (ttdcbatch,
// ttdcsweep): wide enough for the million-node scale campaigns the CSR
// topologies and sharded kernels make tractable — n = 10^6 at d = 4
// resolves to L = 289, ~3·10^8 cells — while still refusing typo-sized
// grids.
var TrustedLimits = Limits{MaxN: 1 << 21, MaxCells: 1 << 31}

// Validate reports whether the key can possibly name a schedule within
// the serving bounds; Limits.Validate takes explicit bounds.
func (k Key) Validate() error { return ServingLimits.Validate(k) }

// Validate reports whether the key can possibly name a schedule within
// lim, before any construction work is attempted.
func (lim Limits) Validate(k Key) error {
	if k.N < 2 {
		return fmt.Errorf("schedcache: n = %d < 2", k.N)
	}
	if k.N > lim.MaxN {
		return fmt.Errorf("schedcache: n = %d exceeds the serving bound %d", k.N, lim.MaxN)
	}
	if k.D < 1 || k.D > k.N-1 {
		return fmt.Errorf("schedcache: D = %d outside [1, %d]", k.D, k.N-1)
	}
	if (k.AlphaT == 0) != (k.AlphaR == 0) {
		return fmt.Errorf("schedcache: set both alphaT and alphaR or neither (got %d, %d)", k.AlphaT, k.AlphaR)
	}
	if k.AlphaT < 0 || k.AlphaR < 0 {
		return fmt.Errorf("schedcache: negative caps (%d, %d)", k.AlphaT, k.AlphaR)
	}
	if k.Strategy != core.Sequential && k.Strategy != core.Balanced {
		return fmt.Errorf("schedcache: unknown division strategy %d", int(k.Strategy))
	}
	return nil
}

// Canonical renders k in its canonical query-string form. Every process
// that needs a deterministic, platform-independent identity for a cache
// key — most importantly the consistent-hash ring deciding which serving
// peer owns k — hashes exactly this string, so its layout is part of the
// fleet protocol: changing it reshuffles ownership of the entire keyspace.
func (k Key) Canonical() string {
	return fmt.Sprintf("n=%d&D=%d&alphaT=%d&alphaR=%d&strategy=%s",
		k.N, k.D, k.AlphaT, k.AlphaR, StrategyName(k.Strategy))
}

// ParseStrategy maps the wire names of the division strategies ("seq",
// "sequential", "bal", "balanced", or empty for the default) onto
// core.DivisionStrategy values.
func ParseStrategy(s string) (core.DivisionStrategy, error) {
	switch s {
	case "", "seq", "sequential":
		return core.Sequential, nil
	case "bal", "balanced":
		return core.Balanced, nil
	default:
		return 0, fmt.Errorf("schedcache: unknown division strategy %q", s)
	}
}

// StrategyName is the inverse of ParseStrategy, for display.
func StrategyName(s core.DivisionStrategy) string {
	if s == core.Balanced {
		return "balanced"
	}
	return "sequential"
}

// Stats is an atomic snapshot of cache counters.
type Stats struct {
	// Hits counts Gets served from a cached entry.
	Hits int64
	// Misses counts Gets that found no cached entry — both construction
	// leaders and callers coalesced onto another caller's construction.
	Misses int64
	// Inflight is the number of constructions running right now.
	Inflight int64
	// Evictions counts entries dropped to keep the cache within capacity.
	Evictions int64
	// Constructions counts actual construction runs; with perfect
	// deduplication this equals the number of distinct keys ever built.
	Constructions int64
	// Errors counts constructions that failed (failures are not cached).
	Errors int64
	// Entries is the current number of cached schedules.
	Entries int64
	// Bytes is the estimated memory footprint of all cached schedules
	// (see ScheduleBytes). The background warmer reads this against its
	// byte budget so precomputation stops before it starts evicting the
	// very entries it just warmed.
	Bytes int64
	// EvictedBytes accumulates the estimated footprint of every entry
	// evicted so far; Bytes + EvictedBytes is the total ever inserted.
	EvictedBytes int64
}

// call is a pending construction that concurrent Gets coalesce onto.
type call struct {
	done chan struct{}
	s    *core.Schedule
	err  error
}

type entry struct {
	key   Key
	s     *core.Schedule
	bytes int64
}

// Cache is a memoizing schedule cache. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache struct {
	capacity int
	limits   Limits

	mu       sync.Mutex
	lru      *list.List // front = most recently used; element values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call
	bytes    int64 // estimated footprint of live entries; guarded by mu
	evicted  int64 // estimated footprint of evicted entries; guarded by mu

	hits, misses, evictions, constructions, errors, inflightN atomic.Int64
}

// DefaultCapacity bounds the cache when New is given a non-positive size.
const DefaultCapacity = 1024

// New returns a cache holding at most capacity schedules (DefaultCapacity
// when capacity <= 0), bounded by ServingLimits.
func New(capacity int) *Cache { return NewWithLimits(capacity, ServingLimits) }

// NewTrusted is New with TrustedLimits: for local operator tooling whose
// keys were typed by the person who will watch the memory they allocate.
func NewTrusted(capacity int) *Cache { return NewWithLimits(capacity, TrustedLimits) }

// NewWithLimits returns a cache holding at most capacity schedules
// (DefaultCapacity when capacity <= 0) validating keys against lim.
func NewWithLimits(capacity int, lim Limits) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		limits:   lim,
		lru:      list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// Capacity returns the maximum number of cached schedules.
func (c *Cache) Capacity() int { return c.capacity }

// Limits returns the validation bounds this cache was built with.
func (c *Cache) Limits() Limits { return c.limits }

// Len returns the current number of cached schedules.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := int64(len(c.entries))
	bytes, evicted := c.bytes, c.evicted
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Inflight:      c.inflightN.Load(),
		Evictions:     c.evictions.Load(),
		Constructions: c.constructions.Load(),
		Errors:        c.errors.Load(),
		Entries:       entries,
		Bytes:         bytes,
		EvictedBytes:  evicted,
	}
}

// Get returns the schedule for k, constructing and caching it on first
// use. Concurrent Gets for the same missing key run one construction; the
// rest wait and share the result. Schedules are immutable — callers may
// share the returned pointer freely but must not mutate through unsafe
// means.
func (c *Cache) Get(k Key) (*core.Schedule, error) {
	if err := c.limits.Validate(k); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*entry).s, nil
	}
	c.misses.Add(1)
	if cl, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-cl.done
		return cl.s, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[k] = cl
	c.inflightN.Add(1)
	c.mu.Unlock()

	c.constructions.Add(1)
	s, err := BuildLimited(k, c.limits)

	c.mu.Lock()
	delete(c.inflight, k)
	c.inflightN.Add(-1)
	if err != nil {
		c.errors.Add(1)
	} else {
		c.insertLocked(k, s)
	}
	c.mu.Unlock()

	cl.s, cl.err = s, err
	close(cl.done)
	return s, err
}

// insertLocked adds (k, s) as the most recently used entry and evicts
// from the LRU tail past capacity. Caller holds c.mu.
func (c *Cache) insertLocked(k Key, s *core.Schedule) {
	if el, ok := c.entries[k]; ok { // lost a race with another inserter
		c.lru.MoveToFront(el)
		return
	}
	b := ScheduleBytes(s)
	c.entries[k] = c.lru.PushFront(&entry{key: k, s: s, bytes: b})
	c.bytes += b
	for len(c.entries) > c.capacity {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		e := tail.Value.(*entry)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evicted += e.bytes
		c.evictions.Add(1)
	}
}

// ScheduleBytes estimates the resident footprint of one cached schedule:
// the 2L per-slot bitsets over n nodes, the 2n per-node bitsets over L
// slots, and a fixed per-set overhead (struct + slice header + pointer).
// It is an estimate — Go rounds allocations to size classes — but it is
// monotone in n×L, which is what budget decisions need.
func ScheduleBytes(s *core.Schedule) int64 {
	n, l := int64(s.N()), int64(s.L())
	const setOverhead = 56
	slotWords := (n + 63) / 64
	nodeWords := (l + 63) / 64
	sets := 2*l + 2*n
	return 8*(2*l*slotWords+2*n*nodeWords) + sets*setOverhead
}

// BaseFrameLength returns the closed-form frame length q² of the
// polynomial base schedule for N(n, D) without materializing anything —
// only the O(q) parameter search runs. The background warmer budgets a
// whole duty-point lattice from this plus PredictedCells before building
// a single schedule.
func BaseFrameLength(n, d int) (int, error) {
	params, err := cff.FindPolynomialParams(n, d)
	if err != nil {
		return 0, err
	}
	return params.FrameLength(), nil
}

// PredictedCells returns the n×L footprint key k will occupy once built,
// given its class's base schedule ns: Theorem 7's frame length for
// duty-cycled keys, ns.L() itself for the base. This is the same closed
// form Build checks against its budget, so a warmer that filters on it
// never submits a key Build would refuse.
func PredictedCells(k Key, ns *core.Schedule) int64 {
	if k.AlphaT == 0 && k.AlphaR == 0 {
		return int64(k.N) * int64(ns.L())
	}
	aStar := core.OptimalTransmittersCapped(k.N, k.D, k.AlphaT)
	return int64(k.N) * int64(core.ConstructedFrameLength(ns, aStar, k.AlphaR))
}

// Build constructs the schedule for k without any caching: the polynomial
// (orthogonal-array) topology-transparent non-sleeping schedule for
// N(n, D), duty-cycled through the paper's Construct algorithm when the
// (αT, αR) caps are set. Exported so benchmarks and servers can measure
// the cold path the cache amortizes. Budgeted by ServingLimits;
// BuildLimited takes explicit bounds.
func Build(k Key) (*core.Schedule, error) { return BuildLimited(k, ServingLimits) }

// BuildLimited is Build with an explicit n×L budget.
func BuildLimited(k Key, lim Limits) (*core.Schedule, error) {
	// The parameter search is a cheap scalar loop; budget-check the
	// resulting frame before materializing n member sets over it.
	params, err := cff.FindPolynomialParams(k.N, k.D)
	if err != nil {
		return nil, err
	}
	if cost := int64(k.N) * int64(params.FrameLength()); cost > lim.MaxCells {
		return nil, fmt.Errorf("schedcache: base schedule for N(%d, %d) needs frame length %d; n×L = %d exceeds the build budget %d",
			k.N, k.D, params.FrameLength(), cost, lim.MaxCells)
	}
	fam, err := cff.PolynomialFor(k.N, k.D)
	if err != nil {
		return nil, err
	}
	ns, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		return nil, err
	}
	if k.AlphaT == 0 && k.AlphaR == 0 {
		return ns, nil
	}
	if k.AlphaT+k.AlphaR > k.N {
		return nil, fmt.Errorf("schedcache: Construct requires αT + αR <= n (got %d + %d > %d)", k.AlphaT, k.AlphaR, k.N)
	}
	// Theorem 7 gives the duty-cycled frame length in closed form; check
	// it against the budget before running the expansion.
	aStar := core.OptimalTransmittersCapped(k.N, k.D, k.AlphaT)
	lFinal := core.ConstructedFrameLength(ns, aStar, k.AlphaR)
	if cost := int64(k.N) * int64(lFinal); cost > lim.MaxCells {
		return nil, fmt.Errorf("schedcache: (%d, %d)-schedule for N(%d, %d) needs frame length %d; n×L = %d exceeds the build budget %d",
			k.AlphaT, k.AlphaR, k.N, k.D, lFinal, cost, lim.MaxCells)
	}
	return core.Construct(ns, core.ConstructOptions{
		AlphaT:   k.AlphaT,
		AlphaR:   k.AlphaR,
		D:        k.D,
		Strategy: k.Strategy,
	})
}
