package schedcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestGetBuildsAndCaches(t *testing.T) {
	c := New(8)
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	s1, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.IsAlphaSchedule(3, 5) {
		t.Fatal("constructed schedule violates the (3,5) caps")
	}
	if !core.IsTopologyTransparent(s1, 2) {
		t.Fatal("constructed schedule is not topology-transparent")
	}
	s2, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("second Get did not return the cached schedule")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Constructions != 1 || st.Entries != 1 {
		t.Fatalf("stats after hit+miss: %+v", st)
	}
	want, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	if want.L() != s1.L() || want.N() != s1.N() {
		t.Fatalf("cached schedule differs from direct Build: L %d vs %d", s1.L(), want.L())
	}
}

func TestGetNonSleepingKey(t *testing.T) {
	c := New(4)
	s, err := c.Get(Key{N: 9, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsNonSleeping() {
		t.Fatal("zero-cap key should yield the non-sleeping base schedule")
	}
}

func TestKeyValidate(t *testing.T) {
	bad := []Key{
		{N: 1, D: 1},
		{N: MaxN + 1, D: 2}, // above the serving bound
		{N: 9, D: 0},
		{N: 9, D: 9},
		{N: 9, D: 2, AlphaT: 3}, // alphaR missing
		{N: 9, D: 2, AlphaR: 5}, // alphaT missing
		{N: 9, D: 2, AlphaT: -1, AlphaR: -1},
		{N: 9, D: 2, Strategy: 99},
	}
	for _, k := range bad {
		if _, err := New(2).Get(k); err == nil {
			t.Errorf("Get(%+v) accepted an invalid key", k)
		}
	}
	st := New(2).Stats()
	if st.Constructions != 0 {
		t.Fatalf("invalid keys must not reach construction: %+v", st)
	}
}

// TestTrustedLimits pins the serving/trusted split: the same key that the
// network-facing bounds reject builds fine through a trusted cache.
func TestTrustedLimits(t *testing.T) {
	k := Key{N: MaxN + 1, D: 2}
	if _, err := New(2).Get(k); err == nil {
		t.Fatal("serving cache accepted n above MaxN")
	}
	c := NewTrusted(2)
	if got := c.Limits(); got != TrustedLimits {
		t.Fatalf("Limits() = %+v, want TrustedLimits", got)
	}
	s, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() < k.N {
		t.Fatalf("trusted build covers %d nodes, want >= %d", s.N(), k.N)
	}
	// Trusted is not unbounded: a typo-sized class still fails fast.
	if _, err := c.Get(Key{N: TrustedLimits.MaxN + 1, D: 2}); err == nil {
		t.Fatal("trusted cache accepted n above TrustedLimits.MaxN")
	}
}

func TestConstructionErrorNotCached(t *testing.T) {
	c := New(4)
	// αT + αR > n is rejected by Construct after the (cheap) base build.
	k := Key{N: 9, D: 2, AlphaT: 8, AlphaR: 8}
	if _, err := c.Get(k); err == nil {
		t.Fatal("infeasible key accepted")
	}
	if _, err := c.Get(k); err == nil {
		t.Fatal("infeasible key accepted on retry")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("error cached: %+v", st)
	}
	if st.Errors != 2 || st.Constructions != 2 {
		t.Fatalf("expected 2 failed constructions, got %+v", st)
	}
}

// TestBuildBudget asserts that classes whose n×L footprint would be
// pathological are rejected from closed forms, quickly, before any
// materialization — a hostile GET must not pin the server.
func TestBuildBudget(t *testing.T) {
	cases := []Key{
		// A large degree bound forces q > D, so L = q² explodes even at
		// modest n.
		{N: MaxN, D: 1000},
		// αT = αR = 1 inflates the Theorem 7 frame by ~n per base slot.
		{N: 4096, D: 2, AlphaT: 1, AlphaR: 1},
	}
	for _, k := range cases {
		_, err := New(2).Get(k)
		if err == nil {
			t.Errorf("Get(%+v) accepted a key past the build budget", k)
			continue
		}
		if !strings.Contains(err.Error(), "build budget") {
			t.Errorf("Get(%+v) error %q does not mention the build budget", k, err)
		}
	}
}

// TestSingleflight launches 100 goroutines at one missing key and asserts
// exactly one construction ran and every caller got the same pointer.
// Must pass under -race.
func TestSingleflight(t *testing.T) {
	c := New(8)
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	const goroutines = 100
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		seen  = make(map[*core.Schedule]int)
	)
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			s, err := c.Get(k)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			seen[s]++
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()
	if len(seen) != 1 {
		t.Fatalf("goroutines saw %d distinct schedules, want 1", len(seen))
	}
	st := c.Stats()
	if st.Constructions != 1 {
		t.Fatalf("%d constructions for one key under concurrency, want 1", st.Constructions)
	}
	if st.Misses+st.Hits != goroutines {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d", st.Inflight)
	}
}

// TestConcurrentMixedKeysLRUBound hammers a capacity-4 cache with 8
// distinct keys from many goroutines and asserts the entry bound holds
// throughout and afterwards, with exactly one construction per key per
// residency (no duplicate inflight builds). Must pass under -race.
func TestConcurrentMixedKeysLRUBound(t *testing.T) {
	const capacity = 4
	c := New(capacity)
	keys := make([]Key, 8)
	for i := range keys {
		// Distinct (αT, αR) pairs over one base so construction stays cheap.
		keys[i] = Key{N: 16, D: 2, AlphaT: 1 + i%3, AlphaR: 2 + i/3}
	}
	var done sync.WaitGroup
	const goroutines = 64
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			for i := 0; i < 20; i++ {
				k := keys[(g+i)%len(keys)]
				if _, err := c.Get(k); err != nil {
					t.Errorf("Get(%+v): %v", k, err)
					return
				}
				if n := c.Len(); n > capacity {
					t.Errorf("cache holds %d entries, capacity %d", n, capacity)
					return
				}
			}
		}(g)
	}
	done.Wait()
	st := c.Stats()
	if st.Entries > capacity {
		t.Fatalf("final entries %d exceed capacity %d", st.Entries, capacity)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d", st.Inflight)
	}
	if st.Evictions == 0 {
		t.Fatal("8 keys through a capacity-4 cache must evict")
	}
	if st.Hits+st.Misses != goroutines*20 {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines*20)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2)
	a := Key{N: 9, D: 2, AlphaT: 1, AlphaR: 2}
	b := Key{N: 9, D: 2, AlphaT: 1, AlphaR: 3}
	d := Key{N: 9, D: 2, AlphaT: 1, AlphaR: 4}
	for _, k := range []Key{a, b} {
		if _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim.
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(d); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after overflow: %+v", st)
	}
	// a must still be cached (a hit), b must have been evicted (a miss).
	pre := c.Stats().Constructions
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Constructions; got != pre {
		t.Fatal("recently-used key was evicted")
	}
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Constructions; got != pre+1 {
		t.Fatal("least-recently-used key was not evicted")
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]core.DivisionStrategy{
		"": core.Sequential, "seq": core.Sequential, "sequential": core.Sequential,
		"bal": core.Balanced, "balanced": core.Balanced,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("zigzag"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if StrategyName(core.Balanced) != "balanced" || StrategyName(core.Sequential) != "sequential" {
		t.Fatal("StrategyName mismatch")
	}
}

// FuzzCacheGet hardens Get against arbitrary keys: no input may panic,
// valid keys must construct schedules honouring their caps, and a second
// Get must hit the cache.
func FuzzCacheGet(f *testing.F) {
	f.Add(9, 2, 0, 0, 0)
	f.Add(25, 2, 3, 5, 0)
	f.Add(16, 3, 2, 4, 1)
	f.Add(0, 0, -1, -1, 99)
	f.Add(4, 3, 8, 8, 0)
	f.Fuzz(func(t *testing.T, n, d, alphaT, alphaR, strategy int) {
		// Bound the work, not the validity checks.
		if n > 30 || d > 4 || alphaT > 8 || alphaR > 8 {
			return
		}
		c := New(2)
		k := Key{N: n, D: d, AlphaT: alphaT, AlphaR: alphaR, Strategy: core.DivisionStrategy(strategy)}
		s, err := c.Get(k)
		if err != nil {
			return
		}
		if alphaT > 0 && !s.IsAlphaSchedule(alphaT, alphaR) {
			t.Fatalf("schedule for %+v violates its caps", k)
		}
		s2, err := c.Get(k)
		if err != nil || s2 != s {
			t.Fatalf("repeat Get for %+v: %v", k, err)
		}
		if st := c.Stats(); st.Hits != 1 || st.Constructions != 1 {
			t.Fatalf("stats after build+hit: %+v", st)
		}
	})
}

func BenchmarkCacheGetWarm(b *testing.B) {
	c := New(8)
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	if _, err := c.Get(k); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCold(b *testing.B) {
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	for i := 0; i < b.N; i++ {
		if _, err := Build(k); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCache_Get() {
	c := New(16)
	s, _ := c.Get(Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5})
	fmt.Println(s.N(), s.IsAlphaSchedule(3, 5))
	// Output: 25 true
}

func TestKeyCanonical(t *testing.T) {
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5, Strategy: core.Balanced}
	want := "n=25&D=2&alphaT=3&alphaR=5&strategy=balanced"
	if got := k.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
	base := Key{N: 9, D: 2}
	if got := base.Canonical(); got != "n=9&D=2&alphaT=0&alphaR=0&strategy=sequential" {
		t.Fatalf("base Canonical() = %q", got)
	}
	if base.Canonical() == k.Canonical() {
		t.Fatal("distinct keys share a canonical form")
	}
}

// liveBytes recomputes the footprint of the cached entries from scratch.
func liveBytes(c *Cache) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, el := range c.entries {
		e := el.Value.(*entry)
		if e.bytes != ScheduleBytes(e.s) {
			return -1
		}
		total += e.bytes
	}
	return total
}

func TestBytesAccounting(t *testing.T) {
	c := New(2)
	keys := []Key{
		{N: 9, D: 2},
		{N: 9, D: 2, AlphaT: 2, AlphaR: 4},
		{N: 16, D: 2, AlphaT: 2, AlphaR: 4},
	}
	var want []int64
	for _, k := range keys {
		s, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		b := ScheduleBytes(s)
		if b <= 0 {
			t.Fatalf("ScheduleBytes(%+v) = %d", k, b)
		}
		want = append(want, b)
	}
	st := c.Stats()
	// Capacity 2: the first key was evicted, the last two are live.
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != want[1]+want[2] {
		t.Fatalf("Bytes = %d, want %d+%d", st.Bytes, want[1], want[2])
	}
	if st.EvictedBytes != want[0] {
		t.Fatalf("EvictedBytes = %d, want %d", st.EvictedBytes, want[0])
	}
	if got := liveBytes(c); got != st.Bytes {
		t.Fatalf("recomputed live bytes %d != Stats.Bytes %d", got, st.Bytes)
	}
	// A bigger schedule costs more: the estimate must be monotone in n×L.
	if want[2] <= want[1] {
		t.Fatalf("ScheduleBytes not monotone: n=16 %d <= n=9 %d", want[2], want[1])
	}
}

// TestConcurrentGetEvictBytes hammers a capacity-2 cache from many
// goroutines over a key set that does not fit, so inserts and evictions
// race continuously; afterwards the byte ledger must balance exactly
// against the surviving entries. Run under -race (make race-conc).
func TestConcurrentGetEvictBytes(t *testing.T) {
	c := New(2)
	keys := []Key{
		{N: 9, D: 2},
		{N: 9, D: 2, AlphaT: 2, AlphaR: 4},
		{N: 9, D: 2, AlphaT: 2, AlphaR: 4, Strategy: core.Balanced},
		{N: 16, D: 2, AlphaT: 2, AlphaR: 4},
		{N: 9, D: 3, AlphaT: 1, AlphaR: 1},
	}
	const workers = 16
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := c.Get(keys[(w+i)%len(keys)]); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	if got := liveBytes(c); got < 0 || got != st.Bytes {
		t.Fatalf("byte ledger off: recomputed %d, Stats.Bytes %d", got, st.Bytes)
	}
	if st.EvictedBytes <= 0 || st.Evictions <= 0 {
		t.Fatalf("expected evictions under pressure: %+v", st)
	}
}

func TestPredictedCells(t *testing.T) {
	base, err := Build(Key{N: 25, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := PredictedCells(Key{N: 25, D: 2}, base); got != int64(25*base.L()) {
		t.Fatalf("base PredictedCells = %d, want %d", got, 25*base.L())
	}
	// The Theorem 7 prediction must match what Construct actually builds.
	k := Key{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	duty, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := PredictedCells(k, base), int64(25*duty.L()); got != want {
		t.Fatalf("PredictedCells = %d, but the built schedule occupies %d", got, want)
	}
	l, err := BaseFrameLength(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l != base.L() {
		t.Fatalf("BaseFrameLength = %d, built base L = %d", l, base.L())
	}
}
