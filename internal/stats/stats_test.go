package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never produced in 10000 draws", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity: counts within 4 sigma of expectation.
	r := NewRNG(1234)
	const n, k, draws = 7, 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / float64(k)
	sigma := math.Sqrt(expect * (1 - 1/float64(k)))
	for v, c := range counts {
		if math.Abs(float64(c)-expect) > 5*sigma {
			t.Fatalf("value %d count %d too far from expectation %.1f", v, c, expect)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const rate = 2.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(3)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if math.Abs(s.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestPercentile(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Median(); got != 50 {
		t.Fatalf("median = %v", got)
	}
}

func TestQuickSummaryMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip inputs where float sums overflow/lose meaning
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		ok = ok && m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9
		ok = ok && m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
		ok = ok && s.Variance() >= 0
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	bins := h.Bins()
	if len(bins) != 5 {
		t.Fatalf("bins = %v", bins)
	}
	want := []int{3, 2, 2, 2, 3}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BinBounds(1) = %v,%v", lo, hi)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("equal values Gini = %v", got)
	}
	if got := Gini(nil); got != 0 {
		t.Fatalf("empty Gini = %v", got)
	}
	if got := Gini([]float64{7}); got != 0 {
		t.Fatalf("single Gini = %v", got)
	}
	if got := Gini([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero Gini = %v", got)
	}
	// Total concentration on one of n values: G = (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 12}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %v, want 0.75", got)
	}
	// Order invariance.
	a := Gini([]float64{1, 2, 3, 4})
	b := Gini([]float64{4, 2, 1, 3})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("Gini order-dependent: %v vs %v", a, b)
	}
	// Known value for {1,2,3,4}: G = 0.25.
	if math.Abs(a-0.25) > 1e-12 {
		t.Fatalf("Gini(1..4) = %v, want 0.25", a)
	}
	// More unequal distributions score higher.
	if Gini([]float64{1, 1, 1, 10}) <= Gini([]float64{1, 2, 3, 4}) {
		t.Fatal("Gini should increase with inequality")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative value should panic")
		}
	}()
	Gini([]float64{-1, 2})
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

// TestDeriveSeedMatchesStream pins DeriveSeed to its contract: the O(1)
// formula must equal the sequential splitmix64 stream, so per-index seeds
// are exactly what a shared generator would have handed out in order.
func TestDeriveSeedMatchesStream(t *testing.T) {
	for _, base := range []uint64{0, 1, 42, math.MaxUint64} {
		r := NewRNG(base)
		for i := uint64(0); i < 100; i++ {
			want := r.Uint64()
			if got := DeriveSeed(base, i); got != want {
				t.Fatalf("DeriveSeed(%d, %d) = %d, want %d", base, i, got, want)
			}
		}
	}
}

// TestDeriveSeedSpread: distinct indices must give distinct seeds (the
// stream is a bijection of the counter, so collisions would be a bug).
func TestDeriveSeedSpread(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(7, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d share seed %d", i, j, s)
		}
		seen[s] = i
	}
}
