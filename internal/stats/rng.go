// Package stats provides the deterministic random number generation and the
// summary statistics used by the simulator and the experiment harness.
//
// Every randomized component in the repository takes an explicit *stats.RNG
// so that experiment tables are reproducible bit-for-bit from a seed.
package stats

import "math"

// RNG is a small, fast, deterministic generator (splitmix64 core). It is not
// cryptographic; it exists so simulations are reproducible across platforms
// without depending on math/rand's global state or version-dependent
// algorithms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire-style rejection to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements addressed by swap, Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). Used for Poisson packet inter-arrival times.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Split returns a new RNG derived from this one, suitable for giving an
// independent deterministic stream to a sub-component.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// DeriveSeed returns the index-th value of the splitmix64 stream rooted at
// base — exactly what NewRNG(base) would produce on its (index+1)-th call
// to Uint64, computed in O(1). It exists so a batch of jobs can each get an
// independent deterministic seed from (campaign seed, job index) without
// sharing a generator, making per-job results independent of execution
// order and worker count.
func DeriveSeed(base uint64, index uint64) uint64 {
	z := base + (index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
