package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports basic statistics.
// The zero value is ready to use.
type Summary struct {
	values []float64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if len(s.values) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.max
}

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Variance returns the sample variance (n-1 denominator), or 0 with fewer
// than two observations.
func (s *Summary) Variance() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sumSq - n*m*m) / (n - 1)
	if v < 0 { // guard tiny negative from rounding
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile returns the p-th percentile (0 <= p <= 100) using nearest-rank
// on the sorted data. It returns 0 for an empty summary.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g max=%.4g",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Median(), s.Max())
}

// Gini returns the Gini coefficient of the given non-negative values: 0
// for perfect equality, approaching 1 for total concentration. Used as the
// fairness metric for per-node energy expenditure (the §7 balanced-energy
// goal). It returns 0 for fewer than two values or an all-zero input, and
// panics on negative values.
func Gini(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		panic("stats: Gini of negative value")
	}
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(i+1)
		total += v
	}
	if total == 0 {
		return 0
	}
	// G = (2·Σ i·x_(i) )/(n·Σx) - (n+1)/n
	return 2*cum/(float64(n)*total) - float64(n+1)/float64(n)
}

// Histogram counts observations into fixed-width bins over [lo, hi). Values
// outside the range are clamped into the first/last bin so no observation is
// silently dropped.
type Histogram struct {
	lo, hi float64
	bins   []int
	total  int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.total++
}

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int { return append([]int(nil), h.bins...) }

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinBounds returns the [lo, hi) range of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}
