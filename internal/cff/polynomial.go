package cff

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/gf"
)

// PolynomialParams holds the parameters of the orthogonal-array (polynomial)
// construction: node codewords are polynomials of degree at most K over
// GF(Q), and the frame has Q subframes of Q slots (L = Q²).
type PolynomialParams struct {
	// Q is the field order (a prime power).
	Q int
	// K is the maximum polynomial degree.
	K int
	// N is the number of supported nodes, Q^(K+1).
	N int
	// D is the largest node degree for which the family is D-cover-free,
	// floor((Q-1)/K).
	D int
}

// FrameLength returns the ground-set size Q².
func (p PolynomialParams) FrameLength() int { return p.Q * p.Q }

// FindPolynomialParams returns the parameters with the smallest frame length
// L = q² such that the polynomial construction supports at least n nodes and
// is D-cover-free, i.e. q is a prime power with q^(k+1) >= n and kD < q for
// some degree k >= 1. It returns an error for invalid inputs (n < 2 or
// D < 1).
//
// The search is exact: frame length grows with q only, so the smallest
// feasible prime power q is optimal within this construction; k is then the
// smallest degree accommodating n nodes.
func FindPolynomialParams(n, d int) (PolynomialParams, error) {
	if n < 2 {
		return PolynomialParams{}, fmt.Errorf("cff: polynomial params need n >= 2, got %d", n)
	}
	if d < 1 {
		return PolynomialParams{}, fmt.Errorf("cff: polynomial params need D >= 1, got %d", d)
	}
	for q := 2; ; q = gf.NextPrimePower(q + 1) {
		q = gf.NextPrimePower(q)
		// Largest degree that keeps the family D-cover-free: kD <= q-1.
		kMax := (q - 1) / d
		if kMax < 1 {
			continue
		}
		// Smallest k with q^(k+1) >= n.
		cap := q
		for k := 1; k <= kMax; k++ {
			if cap > (1<<40)/q {
				// q^(k+1) overflow guard; such capacity is far beyond need.
				return PolynomialParams{Q: q, K: k, N: 1 << 40, D: (q - 1) / k}, nil
			}
			cap *= q
			if cap >= n {
				return PolynomialParams{Q: q, K: k, N: cap, D: (q - 1) / k}, nil
			}
		}
	}
}

// Polynomial builds the orthogonal-array family for the given parameters.
// Node x in [0, n) is assigned the polynomial whose coefficients are the
// base-q digits of x; its member set is {q*j + f_x(e_j) : j in [0, q)}
// where e_j is the j-th field element. Distinct polynomials of degree <= k
// agree on at most k points, so any D <= (q-1)/k other nodes cover at most
// kD < q of a node's q slots: the family is D-cover-free with every member
// set of size exactly q.
func Polynomial(n int, p PolynomialParams) (*Family, error) {
	if n < 1 || n > p.N {
		return nil, fmt.Errorf("cff: polynomial family supports up to %d nodes, asked %d", p.N, n)
	}
	field, err := gf.NewOrder(p.Q)
	if err != nil {
		return nil, fmt.Errorf("cff: bad field order %d: %w", p.Q, err)
	}
	// Exp/log tables amortize across the n·q polynomial evaluations.
	tables := gf.NewTables(field)
	q := p.Q
	L := q * q
	sets := make([]*bitset.Set, n)
	coeffs := make([]int, p.K+1)
	for x := 0; x < n; x++ {
		v := x
		for i := range coeffs {
			coeffs[i] = v % q
			v /= q
		}
		s := bitset.New(L)
		for j := 0; j < q; j++ {
			s.Add(q*j + tables.Eval(coeffs, j))
		}
		sets[x] = s
	}
	return &Family{
		L:    L,
		Sets: sets,
		Name: fmt.Sprintf("polynomial(q=%d,k=%d)", p.Q, p.K),
	}, nil
}

// PolynomialFor is a convenience that finds parameters for (n, D) and builds
// the family for exactly n nodes.
func PolynomialFor(n, d int) (*Family, error) {
	p, err := FindPolynomialParams(n, d)
	if err != nil {
		return nil, err
	}
	return Polynomial(n, p)
}
