package cff

import (
	"testing"
)

func TestSingerDifferenceSets(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 11} {
		ds, err := SingerDifferenceSet(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		v := p*p + p + 1
		if err := VerifyPerfectDifferenceSet(v, ds); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestSingerRejectsNonPrime(t *testing.T) {
	for _, p := range []int{1, 4, 6, 9} {
		if _, err := SingerDifferenceSet(p); err == nil {
			t.Fatalf("p=%d accepted", p)
		}
	}
}

func TestVerifyPerfectDifferenceSetCatchesFakes(t *testing.T) {
	// The Fano difference set {0,1,3} mod 7 is perfect; {0,1,2} is not.
	if err := VerifyPerfectDifferenceSet(7, []int{0, 1, 3}); err != nil {
		t.Fatalf("known-good set rejected: %v", err)
	}
	if err := VerifyPerfectDifferenceSet(7, []int{0, 1, 2}); err == nil {
		t.Fatal("bad set accepted")
	}
	if err := VerifyPerfectDifferenceSet(8, []int{0, 1, 3}); err == nil {
		t.Fatal("wrong modulus accepted")
	}
}

func TestProjectivePlaneIsSteinerSystem(t *testing.T) {
	// Every pair of points lies on exactly one line: count pair coverage.
	for _, p := range []int{2, 3, 5} {
		v := p*p + p + 1
		f, err := ProjectivePlane(v, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		pairCount := make(map[[2]int]int)
		for _, line := range f.Sets {
			pts := line.Elements()
			if len(pts) != p+1 {
				t.Fatalf("p=%d: line size %d", p, len(pts))
			}
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					pairCount[[2]int{pts[i], pts[j]}]++
				}
			}
		}
		want := v * (v - 1) / 2
		if len(pairCount) != want {
			t.Fatalf("p=%d: %d pairs covered, want %d", p, len(pairCount), want)
		}
		for pair, c := range pairCount {
			if c != 1 {
				t.Fatalf("p=%d: pair %v on %d lines", p, pair, c)
			}
		}
	}
}

func TestProjectivePlaneLinesIntersectOnce(t *testing.T) {
	f, err := ProjectivePlane(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		for j := i + 1; j < f.N(); j++ {
			if c := f.Sets[i].IntersectionCount(f.Sets[j]); c != 1 {
				t.Fatalf("lines %d,%d share %d points", i, j, c)
			}
		}
	}
}

func TestProjectivePlaneCoverFree(t *testing.T) {
	// D-cover-free for every D <= p.
	f2, err := ProjectivePlane(7, 2) // Fano plane
	if err != nil {
		t.Fatal(err)
	}
	if !f2.IsCoverFree(2) {
		t.Fatal("Fano plane not 2-cover-free")
	}
	f3, err := ProjectivePlane(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 3; d++ {
		if !f3.IsCoverFree(d) {
			t.Fatalf("PG(2,3) not %d-cover-free", d)
		}
	}
	// And NOT (p+1)-cover-free when enough lines exist: p+1 lines through
	// a common point cover any other line entirely... verify the checker
	// can find a violation at D = p+1 for the full plane.
	full3, err := ProjectivePlane(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	if full3.IsCoverFree(4) {
		t.Fatal("PG(2,3) should not be 4-cover-free")
	}
}

func TestProjectiveFor(t *testing.T) {
	// n=20, D=3 → p=3 gives v=13 < 20, so p=5 (v=31).
	f, err := ProjectiveFor(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 20 || f.L != 31 {
		t.Fatalf("shape n=%d L=%d", f.N(), f.L)
	}
	if !f.IsCoverFree(3) {
		t.Fatal("not 3-cover-free")
	}
	if _, err := ProjectiveFor(0, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func BenchmarkProjectivePlane31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ProjectivePlane(31, 5); err != nil {
			b.Fatal(err)
		}
	}
}
