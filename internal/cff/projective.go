package cff

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/gf"
)

// Projective planes PG(2, p) as cover-free families. The lines of a
// projective plane of order p form a Steiner system S(2, p+1, p²+p+1):
// v = p²+p+1 points, v lines of p+1 points each, any two lines meeting in
// exactly one point. Taking lines as member sets over the points, any D
// other lines cover at most D points of a given line, so the family is
// D-cover-free for every D <= p — extending the triple-system construction
// (p = 2 gives the Fano plane) to larger degree bounds with frame length
// v ≈ p², the same order as the polynomial construction but with exactly
// v member sets.
//
// The plane is built cyclically from a Singer perfect difference set:
// taking a primitive element g of GF(p³), the exponents i (mod v) whose
// field element has zero trace over GF(p) form a (v, p+1, 1) perfect
// difference set D; the lines are the v translates D + t (mod v).

// SingerDifferenceSet returns a (v, p+1, 1) perfect difference set modulo
// v = p²+p+1 for a prime p: a set of p+1 residues whose pairwise
// differences hit every nonzero residue exactly once.
func SingerDifferenceSet(p int) ([]int, error) {
	if !gf.IsPrime(p) {
		return nil, fmt.Errorf("cff: Singer construction needs prime p, got %d", p)
	}
	field, err := gf.New(p, 3)
	if err != nil {
		return nil, err
	}
	v := p*p + p + 1
	g := field.PrimitiveElement()
	// Trace over GF(p): Tr(x) = x + x^p + x^(p²). Zero-trace is constant on
	// cosets of GF(p)* (Tr is GF(p)-linear), so membership depends only on
	// i mod v.
	seen := make(map[int]bool)
	x := 1
	order := field.Q() - 1
	for i := 0; i < order; i++ {
		tr := field.Add(x, field.Add(field.Pow(x, p), field.Pow(x, p*p)))
		if tr == 0 {
			seen[i%v] = true
		}
		x = field.Mul(x, g)
	}
	ds := make([]int, 0, len(seen))
	for r := range seen {
		ds = append(ds, r)
	}
	sort.Ints(ds)
	if len(ds) != p+1 {
		return nil, fmt.Errorf("cff: Singer set for p=%d has %d elements, want %d", p, len(ds), p+1)
	}
	return ds, nil
}

// VerifyPerfectDifferenceSet checks that ds is a (v, k, 1) perfect
// difference set: all k(k-1) ordered pairwise differences are distinct and
// nonzero modulo v, and (with k(k-1) == v-1) therefore cover every nonzero
// residue exactly once.
func VerifyPerfectDifferenceSet(v int, ds []int) error {
	k := len(ds)
	if k*(k-1) != v-1 {
		return fmt.Errorf("cff: size %d wrong for perfect difference set mod %d", k, v)
	}
	seen := make(map[int]bool)
	for _, a := range ds {
		for _, b := range ds {
			if a == b {
				continue
			}
			d := ((a-b)%v + v) % v
			if d == 0 || seen[d] {
				return fmt.Errorf("cff: difference %d repeated or zero", d)
			}
			seen[d] = true
		}
	}
	return nil
}

// ProjectivePlane builds the n-member cover-free family whose member sets
// are lines of PG(2, p), for n <= p²+p+1. The family is D-cover-free for
// every D <= p, with ground set (frame length) v = p²+p+1 and every member
// set of size p+1.
func ProjectivePlane(n, p int) (*Family, error) {
	ds, err := SingerDifferenceSet(p)
	if err != nil {
		return nil, err
	}
	v := p*p + p + 1
	if n < 1 || n > v {
		return nil, fmt.Errorf("cff: projective plane of order %d supports up to %d member sets, asked %d", p, v, n)
	}
	sets := make([]*bitset.Set, n)
	for t := 0; t < n; t++ {
		s := bitset.New(v)
		for _, d := range ds {
			s.Add((d + t) % v)
		}
		sets[t] = s
	}
	return &Family{
		L:    v,
		Sets: sets,
		Name: fmt.Sprintf("projective(p=%d)", p),
	}, nil
}

// ProjectiveFor returns the smallest-order projective-plane family
// supporting n nodes at degree bound d (the least prime p >= d with
// p²+p+1 >= n).
func ProjectiveFor(n, d int) (*Family, error) {
	if n < 1 || d < 1 {
		return nil, fmt.Errorf("cff: ProjectiveFor(%d, %d)", n, d)
	}
	p := d
	if p < 2 {
		p = 2
	}
	for {
		p = gf.NextPrime(p)
		if p*p+p+1 >= n {
			return ProjectivePlane(n, p)
		}
		p++
	}
}
