package cff

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Triple is an unordered block of a Steiner triple system, stored sorted.
type Triple [3]int

// STS returns the blocks of a Steiner triple system of order v: a set of
// triples over points {0..v-1} such that every pair of distinct points lies
// in exactly one triple. Systems exist exactly for v ≡ 1 or 3 (mod 6);
// other orders return an error.
//
// Orders v ≡ 3 (mod 6) use the Bose construction; orders v ≡ 1 (mod 6) use
// cyclic difference triples found by a deterministic bounded backtracking
// search (a constructive stand-in for Peltesohn's explicit solution of
// Heffter's difference problem).
func STS(v int) ([]Triple, error) {
	switch {
	case v < 3:
		return nil, fmt.Errorf("cff: no STS of order %d", v)
	case v%6 == 3:
		return bose(v), nil
	case v%6 == 1:
		return cyclicSTS(v)
	default:
		return nil, fmt.Errorf("cff: STS(%d) does not exist (need v ≡ 1 or 3 mod 6)", v)
	}
}

func sortedTriple(a, b, c int) Triple {
	t := Triple{a, b, c}
	sort.Ints(t[:])
	return t
}

// bose builds STS(v) for v = 6t+3 via the Bose construction over the
// idempotent commutative quasigroup i∘j = (i+j)(m+1)/2 mod m on Z_m,
// m = 2t+1. Points (i, k) ∈ Z_m × {0,1,2} are numbered 3i+k.
func bose(v int) []Triple {
	m := v / 3 // odd
	half := (m + 1) / 2
	point := func(i, k int) int { return 3*i + k }
	var blocks []Triple
	for i := 0; i < m; i++ {
		blocks = append(blocks, sortedTriple(point(i, 0), point(i, 1), point(i, 2)))
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			q := (i + j) * half % m
			for k := 0; k < 3; k++ {
				blocks = append(blocks, sortedTriple(point(i, k), point(j, k), point(q, (k+1)%3)))
			}
		}
	}
	sortBlocks(blocks)
	return blocks
}

// cyclicSTS builds STS(v) for v = 6t+1 from t difference triples: triples
// (a, b, c) with a + b = c or a + b + c = v that partition {1..3t}. Each
// difference triple (a, b, c) yields the v translates of the base block
// {0, a, a+b}.
func cyclicSTS(v int) ([]Triple, error) {
	t := v / 6
	triples, err := differenceTriples(t, v)
	if err != nil {
		return nil, err
	}
	var blocks []Triple
	for _, dt := range triples {
		a, b := dt[0], dt[1]
		for s := 0; s < v; s++ {
			blocks = append(blocks, sortedTriple(s, (s+a)%v, (s+a+b)%v))
		}
	}
	sortBlocks(blocks)
	return blocks, nil
}

// differenceTriples finds t triples (a,b,c), a<b<c, with a+b == c or
// a+b+c == v, partitioning {1..3t}. A bounded backtracking search is used:
// repeatedly take the smallest unused difference as a and branch on b.
// The bound exists to fail deterministically rather than hang; within the
// orders this library targets the search succeeds quickly.
func differenceTriples(t, v int) ([][3]int, error) {
	if t == 0 {
		return nil, nil
	}
	used := make([]bool, 3*t+1) // 1-based
	out := make([][3]int, 0, t)
	const budget = 5_000_000
	steps := 0
	var rec func() bool
	rec = func() bool {
		steps++
		if steps > budget {
			return false
		}
		a := 0
		for d := 1; d <= 3*t; d++ {
			if !used[d] {
				a = d
				break
			}
		}
		if a == 0 {
			return true // all differences consumed
		}
		used[a] = true
		for b := a + 1; b <= 3*t; b++ {
			if used[b] {
				continue
			}
			// Type 1: c = a + b.
			if c := a + b; c <= 3*t && !used[c] && c != b {
				used[b], used[c] = true, true
				out = append(out, [3]int{a, b, c})
				if rec() {
					return true
				}
				out = out[:len(out)-1]
				used[b], used[c] = false, false
			}
			// Type 2: a + b + c == v.
			if c := v - a - b; c > b && c <= 3*t && !used[c] {
				used[b], used[c] = true, true
				out = append(out, [3]int{a, b, c})
				if rec() {
					return true
				}
				out = out[:len(out)-1]
				used[b], used[c] = false, false
			}
		}
		used[a] = false
		return false
	}
	if !rec() {
		return nil, fmt.Errorf("cff: no difference triples found for v = %d within search budget", v)
	}
	return out, nil
}

func sortBlocks(blocks []Triple) {
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// VerifySTS checks that the triples form a Steiner triple system of order
// v: every unordered pair of points occurs in exactly one triple.
func VerifySTS(v int, blocks []Triple) error {
	if want := v * (v - 1) / 6; len(blocks) != want {
		return fmt.Errorf("cff: %d blocks, want %d for STS(%d)", len(blocks), want, v)
	}
	seen := make(map[[2]int]bool)
	for _, b := range blocks {
		if !(0 <= b[0] && b[0] < b[1] && b[1] < b[2] && b[2] < v) {
			return fmt.Errorf("cff: malformed block %v", b)
		}
		pairs := [][2]int{{b[0], b[1]}, {b[0], b[2]}, {b[1], b[2]}}
		for _, p := range pairs {
			if seen[p] {
				return fmt.Errorf("cff: pair %v covered twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != v*(v-1)/2 {
		return fmt.Errorf("cff: only %d of %d pairs covered", len(seen), v*(v-1)/2)
	}
	return nil
}

// STSOrderFor returns the smallest admissible STS order v (v ≡ 1 or 3 mod 6,
// v >= 7) whose block count v(v-1)/6 is at least n.
func STSOrderFor(n int) int {
	for v := 7; ; v++ {
		if v%6 != 1 && v%6 != 3 {
			continue
		}
		if v*(v-1)/6 >= n {
			return v
		}
	}
}

// Steiner builds a 2-cover-free family for n nodes from a Steiner triple
// system: member sets are blocks of the system (distinct blocks share at
// most one point, so two other blocks cover at most 2 of a block's 3
// points). The ground set is the v points of the smallest adequate system;
// the family supports D = 2 only, which Verify-callers must respect.
func Steiner(n int) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("cff: Steiner family with n = %d", n)
	}
	v := STSOrderFor(n)
	blocks, err := STS(v)
	if err != nil {
		return nil, err
	}
	sets := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		s := bitset.New(v)
		for _, p := range blocks[i] {
			s.Add(p)
		}
		sets[i] = s
	}
	return &Family{L: v, Sets: sets, Name: fmt.Sprintf("steiner(v=%d)", v)}, nil
}
