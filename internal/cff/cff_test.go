package cff

import (
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/stats"
)

func TestIdentityFamily(t *testing.T) {
	f, err := Identity(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.N() != 6 || f.L != 6 {
		t.Fatalf("N=%d L=%d", f.N(), f.L)
	}
	for d := 1; d <= 5; d++ {
		if !f.IsCoverFree(d) {
			t.Fatalf("identity not %d-cover-free", d)
		}
	}
	if f.MinSetSize() != 1 || f.MaxSetSize() != 1 {
		t.Fatal("identity set sizes should be 1")
	}
	if _, err := Identity(0); err == nil {
		t.Fatal("Identity(0) should error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	f, _ := Identity(4)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Failure injection: empty set.
	f.Sets[2].Clear()
	if err := f.Validate(); err == nil {
		t.Fatal("Validate should reject an empty member set")
	}
	// Nil set.
	f2, _ := Identity(4)
	f2.Sets[1] = nil
	if err := f2.Validate(); err == nil {
		t.Fatal("Validate should reject a nil member set")
	}
	// Capacity mismatch.
	f3, _ := Identity(4)
	f3.Sets[0] = bitset.FromSlice(9, []int{0})
	if err := f3.Validate(); err == nil {
		t.Fatal("Validate should reject capacity mismatch")
	}
}

func TestFindViolationDetects(t *testing.T) {
	// Family where set 0 ⊆ set1 ∪ set2.
	L := 6
	f := &Family{L: L, Sets: []*bitset.Set{
		bitset.FromSlice(L, []int{0, 1}),
		bitset.FromSlice(L, []int{0, 3}),
		bitset.FromSlice(L, []int{1, 4}),
		bitset.FromSlice(L, []int{5}),
	}}
	v := f.FindViolation(2)
	if v == nil {
		t.Fatal("expected violation")
	}
	if v.X != 0 {
		t.Fatalf("violation X = %d, want 0", v.X)
	}
	union := bitset.New(L)
	for _, y := range v.Cover {
		union.UnionWith(f.Sets[y])
	}
	if !f.Sets[v.X].SubsetOf(union) {
		t.Fatal("reported violation is not a real cover")
	}
	if f.IsCoverFree(2) {
		t.Fatal("IsCoverFree should be false")
	}
	if !f.IsCoverFree(1) {
		t.Fatal("family should be 1-cover-free")
	}
}

func TestFindViolationFewerThanDOthers(t *testing.T) {
	// n-1 < d: union over all others.
	L := 4
	f := &Family{L: L, Sets: []*bitset.Set{
		bitset.FromSlice(L, []int{0}),
		bitset.FromSlice(L, []int{0, 1}),
	}}
	if f.IsCoverFree(3) {
		t.Fatal("set 0 is covered by set 1 alone; d=3 vacuous check should catch it")
	}
	g := &Family{L: L, Sets: []*bitset.Set{
		bitset.FromSlice(L, []int{0, 2}),
		bitset.FromSlice(L, []int{0, 1}),
	}}
	if !g.IsCoverFree(3) {
		t.Fatal("no cover exists; should be cover-free")
	}
}

func TestFindPolynomialParams(t *testing.T) {
	p, err := FindPolynomialParams(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	// q must be a prime power with q >= kD+1 and q^(k+1) >= 25.
	if p.Q < p.K*2+1 {
		t.Fatalf("params %+v violate q >= kD+1", p)
	}
	if p.N < 25 {
		t.Fatalf("params %+v support too few nodes", p)
	}
	// q=5,k=1 gives N=25, D=4: the smallest feasible frame (L=25).
	if p.Q != 5 || p.K != 1 {
		t.Fatalf("expected q=5,k=1, got %+v", p)
	}
	if p.FrameLength() != 25 {
		t.Fatalf("FrameLength = %d", p.FrameLength())
	}

	if _, err := FindPolynomialParams(1, 2); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, err := FindPolynomialParams(10, 0); err == nil {
		t.Fatal("D=0 should error")
	}
}

func TestFindPolynomialParamsLargerD(t *testing.T) {
	// With larger D the field must grow: q >= kD+1.
	for _, tc := range []struct{ n, d int }{{50, 3}, {100, 4}, {200, 5}, {1000, 6}} {
		p, err := FindPolynomialParams(tc.n, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		if p.K*tc.d >= p.Q {
			t.Fatalf("n=%d D=%d: kD=%d >= q=%d", tc.n, tc.d, p.K*tc.d, p.Q)
		}
		if p.N < tc.n {
			t.Fatalf("n=%d D=%d: capacity %d too small", tc.n, tc.d, p.N)
		}
	}
}

func TestPolynomialFamilyIsCoverFree(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{9, 2}, {16, 3}, {25, 2}, {27, 2}} {
		f, err := PolynomialFor(tc.n, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		if f.N() != tc.n {
			t.Fatalf("N = %d, want %d", f.N(), tc.n)
		}
		if !f.IsCoverFree(tc.d) {
			t.Fatalf("polynomial family (n=%d, D=%d) not cover-free", tc.n, tc.d)
		}
	}
}

func TestPolynomialSetsSizeQ(t *testing.T) {
	p, err := FindPolynomialParams(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Polynomial(20, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range f.Sets {
		if s.Count() != p.Q {
			t.Fatalf("set %d has %d slots, want q=%d", i, s.Count(), p.Q)
		}
	}
	// One slot per subframe: exactly one element in [q*j, q*(j+1)) per j.
	for i, s := range f.Sets {
		for j := 0; j < p.Q; j++ {
			cnt := 0
			for e := p.Q * j; e < p.Q*(j+1); e++ {
				if s.Contains(e) {
					cnt++
				}
			}
			if cnt != 1 {
				t.Fatalf("set %d has %d slots in subframe %d", i, cnt, j)
			}
		}
	}
}

func TestPolynomialDistinctSets(t *testing.T) {
	f, err := PolynomialFor(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		for j := i + 1; j < f.N(); j++ {
			if f.Sets[i].Equal(f.Sets[j]) {
				t.Fatalf("sets %d and %d identical", i, j)
			}
		}
	}
}

func TestPolynomialRejectsTooManyNodes(t *testing.T) {
	p, _ := FindPolynomialParams(9, 2)
	if _, err := Polynomial(p.N+1, p); err == nil {
		t.Fatal("should reject n > capacity")
	}
}

func TestBoseSTS(t *testing.T) {
	for _, v := range []int{3, 9, 15, 21, 27, 33} {
		blocks, err := STS(v)
		if err != nil {
			t.Fatalf("STS(%d): %v", v, err)
		}
		if err := VerifySTS(v, blocks); err != nil {
			t.Fatalf("STS(%d): %v", v, err)
		}
	}
}

func TestCyclicSTS(t *testing.T) {
	for _, v := range []int{7, 13, 19, 25, 31, 37, 43, 49, 55, 61} {
		blocks, err := STS(v)
		if err != nil {
			t.Fatalf("STS(%d): %v", v, err)
		}
		if err := VerifySTS(v, blocks); err != nil {
			t.Fatalf("STS(%d): %v", v, err)
		}
	}
}

func TestSTSInvalidOrders(t *testing.T) {
	for _, v := range []int{0, 2, 4, 5, 6, 8, 10, 11, 12, 14} {
		if _, err := STS(v); err == nil {
			t.Fatalf("STS(%d) should not exist", v)
		}
	}
}

func TestSTSOrderFor(t *testing.T) {
	cases := [][2]int{{1, 7}, {7, 7}, {8, 9}, {12, 9}, {13, 13}, {26, 13}, {27, 15}, {35, 15}, {36, 19}}
	for _, c := range cases {
		if got := STSOrderFor(c[0]); got != c[1] {
			t.Fatalf("STSOrderFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestSteinerFamilyCoverFree(t *testing.T) {
	for _, n := range []int{5, 7, 20, 35} {
		f, err := Steiner(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		if f.N() != n {
			t.Fatalf("N = %d, want %d", f.N(), n)
		}
		if !f.IsCoverFree(2) {
			t.Fatalf("Steiner family n=%d not 2-cover-free", n)
		}
		if f.MinSetSize() != 3 || f.MaxSetSize() != 3 {
			t.Fatal("Steiner member sets should all have size 3")
		}
	}
}

func TestSteinerPairwiseIntersection(t *testing.T) {
	f, err := Steiner(30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		for j := i + 1; j < f.N(); j++ {
			if c := f.Sets[i].IntersectionCount(f.Sets[j]); c > 1 {
				t.Fatalf("blocks %d,%d share %d points", i, j, c)
			}
		}
	}
}

func TestCheckRandomFindsPlantedViolation(t *testing.T) {
	// Build an identity family and corrupt one set so it is covered.
	f, _ := Identity(8)
	f.Sets[3] = bitset.FromSlice(8, []int{5}) // now duplicates set 5
	rng := stats.NewRNG(99)
	v := f.CheckRandom(2, 5000, rng)
	if v == nil {
		t.Fatal("CheckRandom missed a dense violation")
	}
	union := bitset.New(8)
	for _, y := range v.Cover {
		union.UnionWith(f.Sets[y])
	}
	if !f.Sets[v.X].SubsetOf(union) {
		t.Fatal("CheckRandom reported a non-violation")
	}
}

func TestCheckRandomCleanFamily(t *testing.T) {
	f, err := PolynomialFor(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.CheckRandom(2, 2000, stats.NewRNG(1)); v != nil {
		t.Fatalf("false positive violation: %v", v)
	}
}

func TestQuickPolynomialCoverFreeAcrossParams(t *testing.T) {
	// Property: for random small (n, D), the generated family passes the
	// exhaustive D-cover-free verifier.
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.Intn(20)
		d := 1 + r.Intn(3)
		f, err := PolynomialFor(n, d)
		if err != nil {
			return false
		}
		return f.IsCoverFree(d)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDifferenceTriplesProperties(t *testing.T) {
	for t0 := 1; t0 <= 12; t0++ {
		v := 6*t0 + 1
		dts, err := differenceTriples(t0, v)
		if err != nil {
			t.Fatalf("t=%d: %v", t0, err)
		}
		if len(dts) != t0 {
			t.Fatalf("t=%d: %d triples", t0, len(dts))
		}
		used := map[int]bool{}
		for _, dt := range dts {
			a, b, c := dt[0], dt[1], dt[2]
			if !(0 < a && a < b && b < c && c <= 3*t0) {
				t.Fatalf("t=%d: bad triple %v", t0, dt)
			}
			if a+b != c && a+b+c != v {
				t.Fatalf("t=%d: triple %v fails sum condition", t0, dt)
			}
			for _, x := range dt {
				if used[x] {
					t.Fatalf("t=%d: difference %d reused", t0, x)
				}
				used[x] = true
			}
		}
	}
}

func BenchmarkPolynomialConstruct(b *testing.B) {
	p, _ := FindPolynomialParams(100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Polynomial(100, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCoverFree(b *testing.B) {
	f, _ := PolynomialFor(20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.IsCoverFree(2) {
			b.Fatal("not cover-free")
		}
	}
}

func BenchmarkSTS61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := STS(61); err != nil {
			b.Fatal(err)
		}
	}
}
