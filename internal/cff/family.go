// Package cff constructs and verifies cover-free families (CFFs), the
// combinatorial objects behind topology-transparent non-sleeping schedules.
//
// A family of n sets B_0, ..., B_{n-1} over the ground set [0, L) is
// D-cover-free when no member set is covered by the union of any D others:
//
//	for all x, for all Y ⊆ {0..n-1}-{x} with |Y| = D:  B_x ⊄ ∪_{y∈Y} B_y.
//
// Interpreting the ground set as the slots of a frame and B_x as the slots
// in which node x transmits, this is exactly Requirement 1 of the paper
// (Colbourn-Ling-Syrotiuk 2004): in every network of the class N(n, D) each
// node owns a collision-free slot toward each neighbour, whatever the
// topology. The package provides the classical constructions cited by the
// paper — the trivial TDMA family, the orthogonal-array (polynomial)
// construction of Chlamtac-Farago and Ju-Li, and Steiner triple systems —
// plus exhaustive and randomized verifiers.
package cff

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combin"
	"repro/internal/stats"
)

// Family is a finite set family over the ground set [0, L). Sets[i] is the
// member set of index i. In schedule terms, L is the frame length and
// Sets[x] is the transmission slot set of node x.
type Family struct {
	// L is the size of the ground set (the frame length).
	L int
	// Sets holds the member sets; each has capacity L.
	Sets []*bitset.Set
	// Name identifies the construction that produced the family.
	Name string
}

// N returns the number of member sets (nodes).
func (f *Family) N() int { return len(f.Sets) }

// Validate checks structural sanity: positive ground set, at least one set,
// and every member set non-empty with capacity L.
func (f *Family) Validate() error {
	if f.L <= 0 {
		return fmt.Errorf("cff: ground set size %d <= 0", f.L)
	}
	if len(f.Sets) == 0 {
		return fmt.Errorf("cff: empty family")
	}
	for i, s := range f.Sets {
		if s == nil {
			return fmt.Errorf("cff: set %d is nil", i)
		}
		if s.Cap() != f.L {
			return fmt.Errorf("cff: set %d capacity %d != L %d", i, s.Cap(), f.L)
		}
		if s.Empty() {
			return fmt.Errorf("cff: set %d is empty", i)
		}
		if s.Max() >= f.L {
			return fmt.Errorf("cff: set %d contains %d >= L %d", i, s.Max(), f.L)
		}
	}
	return nil
}

// MinSetSize returns the smallest member-set cardinality.
func (f *Family) MinSetSize() int {
	m := -1
	for _, s := range f.Sets {
		if c := s.Count(); m < 0 || c < m {
			m = c
		}
	}
	return m
}

// MaxSetSize returns the largest member-set cardinality.
func (f *Family) MaxSetSize() int {
	m := 0
	for _, s := range f.Sets {
		if c := s.Count(); c > m {
			m = c
		}
	}
	return m
}

// Violation describes a witnessed failure of the D-cover-free property:
// member set X is covered by the union of the member sets in Cover.
type Violation struct {
	X     int
	Cover []int
}

func (v *Violation) String() string {
	return fmt.Sprintf("set %d covered by union of %v", v.X, v.Cover)
}

// FindViolation exhaustively searches for a D-cover-freeness violation and
// returns it, or nil if the family is D-cover-free. The cost is
// O(n · C(n-1, D) · L/64) and is intended for n small enough that the
// certificate matters more than the wait; use CheckRandom for large n.
func (f *Family) FindViolation(d int) *Violation {
	if d < 1 {
		panic(fmt.Sprintf("cff: FindViolation with d = %d", d))
	}
	n := f.N()
	union := bitset.New(f.L)
	others := make([]int, 0, n-1)
	var enum combin.Enumerator // one index scratch for all n walks
	var found *Violation
	for x := 0; x < n && found == nil; x++ {
		others = others[:0]
		for y := 0; y < n; y++ {
			if y != x {
				others = append(others, y)
			}
		}
		if len(others) < d {
			// Fewer than d other sets exist; the union of "any d others" is
			// vacuously over all of them.
			union.Clear()
			for _, y := range others {
				union.UnionWith(f.Sets[y])
			}
			if f.Sets[x].SubsetOf(union) {
				found = &Violation{X: x, Cover: append([]int(nil), others...)}
			}
			continue
		}
		enum.CombinationsOf(others, d, func(sub []int) bool {
			union.Clear()
			for _, y := range sub {
				union.UnionWith(f.Sets[y])
			}
			if f.Sets[x].SubsetOf(union) {
				found = &Violation{X: x, Cover: append([]int(nil), sub...)}
				return false
			}
			return true
		})
	}
	return found
}

// IsCoverFree reports whether the family is D-cover-free, by exhaustive
// check.
func (f *Family) IsCoverFree(d int) bool {
	return f.FindViolation(d) == nil
}

// CheckRandom samples `trials` random (x, Y) pairs and reports a violation
// if one is found, or nil. A nil result is evidence, not proof; use
// FindViolation for a certificate.
func (f *Family) CheckRandom(d, trials int, rng *stats.RNG) *Violation {
	n := f.N()
	if n-1 < d {
		return f.FindViolation(d) // degenerate; exhaustive is cheap
	}
	union := bitset.New(f.L)
	for t := 0; t < trials; t++ {
		x := rng.Intn(n)
		perm := rng.Perm(n)
		cover := make([]int, 0, d)
		for _, y := range perm {
			if y == x {
				continue
			}
			cover = append(cover, y)
			if len(cover) == d {
				break
			}
		}
		union.Clear()
		for _, y := range cover {
			union.UnionWith(f.Sets[y])
		}
		if f.Sets[x].SubsetOf(union) {
			return &Violation{X: x, Cover: cover}
		}
	}
	return nil
}

// Identity returns the trivial TDMA family: ground set [0, n) with
// B_x = {x}. It is D-cover-free for every D <= n-1 and corresponds to plain
// round-robin TDMA with frame length n.
func Identity(n int) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("cff: Identity with n = %d", n)
	}
	sets := make([]*bitset.Set, n)
	for i := range sets {
		s := bitset.New(n)
		s.Add(i)
		sets[i] = s
	}
	return &Family{L: n, Sets: sets, Name: fmt.Sprintf("identity(n=%d)", n)}, nil
}
