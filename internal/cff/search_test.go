package cff

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/stats"
)

func TestSearchFindsSmallFamilies(t *testing.T) {
	cases := []SearchOptions{
		{N: 6, D: 2, L: 9, Seed: 1},
		{N: 10, D: 2, L: 9, Seed: 2}, // matches STS(9)'s 12-block capacity
		{N: 8, D: 1, L: 5, Seed: 3},  // 1-cover-free = Sperner family
		{N: 12, D: 2, L: 12, Seed: 4},
	}
	for _, c := range cases {
		f, err := Search(c)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if f.N() != c.N || f.L != c.L {
			t.Fatalf("%+v: got n=%d L=%d", c, f.N(), f.L)
		}
		if !f.IsCoverFree(c.D) {
			t.Fatalf("%+v: search returned a non-cover-free family", c)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	opts := SearchOptions{N: 8, D: 2, L: 10, Seed: 7}
	a, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sets {
		if !a.Sets[i].Equal(b.Sets[i]) {
			t.Fatal("same seed produced different families")
		}
	}
}

func TestSearchRejectsBadOptions(t *testing.T) {
	for _, c := range []SearchOptions{
		{N: 1, D: 2, L: 5},
		{N: 5, D: 0, L: 5},
		{N: 5, D: 2, L: 0},
	} {
		if _, err := Search(c); err == nil {
			t.Fatalf("%+v accepted", c)
		}
	}
}

func TestSearchFailsGracefullyWhenImpossible(t *testing.T) {
	// 2-cover-free with 6 sets over a 3-slot ground set is impossible
	// (each set would need >= 3 distinct slots... any set is covered).
	if _, err := Search(SearchOptions{N: 6, D: 2, L: 3, MaxIters: 500, Seed: 1}); err == nil {
		t.Fatal("impossible search should exhaust its budget")
	}
}

func TestFindShortestBeatsTDMAForD2(t *testing.T) {
	// For n = 12, D = 2, TDMA needs L = 12 but STS(9) proves L = 9
	// suffices; the searcher should find something shorter than 12.
	f, err := FindShortest(12, 2, 8, 12, 99)
	if err != nil {
		t.Fatal(err)
	}
	if f.L >= 12 {
		t.Fatalf("search found only L = %d; expected < 12", f.L)
	}
	if !f.IsCoverFree(2) {
		t.Fatal("shortest family not cover-free")
	}
	t.Logf("FindShortest(12, 2): L = %d (TDMA needs 12)", f.L)
}

func TestFindShortestRangeValidation(t *testing.T) {
	if _, err := FindShortest(5, 2, 10, 5, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	// A range where even hi fails.
	if _, err := FindShortest(6, 2, 3, 3, 1); err == nil {
		t.Fatal("impossible range should error")
	}
}

func TestFamilyFromScheduleRoundTrip(t *testing.T) {
	orig, err := PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FamilyFromSchedule(orig.L, orig.Sets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Sets {
		if !back.Sets[i].Equal(orig.Sets[i]) {
			t.Fatal("round trip changed sets")
		}
	}
	if !back.IsCoverFree(2) {
		t.Fatal("round-tripped family lost cover-freeness")
	}
}

func TestFamilyFromScheduleValidation(t *testing.T) {
	if _, err := FamilyFromSchedule(0, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	sets := []*bitset.Set{bitset.FromSlice(10, []int{9})}
	if _, err := FamilyFromSchedule(5, sets); err == nil {
		t.Fatal("slot beyond L accepted")
	}
	if _, err := FamilyFromSchedule(5, []*bitset.Set{nil}); err == nil {
		t.Fatal("nil set accepted")
	}
}

func TestSearchFamiliesProduceTTSchedules(t *testing.T) {
	// Integration: search → family is usable as a schedule base (checked
	// here only via the cover-free property, which Requirement 1 equals;
	// the core package's tests close the loop to Requirement 3).
	rng := stats.NewRNG(11)
	for trial := 0; trial < 3; trial++ {
		n := 6 + rng.Intn(5)
		f, err := Search(SearchOptions{N: n, D: 2, L: n + 2, Seed: rng.Uint64()})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !f.IsCoverFree(2) {
			t.Fatal("not cover-free")
		}
	}
}

func BenchmarkSearchN10D2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Search(SearchOptions{N: 10, D: 2, L: 10, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
