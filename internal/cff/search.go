package cff

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/stats"
)

// Randomized construction of cover-free families. The algebraic
// constructions (orthogonal arrays, Steiner systems) are asymptotically
// excellent but quantized: the polynomial family jumps to the next prime
// power q and frame q², which can overshoot badly for small n. Search finds
// D-cover-free families at frame lengths the constructions cannot express,
// by randomized local repair: start from random member sets and repeatedly
// repair witnessed violations, moving slots of the covered set out of the
// covering union.

// SearchOptions parameterizes Search.
type SearchOptions struct {
	// N is the number of member sets (nodes) and D the cover-freeness
	// order.
	N, D int
	// L is the ground-set (frame) size to search at.
	L int
	// SetSize is the member-set cardinality; 0 selects D+1, the smallest
	// size that can be D-cover-free (with pairwise intersections <= 1, D
	// sets cover at most D < D+1 slots). Larger sizes give nodes more
	// transmission slots but are harder to pack at a given L.
	SetSize int
	// MaxIters bounds repair iterations; 0 selects 200·N·D.
	MaxIters int
	// Seed drives the randomized repair.
	Seed uint64
}

// Search attempts to build a D-cover-free family of N sets over [0, L) by
// randomized local repair, and returns a verified family or an error when
// the iteration budget is exhausted (which does not prove non-existence).
func Search(opts SearchOptions) (*Family, error) {
	n, d, l := opts.N, opts.D, opts.L
	if n < 2 || d < 1 || l < 1 {
		return nil, fmt.Errorf("cff: Search needs n >= 2, D >= 1, L >= 1 (got %d, %d, %d)", n, d, l)
	}
	w := opts.SetSize
	if w == 0 {
		w = d + 1
	}
	if w > l {
		w = l
	}
	if w < 1 {
		w = 1
	}
	// Necessary condition (counting): if w*(d) < ... keep permissive; the
	// verifier is the arbiter. But a set of size <= d covered by d sets of
	// the same size sharing one slot each is easy, so warn early when the
	// budget obviously cannot work.
	if l < w {
		return nil, fmt.Errorf("cff: Search with L = %d < set size %d", l, w)
	}
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 200 * n * d
	}
	rng := stats.NewRNG(opts.Seed)

	f := &Family{L: l, Sets: make([]*bitset.Set, n), Name: fmt.Sprintf("search(n=%d,D=%d,L=%d,w=%d)", n, d, l, w)}
	for i := range f.Sets {
		f.Sets[i] = randomSubset(rng, l, w)
	}
	union := bitset.New(l)
	for iter := 0; iter < maxIters; iter++ {
		// Cheap randomized probe most iterations; exhaustive sweep
		// periodically and at the end.
		var v *Violation
		if iter%25 == 24 {
			v = f.FindViolation(d)
		} else {
			v = f.CheckRandom(d, 4*n, rng)
		}
		if v == nil {
			if f.FindViolation(d) == nil {
				return f, nil
			}
			continue
		}
		// Repair: pick a slot of B_x inside the covering union and move it
		// to a random slot outside the union (and outside B_x).
		union.Clear()
		for _, y := range v.Cover {
			union.UnionWith(f.Sets[y])
		}
		bx := f.Sets[v.X]
		inside := bitset.Intersect(bx, union).Elements()
		outside := make([]int, 0, l)
		for e := 0; e < l; e++ {
			if !union.Contains(e) && !bx.Contains(e) {
				outside = append(outside, e)
			}
		}
		if len(outside) == 0 {
			// The union covers everything outside B_x: perturb a covering
			// set instead, shrinking the union.
			y := v.Cover[rng.Intn(len(v.Cover))]
			mutate(rng, f.Sets[y], l)
			continue
		}
		if len(inside) == 0 {
			// Shouldn't happen for a real violation; defensive.
			continue
		}
		drop := inside[rng.Intn(len(inside))]
		add := outside[rng.Intn(len(outside))]
		bx.Remove(drop)
		bx.Add(add)
	}
	return nil, fmt.Errorf("cff: Search(n=%d, D=%d, L=%d, w=%d) exhausted %d iterations",
		n, d, l, w, maxIters)
}

// randomSubset returns a uniform random w-subset of [0, l).
func randomSubset(rng *stats.RNG, l, w int) *bitset.Set {
	s := bitset.New(l)
	perm := rng.Perm(l)
	for i := 0; i < w; i++ {
		s.Add(perm[i])
	}
	return s
}

// mutate swaps one random slot of set for a random absent slot.
func mutate(rng *stats.RNG, set *bitset.Set, l int) {
	elems := set.Elements()
	if len(elems) == 0 || len(elems) == l {
		return
	}
	for {
		add := rng.Intn(l)
		if !set.Contains(add) {
			set.Remove(elems[rng.Intn(len(elems))])
			set.Add(add)
			return
		}
	}
}

// FindShortest searches downward from hi for the smallest frame length in
// [lo, hi] at which Search succeeds, returning the best family found. The
// scan is linear from hi (success at L does not imply success at L+1 for a
// *randomized* searcher, so binary search would be unsound); it returns an
// error if even hi fails.
func FindShortest(n, d, lo, hi int, seed uint64) (*Family, error) {
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("cff: FindShortest range [%d, %d]", lo, hi)
	}
	var best *Family
	for l := hi; l >= lo; l-- {
		f, err := Search(SearchOptions{N: n, D: d, L: l, Seed: seed + uint64(l)})
		if err != nil {
			break
		}
		best = f
	}
	if best == nil {
		return nil, fmt.Errorf("cff: FindShortest found nothing in [%d, %d]", lo, hi)
	}
	return best, nil
}

// FamilyFromSchedule extracts the set family underlying a non-sleeping
// schedule's transmission half: member set x is the set of slots node x
// transmits in. It is the inverse of core.ScheduleFromFamily. tranSets must
// be per-node slot sets with capacity l.
func FamilyFromSchedule(l int, tranSets []*bitset.Set) (*Family, error) {
	if l < 1 || len(tranSets) == 0 {
		return nil, fmt.Errorf("cff: FamilyFromSchedule(l=%d, n=%d)", l, len(tranSets))
	}
	sets := make([]*bitset.Set, len(tranSets))
	for i, s := range tranSets {
		if s == nil {
			return nil, fmt.Errorf("cff: nil tran set %d", i)
		}
		c := bitset.New(l)
		bad := -1
		s.ForEach(func(e int) bool {
			if e >= l {
				bad = e
				return false
			}
			c.Add(e)
			return true
		})
		if bad >= 0 {
			return nil, fmt.Errorf("cff: tran set %d has slot %d >= L = %d", i, bad, l)
		}
		sets[i] = c
	}
	f := &Family{L: l, Sets: sets, Name: "from-schedule"}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
