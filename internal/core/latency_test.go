package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/cff"
	"repro/internal/stats"
)

func TestMaxCyclicGap(t *testing.T) {
	cases := []struct {
		elems []int
		l     int
		want  int
	}{
		{[]int{0}, 10, 9},         // single slot: worst wait is L-1
		{[]int{0, 5}, 10, 4},      // evenly split
		{[]int{0, 1}, 10, 8},      // adjacent pair: wrap gap of 9 → wait 8
		{[]int{3}, 4, 3},          //
		{[]int{0, 1, 2, 3}, 4, 0}, // every slot guaranteed: no wait
		{nil, 7, -1},              // never guaranteed
	}
	for _, c := range cases {
		set := bitset.FromSlice(c.l, c.elems)
		if got := maxCyclicGap(set, c.l); got != c.want {
			t.Errorf("maxCyclicGap(%v, %d) = %d, want %d", c.elems, c.l, got, c.want)
		}
	}
}

func TestHopLatencyBoundTDMA(t *testing.T) {
	// TDMA over n nodes: each link has exactly one guaranteed slot per
	// frame, so the worst hop wait is L-1 = n-1.
	s := tdma(6)
	for d := 1; d <= 5; d++ {
		got, ok := WorstCaseHopLatency(s, d)
		if !ok {
			t.Fatalf("TDMA should have a finite bound at D=%d", d)
		}
		if got != 5 {
			t.Fatalf("TDMA D=%d: bound %d, want 5", d, got)
		}
	}
}

func TestHopLatencyUnboundedForNonTT(t *testing.T) {
	// Node 0 never transmits: no bound exists.
	s, err := New(4, [][]int{{1}, {2}, {3}}, [][]int{{0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := WorstCaseHopLatency(s, 2); ok {
		t.Fatal("non-TT schedule should have no finite latency bound")
	}
	if got := HopLatencyBound(s, 0, 1, []int{2}); got != -1 {
		t.Fatalf("HopLatencyBound = %d, want -1", got)
	}
}

func TestHopLatencyAtMostLMinus1ForTT(t *testing.T) {
	// For TT schedules the bound is always <= L-1 (a guaranteed slot per
	// frame recurs with period L).
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns := mustFromFamily(t, fam)
	inputs := []*Schedule{ns, tdma(8)}
	out, err := Construct(ns, ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, out)
	for i, s := range inputs {
		d := 2
		if i == 1 {
			d = 3
		}
		got, ok := WorstCaseHopLatency(s, d)
		if !ok {
			t.Fatalf("schedule %d should be TT", i)
		}
		if got > s.L()-1 {
			t.Fatalf("schedule %d: bound %d exceeds L-1 = %d", i, got, s.L()-1)
		}
		if got < 0 {
			t.Fatalf("schedule %d: negative bound", i)
		}
	}
}

func TestHopLatencyMonotoneInNeighbourhood(t *testing.T) {
	// Adding interferers can only shrink 𝒯 and hence only grow (or keep)
	// the wait.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(3)
		L := 3 + rng.Intn(5)
		s := randomSchedule(rng, n, L, 0.3, 0.8)
		x := rng.Intn(n)
		y := (x + 1 + rng.Intn(n-1)) % n
		var small, large []int
		for v := 0; v < n; v++ {
			if v == x || v == y {
				continue
			}
			if rng.Bool(0.5) {
				small = append(small, v)
			}
			large = append(large, v)
		}
		a := HopLatencyBound(s, x, y, small)
		b := HopLatencyBound(s, x, y, large)
		if a == -1 {
			return b == -1
		}
		return b == -1 || b >= a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseDominatesPerLink(t *testing.T) {
	// The class-wide bound dominates every concrete link's bound.
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := mustFromFamily(t, fam)
	bound, ok := WorstCaseHopLatency(s, 2)
	if !ok {
		t.Fatal("should be TT")
	}
	forEachTriple(s, 2, func(x, y int, set []int) bool {
		if g := HopLatencyBound(s, x, y, set); g > bound {
			t.Fatalf("link (%d→%d|%v) bound %d exceeds class bound %d", x, y, set, g, bound)
		}
		return true
	})
}
