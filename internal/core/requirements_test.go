package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cff"
	"repro/internal/stats"
)

// fromFamily converts a cover-free family into a non-sleeping schedule:
// tran(x) = family set x.
func fromFamily(t *testing.T, f *cff.Family) *Schedule {
	t.Helper()
	s, err := ScheduleFromFamily(f.L, f.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTDMAIsTopologyTransparent(t *testing.T) {
	s := tdma(6)
	for d := 1; d <= 5; d++ {
		if w := CheckRequirement1(s, d); w != nil {
			t.Fatalf("TDMA violates Req1 at D=%d: %v", d, w)
		}
		if w := CheckRequirement3(s, d); w != nil {
			t.Fatalf("TDMA violates Req3 at D=%d: %v", d, w)
		}
		if w := CheckRequirement2(s, d); w != nil {
			t.Fatalf("TDMA violates Req2 at D=%d: %v", d, w)
		}
		if !IsTopologyTransparent(s, d) {
			t.Fatalf("TDMA not TT at D=%d", d)
		}
	}
}

func TestPolynomialScheduleIsTopologyTransparent(t *testing.T) {
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := fromFamily(t, fam)
	if !s.IsNonSleeping() {
		t.Fatal("family schedule should be non-sleeping")
	}
	if w := CheckRequirement1(s, 2); w != nil {
		t.Fatalf("Req1 violated: %v", w)
	}
	if w := CheckRequirement3(s, 2); w != nil {
		t.Fatalf("Req3 violated: %v", w)
	}
	if w := CheckRequirement2(s, 2); w != nil {
		t.Fatalf("Req2 violated: %v", w)
	}
}

func TestSteinerScheduleIsTopologyTransparent(t *testing.T) {
	fam, err := cff.Steiner(10)
	if err != nil {
		t.Fatal(err)
	}
	s := fromFamily(t, fam)
	if !IsTopologyTransparent(s, 2) {
		t.Fatal("Steiner schedule not TT for D=2")
	}
	// Steiner triple systems are only 2-cover-free: at D=3 some triple is
	// covered by three others (for orders where enough blocks exist).
	if CheckRequirement1(s, 3) == nil {
		t.Log("note: this Steiner instance happens to satisfy D=3 — acceptable but unusual")
	}
}

func TestRequirementViolationDetection(t *testing.T) {
	// Node 0 never transmits: Req1 and Req3 must fail with K = -1 and
	// Req2 must find σ(0, y) = ∅ covered.
	s, err := New(4, [][]int{{1}, {2}, {3}}, [][]int{{0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w1 := CheckRequirement1(s, 2)
	if w1 == nil || w1.X != 0 || w1.K != -1 {
		t.Fatalf("Req1 witness = %v", w1)
	}
	w3 := CheckRequirement3(s, 2)
	if w3 == nil || w3.X != 0 {
		t.Fatalf("Req3 witness = %v", w3)
	}
	if w2 := CheckRequirement2(s, 2); w2 == nil || w2.X != 0 {
		t.Fatalf("Req2 witness = %v", w2)
	}
}

func TestReceiverAsleepViolation(t *testing.T) {
	// ⟨T⟩ is TT (TDMA on 3 nodes) but node 2 never listens: condition (2)
	// of Requirement 3 must fail with a K >= 0 witness naming 2.
	s, err := New(3, [][]int{{0}, {1}, {2}}, [][]int{{1}, {0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if w := CheckRequirement1(s, 2); w != nil {
		t.Fatalf("Req1 should hold, got %v", w)
	}
	w := CheckRequirement3(s, 2)
	if w == nil || w.K < 0 {
		t.Fatalf("Req3 witness = %v, want condition-(2) violation", w)
	}
	if w.Y[w.K] != 2 {
		t.Fatalf("expected sleeping receiver 2, got %d", w.Y[w.K])
	}
	if CheckRequirement2(s, 2) == nil {
		t.Fatal("Req2 should also fail (Theorem 1)")
	}
}

func TestTheorem1EquivalenceOnRandomSchedules(t *testing.T) {
	// Theorem 1: Requirement 2 ⇔ Requirement 3, for arbitrary schedules.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4)   // 3..6
		L := 2 + rng.Intn(6)   // 2..7
		d := 1 + rng.Intn(n-1) // 1..n-1
		pT := 0.15 + 0.5*rng.Float64()
		pR := 0.3 + 0.6*rng.Float64()
		s := randomSchedule(rng, n, L, pT, pR)
		req2 := CheckRequirement2(s, d) == nil
		req3 := CheckRequirement3(s, d) == nil
		return req2 == req3
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRequirement3ImpliesRequirement1(t *testing.T) {
	// Condition (2) implies condition (1): any schedule passing Req3 must
	// pass Req1.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4)
		L := 2 + rng.Intn(6)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.8)
		if CheckRequirement3(s, d) != nil {
			return true // vacuous
		}
		return CheckRequirement1(s, d) == nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTTEquivalentToPositiveMinThroughput(t *testing.T) {
	// §5: a schedule is TT iff Thr^min > 0.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(3)
		L := 2 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.8)
		tt := IsTopologyTransparent(s, d)
		pos := MinThroughput(s, d).Sign() > 0
		return tt == pos
	}
	cfg := &quick.Config{MaxCount: 250}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCheckersPanicOnBadD(t *testing.T) {
	s := tdma(4)
	for _, d := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("D=%d accepted", d)
				}
			}()
			CheckRequirement3(s, d)
		}()
	}
}

func TestWitnessStrings(t *testing.T) {
	w := &Witness{X: 1, Y: []int{2, 3}, K: -1}
	if w.String() == "" {
		t.Fatal("empty witness string")
	}
	w2 := &Witness{X: 1, Y: []int{2, 3}, K: 1}
	if w2.String() == "" {
		t.Fatal("empty witness string")
	}
	r := &Req2Witness{X: 0, Y: 1, Interferer: []int{2}}
	if r.String() == "" {
		t.Fatal("empty req2 witness string")
	}
}
