package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/cff"
	"repro/internal/combin"
	"repro/internal/stats"
)

func TestTheorem2ClosedFormMatchesBruteForce(t *testing.T) {
	// The central identity of §5: the closed form of Theorem 2 equals the
	// Definition 2 brute force for arbitrary schedules.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4) // 3..6
		L := 1 + rng.Intn(6)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.7)
		return AvgThroughput(s, d).Cmp(AvgThroughputBruteForce(s, d)) == 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2OnTDMA(t *testing.T) {
	// TDMA over n nodes: every slot has |T| = 1, |R| = n-1, and L = n.
	// Theorem 2 gives Thr = n·(n-1)·C(n-2, D-1) / (n(n-1)C(n-2, D-1)·n)
	// = 1/n: each link delivers exactly once per frame.
	for n := 3; n <= 8; n++ {
		for d := 1; d <= n-1; d++ {
			s := tdma(n)
			want := big.NewRat(1, int64(n))
			if got := AvgThroughput(s, d); got.Cmp(want) != 0 {
				t.Fatalf("TDMA n=%d D=%d: Thr = %s, want %s", n, d, got, want)
			}
			// TDMA guarantees exactly one success per frame per (x, y, S):
			// Thr^min = 1/n.
			wantMin := big.NewRat(1, int64(n))
			if got := MinThroughput(s, d); got.Cmp(wantMin) != 0 {
				t.Fatalf("TDMA n=%d D=%d: Thr^min = %s, want %s", n, d, got, wantMin)
			}
		}
	}
}

func TestMinThroughputZeroForNonTT(t *testing.T) {
	// Node 0 never transmits → Thr^min = 0, but Thr^ave stays positive.
	s, err := New(4, [][]int{{1}, {2}}, [][]int{{0, 2, 3}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := MinThroughput(s, 2); got.Sign() != 0 {
		t.Fatalf("Thr^min = %s, want 0", got)
	}
	// Average throughput is still well-defined and positive.
	if got := AvgThroughput(s, 2); got.Sign() <= 0 {
		t.Fatalf("Thr^ave = %s, want > 0", got)
	}
}

func TestGProperties(t *testing.T) {
	// Properties (1) and (2) of g_{n,D} from §5.
	for _, nd := range [][2]int{{6, 2}, {10, 3}, {15, 2}, {20, 4}, {30, 5}, {9, 8}} {
		n, d := nd[0], nd[1]
		bound := LooseGeneralBound(n, d)
		// Property (1): g(x) <= nD^D/((n-D)(D+1)^(D+1)) for x in [0, n-1].
		for x := 0; x <= n-1; x++ {
			if G(n, d, x).Cmp(bound) > 0 {
				t.Fatalf("n=%d D=%d: g(%d) = %s exceeds loose bound %s", n, d, x, G(n, d, x), bound)
			}
		}
		// Property (2): the max over [0, n-1] is attained at floor or ceil
		// of (n-D)/(D+1).
		lo := (n - d) / (d + 1)
		hi := combin.CeilDiv(n-d, d+1)
		best := G(n, d, lo)
		if g := G(n, d, hi); g.Cmp(best) > 0 {
			best = g
		}
		for x := 0; x <= n-1; x++ {
			if G(n, d, x).Cmp(best) > 0 {
				t.Fatalf("n=%d D=%d: g(%d) beats both floor/ceil candidates", n, d, x)
			}
		}
	}
}

func TestOptimalTransmittersMaximizesG(t *testing.T) {
	for _, nd := range [][2]int{{5, 2}, {8, 2}, {10, 3}, {12, 4}, {20, 2}, {25, 6}} {
		n, d := nd[0], nd[1]
		a := OptimalTransmitters(n, d)
		ga := G(n, d, a)
		for x := 1; x <= n-1; x++ {
			if G(n, d, x).Cmp(ga) > 0 {
				t.Fatalf("n=%d D=%d: αT★=%d but g(%d) larger", n, d, a, x)
			}
		}
	}
}

func TestTheorem3BoundHoldsForRandomSchedules(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(5)
		L := 1 + rng.Intn(6)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.7)
		thr := AvgThroughput(s, d)
		star := GeneralThroughputBound(n, d)
		loose := LooseGeneralBound(n, d)
		return thr.Cmp(star) <= 0 && star.Cmp(loose) <= 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem3EqualityCondition(t *testing.T) {
	// A non-sleeping schedule with |T[i]| = αT★ in every slot attains Thr★.
	n, d := 9, 2
	a := OptimalTransmitters(n, d) // (9-2)/3 ≈ 2.33 → 2 or 3
	var tSlots [][]int
	// Cyclic slots with exactly a transmitters.
	for i := 0; i < n; i++ {
		slot := make([]int, a)
		for j := 0; j < a; j++ {
			slot[j] = (i + j) % n
		}
		tSlots = append(tSlots, slot)
	}
	s, err := NonSleeping(n, tSlots)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := AvgThroughput(s, d), GeneralThroughputBound(n, d); got.Cmp(want) != 0 {
		t.Fatalf("equality schedule Thr = %s, want Thr★ = %s", got, want)
	}
	// Conversely: deviate one slot's transmitter count and equality breaks.
	tSlots[0] = append(tSlots[0], (tSlots[0][a-1]+1)%n)
	s2, err := NonSleeping(n, tSlots)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := AvgThroughput(s2, d), GeneralThroughputBound(n, d); got.Cmp(want) >= 0 {
		t.Fatalf("perturbed schedule should fall below Thr★: %s vs %s", got, want)
	}
}

func TestTheorem4BoundHoldsForAlphaSchedules(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(4)
		L := 1 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.5)
		alphaT := s.MaxTransmitters()
		alphaR := s.MaxReceivers()
		if alphaT == 0 || alphaR == 0 {
			return true // degenerate: no transmitters or receivers at all
		}
		thr := AvgThroughput(s, d)
		bound := CappedThroughputBound(n, d, alphaT, alphaR)
		loose := LooseCappedBound(n, d, alphaR)
		return thr.Cmp(bound) <= 0 && bound.Cmp(loose) <= 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem4EqualityCondition(t *testing.T) {
	// |R[i]| = αR and |T[i]| = αT★ in every slot attains Thr★_{αR,αT}.
	n, d := 10, 2
	alphaT, alphaR := 3, 4
	aStar := OptimalTransmittersCapped(n, d, alphaT)
	var tSlots, rSlots [][]int
	for i := 0; i < n; i++ {
		ts := make([]int, aStar)
		for j := range ts {
			ts[j] = (i + j) % n
		}
		rs := make([]int, alphaR)
		for j := range rs {
			rs[j] = (i + aStar + j) % n
		}
		tSlots = append(tSlots, ts)
		rSlots = append(rSlots, rs)
	}
	s, err := New(n, tSlots, rSlots)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsAlphaSchedule(alphaT, alphaR) {
		t.Fatal("not an (αT, αR)-schedule")
	}
	got := AvgThroughput(s, d)
	want := CappedThroughputBound(n, d, alphaT, alphaR)
	if got.Cmp(want) != 0 {
		t.Fatalf("Thr = %s, want Thr★ = %s", got, want)
	}
}

func TestOptimalTransmittersCappedRespectsCap(t *testing.T) {
	for _, tc := range []struct{ n, d, alphaT, want int }{
		{10, 2, 1, 1},   // cap binds
		{10, 2, 100, 4}, // (10-2)/2 = 4 unconstrained
		{10, 3, 2, 2},
		{9, 2, 4, 4}, // (9-2)/2 = 3.5; 4·C(4,1)=16 beats 3·C(5,1)=15
	} {
		got := OptimalTransmittersCapped(tc.n, tc.d, tc.alphaT)
		if got != tc.want {
			t.Fatalf("OptimalTransmittersCapped(%d,%d,%d) = %d, want %d",
				tc.n, tc.d, tc.alphaT, got, tc.want)
		}
		if got > tc.alphaT {
			t.Fatal("capped optimum exceeds cap")
		}
	}
}

func TestRatioRAtOptimumIsOne(t *testing.T) {
	for _, tc := range [][3]int{{10, 2, 3}, {12, 3, 100}, {9, 2, 2}, {20, 4, 5}} {
		n, d, alphaT := tc[0], tc[1], tc[2]
		aStar := OptimalTransmittersCapped(n, d, alphaT)
		if got := RatioR(n, d, alphaT, aStar); got.Cmp(big.NewRat(1, 1)) != 0 {
			t.Fatalf("r(αT★) = %s, want 1", got)
		}
		// r is below 1 for smaller transmitter counts (monotone up to peak).
		for x := 1; x < aStar; x++ {
			if RatioR(n, d, alphaT, x).Cmp(big.NewRat(1, 1)) >= 0 {
				t.Fatalf("r(%d) >= 1 below the optimum", x)
			}
		}
	}
}

func TestOptimalityRatioIdentity(t *testing.T) {
	// §7: Thr/Thr★ == (1/L)·Σ r(|T[i]|) when |R[i]| = αR in every slot.
	n, d := 8, 2
	alphaT, alphaR := 3, 3
	var tSlots, rSlots [][]int
	sizes := []int{1, 2, 3, 3, 2}
	for i, sz := range sizes {
		ts := make([]int, sz)
		for j := range ts {
			ts[j] = (i + j) % n
		}
		rs := make([]int, alphaR)
		for j := range rs {
			rs[j] = (i + sz + j) % n
		}
		tSlots = append(tSlots, ts)
		rSlots = append(rSlots, rs)
	}
	s, err := New(n, tSlots, rSlots)
	if err != nil {
		t.Fatal(err)
	}
	lhs := OptimalityRatio(s, d, alphaT, alphaR)
	rhs := new(big.Rat)
	for _, sz := range sizes {
		rhs.Add(rhs, RatioR(n, d, alphaT, sz))
	}
	rhs.Quo(rhs, big.NewRat(int64(len(sizes)), 1))
	if lhs.Cmp(rhs) != 0 {
		t.Fatalf("optimality ratio %s != (1/L)Σr = %s", lhs, rhs)
	}
}

func TestNonSleepingBeatsSleepingOnAverage(t *testing.T) {
	// Theorem 2 corollary: with the same T, shrinking R can only lower the
	// average worst-case throughput.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(4)
		L := 1 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		full := randomSchedule(rng, n, L, 0.4, 1.0) // everyone not Tx listens
		// Build a sleeping variant by dropping some receivers.
		tSets := make([][]int, L)
		rSets := make([][]int, L)
		for i := 0; i < L; i++ {
			tSets[i] = full.T(i).Elements()
			for _, x := range full.R(i).Elements() {
				if rng.Bool(0.7) {
					rSets[i] = append(rSets[i], x)
				}
			}
		}
		sleepy, err := New(n, tSets, rSets)
		if err != nil {
			return false
		}
		return AvgThroughput(sleepy, d).Cmp(AvgThroughput(full, d)) <= 0
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Phenomenon(t *testing.T) {
	// §5.2 / Figure 1: on a *specific* topology, a sleeping schedule can
	// preserve the non-sleeping schedule's delivered throughput. We verify
	// the schedule-side part here: taking TDMA on 4 nodes and waking each
	// receiver only in the slots of its actual neighbours (ring topology
	// 0-1-2-3-0) keeps 𝒯(x, y, S) unchanged for every edge of that ring,
	// while the average worst-case throughput over all of N(n, D) drops.
	n := 4
	full := tdma(n)
	// Ring neighbours.
	nbr := map[int][]int{0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {0, 2}}
	tSets := make([][]int, n)
	rSets := make([][]int, n)
	for i := 0; i < n; i++ {
		tSets[i] = []int{i}
		rSets[i] = append([]int(nil), nbr[i]...) // only i's neighbours listen
	}
	sleepy, err := New(n, tSets, rSets)
	if err != nil {
		t.Fatal(err)
	}
	if sleepy.IsNonSleeping() {
		t.Fatal("sleepy schedule should sleep someone")
	}
	// Per-edge guaranteed slots on the ring are identical.
	for x, ys := range nbr {
		for _, y := range ys {
			var others []int
			for _, z := range nbr[y] {
				if z != x {
					others = append(others, z)
				}
			}
			a := full.TSlots(x, y, others)
			b := sleepy.TSlots(x, y, others)
			if !a.Equal(b) {
				t.Fatalf("edge %d→%d: slots %v vs %v", x, y, a, b)
			}
		}
	}
	// Class-wide average drops strictly (Theorem 2 with smaller |R[i]|).
	if AvgThroughput(sleepy, 2).Cmp(AvgThroughput(full, 2)) >= 0 {
		t.Fatal("class-wide average should drop when receivers sleep")
	}
}

func TestConstructedFrameLengthAndCap(t *testing.T) {
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns := mustFromFamily(t, fam)
	aStar := OptimalTransmittersCapped(ns.N(), 2, 2)
	got := ConstructedFrameLength(ns, aStar, 3)
	cap := FrameLengthCap(ns, aStar, 3)
	if got > cap {
		t.Fatalf("frame length %d exceeds cap %d", got, cap)
	}
	// Direct sum check.
	want := 0
	for i := 0; i < ns.L(); i++ {
		ti := ns.T(i).Count()
		want += combin.CeilDiv(ti, aStar) * combin.CeilDiv(ns.N()-ti, 3)
	}
	if got != want {
		t.Fatalf("frame length %d != direct sum %d", got, want)
	}
}

func mustFromFamily(t *testing.T, f *cff.Family) *Schedule {
	t.Helper()
	s, err := ScheduleFromFamily(f.L, f.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMinFrameLowerBound(t *testing.T) {
	cases := []struct{ n, alphaT, alphaR, want int }{
		{6, 1, 2, 18},  // each node needs ⌈5/2⌉ = 3 slots → 18
		{6, 1, 3, 12},  //
		{6, 1, 5, 6},   // TDMA territory
		{8, 2, 4, 8},   // ⌈8·2/2⌉
		{10, 2, 4, 15}, // ⌈10·3/2⌉
		{25, 3, 5, 42}, // ⌈25·5/3⌉
	}
	for _, c := range cases {
		if got := MinFrameLowerBound(c.n, c.alphaT, c.alphaR); got != c.want {
			t.Fatalf("MinFrameLowerBound(%d,%d,%d) = %d, want %d", c.n, c.alphaT, c.alphaR, got, c.want)
		}
	}
	// Every TT schedule this library builds must respect the bound.
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns := mustFromFamily(t, fam)
	out, err := Construct(ns, ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.L() < MinFrameLowerBound(9, out.MaxTransmitters(), out.MaxReceivers()) {
		t.Fatal("constructed schedule beats the counting bound — bound derivation broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad args accepted")
		}
	}()
	MinFrameLowerBound(1, 1, 1)
}

func TestAnalysisPanicsOnBadInputs(t *testing.T) {
	s := tdma(4)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("MinThroughput D=0", func() { MinThroughput(s, 0) })
	mustPanic("AvgThroughput D=n", func() { AvgThroughput(s, 4) })
	mustPanic("G x<0", func() { G(4, 2, -1) })
	mustPanic("CappedThroughputBound αR=0", func() { CappedThroughputBound(6, 2, 2, 0) })
	mustPanic("OptimalTransmittersCapped αT=0", func() { OptimalTransmittersCapped(6, 2, 0) })
}
