package core

import (
	"repro/internal/bitset"
)

// Latency analysis. The abstract promises "bounding packet latency in the
// presence of collisions": topology transparency gives every link at least
// one guaranteed collision-free slot per frame, so the wait for such a slot
// is bounded by the largest cyclic gap between guaranteed slots. These
// functions compute that bound exactly.

// maxCyclicGap returns the largest number of slots a packet arriving at an
// arbitrary slot may wait until the next slot in set, treating the frame of
// length l as cyclic. A packet arriving in a guaranteed slot waits 0; with
// a single guaranteed slot the worst wait is l-1. Returns -1 for an empty
// set (no guaranteed slot ever — the link can starve).
func maxCyclicGap(set *bitset.Set, l int) int {
	elems := set.Elements()
	if len(elems) == 0 {
		return -1
	}
	maxGap := 0
	for i := 0; i < len(elems); i++ {
		var gap int
		if i == 0 {
			gap = elems[0] + l - elems[len(elems)-1]
		} else {
			gap = elems[i] - elems[i-1]
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	// A packet arriving immediately after slot g_i waits until g_{i+1}:
	// gap-1 full slots pass, then it transmits; the wait in slots is gap-1.
	return maxGap - 1
}

// HopLatencyBound returns the worst-case wait, in slots, for a guaranteed
// collision-free transmission opportunity from x to y when y's other
// neighbours are exactly S — the largest cyclic gap between the slots of
// 𝒯(x, y, S). It returns -1 when no guaranteed slot exists (the schedule
// is not topology-transparent for a class containing this neighbourhood).
func HopLatencyBound(s *Schedule, x, y int, set []int) int {
	return maxCyclicGap(s.TSlots(x, y, set), s.L())
}

// WorstCaseHopLatency returns the worst-case wait, in slots, for a
// guaranteed collision-free slot on any link with any neighbourhood in
// N(n, D): the maximum of HopLatencyBound over all (x, y, S) with
// |S| = D-1. The second result is false when some link has no guaranteed
// slot at all (the schedule is not topology-transparent), in which case no
// finite bound exists.
//
// For topology-transparent schedules the bound is always at most L-1:
// every link has at least one guaranteed slot per frame, and that slot
// recurs with period L.
func WorstCaseHopLatency(s *Schedule, d int) (int, bool) {
	validateD(s.n, d)
	worst := 0
	ok := true
	forEachTriple(s, d, func(x, y int, set []int) bool {
		g := HopLatencyBound(s, x, y, set)
		if g < 0 {
			ok = false
			return false
		}
		if g > worst {
			worst = g
		}
		return true
	})
	if !ok {
		return -1, false
	}
	return worst, true
}
