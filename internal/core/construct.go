package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combin"
)

// DivisionStrategy selects how lines 3-4 of the Figure 2 algorithm divide a
// slot's transmitter set T[i] and complement V_n - T[i] into fixed-size
// (possibly overlapping) subsets. The paper notes the division is not
// unique and does not affect correctness, frame length, or average
// worst-case throughput (Theorems 6-8); it does affect per-node energy
// balance (§7, closing remark).
type DivisionStrategy int

const (
	// Sequential divides a sorted element list into consecutive chunks; the
	// final chunk, when short, is extended backwards to reach the required
	// size (so chunks may overlap). Simple and deterministic.
	Sequential DivisionStrategy = iota
	// Balanced deals elements round-robin and fills each subset to the
	// required size with the globally least-scheduled nodes, tracking
	// per-node transmit and receive occurrence counts across the whole
	// construction. This implements the §7 balanced-energy division: when
	// the input schedule is balanced, per-node activity in the output stays
	// uniform up to the unavoidable rounding remainder.
	Balanced
)

func (d DivisionStrategy) String() string {
	switch d {
	case Sequential:
		return "sequential"
	case Balanced:
		return "balanced"
	default:
		return fmt.Sprintf("DivisionStrategy(%d)", int(d))
	}
}

// ConstructOptions parameterizes Construct.
type ConstructOptions struct {
	// AlphaT and AlphaR are the per-slot caps of the target
	// (αT, αR)-schedule. Both must be >= 1 and AlphaT + AlphaR <= n.
	AlphaT, AlphaR int
	// Strategy selects the subset-division rule (default Sequential).
	Strategy DivisionStrategy
	// UseExactAlphaT skips the Theorem 4 optimization and uses AlphaT
	// itself as the per-slot transmitter subset size. This implements the
	// remark after Theorem 6: when every |T[i]| >= AlphaT, the result has
	// exactly AlphaT transmitters and exactly AlphaR receivers per slot.
	// When false (the default), the algorithm's main program first computes
	// αT★ = min{AlphaT, α} per Theorem 4 and targets that.
	UseExactAlphaT bool
	// D is the degree bound of the target network class N(n, D); used only
	// to compute αT★ (ignored when UseExactAlphaT is set).
	D int
}

// Construct implements the Figure 2 algorithm: given a topology-transparent
// non-sleeping schedule ⟨T⟩ for N(n, D), it builds an (αT, αR)-schedule
// that is topology-transparent for N(n, D) (Theorem 6), with frame length
// given by Theorem 7, average worst-case throughput bounded below by
// Theorem 8 (optimal when min_i |T[i]| >= αT★), and minimum throughput
// bounded below by Theorem 9.
//
// The input must be non-sleeping. Topology-transparency of the input is the
// caller's responsibility (verify with CheckRequirement1 or construct from
// a cover-free family); Construct preserves it but cannot create it.
func Construct(ns *Schedule, opts ConstructOptions) (*Schedule, error) {
	n := ns.n
	if !ns.IsNonSleeping() {
		return nil, fmt.Errorf("core: Construct requires a non-sleeping schedule")
	}
	if opts.AlphaT < 1 || opts.AlphaR < 1 {
		return nil, fmt.Errorf("core: Construct requires αT, αR >= 1 (got %d, %d)", opts.AlphaT, opts.AlphaR)
	}
	if opts.AlphaT+opts.AlphaR > n {
		return nil, fmt.Errorf("core: Construct requires αT + αR <= n (got %d + %d > %d)",
			opts.AlphaT, opts.AlphaR, n)
	}
	sizeT := opts.AlphaT
	if !opts.UseExactAlphaT {
		if opts.D < 1 || opts.D > n-1 {
			return nil, fmt.Errorf("core: Construct requires D in [1, n-1] (got %d)", opts.D)
		}
		sizeT = OptimalTransmittersCapped(n, opts.D, opts.AlphaT)
	}

	div := newDivider(n, opts.Strategy)
	var outT, outR []*bitset.Set
	for i := 0; i < ns.L(); i++ {
		tElems := ns.t[i].Elements()
		rElems := ns.r[i].Elements() // == V_n - T[i] for non-sleeping input
		if len(tElems) == 0 {
			// A slot nobody transmits in contributes nothing; Figure 2's
			// loop would emit k_T = 0 subsets. Skip it.
			continue
		}
		tSubsets := div.divideT(tElems, sizeT)
		rSubsets := div.divideR(rElems, opts.AlphaR)
		for _, ts := range tSubsets {
			for _, rsub := range rSubsets {
				tSet := bitset.FromSlice(n, ts)
				rSet := bitset.FromSlice(n, rsub)
				div.pad(rSet, tSet, opts.AlphaR)
				outT = append(outT, tSet)
				outR = append(outR, rSet)
			}
		}
	}
	if len(outT) == 0 {
		return nil, fmt.Errorf("core: Construct produced an empty schedule (no slot has transmitters)")
	}
	out, err := FromSets(n, outT, outR)
	if err != nil {
		return nil, fmt.Errorf("core: Construct internal error: %w", err)
	}
	return out, nil
}

// divider implements the two division strategies. The Balanced strategy
// carries per-node transmit/receive occurrence counters across the whole
// construction so over-coverage lands on the least-scheduled nodes.
type divider struct {
	strategy DivisionStrategy
	txUse    []int
	rxUse    []int
}

func newDivider(n int, strategy DivisionStrategy) *divider {
	return &divider{
		strategy: strategy,
		txUse:    make([]int, n),
		rxUse:    make([]int, n),
	}
}

func (d *divider) divideT(elems []int, size int) [][]int {
	return d.divide(elems, size, d.txUse)
}

func (d *divider) divideR(elems []int, size int) [][]int {
	return d.divide(elems, size, d.rxUse)
}

// divide splits elems into k = ⌈m/size⌉ subsets, each of size
// min(size, m), per lines 3-4 of Figure 2. Subsets may overlap; their
// union is all of elems.
func (d *divider) divide(elems []int, size int, use []int) [][]int {
	m := len(elems)
	if m == 0 {
		return nil
	}
	if size > m {
		size = m
	}
	k := combin.CeilDiv(m, size)
	out := make([][]int, k)
	switch d.strategy {
	case Balanced:
		// Deal round-robin, then fill each subset to the target size with
		// the globally least-used elements not already present. Counts are
		// updated as picks are made so successive fills self-balance.
		for idx, e := range elems {
			out[idx%k] = append(out[idx%k], e)
			use[e]++
		}
		for j := range out {
			for len(out[j]) < size {
				pick := leastUsed(elems, out[j], use)
				out[j] = append(out[j], pick)
				use[pick]++
			}
		}
	default: // Sequential
		for j := 0; j < k; j++ {
			start := j * size
			if start+size > m {
				start = m - size
			}
			out[j] = append([]int(nil), elems[start:start+size]...)
		}
	}
	return out
}

// leastUsed returns the element of elems with the smallest use count that
// does not already occur in exclude, breaking ties by element id.
func leastUsed(elems, exclude []int, use []int) int {
	best := -1
	for _, e := range elems {
		skip := false
		for _, x := range exclude {
			if x == e {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if best < 0 || use[e] < use[best] {
			best = e
		}
	}
	if best < 0 {
		panic("core: leastUsed found no candidate")
	}
	return best
}

// pad implements line 8 of Figure 2: extend the receiver subset to exactly
// alphaR nodes using nodes of V_n - T̄[k] (never creating a
// transmit+receive conflict). Feasible because |T̄[k]| <= αT and
// αT + αR <= n. Under the Balanced strategy the least receive-scheduled
// eligible nodes are chosen; Sequential takes the smallest ids.
func (d *divider) pad(rSet, tSet *bitset.Set, alphaR int) {
	need := alphaR - rSet.Count()
	if need <= 0 {
		return
	}
	n := rSet.Cap()
	for ; need > 0; need-- {
		pick := -1
		for v := 0; v < n; v++ {
			if tSet.Contains(v) || rSet.Contains(v) {
				continue
			}
			if pick < 0 {
				pick = v
				if d.strategy != Balanced {
					break // smallest id suffices
				}
				continue
			}
			if d.rxUse[v] < d.rxUse[pick] {
				pick = v
			}
		}
		if pick < 0 {
			panic(fmt.Sprintf("core: pad could not reach αR = %d (n = %d, |T| = %d)", alphaR, n, tSet.Count()))
		}
		rSet.Add(pick)
		d.rxUse[pick]++
	}
}
