package core

import (
	"fmt"
	"strings"
)

// Grid renders the schedule as a nodes × slots character grid: 'T' where
// the node may transmit, 'R' where it may receive, '.' where it sleeps.
// Rows are nodes, columns are slots — the natural way to eyeball a duty
// cycle ("how often is each row awake?") and to spot imbalances. Intended
// for debugging, docs, and CLI output; wide frames wrap at width columns
// (0 means no wrap).
func (s *Schedule) Grid(width int) string {
	L := s.L()
	if width <= 0 || width > L {
		width = L
	}
	var b strings.Builder
	for start := 0; start < L; start += width {
		end := start + width
		if end > L {
			end = L
		}
		// Slot header (mod 10 digits to keep columns single-width).
		fmt.Fprintf(&b, "%*s ", nodeWidth(s.n), "")
		for i := start; i < end; i++ {
			b.WriteByte(byte('0' + i%10))
		}
		b.WriteByte('\n')
		for x := 0; x < s.n; x++ {
			fmt.Fprintf(&b, "%*d ", nodeWidth(s.n), x)
			for i := start; i < end; i++ {
				switch s.RoleOf(x, i) {
				case Transmit:
					b.WriteByte('T')
				case Receive:
					b.WriteByte('R')
				default:
					b.WriteByte('.')
				}
			}
			b.WriteByte('\n')
		}
		if end < L {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func nodeWidth(n int) int {
	w := 1
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}
