package core

import (
	"fmt"
)

// Witness records a violation of a topology-transparency requirement: for
// transmitter X and neighbourhood set Y (with |Y| = D), either no free slot
// exists (K == -1, violating condition (1) of Requirement 3 / Requirement
// 1) or the receiver Y[K] is never awake during X's free slots (violating
// condition (2)).
type Witness struct {
	X int
	Y []int
	K int
}

func (w *Witness) String() string {
	if w.K < 0 {
		return fmt.Sprintf("node %d has no free slot against neighbourhood %v", w.X, w.Y)
	}
	return fmt.Sprintf("node %d cannot reach receiver %d (neighbourhood %v) in any free slot", w.X, w.Y[w.K], w.Y)
}

func validateD(n, d int) {
	if d < 1 || d > n-1 {
		panic(fmt.Sprintf("core: D = %d outside [1, n-1] for n = %d", d, n))
	}
}

func validateNode(n, x int) {
	if x < 0 || x >= n {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", x, n))
	}
}

// CheckRequirement1 exhaustively verifies Requirement 1 on the transmission
// half ⟨T⟩ of the schedule: for every node x and every set Y of D other
// nodes, freeSlots(x, Y) ≠ ∅. It returns a violation witness or nil.
// This is the cover-free-family condition; only tran(·) is consulted, so it
// may be applied to any schedule, sleeping or not.
//
// The scan runs on the prefix-cached Verifier kernel; construct a Verifier
// directly to amortize its scratch over many checks of the same schedule.
func CheckRequirement1(s *Schedule, d int) *Witness {
	return NewVerifier(s, d).Requirement1()
}

// CheckRequirement3 exhaustively verifies Requirement 3: for every node x
// and every set Y = {y_0..y_{D-1}} of D other nodes, (1) freeSlots(x, Y) is
// non-empty and (2) every y_k is scheduled to receive in at least one slot
// of freeSlots(x, Y). It returns a violation witness or nil; a nil result
// certifies (by Theorem 1 ⇔ Requirement 2, and the discussion in §4 of the
// paper) that the schedule is topology-transparent for N(n, D).
func CheckRequirement3(s *Schedule, d int) *Witness {
	return NewVerifier(s, d).Requirement3()
}

// CheckRequirement3Node verifies Requirement 3 restricted to a single
// transmitter node x: all D-subsets Y of the other nodes are checked. It
// returns the first violating witness in lexicographic Y order, or nil.
// CheckRequirement3 is the union of these per-node checks; incremental
// schedule optimizers use the per-node form to probe constraints in
// arbitrary order.
func CheckRequirement3Node(s *Schedule, d, x int) *Witness {
	return NewVerifier(s, d).Requirement3Node(x)
}

// Req2Witness records a violation of Requirement 2: the σ-slots from X to
// the receiver Y are entirely covered by the σ-slots of the interferers.
type Req2Witness struct {
	X, Y       int
	Interferer []int
}

func (w *Req2Witness) String() string {
	return fmt.Sprintf("σ(%d→%d) ⊆ ∪ σ(y_i→%d) for interferers %v", w.X, w.Y, w.Y, w.Interferer)
}

// CheckRequirement2 exhaustively verifies Requirement 2 (the formulation of
// Dukes-Colbourn-Syrotiuk [6]): for all distinct x, y and every set of
// d <= D-1 interferers {y_1..y_d} ⊆ V_n - {x, y},
// ∪_i σ(y_i, y) ⊉ σ(x, y). It returns a violation witness or nil.
//
// Coverage by a union is monotone in adding interferers, so it suffices to
// check d = min(D-1, n-2); smaller interferer sets are implied. (With
// d = 0 the union is empty, so σ(x, y) = ∅ is itself a violation, which
// the d-maximal check also reports.)
func CheckRequirement2(s *Schedule, d int) *Req2Witness {
	return NewVerifier(s, d).Requirement2()
}

// IsTopologyTransparent reports whether the schedule satisfies Requirement
// 3 (equivalently, Requirement 2) for the network class N(n, D).
func IsTopologyTransparent(s *Schedule, d int) bool {
	return CheckRequirement3(s, d) == nil
}
