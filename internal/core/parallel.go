package core

import (
	"math"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel variants of the exhaustive verifiers. The Requirement checkers
// and the minimum-throughput scan iterate over n·C(n-1, D) (respectively
// n²·C(n-2, D-1)) subsets — embarrassingly parallel over the transmitter
// node x. Each worker owns a private Verifier (all scratch local, no
// sharing on the hot path) and results merge deterministically, so these
// return exactly what their sequential counterparts do regardless of the
// worker count.
//
// Use the parallel variants for large classes on multi-core hosts; on a
// single core the goroutine scheduling overhead makes the sequential
// checkers slightly faster, which the Requirement3 benchmark pair
// quantifies on any given machine.

// resolveWorkers maps the workers argument onto a concrete count.
func resolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelWitnessScan distributes a per-node witness check over w workers,
// returning the violation with the smallest transmitter node x (and, for
// that x, the first violating Y in lexicographic order) — the same witness
// the sequential checker finds. check is invoked on a worker-private
// Verifier.
func parallelWitnessScan(s *Schedule, d, w int, check func(v *Verifier, x int) *Witness) *Witness {
	// bestX holds the smallest x with a known violation; workers skip any
	// x beyond it (a violation at smaller x supersedes theirs).
	var bestX atomic.Int64
	bestX.Store(math.MaxInt64)
	results := make([]*Witness, s.n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := NewVerifier(s, d)
			for {
				x := int(next.Add(1)) - 1
				if x >= s.n {
					return
				}
				if int64(x) > bestX.Load() {
					continue // a smaller-x violation already exists
				}
				if found := check(v, x); found != nil {
					results[x] = found
					// Lower bestX monotonically.
					for {
						cur := bestX.Load()
						if int64(x) >= cur || bestX.CompareAndSwap(cur, int64(x)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for x := 0; x < s.n; x++ {
		if results[x] != nil {
			return results[x]
		}
	}
	return nil
}

// CheckRequirement3Parallel is CheckRequirement3 distributed over workers
// goroutines (0 = GOMAXPROCS). It returns the violation with the smallest
// transmitter node x (and, for that x, the first violating Y in
// lexicographic order) — the same witness the sequential checker finds.
func CheckRequirement3Parallel(s *Schedule, d, workers int) *Witness {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return CheckRequirement3(s, d)
	}
	return parallelWitnessScan(s, d, w, func(v *Verifier, x int) *Witness {
		return v.Requirement3Node(x)
	})
}

// CheckRequirement1Parallel is CheckRequirement1 distributed over workers
// goroutines (0 = GOMAXPROCS), with the same smallest-x witness guarantee.
func CheckRequirement1Parallel(s *Schedule, d, workers int) *Witness {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return CheckRequirement1(s, d)
	}
	return parallelWitnessScan(s, d, w, func(v *Verifier, x int) *Witness {
		return v.Requirement1Node(x)
	})
}

// MinThroughputParallel is MinThroughput distributed over workers
// goroutines (0 = GOMAXPROCS). Minimum is commutative, so the result is
// identical to the sequential scan; workers short-circuit globally once
// any of them finds a zero.
func MinThroughputParallel(s *Schedule, d, workers int) *big.Rat {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return MinThroughput(s, d)
	}
	var zero atomic.Bool
	mins := make([]int, s.n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := NewVerifier(s, d)
			for {
				x := int(next.Add(1)) - 1
				if x >= s.n {
					return
				}
				if zero.Load() {
					mins[x] = 0
					continue
				}
				mins[x] = v.minThroughputNode(x)
				if mins[x] == 0 {
					zero.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	m := mins[0]
	for _, v := range mins[1:] {
		if v < m {
			m = v
		}
	}
	if zero.Load() {
		m = 0
	}
	return big.NewRat(int64(m), int64(s.L()))
}
