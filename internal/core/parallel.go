package core

import (
	"math"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/combin"
)

// Parallel variants of the exhaustive verifiers. The Requirement checkers
// and the minimum-throughput scan iterate over n·C(n-1, D) (respectively
// n²·C(n-2, D-1)) subsets — embarrassingly parallel over the transmitter
// node x. Each worker owns its scratch bitsets (no sharing on the hot
// path) and results merge deterministically, so these return exactly what
// their sequential counterparts do regardless of the worker count.
//
// Use the parallel variants for large classes on multi-core hosts; on a
// single core the goroutine scheduling overhead makes the sequential
// checkers slightly faster, which the Requirement3 benchmark pair
// quantifies on any given machine.

// resolveWorkers maps the workers argument onto a concrete count.
func resolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// CheckRequirement3Parallel is CheckRequirement3 distributed over workers
// goroutines (0 = GOMAXPROCS). It returns the violation with the smallest
// transmitter node x (and, for that x, the first violating Y in
// lexicographic order) — the same witness the sequential checker finds.
func CheckRequirement3Parallel(s *Schedule, d, workers int) *Witness {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return CheckRequirement3(s, d)
	}
	// bestX holds the smallest x with a known violation; workers skip any
	// x beyond it (a violation at smaller x supersedes theirs).
	var bestX atomic.Int64
	bestX.Store(math.MaxInt64)
	results := make([]*Witness, s.n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			others := make([]int, 0, s.n-1)
			fs := bitset.New(s.L())
			for {
				x := int(next.Add(1)) - 1
				if x >= s.n {
					return
				}
				if int64(x) > bestX.Load() {
					continue // a smaller-x violation already exists
				}
				others = others[:0]
				for v := 0; v < s.n; v++ {
					if v != x {
						others = append(others, v)
					}
				}
				var found *Witness
				combin.CombinationsOf(others, d, func(y []int) bool {
					fs.Copy(s.tran[x])
					for _, v := range y {
						fs.DifferenceWith(s.tran[v])
					}
					if fs.Empty() {
						found = &Witness{X: x, Y: append([]int(nil), y...), K: -1}
						return false
					}
					for k, v := range y {
						if !s.recv[v].Intersects(fs) {
							found = &Witness{X: x, Y: append([]int(nil), y...), K: k}
							return false
						}
					}
					return true
				})
				if found != nil {
					results[x] = found
					// Lower bestX monotonically.
					for {
						cur := bestX.Load()
						if int64(x) >= cur || bestX.CompareAndSwap(cur, int64(x)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for x := 0; x < s.n; x++ {
		if results[x] != nil {
			return results[x]
		}
	}
	return nil
}

// CheckRequirement1Parallel is CheckRequirement1 distributed over workers
// goroutines (0 = GOMAXPROCS), with the same smallest-x witness guarantee.
func CheckRequirement1Parallel(s *Schedule, d, workers int) *Witness {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return CheckRequirement1(s, d)
	}
	var bestX atomic.Int64
	bestX.Store(math.MaxInt64)
	results := make([]*Witness, s.n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			others := make([]int, 0, s.n-1)
			fs := bitset.New(s.L())
			for {
				x := int(next.Add(1)) - 1
				if x >= s.n {
					return
				}
				if int64(x) > bestX.Load() {
					continue
				}
				others = others[:0]
				for v := 0; v < s.n; v++ {
					if v != x {
						others = append(others, v)
					}
				}
				var found *Witness
				combin.CombinationsOf(others, d, func(y []int) bool {
					fs.Copy(s.tran[x])
					for _, v := range y {
						fs.DifferenceWith(s.tran[v])
					}
					if fs.Empty() {
						found = &Witness{X: x, Y: append([]int(nil), y...), K: -1}
						return false
					}
					return true
				})
				if found != nil {
					results[x] = found
					for {
						cur := bestX.Load()
						if int64(x) >= cur || bestX.CompareAndSwap(cur, int64(x)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for x := 0; x < s.n; x++ {
		if results[x] != nil {
			return results[x]
		}
	}
	return nil
}

// MinThroughputParallel is MinThroughput distributed over workers
// goroutines (0 = GOMAXPROCS). Minimum is commutative, so the result is
// identical to the sequential scan; workers short-circuit globally once
// any of them finds a zero.
func MinThroughputParallel(s *Schedule, d, workers int) *big.Rat {
	validateD(s.n, d)
	w := resolveWorkers(workers)
	if w <= 1 || s.n < 2 {
		return MinThroughput(s, d)
	}
	var zero atomic.Bool
	mins := make([]int, s.n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			others := make([]int, 0, s.n-2)
			fs := bitset.New(s.L())
			for {
				x := int(next.Add(1)) - 1
				if x >= s.n {
					return
				}
				localMin := -1
				if zero.Load() {
					mins[x] = 0
					continue
				}
				for y := 0; y < s.n && localMin != 0; y++ {
					if y == x {
						continue
					}
					others = others[:0]
					for v := 0; v < s.n; v++ {
						if v != x && v != y {
							others = append(others, v)
						}
					}
					combin.CombinationsOf(others, d-1, func(set []int) bool {
						fs.Copy(s.tran[x])
						fs.DifferenceWith(s.tran[y])
						for _, v := range set {
							fs.DifferenceWith(s.tran[v])
						}
						fs.IntersectWith(s.recv[y])
						if c := fs.Count(); localMin < 0 || c < localMin {
							localMin = c
						}
						return localMin != 0
					})
				}
				if localMin < 0 {
					localMin = 0
				}
				mins[x] = localMin
				if localMin == 0 {
					zero.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	m := mins[0]
	for _, v := range mins[1:] {
		if v < m {
			m = v
		}
	}
	if zero.Load() {
		m = 0
	}
	return big.NewRat(int64(m), int64(s.L()))
}
