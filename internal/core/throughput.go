package core

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
)

// Analysis functions take the network-class parameters (n is the schedule's
// universe size; D the degree bound) and compute the paper's worst-case
// throughput quantities exactly.

// MinThroughput computes Thr^min (Definition 1): the minimum over all
// ordered pairs x ≠ y and all neighbourhood completions S ⊆ V_n - {x,y}
// with |S| = D-1 of |𝒯(x, y, S)| / L. The schedule is topology-transparent
// for N(n, D) exactly when this value is positive.
//
// Cost of the underlying scan is O(n² · C(n-2, D-1) · L/64) with heavy
// pruning; it runs on the prefix-cached Verifier kernel. Construct a
// Verifier directly to amortize its scratch over many evaluations.
func MinThroughput(s *Schedule, d int) *big.Rat {
	return NewVerifier(s, d).MinThroughput()
}

// AvgThroughputBruteForce computes Thr^ave (Definition 2) directly from its
// definition: F = Σ_{x≠y} Σ_{S} |𝒯(x,y,S)| divided by
// n(n-1)·C(n-2, D-1)·L. Exponential in D; used to cross-validate the
// Theorem 2 closed form on small instances. It runs on the prefix-cached
// Verifier kernel.
func AvgThroughputBruteForce(s *Schedule, d int) *big.Rat {
	return NewVerifier(s, d).AvgThroughputBruteForce()
}

// AvgThroughput computes Thr^ave via the Theorem 2 closed form:
//
//	Thr^ave = Σ_i |T[i]|·|R[i]|·C(n-|T[i]|-1, D-1) / (n(n-1)·C(n-2,D-1)·L)
//
// Cost is Θ(L) big-integer operations.
func AvgThroughput(s *Schedule, d int) *big.Rat {
	validateD(s.n, d)
	num := new(big.Int)
	term := new(big.Int)
	for i := 0; i < s.L(); i++ {
		ti := s.t[i].Count()
		ri := s.r[i].Count()
		if ti == 0 || ri == 0 {
			continue
		}
		term.Mul(big.NewInt(int64(ti)), big.NewInt(int64(ri)))
		term.Mul(term, combin.Binomial(s.n-ti-1, d-1))
		num.Add(num, term)
	}
	den := new(big.Int).Mul(big.NewInt(int64(s.n)), big.NewInt(int64(s.n-1)))
	den.Mul(den, combin.Binomial(s.n-2, d-1))
	den.Mul(den, big.NewInt(int64(s.L())))
	return combin.RatFromInts(num, den)
}

// G computes g_{n,D}(x) = x·C(n-x, D) / (n·C(n-1, D)): the average
// worst-case throughput of a non-sleeping schedule whose every slot has
// exactly x transmitters (§5 of the paper).
func G(n, d, x int) *big.Rat {
	if x < 0 || x > n {
		panic(fmt.Sprintf("core: G with x = %d outside [0, %d]", x, n))
	}
	num := new(big.Int).Mul(big.NewInt(int64(x)), combin.Binomial(n-x, d))
	den := new(big.Int).Mul(big.NewInt(int64(n)), combin.Binomial(n-1, d))
	return combin.RatFromInts(num, den)
}

// OptimalTransmitters returns αT★ of Theorem 3: the per-slot transmitter
// count in {⌊(n-D)/(D+1)⌋, ⌈(n-D)/(D+1)⌉} (clamped to at least 1)
// maximizing x·C(n-x, D), preferring the floor on ties, exactly as the
// theorem's case split specifies.
func OptimalTransmitters(n, d int) int {
	validateD(n, d)
	lo := (n - d) / (d + 1)
	hi := combin.CeilDiv(n-d, d+1)
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	score := func(x int) *big.Int {
		return new(big.Int).Mul(big.NewInt(int64(x)), combin.Binomial(n-x, d))
	}
	return combin.ArgmaxInt([]int{lo, hi}, score)
}

// GeneralThroughputBound returns Thr★ of Theorem 3:
// αT★·C(n-αT★, D) / (n·C(n-1, D)), the largest average worst-case
// throughput any schedule can achieve in N(n, D). It is attained exactly
// by non-sleeping schedules with |T[i]| = αT★ in every slot.
func GeneralThroughputBound(n, d int) *big.Rat {
	return G(n, d, OptimalTransmitters(n, d))
}

// LooseGeneralBound returns the closed-form relaxation of Theorem 3:
// n·D^D / ((n-D)·(D+1)^(D+1)) >= Thr★.
func LooseGeneralBound(n, d int) *big.Rat {
	validateD(n, d)
	dd := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	num := new(big.Int).Mul(big.NewInt(int64(n)), dd)
	d1 := new(big.Int).Exp(big.NewInt(int64(d+1)), big.NewInt(int64(d+1)), nil)
	den := new(big.Int).Mul(big.NewInt(int64(n-d)), d1)
	return combin.RatFromInts(num, den)
}

// OptimalTransmittersCapped returns αT★ of Theorem 4 for an
// (αT, αR)-schedule: min{αT, α}, where α is the value in
// {⌊(n-D)/D⌋, ⌈(n-D)/D⌉} (clamped to at least 1) maximizing
// x·C(n-x-1, D-1), preferring the floor on ties.
func OptimalTransmittersCapped(n, d, alphaT int) int {
	validateD(n, d)
	if alphaT < 1 {
		panic(fmt.Sprintf("core: αT = %d < 1", alphaT))
	}
	lo := (n - d) / d
	hi := combin.CeilDiv(n-d, d)
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	score := func(x int) *big.Int {
		return new(big.Int).Mul(big.NewInt(int64(x)), combin.Binomial(n-x-1, d-1))
	}
	alpha := combin.ArgmaxInt([]int{lo, hi}, score)
	if alphaT < alpha {
		return alphaT
	}
	return alpha
}

// CappedThroughputBound returns Thr★_{αR,αT} of Theorem 4:
//
//	αR·αT★·C(n-αT★-1, D-1) / (n(n-1)·C(n-2, D-1))
//
// the largest average worst-case throughput any (αT, αR)-schedule can
// achieve in N(n, D); attained exactly when |R[i]| = αR and |T[i]| = αT★
// in every slot.
func CappedThroughputBound(n, d, alphaT, alphaR int) *big.Rat {
	validateD(n, d)
	if alphaR < 1 {
		panic(fmt.Sprintf("core: αR = %d < 1", alphaR))
	}
	aStar := OptimalTransmittersCapped(n, d, alphaT)
	num := new(big.Int).Mul(big.NewInt(int64(alphaR)), big.NewInt(int64(aStar)))
	num.Mul(num, combin.Binomial(n-aStar-1, d-1))
	den := new(big.Int).Mul(big.NewInt(int64(n)), big.NewInt(int64(n-1)))
	den.Mul(den, combin.Binomial(n-2, d-1))
	return combin.RatFromInts(num, den)
}

// LooseCappedBound returns the closed-form relaxation of Theorem 4:
// αR·(n-1)·(D-1)^(D-1) / (n·(n-D)·D^D) >= Thr★_{αR,αT}.
func LooseCappedBound(n, d, alphaR int) *big.Rat {
	validateD(n, d)
	dm1 := new(big.Int).Exp(big.NewInt(int64(d-1)), big.NewInt(int64(d-1)), nil)
	num := new(big.Int).Mul(big.NewInt(int64(alphaR)), big.NewInt(int64(n-1)))
	num.Mul(num, dm1)
	dd := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	den := new(big.Int).Mul(big.NewInt(int64(n)), big.NewInt(int64(n-d)))
	den.Mul(den, dd)
	return combin.RatFromInts(num, den)
}

// RatioR computes r(x) of §7:
//
//	r(x) = (x/αT★) · Π_{i=1}^{D-1} (n-i-x)/(n-i-αT★)
//
// the ratio of the per-slot throughput contribution with x transmitters to
// that with the optimal αT★ = OptimalTransmittersCapped(n, D, αT)
// transmitters. r(αT★) == 1.
func RatioR(n, d, alphaT, x int) *big.Rat {
	validateD(n, d)
	aStar := OptimalTransmittersCapped(n, d, alphaT)
	r := big.NewRat(int64(x), int64(aStar))
	for i := 1; i <= d-1; i++ {
		num := int64(n - i - x)
		den := int64(n - i - aStar)
		if den == 0 {
			panic(fmt.Sprintf("core: RatioR denominator zero at i=%d (n=%d, αT★=%d)", i, n, aStar))
		}
		r.Mul(r, big.NewRat(num, den))
	}
	return r
}

// OptimalityRatio returns Thr^ave(s) / Thr★_{αR,αT}: how close schedule s
// comes to the Theorem 4 optimum. By §7 this equals (1/L)·Σ_i r(|T[i]|)
// when |R[i]| = αR in every slot.
func OptimalityRatio(s *Schedule, d, alphaT, alphaR int) *big.Rat {
	bound := CappedThroughputBound(s.n, d, alphaT, alphaR)
	return new(big.Rat).Quo(AvgThroughput(s, d), bound)
}

// Theorem8LowerBound computes the Theorem 8 lower bound on the optimality
// ratio of the schedule Construct produces from the non-sleeping input ns:
//
//	(r(M_in)·|A1| + c·|A2|) / (|A1| + c·|A2|)
//
// where A1 = {i : |T[i]| < αT★}, A2 = {i : |T[i]| >= αT★},
// c = (⌈n/α_m⌉ - 1) / ⌈(n - M_in)/αR⌉ and α_m = max{αT★, αR}. The bound
// equals 1 when M_in >= αT★.
func Theorem8LowerBound(ns *Schedule, d, alphaT, alphaR int) *big.Rat {
	n := ns.n
	aStar := OptimalTransmittersCapped(n, d, alphaT)
	min := ns.MinTransmitters()
	a1, a2 := 0, 0
	for i := 0; i < ns.L(); i++ {
		if ns.t[i].Count() < aStar {
			a1++
		} else {
			a2++
		}
	}
	if a1 == 0 {
		return big.NewRat(1, 1)
	}
	if min >= n {
		// A slot with T[i] = V_n in every slot cannot be topology-transparent
		// (no receivers ever); the bound is undefined for such inputs.
		panic("core: Theorem8LowerBound on a schedule with all nodes transmitting in every slot")
	}
	alphaM := aStar
	if alphaR > alphaM {
		alphaM = alphaR
	}
	cNum := int64(combin.CeilDiv(n, alphaM) - 1)
	cDen := int64(combin.CeilDiv(n-min, alphaR))
	c := big.NewRat(cNum, cDen)

	rMin := RatioR(n, d, alphaT, min)
	ca2 := new(big.Rat).Mul(c, big.NewRat(int64(a2), 1))
	num := new(big.Rat).Mul(rMin, big.NewRat(int64(a1), 1))
	num.Add(num, ca2)
	den := new(big.Rat).Add(big.NewRat(int64(a1), 1), ca2)
	return num.Quo(num, den)
}

// Theorem9Bound computes the Theorem 9 lower bound on the minimum
// throughput of the constructed schedule: (L/L̄)·Thr^min(ns), where L̄ is
// the constructed frame length (Theorem 7).
func Theorem9Bound(ns *Schedule, d, alphaT, alphaR int) *big.Rat {
	n := ns.n
	aStar := OptimalTransmittersCapped(n, d, alphaT)
	lBar := ConstructedFrameLength(ns, aStar, alphaR)
	ratio := big.NewRat(int64(ns.L()), int64(lBar))
	return ratio.Mul(ratio, MinThroughput(ns, d))
}

// ConstructedFrameLength returns the Theorem 7 frame length of the schedule
// Construct produces: Σ_i ⌈|T[i]|/αT★⌉·⌈(n-|T[i]|)/αR⌉.
func ConstructedFrameLength(ns *Schedule, aStar, alphaR int) int {
	total := 0
	for i := 0; i < ns.L(); i++ {
		ti := ns.t[i].Count()
		total += combin.CeilDiv(ti, aStar) * combin.CeilDiv(ns.n-ti, alphaR)
	}
	return total
}

// MinFrameLowerBound returns a counting lower bound on the frame length of
// ANY topology-transparent (αT, αR)-schedule for N(n, D): condition (2) of
// Requirement 3 forces every other node to appear in the receiver set of
// some slot in tran(x), so x needs at least ⌈(n-1)/αR⌉ transmit slots; with
// at most αT transmitters per slot, L ≥ ⌈n·⌈(n-1)/αR⌉ / αT⌉.
//
// When Construct's output (Theorem 7) matches this bound, the paper's
// two-step construction is frame-length optimal for that instance.
func MinFrameLowerBound(n, alphaT, alphaR int) int {
	if n < 2 || alphaT < 1 || alphaR < 1 {
		panic(fmt.Sprintf("core: MinFrameLowerBound(%d, %d, %d)", n, alphaT, alphaR))
	}
	perNode := combin.CeilDiv(n-1, alphaR)
	return combin.CeilDiv(n*perNode, alphaT)
}

// FrameLengthCap returns the Theorem 7 closed-form upper bound
// ⌈M_ax/αT★⌉·⌈(n-M_in)/αR⌉·L on the constructed frame length.
func FrameLengthCap(ns *Schedule, aStar, alphaR int) int {
	return combin.CeilDiv(ns.MaxTransmitters(), aStar) *
		combin.CeilDiv(ns.n-ns.MinTransmitters(), alphaR) * ns.L()
}
