package core

import (
	"testing"

	"repro/internal/cff"
)

// Benchmark pairs pinning the prefix-cached kernels against the naive
// reference scans on the polynomial-construction schedules of the paper's
// own operating points: (n=31, D=3) → GF(7), L=49 and (n=16, D=4) → GF(5),
// L=25. The <Name>Naive / <Name>Prefix pairs are matched by cmd/ttdcbench
// into the speedup table of BENCH_core.json (see `make bench`).

func benchPolySchedule(b *testing.B, n, d int) *Schedule {
	b.Helper()
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchRequirement3(b *testing.B, n, d int, naive bool) {
	s := benchPolySchedule(b, n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w *Witness
		if naive {
			w = checkRequirement3Naive(s, d)
		} else {
			w = CheckRequirement3(s, d)
		}
		if w != nil {
			b.Fatal("polynomial schedule must satisfy Requirement 3")
		}
	}
}

func benchMinThroughput(b *testing.B, n, d int, naive bool) {
	s := benchPolySchedule(b, n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sign int
		if naive {
			sign = minThroughputNaive(s, d).Sign()
		} else {
			sign = MinThroughput(s, d).Sign()
		}
		if sign <= 0 {
			b.Fatal("polynomial schedule must have positive minimum throughput")
		}
	}
}

func BenchmarkCheckRequirement3N31D3Naive(b *testing.B)  { benchRequirement3(b, 31, 3, true) }
func BenchmarkCheckRequirement3N31D3Prefix(b *testing.B) { benchRequirement3(b, 31, 3, false) }
func BenchmarkCheckRequirement3N16D4Naive(b *testing.B)  { benchRequirement3(b, 16, 4, true) }
func BenchmarkCheckRequirement3N16D4Prefix(b *testing.B) { benchRequirement3(b, 16, 4, false) }

func BenchmarkMinThroughputN31D3Naive(b *testing.B)  { benchMinThroughput(b, 31, 3, true) }
func BenchmarkMinThroughputN31D3Prefix(b *testing.B) { benchMinThroughput(b, 31, 3, false) }
func BenchmarkMinThroughputN16D4Naive(b *testing.B)  { benchMinThroughput(b, 16, 4, true) }
func BenchmarkMinThroughputN16D4Prefix(b *testing.B) { benchMinThroughput(b, 16, 4, false) }
