package core

import (
	"math/big"

	"repro/internal/bitset"
	"repro/internal/combin"
)

// This file preserves the straightforward per-subset implementations of the
// exhaustive checks as reference kernels. Each one re-derives the free-slot
// set of every D-subset from scratch — a full Copy plus D DifferenceWith
// per subset — which is what the prefix-cached kernels in verifier.go
// replace. They are kept (unexported) for three reasons: they are the
// ground truth of the differential tests, the baseline of the old-vs-new
// benchmark pairs in BENCH_core.json, and the most literal transcription
// of the paper's definitions for readers auditing the reproduction.

// checkRequirement1Naive is the reference implementation of
// CheckRequirement1: Θ(C(n-1, D)·D·L/64) per node.
func checkRequirement1Naive(s *Schedule, d int) *Witness {
	validateD(s.n, d)
	var found *Witness
	others := make([]int, 0, s.n-1)
	fs := bitset.New(s.L())
	for x := 0; x < s.n && found == nil; x++ {
		others = others[:0]
		for v := 0; v < s.n; v++ {
			if v != x {
				others = append(others, v)
			}
		}
		combin.CombinationsOf(others, d, func(y []int) bool {
			fs.Copy(s.tran[x])
			for _, v := range y {
				fs.DifferenceWith(s.tran[v])
			}
			if fs.Empty() {
				found = &Witness{X: x, Y: append([]int(nil), y...), K: -1}
				return false
			}
			return true
		})
	}
	return found
}

// checkRequirement3Naive is the reference implementation of
// CheckRequirement3.
func checkRequirement3Naive(s *Schedule, d int) *Witness {
	validateD(s.n, d)
	for x := 0; x < s.n; x++ {
		if w := checkRequirement3NodeNaive(s, d, x); w != nil {
			return w
		}
	}
	return nil
}

// checkRequirement3NodeNaive is the reference implementation of
// CheckRequirement3Node.
func checkRequirement3NodeNaive(s *Schedule, d, x int) *Witness {
	validateD(s.n, d)
	validateNode(s.n, x)
	others := make([]int, 0, s.n-1)
	for v := 0; v < s.n; v++ {
		if v != x {
			others = append(others, v)
		}
	}
	fs := bitset.New(s.L())
	var found *Witness
	combin.CombinationsOf(others, d, func(y []int) bool {
		fs.Copy(s.tran[x])
		for _, v := range y {
			fs.DifferenceWith(s.tran[v])
		}
		if fs.Empty() {
			found = &Witness{X: x, Y: append([]int(nil), y...), K: -1}
			return false
		}
		for k, v := range y {
			if !s.recv[v].Intersects(fs) {
				found = &Witness{X: x, Y: append([]int(nil), y...), K: k}
				return false
			}
		}
		return true
	})
	return found
}

// checkRequirement2Naive is the reference implementation of
// CheckRequirement2.
func checkRequirement2Naive(s *Schedule, d int) *Req2Witness {
	validateD(s.n, d)
	k := d - 1
	if k > s.n-2 {
		k = s.n - 2
	}
	var found *Req2Witness
	others := make([]int, 0, s.n-2)
	union := bitset.New(s.L())
	for x := 0; x < s.n && found == nil; x++ {
		for y := 0; y < s.n && found == nil; y++ {
			if y == x {
				continue
			}
			sigmaXY := s.Sigma(x, y)
			others = others[:0]
			for v := 0; v < s.n; v++ {
				if v != x && v != y {
					others = append(others, v)
				}
			}
			combin.CombinationsOf(others, k, func(interf []int) bool {
				union.Clear()
				for _, v := range interf {
					union.UnionWith(s.Sigma(v, y))
				}
				if sigmaXY.SubsetOf(union) {
					found = &Req2Witness{X: x, Y: y, Interferer: append([]int(nil), interf...)}
					return false
				}
				return true
			})
		}
	}
	return found
}

// minThroughputNaive is the reference implementation of MinThroughput.
func minThroughputNaive(s *Schedule, d int) *big.Rat {
	validateD(s.n, d)
	minSlots := -1
	forEachTriple(s, d, func(x, y int, set []int) bool {
		c := s.TSlots(x, y, set).Count()
		if minSlots < 0 || c < minSlots {
			minSlots = c
		}
		return minSlots != 0 // stop early at zero: it cannot go lower
	})
	if minSlots < 0 {
		minSlots = 0
	}
	return big.NewRat(int64(minSlots), int64(s.L()))
}

// avgThroughputBruteForceNaive is the reference implementation of
// AvgThroughputBruteForce.
func avgThroughputBruteForceNaive(s *Schedule, d int) *big.Rat {
	validateD(s.n, d)
	f := new(big.Int)
	forEachTriple(s, d, func(x, y int, set []int) bool {
		f.Add(f, big.NewInt(int64(s.TSlots(x, y, set).Count())))
		return true
	})
	den := new(big.Int).Mul(big.NewInt(int64(s.n)), big.NewInt(int64(s.n-1)))
	den.Mul(den, combin.Binomial(s.n-2, d-1))
	den.Mul(den, big.NewInt(int64(s.L())))
	return combin.RatFromInts(f, den)
}

// forEachTriple enumerates all ordered pairs x ≠ y and all (D-1)-subsets S
// of V_n - {x, y}, invoking fn; returning false stops enumeration.
func forEachTriple(s *Schedule, d int, fn func(x, y int, set []int) bool) {
	others := make([]int, 0, s.n-2)
	stop := false
	for x := 0; x < s.n && !stop; x++ {
		for y := 0; y < s.n && !stop; y++ {
			if y == x {
				continue
			}
			others = others[:0]
			for v := 0; v < s.n; v++ {
				if v != x && v != y {
					others = append(others, v)
				}
			}
			combin.CombinationsOf(others, d-1, func(set []int) bool {
				if !fn(x, y, set) {
					stop = true
					return false
				}
				return true
			})
		}
	}
}
