package core

import (
	"fmt"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// The tests in this file pin the contract of the prefix-cached Verifier
// kernels: byte-identical results to the *Naive reference scans, including
// first-witness order, on satisfying schedules, randomized schedules, and
// schedules with planted violations.

func assertSameWitness(t *testing.T, ctx string, got, want *Witness) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: witness mismatch: got %+v, naive %+v", ctx, got, want)
	}
}

func assertSameReq2Witness(t *testing.T, ctx string, got, want *Req2Witness) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: witness mismatch: got %+v, naive %+v", ctx, got, want)
	}
}

func assertSameRat(t *testing.T, ctx string, got, want *big.Rat) {
	t.Helper()
	if got.Cmp(want) != 0 {
		t.Fatalf("%s: value mismatch: got %v, naive %v", ctx, got, want)
	}
}

// diffAllKernels cross-checks every prefix-cached kernel against its naive
// reference on one (schedule, d) instance.
func diffAllKernels(t *testing.T, ctx string, s *Schedule, d int) {
	t.Helper()
	assertSameWitness(t, ctx+"/req1", CheckRequirement1(s, d), checkRequirement1Naive(s, d))
	assertSameWitness(t, ctx+"/req3", CheckRequirement3(s, d), checkRequirement3Naive(s, d))
	assertSameReq2Witness(t, ctx+"/req2", CheckRequirement2(s, d), checkRequirement2Naive(s, d))
	assertSameRat(t, ctx+"/min", MinThroughput(s, d), minThroughputNaive(s, d))
	assertSameRat(t, ctx+"/avg", AvgThroughputBruteForce(s, d), avgThroughputBruteForceNaive(s, d))
	for x := 0; x < s.N(); x++ {
		assertSameWitness(t, fmt.Sprintf("%s/req3node(%d)", ctx, x),
			CheckRequirement3Node(s, d, x), checkRequirement3NodeNaive(s, d, x))
	}
}

// TestVerifierMatchesNaiveRandom runs the differential check over
// randomized schedules across the (n, D) grid of the issue (n <= 12,
// D <= 4), with densities chosen so the corpus mixes satisfying schedules,
// condition-(1) violations, and condition-(2) violations.
func TestVerifierMatchesNaiveRandom(t *testing.T) {
	densities := []struct{ pT, pR float64 }{
		{0.15, 0.9}, // sparse transmitters, most violations are condition (2)
		{0.5, 0.5},  // dense transmitters drain free sets: condition (1)
		{0.08, 0.3}, // heavy sleeping
	}
	for _, n := range []int{2, 3, 5, 8, 12} {
		for d := 1; d <= 4 && d <= n-1; d++ {
			for di, dens := range densities {
				rng := stats.NewRNG(stats.DeriveSeed(7, uint64(n*100+d*10+di)))
				for rep := 0; rep < 4; rep++ {
					L := 1 + rng.Intn(20)
					s := randomSchedule(rng, n, L, dens.pT, dens.pR)
					ctx := fmt.Sprintf("n=%d d=%d L=%d dens=%d rep=%d", n, d, L, di, rep)
					diffAllKernels(t, ctx, s, d)
				}
			}
		}
	}
}

// TestVerifierMatchesNaiveTDMA pins the satisfying-schedule path (no
// witness, maximal enumeration work) and multi-word frames (L = n > 64
// requires two words per slot set).
func TestVerifierMatchesNaiveTDMA(t *testing.T) {
	for _, n := range []int{2, 5, 9, 66} {
		maxD := 3
		if n-1 < maxD {
			maxD = n - 1
		}
		for d := 1; d <= maxD; d++ {
			s := tdma(n)
			ctx := fmt.Sprintf("tdma n=%d d=%d", n, d)
			if n > 12 {
				// Full differential is too slow here; pin the checkers and min.
				assertSameWitness(t, ctx+"/req1", CheckRequirement1(s, d), checkRequirement1Naive(s, d))
				assertSameWitness(t, ctx+"/req3", CheckRequirement3(s, d), checkRequirement3Naive(s, d))
				if CheckRequirement3(s, d) != nil {
					t.Fatalf("%s: TDMA must satisfy Requirement 3", ctx)
				}
				continue
			}
			diffAllKernels(t, ctx, s, d)
		}
	}
}

// plantedSchedule builds TDMA-like schedules with a specific violation
// planted, so the differential test provably covers witness construction
// on both failure conditions and on every prune path.
func plantedSchedule(t *testing.T, n int, mutate func(tr, rc [][]int)) *Schedule {
	t.Helper()
	tr := make([][]int, n)
	rc := make([][]int, n)
	for i := 0; i < n; i++ {
		tr[i] = []int{i}
		for x := 0; x < n; x++ {
			if x != i {
				rc[i] = append(rc[i], x)
			}
		}
	}
	mutate(tr, rc)
	s, err := New(n, tr, rc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVerifierMatchesNaivePlanted(t *testing.T) {
	const n = 8
	cases := []struct {
		name   string
		mutate func(tr, rc [][]int)
	}{
		// Node 3 transmits in every slot: freeSlots(x, Y) drains for every
		// Y containing 3, violating condition (1) high in the tree.
		{"cond1-drain", func(tr, rc [][]int) {
			for i := range tr {
				tr[i] = append(tr[i], 3)
				rc[i] = removeNode(rc[i], 3)
			}
		}},
		// Node 5 never receives: condition (2) fails for every Y containing
		// 5 (K points at 5's position), at the receiver-mask prune.
		{"cond2-deaf-receiver", func(tr, rc [][]int) {
			for i := range rc {
				rc[i] = removeNode(rc[i], 5)
			}
		}},
		// Node 0 never transmits: its own free set starts empty, so the
		// very first subtree of x = 0 prunes at the root.
		{"cond1-silent-transmitter", func(tr, rc [][]int) {
			tr[0] = nil
			rc[0] = append(rc[0], 0)
		}},
		// Node 2 sleeps (neither transmits nor receives) in every slot:
		// both its transmitter role and receiver role break.
		{"sleeper", func(tr, rc [][]int) {
			tr[2] = nil
			for i := range rc {
				rc[i] = removeNode(rc[i], 2)
			}
		}},
	}
	for _, tc := range cases {
		s := plantedSchedule(t, n, tc.mutate)
		for d := 1; d <= 4; d++ {
			diffAllKernels(t, fmt.Sprintf("%s d=%d", tc.name, d), s, d)
		}
	}
}

func removeNode(nodes []int, x int) []int {
	out := nodes[:0]
	for _, v := range nodes {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// TestVerifierReuse pins that one Verifier instance gives stable answers
// across repeated and interleaved calls — per-call state must fully reset.
func TestVerifierReuse(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(11, 0))
	s := randomSchedule(rng, 9, 13, 0.2, 0.8)
	const d = 3
	v := NewVerifier(s, d)
	wantW := checkRequirement3Naive(s, d)
	wantMin := minThroughputNaive(s, d)
	wantAvg := avgThroughputBruteForceNaive(s, d)
	want2 := checkRequirement2Naive(s, d)
	for i := 0; i < 3; i++ {
		assertSameWitness(t, "reuse/req3", v.Requirement3(), wantW)
		assertSameRat(t, "reuse/min", v.MinThroughput(), wantMin)
		assertSameWitness(t, "reuse/req1", v.Requirement1(), checkRequirement1Naive(s, d))
		assertSameRat(t, "reuse/avg", v.AvgThroughputBruteForce(), wantAvg)
		assertSameReq2Witness(t, "reuse/req2", v.Requirement2(), want2)
	}
}

// TestVerifierParallelMatchesSequential pins that the worker-pooled
// checkers still return the sequential witnesses on the new kernels.
func TestVerifierParallelMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(13, 0))
	for rep := 0; rep < 6; rep++ {
		s := randomSchedule(rng, 10, 11, 0.25, 0.7)
		for d := 1; d <= 3; d++ {
			for _, workers := range []int{2, 5} {
				ctx := fmt.Sprintf("rep=%d d=%d w=%d", rep, d, workers)
				assertSameWitness(t, ctx+"/req3",
					CheckRequirement3Parallel(s, d, workers), checkRequirement3Naive(s, d))
				assertSameWitness(t, ctx+"/req1",
					CheckRequirement1Parallel(s, d, workers), checkRequirement1Naive(s, d))
				assertSameRat(t, ctx+"/min",
					MinThroughputParallel(s, d, workers), minThroughputNaive(s, d))
			}
		}
	}
}

// FuzzVerifierDifferential lets the fuzzer hunt for schedules where a
// prefix-cached kernel and its naive reference disagree. (Run with
// `go test -fuzz FuzzVerifierDifferential ./internal/core`; the seed
// corpus runs in normal `go test`.)
func FuzzVerifierDifferential(f *testing.F) {
	f.Add(uint64(1), uint(6), uint(7), uint(2), uint(20), uint(80))
	f.Add(uint64(2), uint(12), uint(9), uint(4), uint(50), uint(50))
	f.Add(uint64(3), uint(2), uint(1), uint(1), uint(0), uint(0))
	f.Add(uint64(4), uint(9), uint(70), uint(3), uint(10), uint(90)) // multi-word frame
	f.Fuzz(func(t *testing.T, seed uint64, n, L, d, pT, pR uint) {
		n = 2 + n%11 // [2, 12]
		L = 1 + L%70 // [1, 70]: crosses the one-word boundary
		d = 1 + d%4  // [1, 4]
		if int(d) > int(n)-1 {
			d = uint(n) - 1
		}
		rng := stats.NewRNG(seed)
		s := randomSchedule(rng, int(n), int(L), float64(pT%101)/100, float64(pR%101)/100)
		dd := int(d)
		assertSameWitness(t, "fuzz/req1", CheckRequirement1(s, dd), checkRequirement1Naive(s, dd))
		assertSameWitness(t, "fuzz/req3", CheckRequirement3(s, dd), checkRequirement3Naive(s, dd))
		assertSameReq2Witness(t, "fuzz/req2", CheckRequirement2(s, dd), checkRequirement2Naive(s, dd))
		assertSameRat(t, "fuzz/min", MinThroughput(s, dd), minThroughputNaive(s, dd))
		if int(n) <= 9 {
			assertSameRat(t, "fuzz/avg", AvgThroughputBruteForce(s, dd), avgThroughputBruteForceNaive(s, dd))
		}
	})
}
