package core

import (
	"math/big"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/combin"
)

// Verifier runs the exhaustive requirement and throughput checks on one
// schedule with prefix-cached enumeration. The naive kernels re-derive the
// free-slot set of every D-subset from scratch (one Copy plus D
// DifferenceWith per subset); the Verifier instead walks the subset tree of
// combin.WalkKSubsets keeping a stack of per-level free-slot sets, so
// extending a prefix by one node costs a single fused CopyThenDifference
// into a preallocated level buffer, and the innermost leaf loop degenerates
// to a raw word scan. A drained prefix (no free slot, or a receiver with no
// awake slot left, at depth < D) prunes its entire subtree — all
// C(remaining, D-depth) completions — while still reporting the exact
// witness the naive scan would have reported for the lexicographically
// first completion.
//
// All scratch is allocated in NewVerifier; the check methods perform no
// steady-state allocations except for the witness of an actual violation
// (and the big.Rat/big.Int results of the throughput methods). The
// differential tests in verifier_test.go pin byte-identical results —
// including first-witness order — against the *Naive references, and
// alloc_test.go pins the zero-allocation guarantee.
//
// A Verifier is bound to one (schedule, D) pair, is not safe for concurrent
// use, and is cheap enough to create per goroutine — the parallel checkers
// give each worker its own.
type Verifier struct {
	s *Schedule
	d int

	enum   combin.Enumerator
	others []int // V_n - {x} (or - {x, y}), rebuilt per node/pair

	// Read-only word views of the schedule's per-node slot sets, hoisted
	// once so leaf scans touch no method calls.
	tranW [][]uint64
	recvW [][]uint64

	// free[t] is the free-slot set after t prefix extensions; free[0] is
	// the walk's base (tran(x), or tran(x) \ tran(y) for throughput scans).
	// Levels are only written when the walk visits their depth, so a
	// parent's set stays valid across all of its children.
	free  []*bitset.Set
	freeW [][]uint64
	fsSet *bitset.Set // leaf free-slot scratch (also exact-witness scratch)
	fs    []uint64
	// masks[j] = recv(y_j) ∩ free at the leaf-scan parent, hoisted so each
	// leaf tests condition (2) with one &^ word scan per prefix receiver:
	// recv ∩ (free &^ tw) == (recv ∩ free) &^ tw.
	masks [][]uint64

	// Requirement 2 state: cover[t] = ∪ tran(interferer) over the prefix,
	// σ(x, y), and rem = σ \ cover at the leaf-scan parent.
	cover  []*bitset.Set
	coverW [][]uint64
	sigma  *bitset.Set
	sigmaW []uint64
	rem    []uint64

	// Per-walk state shared with the stored visit closures.
	x, y     int
	k        int // walk subset size for Req2/throughput walks
	recvYW   []uint64
	witness  *Witness
	w2       *Req2Witness
	minSlots int
	pairSum  int64

	// One-word fast path. Frames with L <= 64 — every polynomial
	// construction up to GF(8), and the paper's own operating points —
	// fit each slot set in a single uint64, so the whole walk state lives
	// in scalars: no word loops, no slice headers, no bounds checks in
	// the innermost scans. Populated iff w1 is true.
	w1     bool
	tran1  []uint64 // tran1[x] = tranW[x][0]
	recv1  []uint64
	free1  []uint64 // scalar level stack, len d
	mask1  []uint64 // scalar receiver masks at the leaf-scan parent
	cover1 []uint64 // scalar Req2 union stack
	pfxW1  []int    // prefix scratch for the walkerless D == 2 pair scan
	sigma1 uint64
	rem1   uint64
	recvY1 uint64

	// Visit closures are bound once here; handing a method value to
	// WalkKSubsets at call time would allocate on every walk.
	visitReq1   func(prefix []int) combin.WalkControl
	visitReq3   func(prefix []int) combin.WalkControl
	visitReq2   func(prefix []int) combin.WalkControl
	visitMin    func(prefix []int) combin.WalkControl
	visitAvg    func(prefix []int) combin.WalkControl
	visitReq1W1 func(prefix []int) combin.WalkControl
	visitReq3W1 func(prefix []int) combin.WalkControl
	visitReq2W1 func(prefix []int) combin.WalkControl
	visitMinW1  func(prefix []int) combin.WalkControl
	visitAvgW1  func(prefix []int) combin.WalkControl
}

// NewVerifier allocates all scratch for checking schedule s against the
// network class N(s.N(), d).
func NewVerifier(s *Schedule, d int) *Verifier {
	validateD(s.n, d)
	L := s.L()
	v := &Verifier{s: s, d: d}
	v.others = make([]int, 0, s.n-1)
	v.tranW = make([][]uint64, s.n)
	v.recvW = make([][]uint64, s.n)
	for x := 0; x < s.n; x++ {
		v.tranW[x] = s.tran[x].Words()
		v.recvW[x] = s.recv[x].Words()
	}
	v.free = make([]*bitset.Set, d)
	v.freeW = make([][]uint64, d)
	v.cover = make([]*bitset.Set, d)
	v.coverW = make([][]uint64, d)
	for t := 0; t < d; t++ {
		v.free[t] = bitset.New(L)
		v.freeW[t] = v.free[t].Words()
		v.cover[t] = bitset.New(L)
		v.coverW[t] = v.cover[t].Words()
	}
	v.fsSet = bitset.New(L)
	v.fs = v.fsSet.Words()
	v.masks = make([][]uint64, d)
	for j := range v.masks {
		v.masks[j] = make([]uint64, len(v.fs))
	}
	v.sigma = bitset.New(L)
	v.sigmaW = v.sigma.Words()
	v.rem = make([]uint64, len(v.fs))
	if len(v.fs) == 1 {
		v.w1 = true
		v.tran1 = make([]uint64, s.n)
		v.recv1 = make([]uint64, s.n)
		for x := 0; x < s.n; x++ {
			v.tran1[x] = v.tranW[x][0]
			v.recv1[x] = v.recvW[x][0]
		}
		v.free1 = make([]uint64, d)
		v.mask1 = make([]uint64, d)
		v.cover1 = make([]uint64, d)
		v.pfxW1 = make([]int, 0, d)
	}
	v.visitReq1 = v.stepReq1
	v.visitReq3 = v.stepReq3
	v.visitReq2 = v.stepReq2
	v.visitMin = v.stepMin
	v.visitAvg = v.stepAvg
	v.visitReq1W1 = v.stepReq1W1
	v.visitReq3W1 = v.stepReq3W1
	v.visitReq2W1 = v.stepReq2W1
	v.visitMinW1 = v.stepMinW1
	v.visitAvgW1 = v.stepAvgW1
	return v
}

// buildOthers fills v.others with V_n - {x, y} in increasing order (pass
// y < 0 to exclude only x).
//
//ttdc:hotpath runs once per (x, y) pair of every check; refills preallocated scratch by self-reslice
func (v *Verifier) buildOthers(x, y int) {
	v.others = v.others[:0]
	for u := 0; u < v.s.n; u++ {
		if u != x && u != y {
			v.others = append(v.others, u)
		}
	}
}

// firstCompletion materializes the lexicographically first k-subset that
// extends prefix: the prefix values followed by the next positions in
// order. The walk's position bounds guarantee the positions exist.
func (v *Verifier) firstCompletion(prefix []int, k int) []int {
	y := make([]int, k)
	for i, p := range prefix {
		y[i] = v.others[p]
	}
	next := prefix[len(prefix)-1] + 1
	for i := len(prefix); i < k; i++ {
		y[i] = v.others[next]
		next++
	}
	return y
}

// leafSubset materializes the subset {prefix values} ∪ {others[pos]} (a nil
// prefix yields the singleton, used by the D == 1 and k == 1 scans).
func (v *Verifier) leafSubset(prefix []int, pos int) []int {
	y := make([]int, len(prefix)+1)
	for i, p := range prefix {
		y[i] = v.others[p]
	}
	y[len(prefix)] = v.others[pos]
	return y
}

// evalReq3 checks one neighbourhood yv exactly as the naive per-subset
// kernel does, returning its witness (or nil if yv satisfies Requirement 3
// for transmitter v.x). It takes ownership of yv.
func (v *Verifier) evalReq3(yv []int) *Witness {
	v.fsSet.Copy(v.s.tran[v.x])
	for _, u := range yv {
		v.fsSet.DifferenceWith(v.s.tran[u])
	}
	if v.fsSet.Empty() {
		return &Witness{X: v.x, Y: yv, K: -1}
	}
	for k, u := range yv {
		if !v.s.recv[u].Intersects(v.fsSet) {
			return &Witness{X: v.x, Y: yv, K: k}
		}
	}
	return nil
}

// prunedReq3Witness resolves the witness for a drained prefix: every
// completion violates, the walk is lexicographic and every earlier subset
// passed, so the first completion is exactly the subset the naive scan
// reports next — evaluate it exactly to reproduce the naive K as well
// (the drain proves a violation exists but not which condition the naive
// order blames first).
func (v *Verifier) prunedReq3Witness(prefix []int) *Witness {
	w := v.evalReq3(v.firstCompletion(prefix, v.d))
	if w == nil {
		panic("core: pruned Requirement 3 subtree has a satisfying completion")
	}
	return w
}

// Requirement1 is the prefix-cached CheckRequirement1 kernel.
func (v *Verifier) Requirement1() *Witness {
	for x := 0; x < v.s.n; x++ {
		if w := v.Requirement1Node(x); w != nil {
			return w
		}
	}
	return nil
}

// Requirement1Node checks Requirement 1 restricted to transmitter x.
func (v *Verifier) Requirement1Node(x int) *Witness {
	validateNode(v.s.n, x)
	v.x = x
	v.witness = nil
	v.buildOthers(x, -1)
	if v.w1 {
		if v.d == 1 {
			v.req1LeavesW1(v.tran1[x], nil, 0)
			return v.witness
		}
		v.free1[0] = v.tran1[x]
		v.enum.WalkKSubsets(len(v.others), v.d, v.visitReq1W1)
		return v.witness
	}
	if v.d == 1 {
		v.req1Leaves(v.tranW[x], nil, 0)
		return v.witness
	}
	v.free[0].Copy(v.s.tran[x])
	v.enum.WalkKSubsets(len(v.others), v.d, v.visitReq1)
	return v.witness
}

func (v *Verifier) stepReq1(prefix []int) combin.WalkControl {
	t := len(prefix)
	if v.free[t].CopyThenDifference(v.free[t-1], v.s.tran[v.others[prefix[t-1]]]) {
		// No free slot left at depth t: every completion has an empty
		// free-slot set, and Requirement 1 only tests condition (1), so
		// the first completion with K = -1 is the naive witness.
		v.witness = &Witness{X: v.x, Y: v.firstCompletion(prefix, v.d), K: -1}
		return combin.WalkStop
	}
	if t == v.d-1 {
		v.req1Leaves(v.freeW[t], prefix, prefix[t-1]+1)
		if v.witness != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

// req1Leaves scans the last enumeration level: for each candidate final
// node it tests free &^ tran(node) for emptiness in one word pass, without
// materializing the set.
func (v *Verifier) req1Leaves(fw []uint64, prefix []int, start int) {
	for pos := start; pos < len(v.others); pos++ {
		tw := v.tranW[v.others[pos]]
		any := uint64(0)
		for i, f := range fw {
			any |= f &^ tw[i]
		}
		if any == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: -1}
			return
		}
	}
}

// Requirement3 is the prefix-cached CheckRequirement3 kernel.
func (v *Verifier) Requirement3() *Witness {
	for x := 0; x < v.s.n; x++ {
		if w := v.Requirement3Node(x); w != nil {
			return w
		}
	}
	return nil
}

// Requirement3Node checks Requirement 3 restricted to transmitter x,
// returning the first violating witness in lexicographic Y order, or nil.
func (v *Verifier) Requirement3Node(x int) *Witness {
	validateNode(v.s.n, x)
	v.x = x
	v.witness = nil
	v.buildOthers(x, -1)
	if v.w1 {
		switch v.d {
		case 1:
			v.req3LeavesW1(v.tran1[x], nil, 0)
		case 2:
			v.req3PairsW1(v.tran1[x], v.pfxW1[:0], 0)
		default:
			v.free1[0] = v.tran1[x]
			v.enum.WalkKSubsets(len(v.others), v.d, v.visitReq3W1)
		}
		return v.witness
	}
	if v.d == 1 {
		v.req3Leaves(v.tranW[x], nil, 0)
		return v.witness
	}
	v.free[0].Copy(v.s.tran[x])
	v.enum.WalkKSubsets(len(v.others), v.d, v.visitReq3)
	return v.witness
}

func (v *Verifier) stepReq3(prefix []int) combin.WalkControl {
	t := len(prefix)
	if v.free[t].CopyThenDifference(v.free[t-1], v.s.tran[v.others[prefix[t-1]]]) {
		v.witness = v.prunedReq3Witness(prefix)
		return combin.WalkStop
	}
	fw := v.freeW[t]
	if t == v.d-1 {
		// Hoist the per-receiver masks recv(y_j) ∩ free for the leaf scan.
		// An empty mask means y_j can never be reached by any completion.
		for j := 0; j < t; j++ {
			rw := v.recvW[v.others[prefix[j]]]
			mj := v.masks[j]
			any := uint64(0)
			for i, f := range fw {
				m := rw[i] & f
				mj[i] = m
				any |= m
			}
			if any == 0 {
				v.witness = v.prunedReq3Witness(prefix)
				return combin.WalkStop
			}
		}
		v.req3Leaves(fw, prefix, prefix[t-1]+1)
		if v.witness != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	// Internal node: a receiver already drained here is drained in every
	// descendant (free only shrinks), so the whole subtree violates.
	for j := 0; j < t; j++ {
		rw := v.recvW[v.others[prefix[j]]]
		any := uint64(0)
		for i, f := range fw {
			any |= rw[i] & f
		}
		if any == 0 {
			v.witness = v.prunedReq3Witness(prefix)
			return combin.WalkStop
		}
	}
	return combin.WalkDescend
}

// req3Leaves scans the last enumeration level of the Requirement 3 check.
// The prefix receivers are tested through the hoisted masks (mask &^ tw ==
// recv ∩ fs); the final node's own receiver set is tested against the
// materialized fs — disjointness of tran and recv per node makes the two
// forms coincide.
func (v *Verifier) req3Leaves(fw []uint64, prefix []int, start int) {
	t := len(prefix)
	fs := v.fs
	for pos := start; pos < len(v.others); pos++ {
		node := v.others[pos]
		tw := v.tranW[node]
		any := uint64(0)
		for i, f := range fw {
			b := f &^ tw[i]
			fs[i] = b
			any |= b
		}
		if any == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: -1}
			return
		}
		for j := 0; j < t; j++ {
			mj := v.masks[j]
			hit := uint64(0)
			for i, m := range mj {
				hit |= m &^ tw[i]
			}
			if hit == 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: j}
				return
			}
		}
		rw := v.recvW[node]
		hit := uint64(0)
		for i, b := range fs {
			hit |= rw[i] & b
		}
		if hit == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: t}
			return
		}
	}
}

// Requirement2 is the prefix-cached CheckRequirement2 kernel. Since
// σ(x, y) ⊆ recv(y), covering it by ∪_i σ(y_i, y) = (∪_i tran(y_i)) ∩
// recv(y) is equivalent to covering it by ∪_i tran(y_i) alone, so the walk
// keeps a running union of interferer transmission sets per level and
// tests coverage with one fused word pass.
func (v *Verifier) Requirement2() *Req2Witness {
	n := v.s.n
	k := v.d - 1
	if k > n-2 {
		k = n - 2
	}
	v.k = k
	v.w2 = nil
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if y == x {
				continue
			}
			v.x, v.y = x, y
			if v.w1 {
				v.sigma1 = v.tran1[x] & v.recv1[y]
				if k == 0 {
					// The empty interferer set covers σ(x, y) iff σ(x, y) = ∅.
					if v.sigma1 == 0 {
						v.w2 = &Req2Witness{X: x, Y: y}
						return v.w2
					}
					continue
				}
				v.buildOthers(x, y)
				if k == 1 {
					v.rem1 = v.sigma1
					v.req2LeavesW1(nil, 0)
				} else {
					v.cover1[0] = 0
					v.enum.WalkKSubsets(len(v.others), k, v.visitReq2W1)
				}
				if v.w2 != nil {
					return v.w2
				}
				continue
			}
			v.sigma.Copy(v.s.tran[x])
			v.sigma.IntersectWith(v.s.recv[y])
			if k == 0 {
				// The empty interferer set covers σ(x, y) iff σ(x, y) = ∅.
				if v.sigma.Empty() {
					v.w2 = &Req2Witness{X: x, Y: y}
					return v.w2
				}
				continue
			}
			v.buildOthers(x, y)
			if k == 1 {
				copy(v.rem, v.sigmaW)
				v.req2Leaves(nil, 0)
			} else {
				v.cover[0].Clear()
				v.enum.WalkKSubsets(len(v.others), k, v.visitReq2)
			}
			if v.w2 != nil {
				return v.w2
			}
		}
	}
	return nil
}

func (v *Verifier) stepReq2(prefix []int) combin.WalkControl {
	t := len(prefix)
	cw := v.coverW[t]
	pw := v.coverW[t-1]
	tw := v.tranW[v.others[prefix[t-1]]]
	left := uint64(0)
	for i := range cw {
		c := pw[i] | tw[i]
		cw[i] = c
		left |= v.sigmaW[i] &^ c
	}
	if left == 0 {
		// Coverage is monotone in adding interferers, so every completion
		// of a covering prefix also covers; the first completion is the
		// subset the naive lexicographic scan reports.
		v.w2 = &Req2Witness{X: v.x, Y: v.y, Interferer: v.firstCompletion(prefix, v.k)}
		return combin.WalkStop
	}
	if t == v.k-1 {
		for i := range v.rem {
			v.rem[i] = v.sigmaW[i] &^ cw[i]
		}
		v.req2Leaves(prefix, prefix[t-1]+1)
		if v.w2 != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

// req2Leaves scans the last interferer level: the final interferer covers
// σ(x, y) iff it covers rem = σ \ cover.
func (v *Verifier) req2Leaves(prefix []int, start int) {
	for pos := start; pos < len(v.others); pos++ {
		tw := v.tranW[v.others[pos]]
		left := uint64(0)
		for i, r := range v.rem {
			left |= r &^ tw[i]
		}
		if left == 0 {
			v.w2 = &Req2Witness{X: v.x, Y: v.y, Interferer: v.leafSubset(prefix, pos)}
			return
		}
	}
}

// MinThroughputSlots returns the minimum over all triples of |𝒯(x, y, S)|
// — the numerator of MinThroughput in slots.
//
//ttdc:hotpath the integer throughput scan is the all-scratch-preallocated entry point campaigns call per grid point
func (v *Verifier) MinThroughputSlots() int {
	minSlots := -1
	for x := 0; x < v.s.n; x++ {
		m := v.minThroughputNode(x)
		if minSlots < 0 || m < minSlots {
			minSlots = m
		}
		if minSlots == 0 {
			break // it cannot go lower
		}
	}
	if minSlots < 0 {
		minSlots = 0
	}
	return minSlots
}

// MinThroughput is the prefix-cached MinThroughput kernel (Definition 1).
func (v *Verifier) MinThroughput() *big.Rat {
	return big.NewRat(int64(v.MinThroughputSlots()), int64(v.s.L()))
}

// minThroughputNode returns min |𝒯(x, y, S)| over all pairs and
// completions with transmitter x, stopping early at zero.
//
//ttdc:hotpath per-transmitter throughput walk over C(n-2, D-1) subsets; all state lives in Verifier scratch
func (v *Verifier) minThroughputNode(x int) int {
	v.x = x
	v.k = v.d - 1
	v.minSlots = -1
	for y := 0; y < v.s.n; y++ {
		if y == x {
			continue
		}
		if v.k == 0 {
			// D == 1: S = ∅, so |𝒯| = |(tran(x) \ tran(y)) ∩ recv(y)|.
			c := v.s.tran[x].DifferenceIntersectionCount(v.s.tran[y], v.s.recv[y])
			if v.minSlots < 0 || c < v.minSlots {
				v.minSlots = c
			}
		} else if v.w1 {
			v.y = y
			v.recvY1 = v.recv1[y]
			v.buildOthers(x, y)
			f := v.tran1[x] &^ v.tran1[y]
			v.free1[0] = f
			if f&v.recvY1 == 0 {
				// The base already misses recv(y): every completion of
				// every S scores 0.
				v.minSlots = 0
			} else if v.k == 1 {
				v.minLeavesW1(f, 0)
			} else {
				v.enum.WalkKSubsets(len(v.others), v.k, v.visitMinW1)
			}
		} else {
			v.y = y
			v.recvYW = v.recvW[y]
			v.buildOthers(x, y)
			empty := v.free[0].CopyThenDifference(v.s.tran[x], v.s.tran[y])
			if empty || !v.free[0].Intersects(v.s.recv[y]) {
				// The base already misses recv(y): every completion of
				// every S scores 0.
				v.minSlots = 0
			} else if v.k == 1 {
				v.minLeaves(v.freeW[0], 0)
			} else {
				v.enum.WalkKSubsets(len(v.others), v.k, v.visitMin)
			}
		}
		if v.minSlots == 0 {
			break
		}
	}
	if v.minSlots < 0 {
		v.minSlots = 0
	}
	return v.minSlots
}

//ttdc:hotpath visited once per enumeration-tree node of the min-throughput walk
func (v *Verifier) stepMin(prefix []int) combin.WalkControl {
	t := len(prefix)
	fw := v.freeW[t]
	pw := v.freeW[t-1]
	tw := v.tranW[v.others[prefix[t-1]]]
	ry := v.recvYW
	live := uint64(0)
	for i := range fw {
		f := pw[i] &^ tw[i]
		fw[i] = f
		live |= f & ry[i]
	}
	if live == 0 {
		// free ∩ recv(y) is already empty, so every completion scores 0 —
		// the global floor; no need to visit anything else.
		v.minSlots = 0
		return combin.WalkStop
	}
	if t == v.k-1 {
		v.minLeaves(fw, prefix[t-1]+1)
		if v.minSlots == 0 {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

// minLeaves folds the last enumeration level into a popcount scan:
// |𝒯(x, y, S)| = |free &^ tran(last) & recv(y)| per candidate last node.
//
//ttdc:hotpath the innermost leaf row of the min-throughput walk, a pure popcount scan
func (v *Verifier) minLeaves(fw []uint64, start int) {
	ry := v.recvYW
	for pos := start; pos < len(v.others); pos++ {
		tw := v.tranW[v.others[pos]]
		c := 0
		for i, f := range fw {
			c += bits.OnesCount64(f &^ tw[i] & ry[i])
		}
		if v.minSlots < 0 || c < v.minSlots {
			v.minSlots = c
			if c == 0 {
				return
			}
		}
	}
}

//ttdc:hotpath visited once per enumeration-tree node of the average-throughput sum
func (v *Verifier) stepAvg(prefix []int) combin.WalkControl {
	t := len(prefix)
	fw := v.freeW[t]
	pw := v.freeW[t-1]
	tw := v.tranW[v.others[prefix[t-1]]]
	ry := v.recvYW
	live := uint64(0)
	for i := range fw {
		f := pw[i] &^ tw[i]
		fw[i] = f
		live |= f & ry[i]
	}
	if live == 0 {
		return combin.WalkPrune // every completion contributes 0 to the sum
	}
	if t == v.k-1 {
		v.avgLeaves(fw, prefix[t-1]+1)
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

//ttdc:hotpath the innermost leaf row of the average-throughput sum
func (v *Verifier) avgLeaves(fw []uint64, start int) {
	ry := v.recvYW
	for pos := start; pos < len(v.others); pos++ {
		tw := v.tranW[v.others[pos]]
		c := 0
		for i, f := range fw {
			c += bits.OnesCount64(f &^ tw[i] & ry[i])
		}
		v.pairSum += int64(c)
	}
}

// avgThroughputNumerator computes F = Σ_{x≠y} Σ_S |𝒯(x, y, S)|. Per-pair
// sums are bounded by C(n-2, D-1)·L, far inside int64 at any size the
// brute-force scan can finish, and flushed into the big.Int total per pair.
func (v *Verifier) avgThroughputNumerator() *big.Int {
	total := new(big.Int)
	tmp := new(big.Int)
	v.k = v.d - 1
	for x := 0; x < v.s.n; x++ {
		v.x = x
		for y := 0; y < v.s.n; y++ {
			if y == x {
				continue
			}
			v.pairSum = 0
			if v.k == 0 {
				v.pairSum = int64(v.s.tran[x].DifferenceIntersectionCount(v.s.tran[y], v.s.recv[y]))
			} else if v.w1 {
				v.y = y
				v.recvY1 = v.recv1[y]
				v.buildOthers(x, y)
				f := v.tran1[x] &^ v.tran1[y]
				v.free1[0] = f
				if f&v.recvY1 != 0 {
					if v.k == 1 {
						v.avgLeavesW1(f, 0)
					} else {
						v.enum.WalkKSubsets(len(v.others), v.k, v.visitAvgW1)
					}
				}
			} else {
				v.y = y
				v.recvYW = v.recvW[y]
				v.buildOthers(x, y)
				empty := v.free[0].CopyThenDifference(v.s.tran[x], v.s.tran[y])
				if !empty && v.free[0].Intersects(v.s.recv[y]) {
					if v.k == 1 {
						v.avgLeaves(v.freeW[0], 0)
					} else {
						v.enum.WalkKSubsets(len(v.others), v.k, v.visitAvg)
					}
				}
			}
			if v.pairSum != 0 {
				tmp.SetInt64(v.pairSum)
				total.Add(total, tmp)
			}
		}
	}
	return total
}

// AvgThroughputBruteForce is the prefix-cached AvgThroughputBruteForce
// kernel (Definition 2).
func (v *Verifier) AvgThroughputBruteForce() *big.Rat {
	num := v.avgThroughputNumerator()
	den := new(big.Int).Mul(big.NewInt(int64(v.s.n)), big.NewInt(int64(v.s.n-1)))
	den.Mul(den, combin.Binomial(v.s.n-2, v.d-1))
	den.Mul(den, big.NewInt(int64(v.s.L())))
	return combin.RatFromInts(num, den)
}

// ---- One-word scalar kernels ------------------------------------------
//
// Mirrors of the word-slice kernels above for frames with L <= 64. Each
// set is a single uint64, so the level stack, the receiver masks, and the
// leaf scans compile down to register arithmetic. The differential tests
// cover both layers (L spans the one-word boundary); any change here must
// be mirrored in the general kernels and vice versa.

func (v *Verifier) stepReq1W1(prefix []int) combin.WalkControl {
	t := len(prefix)
	f := v.free1[t-1] &^ v.tran1[v.others[prefix[t-1]]]
	v.free1[t] = f
	if f == 0 {
		v.witness = &Witness{X: v.x, Y: v.firstCompletion(prefix, v.d), K: -1}
		return combin.WalkStop
	}
	if t == v.d-1 {
		v.req1LeavesW1(f, prefix, prefix[t-1]+1)
		if v.witness != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

func (v *Verifier) req1LeavesW1(f uint64, prefix []int, start int) {
	for pos := start; pos < len(v.others); pos++ {
		if f&^v.tran1[v.others[pos]] == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: -1}
			return
		}
	}
}

// stepReq3W1 handles the walk's internal levels; the last two levels are
// fused into req3PairsW1, so the walker's per-visit dispatch amortizes
// over a whole C(remaining, 2) block of leaves instead of one row.
func (v *Verifier) stepReq3W1(prefix []int) combin.WalkControl {
	t := len(prefix)
	f := v.free1[t-1] &^ v.tran1[v.others[prefix[t-1]]]
	v.free1[t] = f
	if f == 0 {
		v.witness = v.prunedReq3Witness(prefix)
		return combin.WalkStop
	}
	for j := 0; j < t; j++ {
		if v.recv1[v.others[prefix[j]]]&f == 0 {
			v.witness = v.prunedReq3Witness(prefix)
			return combin.WalkStop
		}
	}
	if t == v.d-2 {
		v.req3PairsW1(f, prefix, prefix[t-1]+1)
		if v.witness != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

// req3PairsW1 scans the last two enumeration levels of the Requirement 3
// check in one nested scalar loop: the outer level computes fp = f minus
// the penultimate node and hoists the receiver masks against fp; the inner
// level is the leaf row. prefix has length D-2 (possibly zero for D == 2)
// and must have capacity for one extra element.
func (v *Verifier) req3PairsW1(f uint64, prefix []int, start int) {
	t := len(prefix)
	others := v.others
	tran1 := v.tran1
	recv1 := v.recv1
	ms := v.mask1
	for p := start; p < len(others)-1; p++ {
		nodeP := others[p]
		fp := f &^ tran1[nodeP]
		ext := prefix[:t+1]
		ext[t] = p
		if fp == 0 {
			v.witness = v.prunedReq3Witness(ext)
			return
		}
		drained := false
		for j := 0; j < t; j++ {
			m := recv1[others[prefix[j]]] & fp
			ms[j] = m
			if m == 0 {
				drained = true
				break
			}
		}
		mp := recv1[nodeP] & fp
		if drained || mp == 0 {
			v.witness = v.prunedReq3Witness(ext)
			return
		}
		for q := p + 1; q < len(others); q++ {
			nodeQ := others[q]
			tw := tran1[nodeQ]
			b := fp &^ tw
			if b == 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(ext, q), K: -1}
				return
			}
			bad := -1
			for j := 0; j < t; j++ {
				if ms[j]&^tw == 0 {
					bad = j
					break
				}
			}
			if bad >= 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(ext, q), K: bad}
				return
			}
			if mp&^tw == 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(ext, q), K: t}
				return
			}
			if recv1[nodeQ]&b == 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(ext, q), K: t + 1}
				return
			}
		}
	}
}

func (v *Verifier) req3LeavesW1(f uint64, prefix []int, start int) {
	t := len(prefix)
	ms := v.mask1[:t]
	others := v.others
	tran1 := v.tran1
	recv1 := v.recv1
	for pos := start; pos < len(others); pos++ {
		node := others[pos]
		tw := tran1[node]
		b := f &^ tw
		if b == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: -1}
			return
		}
		for j, m := range ms {
			if m&^tw == 0 {
				v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: j}
				return
			}
		}
		if recv1[node]&b == 0 {
			v.witness = &Witness{X: v.x, Y: v.leafSubset(prefix, pos), K: t}
			return
		}
	}
}

func (v *Verifier) stepReq2W1(prefix []int) combin.WalkControl {
	t := len(prefix)
	c := v.cover1[t-1] | v.tran1[v.others[prefix[t-1]]]
	v.cover1[t] = c
	if v.sigma1&^c == 0 {
		v.w2 = &Req2Witness{X: v.x, Y: v.y, Interferer: v.firstCompletion(prefix, v.k)}
		return combin.WalkStop
	}
	if t == v.k-1 {
		v.rem1 = v.sigma1 &^ c
		v.req2LeavesW1(prefix, prefix[t-1]+1)
		if v.w2 != nil {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

func (v *Verifier) req2LeavesW1(prefix []int, start int) {
	for pos := start; pos < len(v.others); pos++ {
		if v.rem1&^v.tran1[v.others[pos]] == 0 {
			v.w2 = &Req2Witness{X: v.x, Y: v.y, Interferer: v.leafSubset(prefix, pos)}
			return
		}
	}
}

//ttdc:hotpath one-word scalar mirror of stepMin
func (v *Verifier) stepMinW1(prefix []int) combin.WalkControl {
	t := len(prefix)
	f := v.free1[t-1] &^ v.tran1[v.others[prefix[t-1]]]
	v.free1[t] = f
	if f&v.recvY1 == 0 {
		v.minSlots = 0
		return combin.WalkStop
	}
	if t == v.k-1 {
		v.minLeavesW1(f, prefix[t-1]+1)
		if v.minSlots == 0 {
			return combin.WalkStop
		}
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

//ttdc:hotpath one-word scalar mirror of minLeaves
func (v *Verifier) minLeavesW1(f uint64, start int) {
	fr := f & v.recvY1
	for pos := start; pos < len(v.others); pos++ {
		c := bits.OnesCount64(fr &^ v.tran1[v.others[pos]])
		if v.minSlots < 0 || c < v.minSlots {
			v.minSlots = c
			if c == 0 {
				return
			}
		}
	}
}

//ttdc:hotpath one-word scalar mirror of stepAvg
func (v *Verifier) stepAvgW1(prefix []int) combin.WalkControl {
	t := len(prefix)
	f := v.free1[t-1] &^ v.tran1[v.others[prefix[t-1]]]
	v.free1[t] = f
	if f&v.recvY1 == 0 {
		return combin.WalkPrune
	}
	if t == v.k-1 {
		v.avgLeavesW1(f, prefix[t-1]+1)
		return combin.WalkPrune
	}
	return combin.WalkDescend
}

//ttdc:hotpath one-word scalar mirror of avgLeaves
func (v *Verifier) avgLeavesW1(f uint64, start int) {
	fr := f & v.recvY1
	sum := v.pairSum
	for pos := start; pos < len(v.others); pos++ {
		sum += int64(bits.OnesCount64(fr &^ v.tran1[v.others[pos]]))
	}
	v.pairSum = sum
}
