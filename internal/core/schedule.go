// Package core implements the paper's primary contribution: the schedule
// model ⟨T,R⟩ for duty-cycled wireless sensor networks, the
// topology-transparency requirements (Requirements 1-3 and their
// equivalence, Theorem 1), the worst-case throughput analysis (Definitions
// 1-2, Theorems 2-4), and the Construct algorithm of Figure 2 together with
// its guarantees (Theorems 6-9).
//
// Throughout, the network class N(n, D) consists of all networks over at
// most n nodes V_n = {0..n-1} in which node degrees are at most D. All
// analysis quantities are exact rationals (math/big), so the paper's
// "equality holds if and only if" statements are machine-checkable.
package core

import (
	"fmt"

	"repro/internal/bitset"
)

// Schedule is a periodic activity schedule ⟨T,R⟩ over the node universe
// V_n = {0..n-1}: in slot i of each frame the nodes of T[i] may transmit,
// the nodes of R[i] may receive, and all other nodes sleep. T[i] and R[i]
// are disjoint. A Schedule is immutable after construction and safe for
// concurrent use.
type Schedule struct {
	n int
	t []*bitset.Set // per slot, capacity n
	r []*bitset.Set
	// Per-node slot sets (capacity L), precomputed for the checkers:
	// tran[x] = {i : x ∈ T[i]}, recv[x] = {i : x ∈ R[i]}.
	tran []*bitset.Set
	recv []*bitset.Set
}

// New builds a schedule from explicit per-slot transmitter and receiver
// node lists. It validates that the arrays have equal positive length, all
// nodes are in [0, n), and T[i] ∩ R[i] = ∅ for every slot.
func New(n int, t, r [][]int) (*Schedule, error) {
	if len(t) != len(r) {
		return nil, fmt.Errorf("core: |T| = %d but |R| = %d", len(t), len(r))
	}
	ts := make([]*bitset.Set, len(t))
	rs := make([]*bitset.Set, len(r))
	for i := range t {
		ts[i] = bitset.New(n)
		for _, x := range t[i] {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("core: slot %d transmitter %d out of range [0,%d)", i, x, n)
			}
			ts[i].Add(x)
		}
		rs[i] = bitset.New(n)
		for _, x := range r[i] {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("core: slot %d receiver %d out of range [0,%d)", i, x, n)
			}
			rs[i].Add(x)
		}
	}
	return FromSets(n, ts, rs)
}

// FromSets builds a schedule from per-slot bitsets. The sets are cloned;
// callers may keep mutating their copies.
func FromSets(n int, t, r []*bitset.Set) (*Schedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: n = %d < 1", n)
	}
	if len(t) == 0 || len(t) != len(r) {
		return nil, fmt.Errorf("core: need equal positive |T| and |R|, got %d and %d", len(t), len(r))
	}
	L := len(t)
	s := &Schedule{
		n: n,
		t: make([]*bitset.Set, L),
		r: make([]*bitset.Set, L),
	}
	for i := range t {
		if t[i] == nil || r[i] == nil {
			return nil, fmt.Errorf("core: nil slot set at %d", i)
		}
		if t[i].Cap() != n || r[i].Cap() != n {
			return nil, fmt.Errorf("core: slot %d set capacity != n = %d", i, n)
		}
		if t[i].Intersects(r[i]) {
			return nil, fmt.Errorf("core: slot %d has a node both transmitting and receiving", i)
		}
		s.t[i] = t[i].Clone()
		s.r[i] = r[i].Clone()
	}
	s.buildNodeViews()
	return s, nil
}

// NonSleeping builds the schedule ⟨T⟩ in which every node not transmitting
// in a slot is receiving: R[i] = V_n - T[i]. Every T[i] must be a proper
// non-empty subset is not required by the model, but an empty T[i] is a
// wasted slot and a full T[i] silences the slot; both are permitted and
// simply score zero throughput.
func NonSleeping(n int, t [][]int) (*Schedule, error) {
	ts := make([]*bitset.Set, len(t))
	for i := range t {
		ts[i] = bitset.New(n)
		for _, x := range t[i] {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("core: slot %d transmitter %d out of range [0,%d)", i, x, n)
			}
			ts[i].Add(x)
		}
	}
	return NonSleepingFromSets(n, ts)
}

// NonSleepingFromSets is NonSleeping for prebuilt transmitter bitsets.
func NonSleepingFromSets(n int, t []*bitset.Set) (*Schedule, error) {
	rs := make([]*bitset.Set, len(t))
	full := bitset.New(n)
	for x := 0; x < n; x++ {
		full.Add(x)
	}
	for i := range t {
		if t[i] == nil {
			return nil, fmt.Errorf("core: nil transmitter set at slot %d", i)
		}
		r := full.Clone()
		r.DifferenceWith(t[i])
		rs[i] = r
	}
	return FromSets(n, t, rs)
}

// ScheduleFromFamily builds the non-sleeping schedule whose per-node
// transmission slot sets are the member sets of a set family over ground
// set [0, L): node x transmits in slot i iff i ∈ sets[x], and receives in
// every other slot. When the family is D-cover-free this schedule satisfies
// Requirement 1 (and, being non-sleeping, Requirement 3) for N(n, D).
func ScheduleFromFamily(l int, sets []*bitset.Set) (*Schedule, error) {
	n := len(sets)
	if n == 0 {
		return nil, fmt.Errorf("core: empty family")
	}
	if l < 1 {
		return nil, fmt.Errorf("core: frame length %d < 1", l)
	}
	t := make([]*bitset.Set, l)
	for i := range t {
		t[i] = bitset.New(n)
	}
	for x, slots := range sets {
		if slots == nil {
			return nil, fmt.Errorf("core: nil member set %d", x)
		}
		bad := -1
		slots.ForEach(func(i int) bool {
			if i >= l {
				bad = i
				return false
			}
			t[i].Add(x)
			return true
		})
		if bad >= 0 {
			return nil, fmt.Errorf("core: member set %d contains slot %d >= L = %d", x, bad, l)
		}
	}
	return NonSleepingFromSets(n, t)
}

// buildNodeViews computes tran[x] and recv[x] from the slot sets.
func (s *Schedule) buildNodeViews() {
	L := len(s.t)
	s.tran = make([]*bitset.Set, s.n)
	s.recv = make([]*bitset.Set, s.n)
	for x := 0; x < s.n; x++ {
		s.tran[x] = bitset.New(L)
		s.recv[x] = bitset.New(L)
	}
	for i := 0; i < L; i++ {
		s.t[i].ForEach(func(x int) bool {
			s.tran[x].Add(i)
			return true
		})
		s.r[i].ForEach(func(x int) bool {
			s.recv[x].Add(i)
			return true
		})
	}
}

// N returns the size of the node universe V_n.
func (s *Schedule) N() int { return s.n }

// L returns the frame length.
func (s *Schedule) L() int { return len(s.t) }

// T returns the transmitter set of slot i. The returned set must not be
// modified.
func (s *Schedule) T(i int) *bitset.Set { return s.t[i] }

// R returns the receiver set of slot i. The returned set must not be
// modified.
func (s *Schedule) R(i int) *bitset.Set { return s.r[i] }

// Tran returns tran(x): the set of slots in which node x may transmit.
// The returned set must not be modified.
func (s *Schedule) Tran(x int) *bitset.Set { return s.tran[x] }

// Recv returns recv(x): the set of slots in which node x may receive.
// The returned set must not be modified.
func (s *Schedule) Recv(x int) *bitset.Set { return s.recv[x] }

// IsNonSleeping reports whether T[i] ∪ R[i] = V_n in every slot.
func (s *Schedule) IsNonSleeping() bool {
	for i := range s.t {
		if s.t[i].Count()+s.r[i].Count() != s.n {
			return false
		}
	}
	return true
}

// IsAlphaSchedule reports whether the schedule is an (αT, αR)-schedule:
// |T[i]| <= αT and |R[i]| <= αR in every slot.
func (s *Schedule) IsAlphaSchedule(alphaT, alphaR int) bool {
	for i := range s.t {
		if s.t[i].Count() > alphaT || s.r[i].Count() > alphaR {
			return false
		}
	}
	return true
}

// MinTransmitters returns min_i |T[i]| (the paper's M_in).
func (s *Schedule) MinTransmitters() int {
	m := -1
	for _, t := range s.t {
		if c := t.Count(); m < 0 || c < m {
			m = c
		}
	}
	return m
}

// MaxTransmitters returns max_i |T[i]| (the paper's M_ax).
func (s *Schedule) MaxTransmitters() int {
	m := 0
	for _, t := range s.t {
		if c := t.Count(); c > m {
			m = c
		}
	}
	return m
}

// MaxReceivers returns max_i |R[i]|.
func (s *Schedule) MaxReceivers() int {
	m := 0
	for _, r := range s.r {
		if c := r.Count(); c > m {
			m = c
		}
	}
	return m
}

// FreeSlots returns freeSlots(x, Y) = tran(x) - ∪_{y∈Y} tran(y): the slots
// in which x transmits and no node of Y does. Y must not contain x.
func (s *Schedule) FreeSlots(x int, y []int) *bitset.Set {
	fs := s.tran[x].Clone()
	for _, v := range y {
		if v == x {
			panic("core: FreeSlots with x ∈ Y")
		}
		fs.DifferenceWith(s.tran[v])
	}
	return fs
}

// Sigma returns σ(a, b) = tran(a) ∩ recv(b): the slots in which a
// transmission from a can be heard by b (collisions aside).
func (s *Schedule) Sigma(a, b int) *bitset.Set {
	return bitset.Intersect(s.tran[a], s.recv[b])
}

// TSlots returns 𝒯(x, y, S) = recv(y) ∩ freeSlots(x, {y} ∪ S): the slots in
// which a transmission from x to y is guaranteed to succeed when y's other
// neighbours are exactly S. Neither x nor y may appear in S.
func (s *Schedule) TSlots(x, y int, set []int) *bitset.Set {
	fs := s.tran[x].Clone()
	fs.DifferenceWith(s.tran[y])
	for _, v := range set {
		if v == x || v == y {
			panic("core: TSlots with x or y in S")
		}
		fs.DifferenceWith(s.tran[v])
	}
	fs.IntersectWith(s.recv[y])
	return fs
}

// ActiveFraction returns the average fraction of nodes active (transmitting
// or receiving) per slot: Σ_i (|T[i]| + |R[i]|) / (n·L). It is 1 exactly
// for non-sleeping schedules; lower values mean more sleep and hence less
// energy spent.
func (s *Schedule) ActiveFraction() float64 {
	active := 0
	for i := range s.t {
		active += s.t[i].Count() + s.r[i].Count()
	}
	return float64(active) / (float64(s.n) * float64(len(s.t)))
}

// DutyCycle returns the fraction of slots in which node x is active.
func (s *Schedule) DutyCycle(x int) float64 {
	return float64(s.tran[x].Count()+s.recv[x].Count()) / float64(len(s.t))
}

// Role describes what a node is scheduled to do in a slot.
type Role uint8

const (
	// Sleep: the radio is off.
	Sleep Role = iota
	// Transmit: the node may transmit.
	Transmit
	// Receive: the node may receive.
	Receive
)

func (r Role) String() string {
	switch r {
	case Sleep:
		return "sleep"
	case Transmit:
		return "transmit"
	case Receive:
		return "receive"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// RoleOf returns node x's role in slot i (taken modulo the frame length, so
// callers can pass absolute slot numbers).
func (s *Schedule) RoleOf(x, slot int) Role {
	i := slot % len(s.t)
	switch {
	case s.t[i].Contains(x):
		return Transmit
	case s.r[i].Contains(x):
		return Receive
	default:
		return Sleep
	}
}

// Clone returns a deep copy (useful for failure-injection tests that need a
// mutable schedule; the package itself never mutates a built Schedule).
func (s *Schedule) Clone() *Schedule {
	c, err := FromSets(s.n, s.t, s.r)
	if err != nil {
		panic("core: Clone of valid schedule failed: " + err.Error())
	}
	return c
}

// String renders a compact textual form of the schedule.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule n=%d L=%d", s.n, len(s.t))
	for i := range s.t {
		out += fmt.Sprintf("\n  slot %d: T=%s R=%s", i, s.t[i], s.r[i])
	}
	return out
}
