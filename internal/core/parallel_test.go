package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cff"
	"repro/internal/stats"
)

func TestParallelCheckersMatchSequential(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(5)
		L := 2 + rng.Intn(6)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.7)
		for _, workers := range []int{0, 1, 2, 7} {
			seq3 := CheckRequirement3(s, d)
			par3 := CheckRequirement3Parallel(s, d, workers)
			if (seq3 == nil) != (par3 == nil) {
				return false
			}
			if seq3 != nil {
				// Deterministic witness: same x, same Y, same K.
				if seq3.X != par3.X || seq3.K != par3.K || len(seq3.Y) != len(par3.Y) {
					return false
				}
				for i := range seq3.Y {
					if seq3.Y[i] != par3.Y[i] {
						return false
					}
				}
			}
			seq1 := CheckRequirement1(s, d)
			par1 := CheckRequirement1Parallel(s, d, workers)
			if (seq1 == nil) != (par1 == nil) {
				return false
			}
			if seq1 != nil && (seq1.X != par1.X) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMinThroughputMatchesSequential(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4)
		L := 2 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.8)
		want := MinThroughput(s, d)
		for _, workers := range []int{0, 1, 3} {
			if MinThroughputParallel(s, d, workers).Cmp(want) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelOnRealSchedules(t *testing.T) {
	fam, err := cff.PolynomialFor(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := mustFromFamily(t, fam)
	if w := CheckRequirement3Parallel(s, 3, 4); w != nil {
		t.Fatalf("parallel checker rejected a TT schedule: %v", w)
	}
	if w := CheckRequirement1Parallel(s, 3, 4); w != nil {
		t.Fatalf("parallel Req1 rejected a TT schedule: %v", w)
	}
	duty, err := Construct(s, ConstructOptions{AlphaT: 3, AlphaR: 5, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq := MinThroughput(duty, 3)
	par := MinThroughputParallel(duty, 3, 4)
	if seq.Cmp(par) != 0 {
		t.Fatalf("min throughput %s (seq) vs %s (par)", seq, par)
	}
}

func TestParallelPanicsOnBadD(t *testing.T) {
	s := tdma(4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad D accepted")
		}
	}()
	CheckRequirement3Parallel(s, 0, 2)
}

func BenchmarkRequirement3Sequential(b *testing.B) {
	fam, err := cff.PolynomialFor(49, 3)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CheckRequirement3(s, 3) != nil {
			b.Fatal("violation")
		}
	}
}

func BenchmarkRequirement3Parallel(b *testing.B) {
	fam, err := cff.PolynomialFor(49, 3)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CheckRequirement3Parallel(s, 3, 0) != nil {
			b.Fatal("violation")
		}
	}
}
