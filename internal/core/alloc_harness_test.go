//go:build !race

// The race detector instruments memory operations in ways that can
// allocate, so the allocation gates only run in the plain test pass.

package core

import "testing"

// allocGateHarness binds one warm call per symbol listed in the generated
// alloc_gate_test.go. The Verifier is built outside the closure, and its
// first call inside TestHotpathAllocGates warms the walker scratch; the
// sink variables live in alloc_test.go.
func allocGateHarness(t *testing.T, sym string) func() {
	t.Helper()
	s := tdma(10)
	v := NewVerifier(s, 3)
	switch sym {
	case "(*repro/internal/core.Verifier).MinThroughputSlots":
		return func() { sinkSlots = v.MinThroughputSlots() }
	}
	t.Fatalf("no alloc-gate harness for %s; add one in alloc_harness_test.go", sym)
	return nil
}
