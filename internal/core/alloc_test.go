//go:build !race

// The race detector instruments memory operations in ways that can
// allocate, so the allocation pins only run in the plain test pass
// (`make test`); `make race` still runs every functional test.

package core

import (
	"testing"
)

// Result sinks keep the measured calls from being optimized away without
// allocating inside the measured closures.
var (
	sinkWitness *Witness
	sinkReq2    *Req2Witness
	sinkSlots   int
)

// TestVerifierZeroAllocsWarm pins the Verifier's zero-steady-state-
// allocation guarantee: after construction (and one warm-up call to grow
// the walker scratch), the requirement checkers and the integer throughput
// scan must not allocate at all on a satisfying schedule. Witnesses (only
// built on violations) and big.Rat results are the documented exceptions.
func TestVerifierZeroAllocsWarm(t *testing.T) {
	s := tdma(10)
	const d = 3
	v := NewVerifier(s, d)
	if v.Requirement3() != nil || v.Requirement2() != nil {
		t.Fatal("TDMA must satisfy the requirements")
	}
	v.MinThroughputSlots() // warm the throughput walk scratch too

	cases := []struct {
		name string
		call func()
	}{
		{"Requirement1", func() { sinkWitness = v.Requirement1() }},
		{"Requirement1Node", func() { sinkWitness = v.Requirement1Node(4) }},
		{"Requirement3", func() { sinkWitness = v.Requirement3() }},
		{"Requirement3Node", func() { sinkWitness = v.Requirement3Node(4) }},
		{"Requirement2", func() { sinkReq2 = v.Requirement2() }},
		{"MinThroughputSlots", func() { sinkSlots = v.MinThroughputSlots() }},
	}
	for _, tc := range cases {
		sinkWitness, sinkReq2, sinkSlots = nil, nil, -1
		if allocs := testing.AllocsPerRun(20, tc.call); allocs != 0 {
			t.Errorf("%s: %v allocs per warm run, want 0", tc.name, allocs)
		}
		if sinkWitness != nil || sinkReq2 != nil {
			t.Errorf("%s: unexpected violation witness on TDMA", tc.name)
		}
	}
}
