package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/cff"
	"repro/internal/stats"
)

func polySchedule(t *testing.T, n, d int) *Schedule {
	t.Helper()
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		t.Fatal(err)
	}
	return mustFromFamily(t, fam)
}

func TestPermuteNodesPreservesEverything(t *testing.T) {
	s := polySchedule(t, 9, 2)
	rng := stats.NewRNG(5)
	perm := rng.Perm(9)
	p, err := PermuteNodes(s, perm)
	if err != nil {
		t.Fatal(err)
	}
	if p.L() != s.L() || p.N() != s.N() {
		t.Fatal("shape changed")
	}
	if !IsTopologyTransparent(p, 2) {
		t.Fatal("permutation broke topology transparency")
	}
	if AvgThroughput(p, 2).Cmp(AvgThroughput(s, 2)) != 0 {
		t.Fatal("permutation changed average throughput")
	}
	if MinThroughput(p, 2).Cmp(MinThroughput(s, 2)) != 0 {
		t.Fatal("permutation changed minimum throughput")
	}
	// Per-slot counts preserved.
	for i := 0; i < s.L(); i++ {
		if p.T(i).Count() != s.T(i).Count() || p.R(i).Count() != s.R(i).Count() {
			t.Fatal("permutation changed slot counts")
		}
	}
	// Node x's slots become node perm[x]'s slots.
	for x := 0; x < 9; x++ {
		if !p.Tran(perm[x]).Equal(s.Tran(x)) {
			t.Fatalf("tran sets not relabeled for node %d", x)
		}
	}
}

func TestPermuteNodesRejectsBadPerms(t *testing.T) {
	s := tdma(4)
	for _, perm := range [][]int{
		{0, 1, 2},     // short
		{0, 1, 2, 2},  // duplicate
		{0, 1, 2, 4},  // out of range
		{0, 1, 2, -1}, // negative
	} {
		if _, err := PermuteNodes(s, perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

func TestRotateSlots(t *testing.T) {
	s := tdma(5)
	r := RotateSlots(s, 2)
	// Slot 0 of the rotation is slot 2 of the original.
	if !r.T(0).Equal(s.T(2)) {
		t.Fatal("rotation misaligned")
	}
	if !r.T(4).Equal(s.T(1)) {
		t.Fatal("rotation wrap misaligned")
	}
	if !IsTopologyTransparent(r, 3) {
		t.Fatal("rotation broke TT")
	}
	if AvgThroughput(r, 2).Cmp(AvgThroughput(s, 2)) != 0 {
		t.Fatal("rotation changed throughput")
	}
	// Negative and overflowing rotations normalize.
	if !RotateSlots(s, -3).T(0).Equal(s.T(2)) {
		t.Fatal("negative rotation wrong")
	}
	if !RotateSlots(s, 7).T(0).Equal(s.T(2)) {
		t.Fatal("overflow rotation wrong")
	}
}

func TestConcatPreservesTT(t *testing.T) {
	a := tdma(6)
	rng := stats.NewRNG(3)
	b := randomSchedule(rng, 6, 4, 0.3, 0.5) // arbitrary, possibly useless
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.L() != a.L()+b.L() {
		t.Fatalf("L = %d", c.L())
	}
	if !IsTopologyTransparent(c, 5) {
		t.Fatal("concat with a TT half should stay TT")
	}
	// Throughput is the length-weighted mean.
	want := AvgThroughput(a, 2)
	want.Mul(want, combinRat(a.L()))
	wb := AvgThroughput(b, 2)
	wb.Mul(wb, combinRat(b.L()))
	want.Add(want, wb)
	want.Quo(want, combinRat(a.L()+b.L()))
	if got := AvgThroughput(c, 2); got.Cmp(want) != 0 {
		t.Fatalf("concat throughput %s, want %s", got, want)
	}
	// Universe mismatch rejected.
	if _, err := Concat(a, tdma(5)); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func combinRat(x int) *big.Rat {
	return big.NewRat(int64(x), 1)
}

func TestRepeatInvariance(t *testing.T) {
	s := polySchedule(t, 9, 2)
	r, err := Repeat(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.L() != 3*s.L() {
		t.Fatalf("L = %d", r.L())
	}
	if AvgThroughput(r, 2).Cmp(AvgThroughput(s, 2)) != 0 {
		t.Fatal("repeat changed average throughput")
	}
	if MinThroughput(r, 2).Cmp(MinThroughput(s, 2)) != 0 {
		t.Fatal("repeat changed minimum throughput")
	}
	if _, err := Repeat(s, 0); err == nil {
		t.Fatal("Repeat(0) accepted")
	}
}

func TestRestrictPreservesTT(t *testing.T) {
	s := polySchedule(t, 16, 3)
	r, err := Restrict(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 10 || r.L() != s.L() {
		t.Fatal("shape wrong")
	}
	if !IsTopologyTransparent(r, 3) {
		t.Fatal("restriction broke TT")
	}
	// Surviving nodes keep their slot sets.
	for x := 0; x < 10; x++ {
		if !r.Tran(x).Equal(s.Tran(x)) {
			t.Fatalf("tran(%d) changed", x)
		}
	}
	if _, err := Restrict(s, 0); err == nil {
		t.Fatal("Restrict(0) accepted")
	}
	if _, err := Restrict(s, 17); err == nil {
		t.Fatal("Restrict beyond n accepted")
	}
}

func TestQuickPermutationTTInvariance(t *testing.T) {
	// TT status (either way) is invariant under relabeling.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4)
		L := 2 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.7)
		p, err := PermuteNodes(s, rng.Perm(n))
		if err != nil {
			return false
		}
		return IsTopologyTransparent(s, d) == IsTopologyTransparent(p, d)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRotationAnalysisInvariance(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(4)
		L := 2 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, L, 0.3, 0.7)
		r := RotateSlots(s, rng.Intn(3*L))
		return AvgThroughput(s, d).Cmp(AvgThroughput(r, d)) == 0 &&
			MinThroughput(s, d).Cmp(MinThroughput(r, d)) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
