package core

import (
	"strings"
	"testing"
)

func TestGridRendering(t *testing.T) {
	s, err := New(3, [][]int{{0}, {1}}, [][]int{{1, 2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Grid(0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 node rows
		t.Fatalf("lines: %q", lines)
	}
	// Node 0: T in slot 0, R in slot 1.
	if !strings.HasSuffix(lines[1], "TR") {
		t.Fatalf("node 0 row = %q", lines[1])
	}
	// Node 1: R then T.
	if !strings.HasSuffix(lines[2], "RT") {
		t.Fatalf("node 1 row = %q", lines[2])
	}
	// Node 2: R then sleep.
	if !strings.HasSuffix(lines[3], "R.") {
		t.Fatalf("node 2 row = %q", lines[3])
	}
}

func TestGridWrapping(t *testing.T) {
	s := tdma(4)
	out := s.Grid(2)
	// Two blocks of (header + 4 rows), separated by a blank line.
	blocks := strings.Split(strings.TrimRight(out, "\n"), "\n\n")
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d:\n%s", len(blocks), out)
	}
	for _, blk := range blocks {
		if got := len(strings.Split(blk, "\n")); got != 5 {
			t.Fatalf("block lines = %d", got)
		}
	}
}

func TestGridCharacterCensus(t *testing.T) {
	// In a non-sleeping schedule, every cell is T or R; counts match the
	// slot sets.
	s := tdma(5)
	out := s.Grid(0)
	tCount := strings.Count(out, "T")
	rCount := strings.Count(out, "R")
	if tCount != 5 || rCount != 20 {
		t.Fatalf("census T=%d R=%d", tCount, rCount)
	}
	if strings.Contains(out, ".") {
		t.Fatal("non-sleeping grid should have no sleep cells")
	}
}
