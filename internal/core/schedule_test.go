package core

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/stats"
)

// tdma returns the round-robin TDMA schedule over n nodes: L = n slots,
// T[i] = {i}, R[i] = V - {i}. It is topology-transparent for every
// D <= n-1.
func tdma(n int) *Schedule {
	t := make([][]int, n)
	for i := range t {
		t[i] = []int{i}
	}
	s, err := NonSleeping(n, t)
	if err != nil {
		panic(err)
	}
	return s
}

// randomSchedule builds a random (possibly sleeping, possibly useless)
// schedule: each node transmits with probability pT and otherwise receives
// with probability pR in each slot.
func randomSchedule(rng *stats.RNG, n, L int, pT, pR float64) *Schedule {
	t := make([]*bitset.Set, L)
	r := make([]*bitset.Set, L)
	for i := 0; i < L; i++ {
		t[i] = bitset.New(n)
		r[i] = bitset.New(n)
		for x := 0; x < n; x++ {
			if rng.Bool(pT) {
				t[i].Add(x)
			} else if rng.Bool(pR) {
				r[i].Add(x)
			}
		}
	}
	s, err := FromSets(n, t, r)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(4, [][]int{{0}}, [][]int{{1}, {2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New(4, [][]int{{4}}, [][]int{{1}}); err == nil {
		t.Fatal("out-of-range transmitter accepted")
	}
	if _, err := New(4, [][]int{{0}}, [][]int{{-1}}); err == nil {
		t.Fatal("negative receiver accepted")
	}
	if _, err := New(4, [][]int{{0, 1}}, [][]int{{1, 2}}); err == nil {
		t.Fatal("transmit+receive overlap accepted")
	}
	if _, err := New(0, [][]int{{}}, [][]int{{}}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := FromSets(4, nil, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	s, err := New(4, [][]int{{0}, {1, 2}}, [][]int{{1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.L() != 2 {
		t.Fatalf("N=%d L=%d", s.N(), s.L())
	}
}

func TestNonSleepingComplement(t *testing.T) {
	s := tdma(5)
	if !s.IsNonSleeping() {
		t.Fatal("tdma should be non-sleeping")
	}
	for i := 0; i < 5; i++ {
		if s.T(i).Count() != 1 || !s.T(i).Contains(i) {
			t.Fatalf("slot %d T = %v", i, s.T(i))
		}
		if s.R(i).Count() != 4 || s.R(i).Contains(i) {
			t.Fatalf("slot %d R = %v", i, s.R(i))
		}
	}
}

func TestTranRecvViews(t *testing.T) {
	s, err := New(4, [][]int{{0, 1}, {2}, {0}}, [][]int{{2, 3}, {0, 3}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tran(0).Elements(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("tran(0) = %v", got)
	}
	if got := s.Recv(3).Elements(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("recv(3) = %v", got)
	}
	if !s.Tran(3).Empty() {
		t.Fatalf("tran(3) = %v", s.Tran(3))
	}
}

func TestFreeSlots(t *testing.T) {
	s := tdma(5)
	fs := s.FreeSlots(0, []int{1, 2})
	if got := fs.Elements(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("freeSlots = %v", got)
	}
	// A node that transmits in the same slot removes it.
	s2, err := New(3, [][]int{{0, 1}}, [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.FreeSlots(0, []int{1}).Empty() {
		t.Fatal("slot shared with y should not be free")
	}
}

func TestFreeSlotsPanicsOnSelf(t *testing.T) {
	s := tdma(4)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeSlots with x in Y should panic")
		}
	}()
	s.FreeSlots(1, []int{1})
}

func TestSigmaAndTSlots(t *testing.T) {
	// Slot 0: 0 transmits, 1 receives. Slot 1: 2 transmits, 1 receives.
	// Slot 2: 0 transmits, nobody receives.
	s, err := New(3, [][]int{{0}, {2}, {0}}, [][]int{{1}, {1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sigma(0, 1).Elements(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("σ(0,1) = %v", got)
	}
	if !s.Sigma(1, 0).Empty() {
		t.Fatal("σ(1,0) should be empty")
	}
	// 𝒯(0, 1, {2}): slot 0 free of 2's transmissions and 1 receiving.
	if got := s.TSlots(0, 1, []int{2}).Elements(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("𝒯 = %v", got)
	}
	// With neighbour 2 absent the answer is identical here.
	if got := s.TSlots(0, 1, nil).Elements(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("𝒯 = %v", got)
	}
}

func TestRoleOf(t *testing.T) {
	s, err := New(3, [][]int{{0}, {1}}, [][]int{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.RoleOf(0, 0) != Transmit || s.RoleOf(1, 0) != Receive || s.RoleOf(2, 0) != Sleep {
		t.Fatal("slot 0 roles wrong")
	}
	// Absolute slot numbers wrap around the frame.
	if s.RoleOf(1, 3) != Transmit {
		t.Fatal("RoleOf should wrap modulo L")
	}
	if Transmit.String() != "transmit" || Sleep.String() != "sleep" || Receive.String() != "receive" {
		t.Fatal("Role strings wrong")
	}
}

func TestAlphaScheduleAndCounts(t *testing.T) {
	s, err := New(5, [][]int{{0, 1}, {2}}, [][]int{{2, 3}, {3, 4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsAlphaSchedule(2, 3) {
		t.Fatal("should satisfy (2,3)")
	}
	if s.IsAlphaSchedule(1, 3) {
		t.Fatal("should violate αT = 1")
	}
	if s.IsAlphaSchedule(2, 2) {
		t.Fatal("should violate αR = 2")
	}
	if s.MinTransmitters() != 1 || s.MaxTransmitters() != 2 || s.MaxReceivers() != 3 {
		t.Fatalf("counts: %d %d %d", s.MinTransmitters(), s.MaxTransmitters(), s.MaxReceivers())
	}
}

func TestActiveFractionAndDutyCycle(t *testing.T) {
	s := tdma(4)
	if got := s.ActiveFraction(); got != 1 {
		t.Fatalf("non-sleeping ActiveFraction = %v", got)
	}
	for x := 0; x < 4; x++ {
		if got := s.DutyCycle(x); got != 1 {
			t.Fatalf("DutyCycle(%d) = %v", x, got)
		}
	}
	// Half the nodes sleep in every slot here.
	s2, err := New(4, [][]int{{0}, {1}}, [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.ActiveFraction(); got != 0.5 {
		t.Fatalf("ActiveFraction = %v", got)
	}
	if got := s2.DutyCycle(3); got != 0 {
		t.Fatalf("DutyCycle(3) = %v", got)
	}
}

func TestCloneIsDeepAndEqualBehaviour(t *testing.T) {
	s := tdma(4)
	c := s.Clone()
	if c.N() != s.N() || c.L() != s.L() {
		t.Fatal("Clone changed shape")
	}
	for i := 0; i < s.L(); i++ {
		if !c.T(i).Equal(s.T(i)) || !c.R(i).Equal(s.R(i)) {
			t.Fatal("Clone changed content")
		}
	}
}

func TestStringRendering(t *testing.T) {
	s, err := New(3, [][]int{{0}}, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "slot 0") {
		t.Fatalf("String = %q", out)
	}
}
