package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/cff"
	"repro/internal/stats"
)

// buildInputs returns a selection of topology-transparent non-sleeping
// schedules (with their D) for construction tests.
func buildInputs(t *testing.T) []struct {
	name string
	ns   *Schedule
	d    int
} {
	t.Helper()
	polyFam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	steinerFam, err := cff.Steiner(12)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		ns   *Schedule
		d    int
	}{
		{"tdma8/D3", tdma(8), 3},
		{"tdma6/D2", tdma(6), 2},
		{"poly9/D2", mustFromFamily(t, polyFam), 2},
		{"steiner12/D2", mustFromFamily(t, steinerFam), 2},
	}
}

func TestConstructTheorem6Correctness(t *testing.T) {
	// Theorem 6: the output is an (αT, αR)-schedule that is TT for N(n, D).
	for _, in := range buildInputs(t) {
		n := in.ns.N()
		for _, alphas := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, n - 3}} {
			alphaT, alphaR := alphas[0], alphas[1]
			if alphaT+alphaR > n || alphaR < 1 {
				continue
			}
			for _, strat := range []DivisionStrategy{Sequential, Balanced} {
				out, err := Construct(in.ns, ConstructOptions{
					AlphaT: alphaT, AlphaR: alphaR, D: in.d, Strategy: strat,
				})
				if err != nil {
					t.Fatalf("%s αT=%d αR=%d %v: %v", in.name, alphaT, alphaR, strat, err)
				}
				if !out.IsAlphaSchedule(alphaT, alphaR) {
					t.Fatalf("%s: output violates (%d, %d) caps", in.name, alphaT, alphaR)
				}
				if w := CheckRequirement3(out, in.d); w != nil {
					t.Fatalf("%s αT=%d αR=%d %v: output not TT: %v",
						in.name, alphaT, alphaR, strat, w)
				}
			}
		}
	}
}

func TestConstructTheorem7FrameLength(t *testing.T) {
	for _, in := range buildInputs(t) {
		n := in.ns.N()
		alphaT, alphaR := 2, 3
		if alphaT+alphaR > n {
			continue
		}
		aStar := OptimalTransmittersCapped(n, in.d, alphaT)
		out, err := Construct(in.ns, ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: in.d})
		if err != nil {
			t.Fatal(err)
		}
		want := ConstructedFrameLength(in.ns, aStar, alphaR)
		if out.L() != want {
			t.Fatalf("%s: frame length %d, want %d", in.name, out.L(), want)
		}
		if cap := FrameLengthCap(in.ns, aStar, alphaR); out.L() > cap {
			t.Fatalf("%s: frame length %d exceeds Theorem 7 cap %d", in.name, out.L(), cap)
		}
	}
}

func TestConstructTheorem8Optimality(t *testing.T) {
	// When min_i |T[i]| >= αT★ the constructed schedule attains the Theorem
	// 4 bound exactly; otherwise the measured ratio respects the Theorem 8
	// lower bound.
	for _, in := range buildInputs(t) {
		n := in.ns.N()
		for _, alphas := range [][2]int{{1, 2}, {2, 3}, {3, 3}} {
			alphaT, alphaR := alphas[0], alphas[1]
			if alphaT+alphaR > n {
				continue
			}
			out, err := Construct(in.ns, ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: in.d})
			if err != nil {
				t.Fatal(err)
			}
			ratio := OptimalityRatio(out, in.d, alphaT, alphaR)
			lower := Theorem8LowerBound(in.ns, in.d, alphaT, alphaR)
			one := big.NewRat(1, 1)
			if ratio.Cmp(one) > 0 {
				t.Fatalf("%s: ratio %s exceeds 1", in.name, ratio)
			}
			if ratio.Cmp(lower) < 0 {
				t.Fatalf("%s αT=%d αR=%d: ratio %s below Theorem 8 bound %s",
					in.name, alphaT, alphaR, ratio, lower)
			}
			aStar := OptimalTransmittersCapped(n, in.d, alphaT)
			if in.ns.MinTransmitters() >= aStar && ratio.Cmp(one) != 0 {
				t.Fatalf("%s αT=%d αR=%d: M_in >= αT★ but ratio = %s != 1",
					in.name, alphaT, alphaR, ratio)
			}
		}
	}
}

func TestConstructTheorem9MinThroughput(t *testing.T) {
	for _, in := range buildInputs(t) {
		n := in.ns.N()
		alphaT, alphaR := 2, 3
		if alphaT+alphaR > n {
			continue
		}
		out, err := Construct(in.ns, ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: in.d})
		if err != nil {
			t.Fatal(err)
		}
		got := MinThroughput(out, in.d)
		bound := Theorem9Bound(in.ns, in.d, alphaT, alphaR)
		if got.Cmp(bound) < 0 {
			t.Fatalf("%s: Thr^min %s below Theorem 9 bound %s", in.name, got, bound)
		}
		if got.Sign() <= 0 {
			t.Fatalf("%s: constructed schedule has zero minimum throughput", in.name)
		}
	}
}

func TestConstructGuaranteedSlotsNeverShrink(t *testing.T) {
	// The key step of the Theorem 9 proof: per (x, y, S) the constructed
	// schedule has at least as many guaranteed slots per frame as the
	// original.
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns := mustFromFamily(t, fam)
	out, err := Construct(ns, ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	forEachTriple(ns, 2, func(x, y int, set []int) bool {
		before := ns.TSlots(x, y, set).Count()
		after := out.TSlots(x, y, set).Count()
		if after < before {
			t.Fatalf("(%d→%d | %v): %d guaranteed slots before, %d after", x, y, set, before, after)
		}
		return true
	})
}

func TestConstructExactAlphaRemark(t *testing.T) {
	// Remark after Theorem 6: with UseExactAlphaT and every |T[i]| >= αT',
	// the output has exactly αT' transmitters and exactly αR receivers per
	// slot.
	fam, err := cff.PolynomialFor(16, 3) // member sets of size q >= 4
	if err != nil {
		t.Fatal(err)
	}
	ns := mustFromFamily(t, fam)
	alphaT, alphaR := 2, 4
	out, err := Construct(ns, ConstructOptions{
		AlphaT: alphaT, AlphaR: alphaR, UseExactAlphaT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.L(); i++ {
		if out.T(i).Count() != alphaT {
			t.Fatalf("slot %d has %d transmitters, want exactly %d", i, out.T(i).Count(), alphaT)
		}
		if out.R(i).Count() != alphaR {
			t.Fatalf("slot %d has %d receivers, want exactly %d", i, out.R(i).Count(), alphaR)
		}
	}
	if w := CheckRequirement3(out, 3); w != nil {
		t.Fatalf("exact-α output not TT: %v", w)
	}
}

func TestConstructReceiversAlwaysExactlyAlphaR(t *testing.T) {
	// The Theorem 8 proof requires |R̄[i]| = αR in every emitted slot
	// (padding, line 8).
	for _, in := range buildInputs(t) {
		n := in.ns.N()
		alphaT, alphaR := 2, 3
		if alphaT+alphaR > n {
			continue
		}
		out, err := Construct(in.ns, ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: in.d})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.L(); i++ {
			if out.R(i).Count() != alphaR {
				t.Fatalf("%s: slot %d has %d receivers, want %d", in.name, i, out.R(i).Count(), alphaR)
			}
		}
	}
}

func TestConstructBalancedPreservesEnergyBalance(t *testing.T) {
	// §7 closing remark: if the input is balanced (same per-slot transmitter
	// count, same per-node activity share), the Balanced strategy output
	// keeps per-node transmission and activity counts near-uniform (cyclic
	// windows are exact when m | ks; within one occurrence otherwise).
	ns := tdma(8) // perfectly balanced input
	out, err := Construct(ns, ConstructOptions{AlphaT: 1, AlphaR: 3, D: 3, Strategy: Balanced})
	if err != nil {
		t.Fatal(err)
	}
	minTx, maxTx := out.L(), 0
	minAct, maxAct := out.L()*2, 0
	for x := 0; x < out.N(); x++ {
		tx := out.Tran(x).Count()
		act := tx + out.Recv(x).Count()
		if tx < minTx {
			minTx = tx
		}
		if tx > maxTx {
			maxTx = tx
		}
		if act < minAct {
			minAct = act
		}
		if act > maxAct {
			maxAct = act
		}
	}
	if maxTx-minTx > 1 {
		t.Fatalf("transmission counts spread %d..%d", minTx, maxTx)
	}
	if maxAct-minAct > 2 {
		t.Fatalf("activity counts spread %d..%d", minAct, maxAct)
	}
}

func TestConstructInvalidInputs(t *testing.T) {
	ns := tdma(6)
	cases := []ConstructOptions{
		{AlphaT: 0, AlphaR: 2, D: 2},
		{AlphaT: 2, AlphaR: 0, D: 2},
		{AlphaT: 4, AlphaR: 3, D: 2}, // αT + αR > n
		{AlphaT: 2, AlphaR: 2, D: 0},
		{AlphaT: 2, AlphaR: 2, D: 6},
	}
	for i, opts := range cases {
		if _, err := Construct(ns, opts); err == nil {
			t.Fatalf("case %d accepted invalid options %+v", i, opts)
		}
	}
	// Sleeping input rejected.
	sleepy, err := New(4, [][]int{{0}}, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Construct(sleepy, ConstructOptions{AlphaT: 1, AlphaR: 1, D: 2}); err == nil {
		t.Fatal("sleeping input accepted")
	}
}

func TestConstructSkipsEmptySlots(t *testing.T) {
	// A slot where nobody transmits contributes no entries.
	ts := [][]int{{0}, {}, {1}, {2}}
	ns, err := NonSleeping(3, ts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Construct(ns, ConstructOptions{AlphaT: 1, AlphaR: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.L() != 3 {
		t.Fatalf("L = %d, want 3 (empty slot dropped)", out.L())
	}
	if w := CheckRequirement3(out, 2); w != nil {
		t.Fatalf("not TT: %v", w)
	}
}

func TestDivideProperties(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := 1 + rng.Intn(30)
		size := 1 + rng.Intn(10)
		elems := rng.Perm(m)
		for _, strat := range []DivisionStrategy{Sequential, Balanced} {
			subs := newDivider(m, strat).divideT(elems, size)
			want := (m + minInt2(size, m) - 1) / minInt2(size, m)
			if len(subs) != want {
				return false
			}
			covered := map[int]bool{}
			for _, sub := range subs {
				if len(sub) != minInt2(size, m) {
					return false
				}
				seen := map[int]bool{}
				for _, e := range sub {
					if seen[e] {
						return false // duplicate inside one subset
					}
					seen[e] = true
					covered[e] = true
				}
			}
			if len(covered) != m {
				return false // union must be everything
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDivideBalancedWithinOne(t *testing.T) {
	// Balanced division coverage counts differ by at most one.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := 1 + rng.Intn(30)
		size := 1 + rng.Intn(10)
		elems := make([]int, m)
		for i := range elems {
			elems[i] = i
		}
		subs := newDivider(m, Balanced).divideT(elems, size)
		counts := make([]int, m)
		for _, sub := range subs {
			for _, e := range sub {
				counts[e]++
			}
		}
		mn, mx := counts[0], counts[0]
		for _, c := range counts {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		return mx-mn <= 1 && mn >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructPropertyRandomTTInputs(t *testing.T) {
	// Full pipeline property: random TT non-sleeping schedule (built from a
	// verified random family) → Construct → output TT with caps respected.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(4) // 5..8
		d := 2
		// Random non-sleeping schedule; retry until TT (TDMA always is, so
		// mixing in identity slots guarantees termination).
		var ns *Schedule
		for tries := 0; ; tries++ {
			L := n + rng.Intn(5)
			tSets := make([]*Schedule, 0)
			_ = tSets
			raw := make([][]int, L)
			for i := 0; i < L; i++ {
				if i < n {
					raw[i] = []int{i} // embed TDMA so Req1 always holds
				}
				for x := 0; x < n; x++ {
					if rng.Bool(0.25) && i >= n {
						raw[i] = append(raw[i], x)
					}
				}
				if len(raw[i]) == 0 {
					raw[i] = []int{rng.Intn(n)}
				}
			}
			s, err := NonSleeping(n, raw)
			if err != nil {
				return false
			}
			if CheckRequirement1(s, d) == nil {
				ns = s
				break
			}
			if tries > 10 {
				return true // skip pathological seeds
			}
		}
		alphaT := 1 + rng.Intn(2)
		alphaR := 1 + rng.Intn(n-alphaT)
		out, err := Construct(ns, ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
		if err != nil {
			return false
		}
		return out.IsAlphaSchedule(alphaT, alphaR) && CheckRequirement3(out, d) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
