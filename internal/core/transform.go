package core

import (
	"fmt"

	"repro/internal/bitset"
)

// Schedule transformations. Topology transparency is a property of the
// whole class N(n, D), so it is invariant under relabeling nodes and
// rotating or concatenating frames; these utilities let deployments assign
// node IDs, stagger frame phases, and time-multiplex schedules without
// re-verification. Each transformation documents which analysis quantities
// it preserves.

// PermuteNodes returns the schedule with node identities relabeled by perm:
// node x in the input becomes node perm[x] in the output. perm must be a
// permutation of [0, n). Topology transparency, all throughput figures,
// frame length, and per-slot counts are invariant (the network class is
// symmetric in node identities).
func PermuteNodes(s *Schedule, perm []int) (*Schedule, error) {
	n := s.n
	if len(perm) != n {
		return nil, fmt.Errorf("core: permutation has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("core: not a permutation of [0, %d)", n)
		}
		seen[p] = true
	}
	t := make([]*bitset.Set, s.L())
	r := make([]*bitset.Set, s.L())
	for i := 0; i < s.L(); i++ {
		t[i] = bitset.New(n)
		r[i] = bitset.New(n)
		s.t[i].ForEach(func(x int) bool {
			t[i].Add(perm[x])
			return true
		})
		s.r[i].ForEach(func(x int) bool {
			r[i].Add(perm[x])
			return true
		})
	}
	return FromSets(n, t, r)
}

// RotateSlots returns the schedule with the frame cyclically shifted so the
// input's slot k becomes the output's slot 0. All analysis quantities are
// invariant; deployments use this to stagger frame phase without touching
// guarantees.
func RotateSlots(s *Schedule, k int) *Schedule {
	L := s.L()
	k = ((k % L) + L) % L
	t := make([]*bitset.Set, L)
	r := make([]*bitset.Set, L)
	for i := 0; i < L; i++ {
		t[i] = s.t[(i+k)%L]
		r[i] = s.r[(i+k)%L]
	}
	out, err := FromSets(s.n, t, r)
	if err != nil {
		panic("core: RotateSlots of valid schedule failed: " + err.Error())
	}
	return out
}

// Concat returns the schedule that plays a's frame and then b's frame
// (frame length a.L() + b.L()). Both inputs must share the universe size.
// If either input is topology-transparent for N(n, D), so is the result
// (every guarantee of the TT half still occurs once per combined frame);
// throughputs are the length-weighted means of the inputs', which the
// Theorem 2 closed form makes exact.
func Concat(a, b *Schedule) (*Schedule, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("core: Concat universe mismatch %d != %d", a.n, b.n)
	}
	t := make([]*bitset.Set, 0, a.L()+b.L())
	r := make([]*bitset.Set, 0, a.L()+b.L())
	t = append(t, a.t...)
	t = append(t, b.t...)
	r = append(r, a.r...)
	r = append(r, b.r...)
	return FromSets(a.n, t, r)
}

// Repeat returns the schedule whose frame is s's frame played k times.
// Analysis quantities are invariant (every per-frame guarantee appears k
// times in a frame k times as long). Useful for aligning frame lengths
// before Concat.
func Repeat(s *Schedule, k int) (*Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: Repeat count %d < 1", k)
	}
	t := make([]*bitset.Set, 0, k*s.L())
	r := make([]*bitset.Set, 0, k*s.L())
	for j := 0; j < k; j++ {
		t = append(t, s.t...)
		r = append(r, s.r...)
	}
	return FromSets(s.n, t, r)
}

// Restrict returns the schedule over the first m nodes only: nodes >= m are
// removed from every slot set. If the input is topology-transparent for
// N(n, D) then the restriction is topology-transparent for N(m, D) as long
// as m > D (dropping potential interferers can only help every surviving
// link; dropping receivers only removes guarantees toward removed nodes).
func Restrict(s *Schedule, m int) (*Schedule, error) {
	if m < 1 || m > s.n {
		return nil, fmt.Errorf("core: Restrict to %d nodes outside [1, %d]", m, s.n)
	}
	t := make([]*bitset.Set, s.L())
	r := make([]*bitset.Set, s.L())
	for i := 0; i < s.L(); i++ {
		t[i] = bitset.New(m)
		r[i] = bitset.New(m)
		s.t[i].ForEach(func(x int) bool {
			if x < m {
				t[i].Add(x)
			}
			return true
		})
		s.r[i].ForEach(func(x int) bool {
			if x < m {
				r[i].Add(x)
			}
			return true
		})
	}
	return FromSets(m, t, r)
}
