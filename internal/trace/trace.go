// Package trace provides slot-level event tracing for the simulator: what
// transmitted, what was delivered, where collisions and drops happened.
// Workloads accept an optional Tracer; implementations here cover the
// common needs — a bounded ring buffer for post-mortem inspection, an
// aggregating counter, and a line writer for live debugging.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies an event.
type Kind uint8

const (
	// Generate: a node created a packet.
	Generate Kind = iota
	// Transmit: a node spent a slot transmitting.
	Transmit
	// Deliver: a receiver decoded a packet from Node (Peer = receiver).
	Deliver
	// Collision: two or more neighbours of Peer transmitted simultaneously.
	Collision
	// Drop: a packet was discarded (queue overflow).
	Drop
)

func (k Kind) String() string {
	switch k {
	case Generate:
		return "generate"
	case Transmit:
		return "transmit"
	case Deliver:
		return "deliver"
	case Collision:
		return "collision"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one simulator occurrence. Node is the acting node (sender,
// generator, dropper); Peer is the counterparty where one exists (the
// receiver for Deliver/Collision), else -1.
type Event struct {
	Slot int
	Kind Kind
	Node int
	Peer int
}

func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("slot %d: %s node %d ↔ %d", e.Slot, e.Kind, e.Node, e.Peer)
	}
	return fmt.Sprintf("slot %d: %s node %d", e.Slot, e.Kind, e.Node)
}

// Tracer consumes events. Implementations must tolerate high rates; the
// simulator calls Record inline.
type Tracer interface {
	Record(e Event)
}

// Ring keeps the most recent Cap events. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total int
}

// NewRing returns a ring tracer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("trace: ring capacity < 1")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever recorded (including evicted).
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Counter aggregates per-kind event counts. Safe for concurrent use.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]int
}

// NewCounter returns an aggregating tracer.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]int)}
}

// Record implements Tracer.
func (c *Counter) Record(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count returns the number of events of kind k.
func (c *Counter) Count(k Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Writer streams formatted event lines to an io.Writer, optionally
// filtered to a slot window and a kind subset. Not safe for concurrent
// writers underneath; intended for debugging runs.
type Writer struct {
	W io.Writer
	// FromSlot/ToSlot bound the window (ToSlot 0 = unbounded).
	FromSlot, ToSlot int
	// Kinds limits output; empty = all kinds.
	Kinds []Kind
}

// Record implements Tracer.
func (w *Writer) Record(e Event) {
	if e.Slot < w.FromSlot || (w.ToSlot > 0 && e.Slot > w.ToSlot) {
		return
	}
	if len(w.Kinds) > 0 {
		ok := false
		for _, k := range w.Kinds {
			if k == e.Kind {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	fmt.Fprintln(w.W, e.String())
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Record implements Tracer.
func (m Multi) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}
