package trace

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Generate: "generate", Transmit: "transmit", Deliver: "deliver",
		Collision: "collision", Drop: "drop",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Slot: 3, Kind: Deliver, Node: 1, Peer: 2}
	if !strings.Contains(e.String(), "deliver") || !strings.Contains(e.String(), "slot 3") {
		t.Fatalf("String = %q", e.String())
	}
	solo := Event{Slot: 0, Kind: Generate, Node: 4, Peer: -1}
	if strings.Contains(solo.String(), "↔") {
		t.Fatalf("peerless event shows a peer: %q", solo.String())
	}
}

func TestRingRetention(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Slot: i, Kind: Transmit, Node: i, Peer: -1})
	}
	evts := r.Events()
	if len(evts) != 3 {
		t.Fatalf("retained %d", len(evts))
	}
	// Oldest first: slots 2, 3, 4.
	for i, e := range evts {
		if e.Slot != i+2 {
			t.Fatalf("events = %v", evts)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
	// Partial fill.
	r2 := NewRing(10)
	r2.Record(Event{Slot: 7})
	if got := r2.Events(); len(got) != 1 || got[0].Slot != 7 {
		t.Fatalf("partial ring = %v", got)
	}
}

func TestRingPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRing(0)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Record(Event{Kind: Deliver})
	c.Record(Event{Kind: Deliver})
	c.Record(Event{Kind: Collision})
	if c.Count(Deliver) != 2 || c.Count(Collision) != 1 || c.Count(Drop) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestWriterFiltering(t *testing.T) {
	var b strings.Builder
	w := &Writer{W: &b, FromSlot: 5, ToSlot: 10, Kinds: []Kind{Collision}}
	w.Record(Event{Slot: 3, Kind: Collision})  // before window
	w.Record(Event{Slot: 7, Kind: Deliver})    // wrong kind
	w.Record(Event{Slot: 7, Kind: Collision})  // match
	w.Record(Event{Slot: 11, Kind: Collision}) // after window
	out := b.String()
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, "slot 7") {
		t.Fatalf("writer output = %q", out)
	}
	// Unbounded window, all kinds.
	b.Reset()
	w2 := &Writer{W: &b}
	w2.Record(Event{Slot: 100, Kind: Drop})
	if !strings.Contains(b.String(), "drop") {
		t.Fatal("unfiltered writer dropped event")
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Record(Event{Kind: Transmit})
	if a.Count(Transmit) != 1 || b.Count(Transmit) != 1 {
		t.Fatal("multi did not fan out")
	}
}
