package optimize

import (
	"testing"

	"repro/internal/cff"
	"repro/internal/core"
)

func TestSearchAlphaFindsSchedules(t *testing.T) {
	// All cases sit at or above the counting lower bound
	// (core.MinFrameLowerBound); αT = 1 instances converge reliably.
	cases := []Options{
		{N: 6, D: 2, AlphaT: 1, AlphaR: 5, L: 6, Seed: 7},
		{N: 6, D: 2, AlphaT: 1, AlphaR: 3, L: 12, Seed: 7, MaxIters: 100000},
		{N: 6, D: 2, AlphaT: 1, AlphaR: 3, L: 14, Seed: 7, MaxIters: 100000},
	}
	for _, c := range cases {
		s, err := SearchAlpha(c)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if s.N() != c.N || s.L() != c.L {
			t.Fatalf("shape %d/%d", s.N(), s.L())
		}
		if !s.IsAlphaSchedule(c.AlphaT, c.AlphaR) {
			t.Fatalf("%+v: caps violated", c)
		}
		if w := core.CheckRequirement3(s, c.D); w != nil {
			t.Fatalf("%+v: not TT: %v", c, w)
		}
		if c.L < core.MinFrameLowerBound(c.N, c.AlphaT, c.AlphaR) {
			t.Fatalf("%+v: test below the counting bound is impossible", c)
		}
	}
}

func TestSearchAlphaAtTheCountingBound(t *testing.T) {
	// (αT, αR) = (1, 2), n = 6: the bound forces L >= 18, a perfect
	// receiver design; the searcher finds one, certifying the bound tight
	// for this instance — and matching Construct's Theorem 7 frame length
	// exactly, so the paper's construction is frame-optimal here.
	const n, d, alphaT, alphaR = 6, 2, 1, 2
	bound := core.MinFrameLowerBound(n, alphaT, alphaR)
	if bound != 18 {
		t.Fatalf("bound = %d, want 18", bound)
	}
	s, err := SearchAlpha(Options{
		N: n, D: d, AlphaT: alphaT, AlphaR: alphaR, L: bound, Seed: 7, MaxIters: 150000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := core.CheckRequirement3(s, d); w != nil {
		t.Fatalf("not TT: %v", w)
	}
	// Construct from TDMA reaches the same frame length.
	fam, err := cff.Identity(n)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		t.Fatal(err)
	}
	built, err := core.Construct(ns, core.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if built.L() != bound {
		t.Fatalf("Construct L = %d, counting bound %d", built.L(), bound)
	}
}

func TestSearchAlphaValidation(t *testing.T) {
	bad := []Options{
		{N: 2, D: 1, AlphaT: 1, AlphaR: 1, L: 4},
		{N: 6, D: 0, AlphaT: 1, AlphaR: 2, L: 4},
		{N: 6, D: 2, AlphaT: 0, AlphaR: 2, L: 4},
		{N: 6, D: 2, AlphaT: 4, AlphaR: 4, L: 4}, // caps exceed n
		{N: 6, D: 2, AlphaT: 1, AlphaR: 2, L: 0},
	}
	for _, c := range bad {
		if _, err := SearchAlpha(c); err == nil {
			t.Fatalf("%+v accepted", c)
		}
	}
}

func TestSearchAlphaFailsBelowBound(t *testing.T) {
	// Below the counting bound no schedule exists; the searcher must
	// exhaust its budget rather than return something invalid.
	if _, err := SearchAlpha(Options{
		N: 6, D: 2, AlphaT: 1, AlphaR: 2, L: 17, Seed: 1, MaxIters: 3000,
	}); err == nil {
		t.Fatal("search below the counting bound succeeded (bound broken?)")
	}
}

func TestSearchAlphaDeterministic(t *testing.T) {
	opts := Options{N: 6, D: 2, AlphaT: 1, AlphaR: 3, L: 13, Seed: 11, MaxIters: 100000}
	a, err := SearchAlpha(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchAlpha(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.L(); i++ {
		if !a.T(i).Equal(b.T(i)) || !a.R(i).Equal(b.R(i)) {
			t.Fatal("same seed produced different schedules")
		}
	}
}
