// Package optimize searches for topology-transparent (αT, αR)-schedules
// directly, by randomized repair against the Requirement 3 checker —
// the ablation companion to the paper's Construct algorithm. Construct is
// constructive and carries Theorems 6-9; direct search carries no
// guarantees but can discover schedules at frame lengths the two-step
// construction cannot express, quantifying how much frame length the
// paper's approach leaves on the table for small classes.
//
// The min-conflicts search converges reliably for αT = 1 instances (the
// common sensor regime: one transmitter per slot), including perfect
// designs exactly at the core.MinFrameLowerBound counting bound. Instances
// with αT >= 2 have a much rougher landscape and may exhaust the iteration
// budget; SearchAlpha reports that as an error rather than guessing.
package optimize

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/stats"
)

// Options parameterizes SearchAlpha.
type Options struct {
	// N and D define the network class N(n, D).
	N, D int
	// AlphaT and AlphaR are the per-slot caps; every emitted slot has
	// exactly AlphaT transmitters and AlphaR receivers.
	AlphaT, AlphaR int
	// L is the frame length to search at.
	L int
	// MaxIters bounds repair iterations; 0 selects 400·N·D.
	MaxIters int
	// Seed drives the randomized repair.
	Seed uint64
}

// SearchAlpha attempts to find a topology-transparent (αT, αR)-schedule
// with frame length exactly L by randomized local repair, and returns a
// verified schedule or an error when the iteration budget is exhausted
// (which does not prove impossibility).
func SearchAlpha(opts Options) (*core.Schedule, error) {
	n, d := opts.N, opts.D
	if n < 3 || d < 1 || d > n-1 {
		return nil, fmt.Errorf("optimize: class N(%d, %d) invalid", n, d)
	}
	if opts.AlphaT < 1 || opts.AlphaR < 1 || opts.AlphaT+opts.AlphaR > n {
		return nil, fmt.Errorf("optimize: caps (%d, %d) invalid for n = %d", opts.AlphaT, opts.AlphaR, n)
	}
	if opts.L < 1 {
		return nil, fmt.Errorf("optimize: L = %d", opts.L)
	}
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 400 * n * d
	}
	rng := stats.NewRNG(opts.Seed)

	// Mutable slot state; rebuilt into a core.Schedule for each check.
	t := make([][]int, opts.L)
	r := make([][]int, opts.L)
	for i := range t {
		perm := rng.Perm(n)
		t[i] = append([]int(nil), perm[:opts.AlphaT]...)
		r[i] = append([]int(nil), perm[opts.AlphaT:opts.AlphaT+opts.AlphaR]...)
	}
	build := func() (*core.Schedule, error) { return core.New(n, t, r) }

	for iter := 0; iter < maxIters; iter++ {
		s, err := build()
		if err != nil {
			return nil, fmt.Errorf("optimize: internal state invalid: %w", err)
		}
		w := randomViolation(s, d, rng)
		if w == nil {
			// No violation found from a random probe order; confirm
			// exhaustively before declaring success.
			if core.CheckRequirement3(s, d) == nil {
				return s, nil
			}
			continue
		}
		repair(n, opts.AlphaR, t, r, w, s, rng)
	}
	return nil, fmt.Errorf("optimize: SearchAlpha(n=%d, D=%d, αT=%d, αR=%d, L=%d) exhausted %d iterations",
		n, d, opts.AlphaT, opts.AlphaR, opts.L, maxIters)
}

// randomViolation scans transmitter nodes in random order and returns the
// first Requirement 3 violation found, so successive repairs spread over
// the whole constraint set instead of thrashing on the smallest violated
// node (the min-conflicts heuristic).
func randomViolation(s *core.Schedule, d int, rng *stats.RNG) *core.Witness {
	n := s.N()
	for _, x := range rng.Perm(n) {
		if w := core.CheckRequirement3Node(s, d, x); w != nil {
			return w
		}
	}
	return nil
}

// repair mutates one slot toward satisfying the witnessed violation.
func repair(n, alphaR int, t, r [][]int, w *core.Witness, s *core.Schedule, rng *stats.RNG) {
	x := w.X
	if w.K < 0 {
		// Condition (1): x has no slot free of Y. Put x into a random
		// slot's transmitter set (evicting a random occupant) and evict
		// any members of Y transmitting there.
		i := rng.Intn(len(t))
		if tx := s.Tran(x); !tx.Empty() {
			// Prefer repairing a slot x already owns: evict one Y member.
			slots := tx.Elements()
			i = slots[rng.Intn(len(slots))]
			evictAny(n, t, r, i, w.Y, rng)
			return
		}
		slot := t[i]
		victim := rng.Intn(len(slot))
		replaceNode(n, t, r, i, slot[victim], x, rng)
		evictAny(n, t, r, i, w.Y, rng)
		return
	}
	// Condition (2): receiver yk never listens during freeSlots(x, Y).
	// If x's owned slots cannot even seat its n-1 potential receivers,
	// no receiver shuffle can fix it: grant x another transmit slot,
	// stolen from the node owning the most (ownership rebalances under
	// repeated repair).
	if s.Tran(x).Count()*alphaR < n-1 {
		grantSlot(n, t, r, x, s, rng)
		return
	}
	yk := w.Y[w.K]
	fs := s.FreeSlots(x, w.Y)
	if fs.Empty() {
		return // racing with condition (1); next witness will handle it
	}
	slots := fs.Elements()
	i := slots[rng.Intn(len(slots))]
	// yk is not transmitting in a free slot; make it listen there, evicting
	// the receiver whose coverage of this slot's transmitters is most
	// redundant (it listens to them in other slots too), so the fix is less
	// likely to create the mirror-image violation.
	if containsNode(r[i], yk) {
		return
	}
	victim := 0
	bestScore := -1
	for idx, v := range r[i] {
		score := 0

		for _, tx := range t[i] {
			// Count other slots where v listens while tx transmits.
			s.Tran(tx).ForEach(func(j int) bool {
				if j != i && s.Recv(v).Contains(j) {
					score++
				}
				return true
			})
		}
		// Small random jitter breaks ties fairly.
		score = score*4 + rng.Intn(4)
		if score > bestScore {
			bestScore = score
			victim = idx
		}
	}
	r[i][victim] = yk
}

// grantSlot gives x the transmitter seat of the node currently owning the
// most transmit slots (ties random), in one of that node's slots where x
// does not already appear.
func grantSlot(n int, t, r [][]int, x int, s *core.Schedule, rng *stats.RNG) {
	rich, richCount := -1, -1
	for v := 0; v < n; v++ {
		if v == x {
			continue
		}
		c := s.Tran(v).Count()
		if c > richCount || (c == richCount && rng.Bool(0.5)) {
			rich, richCount = v, c
		}
	}
	if rich < 0 || richCount == 0 {
		return
	}
	slots := s.Tran(rich).Elements()
	// Prefer a slot where x is not already transmitting or receiving.
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	for _, i := range slots {
		if containsNode(t[i], x) {
			continue
		}
		if idx := indexOf(r[i], x); idx >= 0 {
			// x currently listens there; swap roles with rich.
			r[i][idx] = rich
		}
		if idx := indexOf(t[i], rich); idx >= 0 {
			t[i][idx] = x
			return
		}
	}
}

// evictAny removes one transmitting member of ys from slot i (if any),
// replacing it with a node outside both sets of the slot.
func evictAny(n int, t, r [][]int, i int, ys []int, rng *stats.RNG) {
	for _, y := range rng.Perm(len(ys)) {
		if idx := indexOf(t[i], ys[y]); idx >= 0 {
			replacement := pickOutside(n, t, r, i, rng)
			if replacement >= 0 {
				t[i][idx] = replacement
			}
			return
		}
	}
}

// replaceNode swaps out 'old' for 'new' in slot i's transmitter set,
// removing 'new' from the slot's receiver set first if present (sets must
// stay disjoint) and backfilling the receiver hole from outside.
func replaceNode(n int, t, r [][]int, i, old, newNode int, rng *stats.RNG) {
	if idx := indexOf(r[i], newNode); idx >= 0 {
		if repl := pickOutside(n, t, r, i, rng); repl >= 0 {
			r[i][idx] = repl
		} else {
			r[i][idx] = old // swap roles
		}
	}
	if idx := indexOf(t[i], old); idx >= 0 {
		t[i][idx] = newNode
	}
}

// pickOutside returns a node absent from both sets of slot i, or -1.
func pickOutside(n int, t, r [][]int, i int, rng *stats.RNG) int {
	used := bitset.New(n)
	for _, v := range t[i] {
		used.Add(v)
	}
	for _, v := range r[i] {
		used.Add(v)
	}
	free := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !used.Contains(v) {
			free = append(free, v)
		}
	}
	if len(free) == 0 {
		return -1
	}
	return free[rng.Intn(len(free))]
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func containsNode(s []int, v int) bool { return indexOf(s, v) >= 0 }
