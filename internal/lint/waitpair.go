package lint

import (
	"go/ast"
	"go/types"
)

// WaitPair guards the engine's determinism contract at its root: every
// goroutine whose completion matters must be joinable. A `go` statement
// with no completion signal — no sync.WaitGroup Done/Wait, no channel
// send, close, or receive, and no WaitGroup/channel passed into the
// spawned function — cannot be waited for, so the spawner cannot know
// when its writes are visible (the classic lost-update that makes a
// campaign's journal depend on scheduling).
//
// A goroutine counts as paired when the spawned function (literal body or
// call arguments) involves any of:
//
//   - a sync.WaitGroup method call (Done, Wait, Add);
//   - a channel operation: send, receive, close, select, range-over-chan;
//   - a channel- or WaitGroup-typed value among the call's arguments or
//     the called method's receiver.
//
// Intentionally detached goroutines (fire-and-forget servers) do exist;
// suppress them with //lint:ignore waitpair and a written reason that
// names the mechanism making their lifecycle observable.
var WaitPair = &Analyzer{
	Name: "waitpair",
	Doc:  "goroutines must be joinable via a WaitGroup or a channel",
	Run:  runWaitPair,
}

func runWaitPair(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutinePaired(pkg, gs.Call) {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(gs.Pos()),
					Analyzer: "waitpair",
					Message:  "goroutine has no WaitGroup or channel join; its completion (and the visibility of its writes) is unobservable",
				})
			}
			return true
		})
	}
	return diags
}

// goroutinePaired reports whether the spawned call carries a completion
// signal.
func goroutinePaired(pkg *Package, call *ast.CallExpr) bool {
	// A channel or WaitGroup handed to the spawned function (argument or
	// method receiver) is a join point even if we cannot see its body.
	for _, arg := range call.Args {
		if isJoinType(pkg.Info.Types[arg].Type) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasJoin(pkg, fun.Body)
	case *ast.SelectorExpr:
		if isJoinType(pkg.Info.Types[fun.X].Type) {
			return true
		}
	}
	return false
}

// isJoinType reports whether t is a direct join handle: a channel or a
// sync.WaitGroup, possibly behind a pointer. Structs that merely contain
// one do not count.
func isJoinType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isNamed(t, "sync", "WaitGroup")
}

// waitGroupMethods are the sync.WaitGroup methods that establish a join.
var waitGroupMethods = map[string]bool{"Add": true, "Done": true, "Wait": true}

// bodyHasJoin scans a goroutine body for any completion signal.
func bodyHasJoin(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if t := pkg.Info.Types[n.X].Type; t != nil && n.Op.String() == "<-" {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if waitGroupMethods[fun.Sel.Name] && isJoinType(pkg.Info.Types[fun.X].Type) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
