package lint

import (
	"path/filepath"
	"sync"
	"testing"
)

// benchTree caches one module-wide load shared by every benchmark in this
// file, so per-analyzer timings measure analysis, not parsing.
var benchTree struct {
	once sync.Once
	pkgs []*Package
	err  error
}

func benchPkgs(b *testing.B) []*Package {
	benchTree.once.Do(func() {
		loader, err := NewLoader("")
		if err != nil {
			benchTree.err = err
			return
		}
		benchTree.pkgs, benchTree.err = loader.LoadTree(filepath.Join("..", ".."), true)
	})
	if benchTree.err != nil {
		b.Fatal(benchTree.err)
	}
	if len(benchTree.pkgs) == 0 {
		b.Fatal("module load produced no packages")
	}
	return benchTree.pkgs
}

// BenchmarkLoadTree times a full serial parse + type-check of the module.
func BenchmarkLoadTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loader.LoadTree(filepath.Join("..", ".."), true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadTreeParallel times the worker-pool load `make lint` uses.
func BenchmarkLoadTreeParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader("")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loader.LoadTreeParallel(filepath.Join("..", ".."), true, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildProgram times call-graph construction plus the summary
// fixpoint over the whole module.
func BenchmarkBuildProgram(b *testing.B) {
	pkgs := benchPkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildProgram(pkgs)
	}
}

// BenchmarkAnalyzer reports per-analyzer wall time over the whole module,
// with the interprocedural program prebuilt (as in a real lint run, where
// its cost is shared by all analyzers).
func BenchmarkAnalyzer(b *testing.B) {
	pkgs := benchPkgs(b)
	prog := BuildProgram(pkgs)
	for _, pkg := range pkgs {
		pkg.Prog = prog
	}
	for _, a := range All() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, pkg := range pkgs {
					a.Run(pkg)
				}
			}
		})
	}
}

// BenchmarkLintAll times the full production path: program build,
// directive collection, every analyzer, suppression, and sorting.
func BenchmarkLintAll(b *testing.B) {
	pkgs := benchPkgs(b)
	analyzers := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LintAll(pkgs, analyzers)
	}
}
