package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the analyzer toolkit: a
// module-wide call graph over the already-type-checked units, precise for
// static calls and for method calls whose receiver type is concrete, and
// deliberately conservative everywhere dynamic dispatch hides the callee.
//
// Functions are keyed by a stable symbol string ("pkgpath.Func" or
// "(*pkgpath.Type).Method") rather than by *types.Func identity: the
// loader type-checks each unit with full Info but resolves imports through
// a shared cache, so the same source function is represented by distinct
// object pointers in its own unit and in its importers. The symbol
// unifies them, and doubles as the deterministic iteration key for the
// summary fixpoint (see summary.go).
//
// Dynamic sites — calls through function values, function-typed fields,
// and interface method sets — get no call edge. They are recorded on the
// caller as DynamicSite entries so analyzers and tests can see exactly
// what the graph declined to resolve; the soundness consequences are
// documented in DESIGN.md §12.

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

const (
	// EdgeCall is a static call: the callee runs whenever the site executes.
	EdgeCall EdgeKind = iota
	// EdgeRef is a function or method value reference (`f := pkg.F`,
	// `e.now = time.Now`). The referenced function may run later, from
	// anywhere; taint does NOT propagate through refs (the reference site
	// is where a direct-source suppression belongs), but the edge is kept
	// so the graph records the dependency.
	EdgeRef
)

// Edge is one resolved caller→callee edge.
type Edge struct {
	Kind   EdgeKind
	Callee string      // symbol of the callee
	Fn     *types.Func // resolved callee object (caller's view)
	Call   *ast.CallExpr
	Recv   ast.Expr // receiver expression of a method call, else nil
	Pos    token.Pos
}

// DynamicSite is a call the graph cannot resolve statically.
type DynamicSite struct {
	Desc string // e.g. "interface dispatch (pkg.Iface).M", "function value f"
	Pos  token.Pos
}

// FuncInfo is one module function with a body: its syntax, its outgoing
// edges, and the summary computed by the fixpoint.
type FuncInfo struct {
	Sym    string
	Pkg    *Package
	Decl   *ast.FuncDecl
	Obj    *types.Func    // the unit's own object for Decl
	Params []types.Object // receiver (if any) followed by declared parameters; nil for blanks
	Edges  []Edge
	// Dynamic lists the unresolved call sites, in source order.
	Dynamic []DynamicSite
	// Summary is valid after BuildProgram's fixpoint completes.
	Summary Summary
	// Hotpath records a //ttdc:hotpath contract in the declaration's doc
	// comment (see hotpath.go); HotpathReason is the mandatory free-text
	// justification that follows the marker.
	Hotpath       bool
	HotpathReason string

	level    int // import-DAG level of the enclosing unit (callee-first order)
	paramSet map[types.Object]bool
	// floatDefs lazily caches local-variable definitions for the float
	// provenance walk (see summary.go); pure syntax, stable across passes.
	floatDefs map[types.Object][]ast.Expr
	// hot lazily caches the allocation-site analysis (see alloc.go);
	// likewise stable across fixpoint passes.
	hot *hotFacts
}

// Program is the module-wide interprocedural index shared by the
// floatflow, poolescape, and detflow analyzers.
type Program struct {
	// Funcs maps symbol → function for every module function with a body.
	Funcs map[string]*FuncInfo
	// order lists symbols sorted by (import level, symbol): callees almost
	// always precede callers, so the fixpoint converges in one pass unless
	// recursion or an import cycle through test units forces another.
	order []string
	byPkg map[*Package][]*FuncInfo
}

// BuildProgram assembles the call graph over pkgs and runs the summary
// fixpoint. The result depends only on the contents and order of pkgs —
// never on loader parallelism — which is what pins parallel and serial
// lint runs byte-identical.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{Funcs: map[string]*FuncInfo{}, byPkg: map[*Package][]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				sym := symbolOf(obj)
				if _, dup := p.Funcs[sym]; dup {
					continue // same dir loaded through two patterns
				}
				fi := &FuncInfo{Sym: sym, Pkg: pkg, Decl: fd, Obj: obj}
				fi.HotpathReason, fi.Hotpath = hotpathDecl(fd)
				fi.collect(pkg)
				p.Funcs[sym] = fi
				p.byPkg[pkg] = append(p.byPkg[pkg], fi)
				p.order = append(p.order, sym)
			}
		}
	}
	p.computeLevels(pkgs)
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.Funcs[p.order[i]], p.Funcs[p.order[j]]
		if a.level != b.level {
			return a.level < b.level
		}
		return a.Sym < b.Sym
	})
	p.fixpoint()
	return p
}

// FuncsOf returns the functions of one unit in source order.
func (p *Program) FuncsOf(pkg *Package) []*FuncInfo { return p.byPkg[pkg] }

// Func returns the function with the given symbol, or nil.
func (p *Program) Func(sym string) *FuncInfo { return p.Funcs[sym] }

// collect gathers parameters, call edges, reference edges, and dynamic
// sites from one function body. Statements inside nested function literals
// are attributed to the enclosing declaration: a closure defined here is
// almost always run here (or handed to a caller that runs it), so folding
// its calls into the enclosing function over-approximates reachability in
// the direction that keeps taint sound for static calls.
func (fi *FuncInfo) collect(pkg *Package) {
	info := pkg.Info
	fd := fi.Decl
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				fi.Params = append(fi.Params, nil) // unnamed
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					fi.Params = append(fi.Params, nil)
					continue
				}
				fi.Params = append(fi.Params, info.Defs[name])
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	fi.paramSet = map[types.Object]bool{}
	for _, par := range fi.Params {
		if par != nil {
			fi.paramSet[par] = true
		}
	}

	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, recv, id, dyn := resolveCallee(pkg, call)
		switch {
		case fn != nil:
			calleeIdents[id] = true
			fi.Edges = append(fi.Edges, Edge{
				Kind: EdgeCall, Callee: symbolOf(fn), Fn: fn,
				Call: call, Recv: recv, Pos: call.Pos(),
			})
		case dyn != "":
			fi.Dynamic = append(fi.Dynamic, DynamicSite{Desc: dyn, Pos: call.Pos()})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			fi.Edges = append(fi.Edges, Edge{Kind: EdgeRef, Callee: symbolOf(fn), Fn: fn, Pos: id.Pos()})
		}
		return true
	})
}

// resolveCallee resolves the static callee of call. It returns exactly one
// of: a resolved *types.Func (with the receiver expression and the callee
// identifier), or a non-empty dyn description for sites that need dynamic
// dispatch. Conversions, builtins, and immediate function-literal calls
// return all zero values — they are not edges.
func resolveCallee(pkg *Package, call *ast.CallExpr) (fn *types.Func, recv ast.Expr, id *ast.Ident, dyn string) {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, nil, fun, ""
		case *types.Var:
			return nil, nil, nil, "function value " + fun.Name
		}
		return nil, nil, nil, "" // conversion, builtin, or unresolved
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			f, ok := s.Obj().(*types.Func)
			if !ok {
				return nil, nil, nil, "function-valued field " + fun.Sel.Name
			}
			if types.IsInterface(s.Recv()) {
				return nil, nil, nil, "interface dispatch " + symbolOf(f)
			}
			return f, fun.X, fun.Sel, ""
		}
		// Qualified reference: pkg.F(...) or a conversion pkg.T(...).
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, nil, fun.Sel, ""
		case *types.Var:
			return nil, nil, nil, "function value " + fun.Sel.Name
		}
	}
	return nil, nil, nil, ""
}

// symbolOf derives the stable symbol of a function or method. Object
// pointers differ between a unit's own check and its importers' cached
// view; symbols do not.
func symbolOf(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	var recv *types.Var
	if sig != nil {
		recv = sig.Recv()
	}
	if recv == nil {
		if fn.Pkg() == nil {
			return name
		}
		return fn.Pkg().Path() + "." + name
	}
	t := recv.Type()
	ptr := ""
	if pt, ok := types.Unalias(t).(*types.Pointer); ok {
		ptr = "*"
		t = pt.Elem()
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil {
			return "(" + ptr + obj.Name() + ")." + name // error.Error and friends
		}
		return "(" + ptr + obj.Pkg().Path() + "." + obj.Name() + ")." + name
	case *types.Interface:
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + ".(interface)." + name
		}
		return "(interface)." + name
	default:
		return "(?)." + name
	}
}

// computeLevels assigns each function the Kahn level of its unit in the
// import DAG restricted to the loaded units — the same dependency order
// the parallel loader checks packages in. External test units sit one
// level above their base package so their helpers see settled summaries.
func (p *Program) computeLevels(pkgs []*Package) {
	byPath := map[string]*types.Package{}
	for _, pkg := range pkgs {
		byPath[pkg.Types.Path()] = pkg.Types
	}
	level := map[string]int{}
	visiting := map[string]bool{}
	var lv func(path string) int
	lv = func(path string) int {
		if l, ok := level[path]; ok {
			return l
		}
		if visiting[path] {
			return 0 // cycle guard; Go forbids import cycles, belt and braces
		}
		visiting[path] = true
		defer delete(visiting, path)
		max := 0
		if tp := byPath[path]; tp != nil {
			for _, imp := range tp.Imports() {
				if _, loaded := byPath[imp.Path()]; loaded {
					if d := lv(imp.Path()) + 1; d > max {
						max = d
					}
				}
			}
		}
		if base, ok := strings.CutSuffix(path, "_test"); ok {
			if _, loaded := byPath[base]; loaded {
				if d := lv(base) + 1; d > max {
					max = d
				}
			}
		}
		level[path] = max
		return max
	}
	for _, pkg := range pkgs {
		lv(pkg.Types.Path())
	}
	for _, fi := range p.Funcs {
		fi.level = level[fi.Pkg.Types.Path()]
	}
}
