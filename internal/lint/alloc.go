package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Allocation-site analysis behind the //ttdc:hotpath contract (hotpath.go).
// Each function body is scanned once for the direct shapes that reach the
// Go allocator — make, new, composite literals with heap-backed underlying
// types, append growth, string↔[]byte conversions, closure captures, and
// calls into packages outside the module — and the result feeds two
// consumers: the summary fixpoint (summary.go), which propagates an
// Allocates bit with pass-frozen witness chains, and the allocflow /
// growloop analyzers, which report the sites inside annotated functions.
//
// Five shapes are exempt by construction. Each is a deliberate
// approximation, documented with its failure mode in DESIGN.md §15:
//
//  1. panic arguments — a panicking path is not a warm path;
//  2. return statements that also return a non-nil error — the error path
//     is the cold path, and building the error is what error paths do;
//  3. make/append/composite sites inside an `if` whose condition checks
//     cap(...) — the amortized grow-once idiom ("grow scratch only when
//     too small") allocates O(log n) times, not per call;
//  4. function literals passed directly as call arguments or invoked in
//     place — matching the compiler's own escape analysis, which stack-
//     allocates a closure whose callee does not leak it (go statements
//     and defers are excluded: those closures always escape);
//  5. append to a base the same function provably resets by self-reslice
//     (`x = x[:0]`) or grows behind a cap guard — the pre-sized scratch
//     idiom the simulator kernels are built on.
//
// Dynamic calls (function values, interface dispatch) are optimistically
// assumed allocation-free — the same trade the rest of the interprocedural
// layer makes, in the opposite direction of taint: a missed allocation
// here is caught dynamically by the generated AllocsPerRun gates.

// allocKind classifies a direct allocation site.
type allocKind int

const (
	allocMake allocKind = iota
	allocNew
	allocLit
	allocAppend
	allocConv
	allocClosure
	allocExtCall
)

// allocSite is one direct warm-path allocation in a function body.
type allocSite struct {
	pos  token.Pos
	kind allocKind
	src  string // witness phrase for summary chains: "make", "fmt.Sprintf"
	what string // diagnostic phrase: "make allocates", ...
}

// posRange is a half-open source interval [lo, hi).
type posRange struct{ lo, hi token.Pos }

func within(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// hotFacts caches one function's allocation analysis: pure syntax plus
// types, stable across fixpoint passes.
type hotFacts struct {
	sites    []allocSite
	cold     []posRange // panic arguments and error-returning returns
	capGuard []posRange // bodies of `if ... cap(...) ...` guards

	loopsBuilt bool
	flow       *FlowGraph
	loops      map[*FlowNode]bool // nodes on a CFG cycle
}

// allocFacts returns fi's cached allocation facts, computing them on first
// use. BuildProgram populates Funcs before the fixpoint runs, so external-
// callee checks see the complete module.
func (fi *FuncInfo) allocFacts(p *Program) *hotFacts {
	if fi.hot == nil {
		fi.hot = computeAllocFacts(p, fi)
	}
	return fi.hot
}

// firstSite returns the earliest direct allocation site, if any — the
// frozen witness the summary records.
func (h *hotFacts) firstSite() (allocSite, bool) {
	if len(h.sites) == 0 {
		return allocSite{}, false
	}
	return h.sites[0], true
}

// inCold reports whether pos sits on a cold (panic / error-return) path.
func (h *hotFacts) inCold(pos token.Pos) bool { return within(h.cold, pos) }

// allocFreePkgs are external packages whose calls never allocate on
// success paths the module exercises: pure arithmetic, and the sync
// primitives (Pool.Get hands back recycled memory — the "optimistic for
// pooled getters" trade of DESIGN.md §15; Lock/Unlock/atomic ops are
// allocation-free by design).
var allocFreePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
}

// allocFreeFuncs allowlists individual external functions from packages
// that otherwise allocate: list repositioning moves existing elements,
// sort.Search is a closed-form bisection over caller state, and varint
// decoding is pure scalar arithmetic over the caller's buffer.
var allocFreeFuncs = map[string]bool{
	"(*container/list.List).MoveToFront": true,
	"sort.Search":                        true,
	"encoding/binary.Uvarint":            true,
}

// computeAllocFacts performs the one-pass body scan described in the file
// comment.
func computeAllocFacts(p *Program, fi *FuncInfo) *hotFacts {
	h := &hotFacts{}
	pkg := fi.Pkg
	info := pkg.Info
	body := fi.Decl.Body

	// Exemptions 1–3: cold ranges and cap guards.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pkg, s, "panic") {
				h.cold = append(h.cold, posRange{s.Pos(), s.End()})
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if tv, ok := info.Types[r]; ok && tv.Type != nil &&
					isErrorType(tv.Type) && !tv.IsNil() {
					h.cold = append(h.cold, posRange{s.Pos(), s.End()})
					break
				}
			}
		case *ast.IfStmt:
			if s.Cond != nil && mentionsCap(pkg, s.Cond) {
				h.capGuard = append(h.capGuard, posRange{s.Body.Pos(), s.Body.End()})
			}
		}
		return true
	})

	// Exemption 5: pre-sized append bases — self-resliced, or re-made
	// behind a cap guard, anywhere in the same body.
	presized := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lstr := types.ExprString(lhs)
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				if types.ExprString(rhs.X) == lstr {
					presized[lstr] = true
				}
			case *ast.CallExpr:
				if isBuiltinCall(pkg, rhs, "make") && within(h.capGuard, rhs.Pos()) {
					presized[lstr] = true
				}
			}
		}
		return true
	})

	// Exemption 4: callback literals. Literals launched by go/defer always
	// escape, so they stay flagged.
	escaping := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			escaping[s.Call] = true
		case *ast.DeferStmt:
			escaping[s.Call] = true
		}
		return true
	})
	exemptLit := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || escaping[call] {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			exemptLit[lit] = true // invoked in place
		}
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				exemptLit[lit] = true // callback position
			}
		}
		return true
	})

	addSite := func(pos token.Pos, kind allocKind, src, what string) {
		if within(h.cold, pos) {
			return
		}
		if within(h.capGuard, pos) &&
			(kind == allocMake || kind == allocAppend || kind == allocLit) {
			return
		}
		h.sites = append(h.sites, allocSite{pos: pos, kind: kind, src: src, what: what})
	}
	addrLit := map[*ast.CompositeLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					addrLit[lit] = true
					addSite(e.Pos(), allocLit, "composite literal", "composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			if addrLit[e] {
				return true
			}
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					addSite(e.Pos(), allocLit, "composite literal", "composite literal allocates")
				}
			}
		case *ast.FuncLit:
			if !exemptLit[e] {
				addSite(e.Pos(), allocClosure, "closure capture", "closure capture allocates")
			}
		case *ast.CallExpr:
			callSite(p, fi, e, presized, addSite)
		}
		return true
	})
	sort.Slice(h.sites, func(i, j int) bool { return h.sites[i].pos < h.sites[j].pos })
	return h
}

// callSite classifies one call expression: allocating builtins, heap-bound
// string conversions, and calls that leave the module.
func callSite(p *Program, fi *FuncInfo, call *ast.CallExpr,
	presized map[string]bool, addSite func(token.Pos, allocKind, string, string)) {
	pkg := fi.Pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addSite(call.Pos(), allocMake, "make", "make allocates")
			case "new":
				addSite(call.Pos(), allocNew, "new", "new allocates")
			case "append":
				if len(call.Args) > 0 && !presized[types.ExprString(call.Args[0])] {
					addSite(call.Pos(), allocAppend, "append", "append may grow its slice")
				}
			}
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if stringBytesConv(pkg, tv.Type, call) {
			addSite(call.Pos(), allocConv, "string conversion", "string conversion allocates")
		}
		return
	}
	fn, _, _, _ := resolveCallee(pkg, call)
	if fn == nil {
		return // dynamic dispatch: optimistic (DESIGN.md §15)
	}
	sym := symbolOf(fn)
	if p.Funcs[sym] != nil {
		return // module-internal: the summary fixpoint carries the fact
	}
	if fn.Pkg() == nil {
		return // universe methods (error.Error)
	}
	if allocFreePkgs[fn.Pkg().Path()] || allocFreeFuncs[sym] {
		return
	}
	short := shortSym(sym)
	addSite(call.Pos(), allocExtCall, short, "call to "+short+" allocates")
}

// inLoop reports whether the innermost CFG-backed statement containing pos
// sits on a cycle of fi's flow graph — the allocflow/growloop ownership
// split: loop appends belong to growloop, everything else to allocflow.
// Statements inside nested function literals have no node in the enclosing
// graph and report false (allocflow keeps them).
func (h *hotFacts) inLoop(fi *FuncInfo, pos token.Pos) bool {
	if !h.loopsBuilt {
		h.loopsBuilt = true
		h.flow = BuildFlow(fi.Decl.Body)
		h.loops = map[*FlowNode]bool{}
		for _, n := range h.flow.Nodes {
			if h.flow.Reachable(n)[n] {
				h.loops[n] = true
			}
		}
	}
	var best ast.Stmt
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if s.Pos() <= pos && pos < s.End() && h.flow.NodeFor(s) != nil {
			best = s // pre-order: later matches are nested deeper
		}
		return true
	})
	return best != nil && h.loops[h.flow.NodeFor(best)]
}

// isBuiltinCall reports whether call invokes the named predeclared builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// mentionsCap reports whether expr contains a call to the cap builtin.
func mentionsCap(pkg *Package, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(pkg, call, "cap") {
			found = true
		}
		return true
	})
	return found
}

// errorIface is the predeclared error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) error.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

// stringBytesConv reports whether a conversion to dst crosses the
// string ↔ []byte/[]rune boundary, which copies the payload.
func stringBytesConv(pkg *Package, dst types.Type, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	src := tv.Type
	return (isStringType(dst) && isByteRuneSlice(src)) ||
		(isByteRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allocChain renders the witness path from sym to the ultimate allocation
// site, following the frozen AllocVia links — the allocflow analogue of
// taintChain.
func (p *Program) allocChain(sym string) string {
	var parts []string
	seen := map[string]bool{}
	for cur := sym; cur != "" && !seen[cur]; {
		seen[cur] = true
		parts = append(parts, shortSym(cur))
		fi := p.Funcs[cur]
		if fi == nil {
			break
		}
		if fi.Summary.AllocVia == "" {
			if src := fi.Summary.AllocSrc; src != "" {
				parts = append(parts, src)
			}
			break
		}
		cur = fi.Summary.AllocVia
	}
	return strings.Join(parts, " -> ")
}
