package lint

import (
	"go/ast"
	"go/token"
)

// RatCompare protects the exactness of the Theorem 2-4 throughput figures:
// comparing two *big.Rat values with == or != compares the pointers, not
// the rationals, so equal values in different allocations silently compare
// unequal. It reports every ==/!= whose operands are both *big.Rat and
// requires Cmp instead. Nil checks (r == nil) are untouched — the nil
// literal is not a *big.Rat operand.
var RatCompare = &Analyzer{
	Name: "ratcompare",
	Doc:  "*big.Rat values must be compared with Cmp, not ==/!=",
	Run:  runRatCompare,
}

func runRatCompare(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pkg.Info.Types[be.X].Type, pkg.Info.Types[be.Y].Type
			if xt == nil || yt == nil || !isBigRatPtr(xt) || !isBigRatPtr(yt) {
				return true
			}
			fix := ".Cmp(y) == 0"
			if be.Op == token.NEQ {
				fix = ".Cmp(y) != 0"
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(be.OpPos),
				Analyzer: "ratcompare",
				Message:  "*big.Rat compared with " + be.Op.String() + " compares pointers, not values; use x" + fix,
			})
			return true
		})
	}
	return diags
}
