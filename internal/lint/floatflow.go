package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// FloatFlow enforces the float-provenance contract behind the repo's
// byte-identical results: every float stored into a journal-bound result
// struct (engine.Metrics, sim's *Result types) must trace — through any
// chain of locals, arithmetic, conversions, and module calls — to integer
// counts, constants, or one of the approved finalizers that both the
// legacy and fast simulator paths share. A float that instead originates
// from an unapproved source (a parameter of unknown provenance, a
// function-value call, ad-hoc accumulation) can differ between two code
// paths that are integer-identical, silently breaking the differential
// harness's guarantee. Float fields read back out of a journal-bound
// struct are clean by induction: they were checked at their own store.
var FloatFlow = &Analyzer{
	Name: "floatflow",
	Doc:  "floats stored into journal-bound result structs must derive from integer counts via approved finalizers",
	Run:  runFloatFlow,
}

func runFloatFlow(pkg *Package) []Diagnostic {
	if pkg.Prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if approvedFinalizers[fi.Sym] {
			continue // finalizers are where raw model floats may enter
		}
		if strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		diags = append(diags, floatFlowBody(pkg, fi)...)
	}
	return diags
}

func floatFlowBody(pkg *Package, fi *FuncInfo) []Diagnostic {
	prog := pkg.Prog
	var diags []Diagnostic
	report := func(pos ast.Node, tname *types.Named, field string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos.Pos()),
			Analyzer: "floatflow",
			Message: fmt.Sprintf("float stored into %s.%s does not trace to an approved finalizer; derive it from integer counts (e.g. sim.energyFromCounts) so legacy and fast paths stay byte-identical",
				shortSym(typeSym(tname)), field),
		})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				tname, field := journalFloatField(pkg, lhs)
				if tname == nil {
					continue
				}
				var rhs ast.Expr
				if len(s.Rhs) == 1 {
					rhs = s.Rhs[0] // covers op-assign and tuple assigns
				} else if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				if rhs == nil {
					continue
				}
				if !prog.floatClean(fi, rhs, map[types.Object]bool{}) {
					report(lhs, tname, field)
				}
			}
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[s]
			if !ok || tv.Type == nil {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil || !journalBound[typeSym(named)] {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range s.Elts {
				var field *types.Var
				var val ast.Expr
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					for j := 0; j < st.NumFields(); j++ {
						if st.Field(j).Name() == id.Name {
							field = st.Field(j)
							break
						}
					}
					val = kv.Value
				} else if i < st.NumFields() {
					field = st.Field(i)
					val = elt
				}
				if field == nil || !isFloatType(field.Type()) {
					continue
				}
				if !prog.floatClean(fi, val, map[types.Object]bool{}) {
					report(val, named, field.Name())
				}
			}
		}
		return true
	})
	return diags
}

// journalFloatField reports whether lhs selects a float field of a
// journal-bound struct, returning the struct's named type and field name.
func journalFloatField(pkg *Package, lhs ast.Expr) (*types.Named, string) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	named := namedOf(s.Recv())
	if named == nil || !journalBound[typeSym(named)] {
		return nil, ""
	}
	if !isFloatType(s.Obj().Type()) {
		return nil, ""
	}
	return named, sel.Sel.Name
}
