package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// PoolEscape is the interprocedural escape check for pooled scratch.
// PoolPut verifies the Get/Put pairing inside one function; PoolEscape
// verifies that a pooled value — obtained from Pool.Get directly or from a
// getter function whose summary says ReturnsPooled — never outlives the
// call that will recycle it:
//
//   - stored into a field, element, pointee, package variable, or channel
//     (each a location that survives the function, while the Put hands the
//     same memory to the next Get);
//   - passed to a module function whose summary stores that parameter;
//   - captured by a goroutine while some path of the function releases the
//     object — the goroutine races the pool's next owner;
//   - for getter-obtained values only: returned on a path where the value
//     was already released, or while a deferred release is pending
//     (PoolPut reports the same shapes for direct Gets; the getter
//     indirection is invisible intra-procedurally).
//
// Returning a directly-Get-ed value is NOT a finding: that is how a getter
// transfers ownership out, and the summary propagates ReturnsPooled to its
// callers so the discipline follows the value.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pooled scratch must not escape the call that releases it (fields, goroutines, storing callees, post-release returns)",
	Run:  runPoolEscape,
}

func runPoolEscape(pkg *Package) []Diagnostic {
	if pkg.Prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		diags = append(diags, poolEscapeBody(pkg, fi)...)
	}
	return diags
}

// pooledBinding is one local holding a pooled value within a function.
type pooledBinding struct {
	obj    types.Object
	getter bool // obtained via a ReturnsPooled callee rather than Pool.Get
	stmt   ast.Stmt
}

func poolEscapeBody(pkg *Package, fi *FuncInfo) []Diagnostic {
	prog := pkg.Prog
	bindings := collectPooledBindings(pkg, fi)
	if len(bindings) == 0 {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "poolescape",
			Message:  msg,
		})
	}
	for _, b := range bindings {
		obj := b.obj
		// Rule 1+3: stores into outliving locations and goroutine captures.
		releasesAnywhere := prog.objReleased(fi, obj)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					} else if i < len(s.Rhs) {
						rhs = s.Rhs[i]
					}
					if rhs == nil || !aliasesObject(pkg, rhs, obj) || !exprShares(pkg, rhs) {
						continue
					}
					if aliasesObject(pkg, lhs, obj) {
						continue // self-store within the pooled object
					}
					switch l := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						report(lhs, "pooled scratch stored into a location that outlives the call; the pool will hand this memory to the next Get")
					case *ast.Ident:
						if v := pkg.Info.Uses[l]; v != nil && isPkgLevelVar(v) {
							report(lhs, "pooled scratch stored into a package variable; the pool will hand this memory to the next Get")
						}
					}
				}
			case *ast.SendStmt:
				if usesObject(pkg, s.Value, obj) {
					report(s, "pooled scratch sent on a channel; the receiver outlives the Put")
				}
			case *ast.GoStmt:
				if releasesAnywhere && usesObject(pkg, s.Call, obj) {
					report(s, "pooled scratch captured by a goroutine while this function releases it; the goroutine races the pool's next owner")
				}
			}
			return true
		})
		// Rule 2: passed to a module callee that stores the parameter.
		for _, e := range fi.Edges {
			if e.Kind != EdgeCall {
				continue
			}
			callee := prog.Func(e.Callee)
			if callee == nil {
				continue
			}
			for j, sp := range callee.Summary.StoresParam {
				if !sp {
					continue
				}
				if arg := calleeArg(e, callee, j); arg != nil && aliasesObject(pkg, arg, obj) && exprShares(pkg, arg) {
					report(arg, fmt.Sprintf("pooled scratch passed to %s, which stores it past the call; it escapes its Put", shortSym(e.Callee)))
				}
			}
		}
		// Rule 4, getter-obtained values only: returns after/under a release.
		if b.getter {
			diags = append(diags, getterReturnChecks(pkg, prog, fi, b)...)
		}
	}
	return diags
}

// collectPooledBindings finds the locals of fi bound to pooled values, at
// any statement depth but outside nested function literals.
func collectPooledBindings(pkg *Package, fi *FuncInfo) []pooledBinding {
	prog := pkg.Prog
	var out []pooledBinding
	seen := map[types.Object]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		direct := isPoolGetCall(pkg, as.Rhs[0])
		if !direct && !prog.isPooledSource(pkg, as.Rhs[0]) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, pooledBinding{obj: obj, getter: !direct, stmt: as})
		}
		return true
	})
	return out
}

// objReleased reports whether fi releases obj on some path: an inline or
// deferred Pool.Put/Release, or a call into a module function that
// releases the corresponding parameter.
func (p *Program) objReleased(fi *FuncInfo, obj types.Object) bool {
	if containsRelease(fi.Pkg, fi.Decl.Body, obj) {
		return true
	}
	for _, e := range fi.Edges {
		if e.Kind != EdgeCall {
			continue
		}
		callee := p.Funcs[e.Callee]
		if callee == nil {
			continue
		}
		for j, rp := range callee.Summary.ReleasesParam {
			if rp {
				if arg := calleeArg(e, callee, j); arg != nil && aliasesObject(fi.Pkg, arg, obj) {
					return true
				}
			}
		}
	}
	return false
}

// getterReturnChecks flags returns of a getter-obtained pooled value that
// happen while a deferred release is pending or on a path after an inline
// release — the interprocedural twins of PoolPut's rules 2 and 3.
func getterReturnChecks(pkg *Package, prog *Program, fi *FuncInfo, b pooledBinding) []Diagnostic {
	body := enclosingFuncBody2(fi, b.stmt)
	if body == nil {
		return nil
	}
	g := BuildFlow(body)
	var diags []Diagnostic
	// releasesAt mirrors PoolPut: only the parts executed at a node count,
	// and interprocedural releases (calls into releasing callees) count too.
	releasesAt := func(s ast.Stmt) bool {
		for _, part := range ShallowParts(s) {
			if containsRelease(pkg, part, b.obj) {
				return true
			}
			if stmtCallsReleaser(pkg, prog, fi, part, b.obj) {
				return true
			}
		}
		return false
	}
	deferredRelease := false
	for _, d := range g.Defers {
		if containsRelease(pkg, d, b.obj) || stmtCallsReleaser(pkg, prog, fi, d, b.obj) {
			deferredRelease = true
			break
		}
	}
	for _, n := range g.Nodes {
		ret, ok := n.Stmt.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		mentions := false
		for _, r := range ret.Results {
			if aliasesObject(pkg, r, b.obj) {
				mentions = true
			}
		}
		if !mentions {
			continue
		}
		if deferredRelease {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(ret.Pos()),
				Analyzer: "poolescape",
				Message:  "pooled value from a getter returned while a deferred release will recycle it; the caller receives memory the pool may reuse",
			})
		}
	}
	// Returns (or any use) reachable strictly after an inline release.
	for _, n := range g.Nodes {
		if _, isDefer := n.Stmt.(*ast.DeferStmt); isDefer || !releasesAt(n.Stmt) {
			continue
		}
		reach := g.Reachable(n)
		var after []*FlowNode
		for m := range reach {
			after = append(after, m)
		}
		sort.Slice(after, func(i, j int) bool { return after[i].Stmt.Pos() < after[j].Stmt.Pos() })
		for _, m := range after {
			ret, ok := m.Stmt.(*ast.ReturnStmt)
			if !ok || m == n {
				continue
			}
			for _, r := range ret.Results {
				if aliasesObject(pkg, r, b.obj) {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(ret.Pos()),
						Analyzer: "poolescape",
						Message:  "pooled value from a getter returned on a path after its release; the pool may already have handed it to another goroutine",
					})
				}
			}
		}
	}
	return diags
}

// stmtCallsReleaser reports whether n contains a call into a module
// function summarized as releasing the parameter position obj occupies.
func stmtCallsReleaser(pkg *Package, prog *Program, fi *FuncInfo, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, recv, _, _ := resolveCallee(pkg, call)
		if fn == nil {
			return true
		}
		callee := prog.Func(symbolOf(fn))
		if callee == nil {
			return true
		}
		e := Edge{Kind: EdgeCall, Callee: callee.Sym, Fn: fn, Call: call, Recv: recv}
		for j, rp := range callee.Summary.ReleasesParam {
			if rp {
				if arg := calleeArg(e, callee, j); arg != nil && aliasesObject(pkg, arg, obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody2 returns the innermost block containing stmt for flow
// analysis: the declaration body, unless the binding sits inside a nested
// function literal (then that literal's body is the frame that owns it).
func enclosingFuncBody2(fi *FuncInfo, stmt ast.Stmt) *ast.BlockStmt {
	body := fi.Decl.Body
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			if fl.Body.Pos() <= stmt.Pos() && stmt.End() <= fl.Body.End() {
				body = fl.Body
			}
		}
		return true
	})
	return body
}
