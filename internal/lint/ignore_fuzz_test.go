package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the //lint:ignore parser with arbitrary
// comment text and checks its structural invariants: it must never
// panic, it must be deterministic, a non-directive yields nothing, and a
// directive yields exactly one of a well-formed analyzer list or a
// malformed-directive message. The seed corpus lives in
// testdata/fuzz/FuzzIgnoreDirective.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore walltime injected clock keeps replay deterministic")
	f.Add("//lint:ignore ratcompare,ratfloat exact arithmetic audited in review")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore maporder")
	f.Add("// just a comment")
	f.Add("//lint:ignorewalltime smuggled suppression must not parse")
	f.Add("//lint:ignore\t walltime \t tab-separated reason")
	f.Add("/*lint:ignore walltime block comments are not directives*/")
	f.Add("//lint:ignore a,,b reason with an empty analyzer slot")

	f.Fuzz(func(t *testing.T, text string) {
		analyzers, bad, ok := parseIgnoreDirective(text)

		a2, b2, ok2 := parseIgnoreDirective(text)
		if ok != ok2 || bad != b2 || strings.Join(analyzers, "\x00") != strings.Join(a2, "\x00") {
			t.Fatalf("parse not deterministic for %q", text)
		}

		if !ok {
			if analyzers != nil || bad != "" {
				t.Fatalf("non-directive %q produced output: %v / %q", text, analyzers, bad)
			}
			return
		}

		// A recognised directive starts with the exact marker, bounded by
		// end-of-comment or blank space — never fused into a longer word.
		rest := strings.TrimPrefix(text, "//"+ignorePrefix)
		if rest == text || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			t.Fatalf("accepted %q as a directive", text)
		}

		wellFormed := len(analyzers) > 0
		malformed := bad != ""
		if wellFormed == malformed {
			t.Fatalf("directive %q is both/neither well-formed and malformed: %v / %q", text, analyzers, bad)
		}
		for _, name := range analyzers {
			if strings.ContainsAny(name, " \t\n\r,") {
				t.Fatalf("analyzer name %q from %q contains separators", name, text)
			}
		}
	})
}
