package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// WallTime guards reproducibility in the deterministic subsystems: a
// campaign journal must be byte-identical across runs, so the packages
// that produce it may not read the wall clock. A time.Now() (or a timer)
// in internal/engine, internal/core, or internal/sim makes output depend
// on when — not just on what — was computed. The sanctioned pattern is an
// injected clock: a `now func() time.Time` field defaulted once at
// construction, referenced everywhere else.
//
// The analyzer fires on any reference to the clock-reading identifiers of
// package time (Now, Since, Until, After, Tick, AfterFunc, NewTimer,
// NewTicker) — references, not just calls, because `e.now = time.Now`
// also plants a wall-clock dependency (that single injection point is
// where a //lint:ignore belongs). Pure conversions and constants
// (time.Duration, time.Millisecond, ...) are fine. Test files are exempt:
// measuring wall time in a test does not leak into a journal.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "deterministic packages must not read the wall clock; inject a clock instead",
	Run:  runWallTime,
}

// wallClockScope lists the import paths whose output must be independent
// of wall time. (The testdata paths keep the ttdclint fixtures
// exercisable end to end.)
var wallClockScope = map[string]bool{
	"repro/internal/engine":                     true,
	"repro/internal/core":                       true,
	"repro/internal/sim":                        true,
	"repro/internal/lint/testdata/src/walltime": true,
	"repro/cmd/ttdclint/testdata/bad":           true,
	"repro/cmd/ttdclint/testdata/good":          true,
}

// wallClockFuncs are the package time identifiers that read the clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

func runWallTime(pkg *Package) []Diagnostic {
	path := pkg.Types.Path()
	if !wallClockScope[strings.TrimSuffix(path, "_test")] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(sel.Pos()),
				Analyzer: "walltime",
				Message:  fmt.Sprintf("time.%s reads the wall clock in a deterministic package; inject a clock (now func() time.Time) instead", sel.Sel.Name),
			})
			return false
		})
	}
	return diags
}
