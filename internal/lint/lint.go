// Package lint is the repository's domain-specific static analyzer. It
// mechanically enforces the two invariants the package documentation
// promises and that no general-purpose tool checks:
//
//   - Reproducibility: every randomized result is derived from an explicit
//     seed (no global math/rand state, no time-based seeding) and no output
//     depends on Go's randomized map iteration order.
//   - Exactness: the Theorem 2-4/7-9 throughput figures are *big.Rat values
//     compared with Cmp and converted to float64 only inside the sanctioned
//     display helpers.
//
// The driver (cmd/ttdclint) loads every package in the module using only
// the standard library — go/parser for syntax, go/types for semantics, and
// the go/importer source importer for standard-library dependencies — so
// go.mod keeps its zero-dependency guarantee.
//
// Findings can be suppressed with a directive on, or on the line above,
// the offending line:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive without a written reason is itself a finding.
//
// Functions opt into the zero-allocation warm-path contract with a
// directive in their doc comment, enforced by the allocflow, boxing, and
// growloop analyzers (see hotpath.go and alloc.go):
//
//	//ttdc:hotpath <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by position within the loader's
// shared FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical `file:line: analyzer: message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// An Analyzer inspects one type-checked package unit and reports findings.
// Run must be deterministic: implementations walk the AST in source order
// and never range over maps.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Run reports raw findings for pkg; suppression is applied by Lint.
	Run func(pkg *Package) []Diagnostic
}

// All is the full analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocFlow,
		AtomicMix,
		Boxing,
		CtxCancel,
		DetFlow,
		DroppedErr,
		FloatFlow,
		GrowLoop,
		MapOrder,
		MutexCopy,
		PoolEscape,
		PoolPut,
		RatCompare,
		RatFloat,
		SeededRand,
		WaitPair,
		WallTime,
	}
}

// Result is the outcome of one lint run: the surviving findings plus the
// count of findings silenced by //lint:ignore directives (the driver
// reports it so suppressions stay visible instead of vanishing).
type Result struct {
	Findings   []Diagnostic
	Suppressed int
}

// Lint runs every analyzer over every package, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed directives (missing analyzer name or reason) are reported as
// findings of the pseudo-analyzer "ignore".
func Lint(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return LintAll(pkgs, analyzers).Findings
}

// LintAll is Lint plus the suppression count. Before any analyzer runs it
// builds the module-wide call-graph Program over all units, so the
// interprocedural analyzers (detflow, floatflow, poolescape) see summaries
// for every function of the run, not just the unit being reported on.
func LintAll(pkgs []*Package, analyzers []*Analyzer) Result {
	prog := BuildProgram(pkgs)
	for _, pkg := range pkgs {
		pkg.Prog = prog
	}
	var res Result
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg)
		for _, d := range dirs {
			if d.bad != "" {
				res.Findings = append(res.Findings, Diagnostic{
					Pos:      d.pos,
					Analyzer: "ignore",
					Message:  d.bad,
				})
			}
		}
		// Directive hygiene for //ttdc:hotpath mirrors //lint:ignore:
		// malformed or dangling contracts are findings of the pseudo-
		// analyzer "hotpath" (see hotpath.go), never silently dropped.
		res.Findings = append(res.Findings, collectHotpathIssues(pkg)...)
		for _, a := range analyzers {
			for _, diag := range a.Run(pkg) {
				if suppressed(dirs, diag) {
					res.Suppressed++
				} else {
					res.Findings = append(res.Findings, diag)
				}
			}
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	bad       string // non-empty if the directive is malformed
}

const ignorePrefix = "lint:ignore"

// parseIgnoreDirective parses the raw text of one comment. ok reports
// whether the comment is a lint:ignore directive at all: it must start
// with exactly `//lint:ignore` followed by the end of the comment or a
// space or tab — `//lint:ignorewalltime` is an ordinary comment, not a
// directive that silently suppresses walltime. When ok, exactly one of
// analyzers (well-formed directive) or bad (the malformed-directive
// finding message) is non-empty.
func parseIgnoreDirective(text string) (analyzers []string, bad string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//"+ignorePrefix)
	if !ok {
		return nil, "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return nil, "lint:ignore directive missing analyzer name and reason", true
	case len(fields) == 1:
		return nil, fmt.Sprintf("lint:ignore %s has no written reason; every suppression must carry one", fields[0]), true
	}
	return strings.Split(fields[0], ","), "", true
}

// collectIgnores parses every //lint:ignore directive in the package.
func collectIgnores(pkg *Package) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzers, bad, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				dirs = append(dirs, ignoreDirective{
					pos:       pkg.Fset.Position(c.Pos()),
					analyzers: analyzers,
					bad:       bad,
				})
			}
		}
	}
	return dirs
}

// suppressed reports whether diag is covered by a well-formed directive in
// the same file, on the same line or the line immediately above.
func suppressed(dirs []ignoreDirective, diag Diagnostic) bool {
	for _, d := range dirs {
		if d.bad != "" || d.pos.Filename != diag.Pos.Filename {
			continue
		}
		if d.pos.Line != diag.Pos.Line && d.pos.Line != diag.Pos.Line-1 {
			continue
		}
		for _, name := range d.analyzers {
			if name == diag.Analyzer {
				return true
			}
		}
	}
	return false
}

// --- shared type helpers used by the analyzers ---

// isBigRatPtr reports whether t is *math/big.Rat.
func isBigRatPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), "math/big", "Rat")
}

// isNamed reports whether t (after unaliasing) is the named type path.name.
func isNamed(t types.Type, path, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// funcObj resolves the called package-level function (or method) behind a
// call expression, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether obj is the package-level function path.name.
func isPkgFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// enclosingFuncName returns the name of the innermost function declaration
// in f whose body spans pos, or "".
func enclosingFuncName(f *ast.File, pos token.Pos) string {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos < fd.Body.End() {
			return fd.Name.Name
		}
	}
	return ""
}

// enclosingFuncBody returns the body of the innermost function declaration
// in f spanning pos, or nil.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos < fd.Body.End() {
			return fd.Body
		}
	}
	return nil
}
