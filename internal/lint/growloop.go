package lint

import "strings"

// GrowLoop is the CFG-backed half of the //ttdc:hotpath append story: an
// append whose statement sits on a cycle of the function's flow graph (a
// node that can reach itself — for, range, or goto loops alike) runs an
// unbounded number of times per call, so "it only grows once" amortization
// arguments do not apply unless the base is provably pre-sized. The
// pre-sizing proofs (self-reslice reset, cap-guarded make) and the
// cold-path exemptions are shared with allocflow via alloc.go; appends
// outside loops are allocflow's.
var GrowLoop = &Analyzer{
	Name: "growloop",
	Doc:  "appends reachable inside a loop of a //ttdc:hotpath function must be provably pre-sized",
	Run:  runGrowLoop,
}

func runGrowLoop(pkg *Package) []Diagnostic {
	if pkg.Prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if !fi.Hotpath || strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		h := fi.allocFacts(pkg.Prog)
		for _, site := range h.sites {
			if site.kind != allocAppend || !h.inLoop(fi, site.pos) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(site.pos),
				Analyzer: "growloop",
				Message:  "append inside a loop is not provably pre-sized; reset the scratch with x = x[:0] or grow it once behind a cap guard",
			})
		}
	}
	return diags
}
