package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The //ttdc:hotpath annotation declares a warm-path contract: the
// annotated function promises to perform zero steady-state allocations,
// and the allocflow/boxing/growloop analyzers machine-enforce the promise
// (see alloc.go for the lattice and its deliberate approximations). The
// directive follows the //lint:ignore parser discipline exactly: the
// marker must be bounded by end-of-comment or blank space (so
// `//ttdc:hotpaths` is an ordinary comment, not a contract), and a
// directive without a written reason is itself a finding — every contract
// says in the tree why the function is hot.
//
//	//ttdc:hotpath <reason>
//
// The directive is only meaningful in a function declaration's doc
// comment; anywhere else it binds to nothing, which is reported rather
// than silently ignored (a dangling contract is a contract the analyzers
// are not enforcing).

const hotpathPrefix = "ttdc:hotpath"

// parseHotpathDirective parses the raw text of one comment. ok reports
// whether the comment is a ttdc:hotpath directive at all: it must start
// with exactly `//ttdc:hotpath` followed by the end of the comment or a
// space or tab. When ok, exactly one of reason (well-formed directive) or
// bad (the malformed-directive finding message) is non-empty.
func parseHotpathDirective(text string) (reason, bad string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//"+hotpathPrefix)
	if !ok {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	reason = strings.Join(strings.Fields(rest), " ")
	if reason == "" {
		return "", "ttdc:hotpath directive has no written reason; every warm-path contract must say what makes the function hot", true
	}
	return reason, "", true
}

// hotpathDecl extracts the warm-path contract from a declaration's doc
// comment group, if any line carries a well-formed directive.
func hotpathDecl(fd *ast.FuncDecl) (reason string, ok bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if r, bad, isDir := parseHotpathDirective(c.Text); isDir && bad == "" {
			return r, true
		}
	}
	return "", false
}

// collectHotpathIssues reports the directive's own failure modes as
// findings of the pseudo-analyzer "hotpath": a directive with no written
// reason, and a well-formed directive outside a function declaration's doc
// comment (dangling — it annotates nothing, so nothing enforces it).
func collectHotpathIssues(pkg *Package) []Diagnostic {
	inDoc := map[*ast.Comment]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					inDoc[c] = true
				}
			}
		}
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, bad, ok := parseHotpathDirective(c.Text)
				if !ok {
					continue
				}
				switch {
				case bad != "":
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "hotpath",
						Message:  bad,
					})
				case !inDoc[c]:
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "hotpath",
						Message:  "ttdc:hotpath directive must sit in a function declaration's doc comment; a dangling contract is enforced by nothing",
					})
				}
			}
		}
	}
	return diags
}

// HotpathEntry is one annotated function in the -hotpaths inventory.
type HotpathEntry struct {
	Sym      string `json:"sym"`
	Pkg      string `json:"pkg"`
	Name     string `json:"name"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Exported bool   `json:"exported"`
	Reason   string `json:"reason"`
}

// Hotpaths inventories every //ttdc:hotpath function of the program in
// symbol order. Functions declared in _test.go files are excluded — a test
// helper is not a warm path — and Exported additionally requires an
// exported receiver type, so every exported entry is callable from a
// generated gate in its own package's external tests.
func (p *Program) Hotpaths() []HotpathEntry {
	var out []HotpathEntry
	for _, sym := range p.order {
		fi := p.Funcs[sym]
		if !fi.Hotpath {
			continue
		}
		pos := fi.Pkg.Fset.Position(fi.Decl.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, HotpathEntry{
			Sym:      sym,
			Pkg:      fi.Pkg.Types.Path(),
			Name:     fi.Decl.Name.Name,
			File:     pos.Filename,
			Line:     pos.Line,
			Exported: hotpathExported(fi),
			Reason:   fi.HotpathReason,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sym < out[j].Sym })
	return out
}

// hotpathExported reports whether fi is reachable from outside its
// package: an exported function, or an exported method on an exported
// named receiver type.
func hotpathExported(fi *FuncInfo) bool {
	if !fi.Obj.Exported() {
		return false
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Exported()
}
