package lint

import (
	"go/ast"
)

// RatFloat keeps the exact rational arithmetic exact: Rat.Float64 rounds,
// so a stray conversion in an analysis path silently turns a Theorem 2-4
// figure into an approximation. Conversions are allowed only inside the
// sanctioned display helpers — a function declaration named RatFloat or
// ratF — which by repository convention are used for rendering and
// float-threshold checks, never for further arithmetic.
var RatFloat = &Analyzer{
	Name: "ratfloat",
	Doc:  "Rat.Float64 only inside the sanctioned RatFloat/ratF display helpers",
	Run:  runRatFloat,
}

// sanctionedRatFloat names the helper functions allowed to call
// Rat.Float64 directly.
var sanctionedRatFloat = map[string]bool{"RatFloat": true, "ratF": true}

func runRatFloat(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Float64" {
				return true
			}
			rt := pkg.Info.Types[sel.X].Type
			if rt == nil || !(isBigRatPtr(rt) || isNamed(rt, "math/big", "Rat")) {
				return true
			}
			if sanctionedRatFloat[enclosingFuncName(f, call.Pos())] {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "ratfloat",
				Message:  "lossy Rat.Float64 outside a sanctioned helper; use RatFloat/ratF so exactness cannot leak into analysis",
			})
			return true
		})
	}
	return diags
}
