package lint

import (
	"fmt"
	"strings"
)

// AllocFlow is the interprocedural enforcer of the //ttdc:hotpath
// contract: inside annotated functions it reports every direct warm-path
// allocation site (make, new, composite literals, non-pre-sized appends
// outside loops, string conversions, escaping closures, external calls)
// and every static call whose callee transitively allocates, with the full
// witness chain down to the originating site. Appends inside loops belong
// to growloop; interface boxing belongs to boxing; the cold-path and
// pre-sizing exemptions are shared with both (see alloc.go).
var AllocFlow = &Analyzer{
	Name: "allocflow",
	Doc:  "//ttdc:hotpath functions must be allocation-free on the warm path, directly and through every static callee",
	Run:  runAllocFlow,
}

func runAllocFlow(pkg *Package) []Diagnostic {
	if pkg.Prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if !fi.Hotpath || strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		h := fi.allocFacts(pkg.Prog)
		for _, site := range h.sites {
			if site.kind == allocAppend && h.inLoop(fi, site.pos) {
				continue // growloop owns loop appends
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(site.pos),
				Analyzer: "allocflow",
				Message:  site.what + " in a //ttdc:hotpath function; warm paths must be allocation-free",
			})
		}
		for _, e := range fi.Edges {
			if e.Kind != EdgeCall {
				continue
			}
			callee := pkg.Prog.Func(e.Callee)
			if callee == nil || callee == fi || callee.Hotpath {
				// External callees were judged as direct sites; a hotpath
				// callee is audited in its own body, and flagging the call
				// again here would make one finding ripple through every
				// annotated caller.
				continue
			}
			if !callee.Summary.Allocates || h.inCold(e.Pos) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(e.Pos),
				Analyzer: "allocflow",
				Message: fmt.Sprintf("call allocates through %s; //ttdc:hotpath functions must be allocation-free through every static callee",
					pkg.Prog.allocChain(e.Callee)),
			})
		}
	}
	return diags
}
