package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestParseHotpathDirective pins the parser's boundary discipline — the
// same table shape the ignore-directive parser is held to.
func TestParseHotpathDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		reason string
		bad    bool
	}{
		{"//ttdc:hotpath saturation inner loop", true, "saturation inner loop", false},
		{"//ttdc:hotpath\ttab\tseparated", true, "tab separated", false},
		{"//ttdc:hotpath", true, "", true},
		{"//ttdc:hotpath   ", true, "", true},
		{"//ttdc:hotpaths not a directive", false, "", false},
		{"// ttdc:hotpath leading space is prose", false, "", false},
		{"//lint:ignore walltime other namespace", false, "", false},
		{"/*ttdc:hotpath block comment*/", false, "", false},
	}
	for _, c := range cases {
		reason, bad, ok := parseHotpathDirective(c.text)
		if ok != c.ok || reason != c.reason || (bad != "") != c.bad {
			t.Errorf("parseHotpathDirective(%q) = %q, %q, %v; want reason %q, bad %v, ok %v",
				c.text, reason, bad, ok, c.reason, c.bad, c.ok)
		}
	}
}

// TestHotpathDirectives checks the end-to-end directive semantics over the
// hotpaths fixture: malformed and dangling directives surface as "hotpath"
// pseudo-findings, the fused marker is ignored, and a well-formed doc
// directive sets the contract (with its reason) on the function.
func TestHotpathDirectives(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(filepath.Join("testdata", "src", "hotpaths"), true)
	if err != nil {
		t.Fatal(err)
	}
	res := LintAll(pkgs, nil)
	var noReason, danglingFound int
	for _, d := range res.Findings {
		if d.Analyzer != "hotpath" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "no written reason"):
			noReason++
		case strings.Contains(d.Message, "doc comment"):
			danglingFound++
		default:
			t.Errorf("unclassified hotpath finding: %s", d)
		}
	}
	if noReason != 1 || danglingFound != 1 {
		t.Errorf("hotpath findings = %d no-reason + %d dangling, want 1 + 1", noReason, danglingFound)
	}

	prog := pkgs[0].Prog
	const base = "repro/internal/lint/testdata/src/hotpaths."
	fi := prog.Func(base + "kernel")
	if fi == nil || !fi.Hotpath || fi.HotpathReason != "saturation inner loop" {
		t.Fatalf("kernel contract not recorded: %+v", fi)
	}
	for _, name := range []string{"bare", "dangling", "fused"} {
		if fi := prog.Func(base + name); fi == nil || fi.Hotpath {
			t.Errorf("%s should carry no contract (fi=%+v)", name, fi)
		}
	}

	entries := prog.Hotpaths()
	if len(entries) != 1 || entries[0].Name != "kernel" || entries[0].Exported ||
		entries[0].Reason != "saturation inner loop" || entries[0].Line == 0 {
		t.Fatalf("Hotpaths() = %+v, want exactly the kernel entry", entries)
	}
}
