package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix guards the memory discipline of shared counters: a variable
// (or struct field) accessed through sync/atomic in one place and with a
// plain load or store in another has no consistent happens-before story —
// the plain access races with the atomic one, and the race detector only
// catches it when both sides actually collide during a test run. The
// modern fix is an atomic.Int64-style typed atomic, which makes mixed
// access impossible; until then, every access must go through sync/atomic.
//
// The analyzer records every `&x` or `&s.f` passed as the first argument
// of a sync/atomic function (Load*, Store*, Add*, Swap*, CompareAndSwap*)
// and reports every other syntactic access to the same variable or field
// in the package.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never also be accessed with plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pkg *Package) []Diagnostic {
	// Pass 1: variables addressed into sync/atomic calls, plus the exact
	// operand nodes of those calls (excluded from pass 2).
	atomicAt := map[types.Object]token.Position{}
	inAtomicCall := map[ast.Node]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := funcObj(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			operand := ast.Unparen(un.X)
			obj := exprVar(pkg, operand)
			if obj == nil {
				return true
			}
			inAtomicCall[operand] = true
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = pkg.Fset.Position(un.Pos())
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: every other access to those variables is a mixed access.
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var expr ast.Expr
			switch n := n.(type) {
			case *ast.SelectorExpr:
				expr = n
			case *ast.Ident:
				expr = n
			default:
				return true
			}
			if inAtomicCall[expr] {
				return false // the sanctioned &x of an atomic call
			}
			obj := exprVar(pkg, expr)
			if obj == nil {
				return true
			}
			first, mixed := atomicAt[obj]
			if !mixed {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(expr.Pos()),
				Analyzer: "atomicmix",
				Message: fmt.Sprintf("%s is accessed atomically at %s:%d but with a plain load/store here; use sync/atomic everywhere or an atomic.Int64-style typed atomic",
					obj.Name(), filepath.Base(first.Filename), first.Line),
			})
			return false // don't re-report the Sel/X of this selector
		})
	}
	return diags
}

// exprVar resolves a plain variable access (Ident or SelectorExpr ending
// in a field/var) to its object, or nil when expr is not a variable.
func exprVar(pkg *Package, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
