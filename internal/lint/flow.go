package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-aware half of the analyzer toolkit: a small
// intra-procedural control-flow graph built from syntax alone, precise
// enough to answer the two questions the concurrency analyzers ask —
//
//   - "is there a path from this statement to the function exit that
//     avoids every statement satisfying P?" (poolput: a return path with
//     no Pool.Put; ctxcancel: an early return that never calls cancel)
//   - "which statements are reachable after this one?" (poolput: uses of
//     a pooled object after it was returned to the pool)
//
// The graph has one node per statement. if/for/range/switch/type-switch/
// select/labeled/goto/break/continue/fallthrough are modeled with their
// real successor structure; defer is recorded in source order as a plain
// node and additionally collected into Defers, because deferred calls run
// on every exit path and analyzers treat them as path-insensitive.
// Function literals are opaque: statements inside a FuncLit belong to the
// literal's own graph, not the enclosing one.

// FlowNode is one statement of a FlowGraph. The synthetic Entry and Exit
// nodes have a nil Stmt.
type FlowNode struct {
	Stmt  ast.Stmt
	Succs []*FlowNode
}

// FlowGraph is the control-flow graph of one function body.
type FlowGraph struct {
	// Entry and Exit are synthetic: Entry precedes the first statement,
	// Exit is reached by every return and by falling off the end.
	Entry *FlowNode
	Exit  *FlowNode
	// Nodes lists the statement nodes in creation (source) order.
	Nodes []*FlowNode
	// Defers collects every defer statement of the body (at any depth of
	// the statement tree, excluding nested function literals).
	Defers []*ast.DeferStmt

	byStmt map[ast.Stmt]*FlowNode
}

// BuildFlow constructs the control-flow graph of body.
func BuildFlow(body *ast.BlockStmt) *FlowGraph {
	g := &FlowGraph{
		Entry:  &FlowNode{},
		Exit:   &FlowNode{},
		byStmt: map[ast.Stmt]*FlowNode{},
	}
	b := &flowBuilder{g: g, labels: map[string]*FlowNode{}}
	out := b.list(body.List, []*FlowNode{g.Entry})
	b.connect(out, g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			pg.node.Succs = append(pg.node.Succs, target)
		}
	}
	return g
}

// NodeFor returns the graph node of stmt, or nil for statements outside
// the body (including statements inside nested function literals).
func (g *FlowGraph) NodeFor(stmt ast.Stmt) *FlowNode { return g.byStmt[stmt] }

// PathAvoiding reports whether some path from `from` (exclusive — the
// starting statement itself is not tested) to Exit visits no node whose
// statement satisfies avoid. This is the "can the function return without
// ever doing X after this point" query.
func (g *FlowGraph) PathAvoiding(from *FlowNode, avoid func(ast.Stmt) bool) bool {
	if from == nil {
		return false
	}
	seen := map[*FlowNode]bool{}
	var dfs func(n *FlowNode) bool
	dfs = func(n *FlowNode) bool {
		for _, s := range n.Succs {
			if s == g.Exit {
				return true
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			if avoid(s.Stmt) {
				continue
			}
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// Reachable returns the set of statement nodes reachable from `from`
// through one or more edges (the start node is included only when a cycle
// leads back to it). Entry and Exit are never in the result.
func (g *FlowGraph) Reachable(from *FlowNode) map[*FlowNode]bool {
	out := map[*FlowNode]bool{}
	if from == nil {
		return out
	}
	var dfs func(n *FlowNode)
	dfs = func(n *FlowNode) {
		for _, s := range n.Succs {
			if s == g.Exit || out[s] {
				continue
			}
			out[s] = true
			dfs(s)
		}
	}
	dfs(from)
	return out
}

// flowBuilder carries the in-progress graph plus the label / break /
// continue context of the statement being translated.
type flowBuilder struct {
	g      *FlowGraph
	labels map[string]*FlowNode // label name -> label node (goto target)
	breaks []*breakScope
	conts  []*contScope
	gotos  []pendingGoto
	// curLabel is the label immediately wrapping the next statement, so
	// `L: for ...` registers L as a break/continue target of that loop.
	curLabel string
}

type breakScope struct {
	label string
	out   []*FlowNode // break nodes waiting to join the statement's frontier
}

type contScope struct {
	label string
	head  *FlowNode
}

type pendingGoto struct {
	node  *FlowNode
	label string
}

func (b *flowBuilder) newNode(s ast.Stmt) *FlowNode {
	n := &FlowNode{Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byStmt[s] = n
	return n
}

func (b *flowBuilder) connect(preds []*FlowNode, n *FlowNode) {
	for _, p := range preds {
		p.Succs = append(p.Succs, n)
	}
}

// list translates a statement sequence, threading the frontier (the set of
// nodes whose control falls through to the next statement).
func (b *flowBuilder) list(stmts []ast.Stmt, preds []*FlowNode) []*FlowNode {
	for _, s := range stmts {
		preds = b.stmt(s, preds)
	}
	return preds
}

// stmt translates one statement and returns its fall-through frontier
// (empty for statements that never fall through: return, break, continue,
// goto, terminal calls).
func (b *flowBuilder) stmt(s ast.Stmt, preds []*FlowNode) []*FlowNode {
	label := b.curLabel
	b.curLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.list(s.List, preds)

	case *ast.LabeledStmt:
		ln := b.newNode(s)
		b.connect(preds, ln)
		b.labels[s.Label.Name] = ln
		b.curLabel = s.Label.Name
		return b.stmt(s.Stmt, []*FlowNode{ln})

	case *ast.IfStmt:
		n := b.newNode(s) // covers init and cond
		b.connect(preds, n)
		out := b.list(s.Body.List, []*FlowNode{n})
		if s.Else != nil {
			out = append(out, b.stmt(s.Else, []*FlowNode{n})...)
		} else {
			out = append(out, n)
		}
		return out

	case *ast.ForStmt:
		head := b.newNode(s) // covers init, cond, and post
		b.connect(preds, head)
		bs := &breakScope{label: label}
		b.breaks = append(b.breaks, bs)
		b.conts = append(b.conts, &contScope{label: label, head: head})
		bodyOut := b.list(s.Body.List, []*FlowNode{head})
		b.connect(bodyOut, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		out := bs.out
		if s.Cond != nil {
			out = append(out, head) // `for {}` only exits via break
		}
		return out

	case *ast.RangeStmt:
		head := b.newNode(s)
		b.connect(preds, head)
		bs := &breakScope{label: label}
		b.breaks = append(b.breaks, bs)
		b.conts = append(b.conts, &contScope{label: label, head: head})
		bodyOut := b.list(s.Body.List, []*FlowNode{head})
		b.connect(bodyOut, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		return append(bs.out, head) // a range always terminates

	case *ast.SwitchStmt:
		return b.switchLike(s, s.Body.List, preds, label, true)
	case *ast.TypeSwitchStmt:
		return b.switchLike(s, s.Body.List, preds, label, true)
	case *ast.SelectStmt:
		// A select with no default blocks until some case proceeds, so —
		// unlike a switch — control cannot skip past all clauses.
		return b.switchLike(s, s.Body.List, preds, label, false)

	case *ast.ReturnStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		n.Succs = append(n.Succs, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		switch s.Tok {
		case token.BREAK:
			if bs := b.findBreak(s.Label); bs != nil {
				bs.out = append(bs.out, n)
			}
			return nil
		case token.CONTINUE:
			if cs := b.findCont(s.Label); cs != nil {
				n.Succs = append(n.Succs, cs.head)
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{node: n, label: s.Label.Name})
			return nil
		default: // FALLTHROUGH: switchLike routes the frontier to the next clause
			return []*FlowNode{n}
		}

	case *ast.DeferStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		b.g.Defers = append(b.g.Defers, s)
		return []*FlowNode{n}

	case *ast.ExprStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		if isTerminalCall(s.X) {
			return nil // panic/os.Exit: this path never reaches Exit
		}
		return []*FlowNode{n}

	default: // assign, decl, send, incdec, go, empty, ...
		n := b.newNode(s)
		b.connect(preds, n)
		return []*FlowNode{n}
	}
}

// switchLike translates switch, type switch, and select bodies: every
// clause starts from the head; fallthrough feeds the next clause;
// canSkip adds the head itself to the frontier when no default exists
// (switches without a default may execute no clause at all).
func (b *flowBuilder) switchLike(s ast.Stmt, clauses []ast.Stmt, preds []*FlowNode, label string, canSkip bool) []*FlowNode {
	head := b.newNode(s)
	b.connect(preds, head)
	bs := &breakScope{label: label}
	b.breaks = append(b.breaks, bs)
	var out, fall []*FlowNode
	hasDefault := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			body = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		clausePreds := append([]*FlowNode{head}, fall...)
		fall = nil
		fellThrough := false
		if len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fellThrough = true
			}
		}
		f := b.list(body, clausePreds)
		if fellThrough {
			fall = f
		} else {
			out = append(out, f...)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	out = append(out, bs.out...)
	out = append(out, fall...) // tolerate a trailing fallthrough
	if canSkip && !hasDefault {
		out = append(out, head)
	}
	return out
}

// findBreak resolves a break statement (optionally labeled) to its scope.
func (b *flowBuilder) findBreak(label *ast.Ident) *breakScope {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == nil || b.breaks[i].label == label.Name {
			return b.breaks[i]
		}
	}
	return nil
}

// findCont resolves a continue statement (optionally labeled) to its loop.
func (b *flowBuilder) findCont(label *ast.Ident) *contScope {
	for i := len(b.conts) - 1; i >= 0; i-- {
		if label == nil || b.conts[i].label == label.Name {
			return b.conts[i]
		}
	}
	return nil
}

// terminalNames are selector names whose call ends the goroutine: control
// never falls through to the next statement.
var terminalNames = map[string]bool{
	"Exit": true, "Goexit": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true, "FailNow": true,
}

// isTerminalCall reports (syntactically) whether expr is a call that never
// returns: panic(...) or a selector call named like os.Exit / log.Fatalf /
// runtime.Goexit / (*testing.T).FailNow.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return terminalNames[fun.Sel.Name]
	}
	return false
}

// --- shared syntactic helpers for the flow analyzers ---

// usesObject reports whether any identifier inside n resolves to obj
// (through Uses; the defining identifier itself does not count).
func usesObject(pkg *Package, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if o := pkg.Info.Uses[id]; o != nil && o == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// ShallowParts returns the pieces of s that execute at its own CFG node.
// Compound statements (if/for/range/switch) are represented in the graph
// by a head node covering only their init/cond/tag expressions — the
// nested bodies are separate nodes — so path predicates must not inspect
// the whole subtree or an `if` would absorb properties of its branches.
// Leaf statements return themselves; pure-structure nodes (select,
// labeled) return nothing.
func ShallowParts(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.IfStmt:
		return nodeParts(s.Init, s.Cond)
	case *ast.ForStmt:
		return nodeParts(s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		return nodeParts(s.Key, s.Value, s.X)
	case *ast.SwitchStmt:
		return nodeParts(s.Init, s.Tag)
	case *ast.TypeSwitchStmt:
		return nodeParts(s.Init, s.Assign)
	case *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// nodeParts filters out the nil slots of optional statement pieces.
func nodeParts(parts ...ast.Node) []ast.Node {
	var out []ast.Node
	for _, p := range parts {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// usesObjectAt reports whether obj appears in the parts of s evaluated at
// s's own CFG node (nested blocks belong to other nodes).
func usesObjectAt(pkg *Package, s ast.Stmt, obj types.Object) bool {
	for _, p := range ShallowParts(s) {
		if usesObject(pkg, p, obj) {
			return true
		}
	}
	return false
}

// funcBodies visits every function body of the file in source order: all
// FuncDecl bodies and all FuncLit bodies (each exactly once — a FuncLit
// body is visited as its own unit, not as part of the enclosing body).
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}
