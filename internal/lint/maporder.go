package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder protects bit-for-bit reproducibility of rendered output: Go
// randomizes map iteration order, so a `range` over a map whose body
// appends to a slice or writes output produces a different byte stream on
// every run. It reports such loops and requires iterating sorted keys.
//
// The sanctioned fix is itself a map range — collect the keys, then sort:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)
//
// so an append inside the body is NOT reported when the appended-to slice
// is passed to a sort or slices call later in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no order-sensitive work inside range-over-map; iterate sorted keys",
	Run:  runMapOrder,
}

// outputMethods are method names whose call inside a map range leaks
// iteration order into rendered output.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"AddRow": true, "Encode": true,
}

// outputFuncs are package-level printers with the same effect, keyed by
// "pkgpath.Name".
var outputFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"io.WriteString": true,
}

func runMapOrder(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			xt := pkg.Info.Types[rng.X].Type
			if xt == nil {
				return true
			}
			if _, isMap := xt.Underlying().(*types.Map); !isMap {
				return true
			}
			if d, found := orderSensitiveOp(pkg, file, rng); found {
				diags = append(diags, d)
			}
			return true
		})
	}
	return diags
}

// orderSensitiveOp scans the body of a range-over-map for the first
// operation that leaks iteration order.
func orderSensitiveOp(pkg *Package, file *ast.File, rng *ast.RangeStmt) (Diagnostic, bool) {
	var diag Diagnostic
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append: order-sensitive unless the slice is local to
		// one iteration or is sorted after the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				if !loopLocalTarget(pkg, call, rng) && !sortedAfter(pkg, file, call, rng) {
					found = true
					diag = Diagnostic{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "maporder",
						Message:  "append inside range over map depends on iteration order; sort the slice afterwards or iterate sorted keys",
					}
				}
				return true
			}
		}
		if fn := funcObj(pkg.Info, call); fn != nil {
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil && outputMethods[fn.Name()] {
				found = true
				diag = Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "maporder",
					Message:  fmt.Sprintf("%s call inside range over map makes output depend on iteration order; iterate sorted keys", fn.Name()),
				}
			} else if sig.Recv() == nil && fn.Pkg() != nil && outputFuncs[fn.Pkg().Path()+"."+fn.Name()] {
				found = true
				diag = Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "maporder",
					Message:  fmt.Sprintf("%s.%s call inside range over map makes output depend on iteration order; iterate sorted keys", fn.Pkg().Name(), fn.Name()),
				}
			}
		}
		return true
	})
	return diag, found
}

// loopLocalTarget reports whether the append target is declared inside the
// range body itself: such a slice is rebuilt on every iteration, so its
// contents cannot depend on the order the map keys arrive in.
func loopLocalTarget(pkg *Package, appendCall *ast.CallExpr, rng *ast.RangeStmt) bool {
	if len(appendCall.Args) == 0 {
		return false
	}
	target, ok := ast.Unparen(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[target]
	if obj == nil {
		obj = pkg.Info.Defs[target]
	}
	return obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End()
}

// sortedAfter reports whether the slice receiving this append is passed to
// a sort or slices function after the range loop in the same enclosing
// function — the sanctioned collect-then-sort idiom.
func sortedAfter(pkg *Package, file *ast.File, appendCall *ast.CallExpr, rng *ast.RangeStmt) bool {
	if len(appendCall.Args) == 0 {
		return false
	}
	target, ok := ast.Unparen(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[target]
	if obj == nil {
		return false
	}
	body := enclosingFuncBody(file, rng.Pos())
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := funcObj(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					sorted = true
					return false
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}
