package lint

import (
	"fmt"
	"strings"
)

// DetFlow is the interprocedural closure of walltime, seededrand, and
// maporder: inside the deterministic packages it reports calls to
// module-internal functions whose summary says the callee (transitively)
// reaches a nondeterminism source — time.Now behind two layers of helper,
// an unseeded generator behind a convenience wrapper, a map-iteration
// result laundered through a getter. The intra-procedural analyzers own
// the direct sources; detflow owns every indirection over them, and each
// finding carries the witness chain so the report explains which call path
// needs a clock/seed injected or a sort inserted.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "deterministic packages must be path-clean of wall clock, unseeded randomness, and map order through any call chain",
	Run:  runDetFlow,
}

// detflowScope lists the import paths whose outputs feed journals, result
// tables, or SARIF, and therefore must be deterministic transitively. (The
// testdata paths keep the ttdclint fixtures exercisable end to end.)
var detflowScope = map[string]bool{
	"repro/internal/engine":                    true,
	"repro/internal/core":                      true,
	"repro/internal/sim":                       true,
	"repro/internal/lint/testdata/src/detflow": true,
	"repro/cmd/ttdclint/testdata/bad":          true,
	"repro/cmd/ttdclint/testdata/good":         true,
}

func runDetFlow(pkg *Package) []Diagnostic {
	if pkg.Prog == nil || !detflowScope[strings.TrimSuffix(pkg.Types.Path(), "_test")] {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		for _, e := range fi.Edges {
			if e.Kind != EdgeCall {
				continue
			}
			callee := pkg.Prog.Func(e.Callee)
			if callee == nil || callee == fi {
				// External callees are the intra analyzers' job; a
				// self-recursive call would only restate the direct
				// finding inside this same function.
				continue
			}
			for k := TaintKind(0); k < numTaints; k++ {
				if !callee.Summary.Taint[k] {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(e.Pos),
					Analyzer: "detflow",
					Message: fmt.Sprintf("call reaches %s through %s; deterministic outputs must be path-clean of %s",
						callee.Summary.Src[k], pkg.Prog.taintChain(e.Callee, k), taintNames[k]),
				})
			}
		}
	}
	return diags
}
