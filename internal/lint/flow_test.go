package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildFromSource parses src (a complete file with one function named F),
// builds its flow graph, and returns it with the FileSet for line lookups.
func buildFromSource(t *testing.T, src string) (*FlowGraph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			return BuildFlow(fd.Body), fset
		}
	}
	t.Fatal("no func F in source")
	return nil, nil
}

// render prints every statement node as "line -> succ-lines" (E for Exit),
// one per line in creation order, giving tests a canonical CFG shape.
func render(g *FlowGraph, fset *token.FileSet) string {
	var b strings.Builder
	line := func(n *FlowNode) string {
		if n == g.Exit {
			return "E"
		}
		return fmt.Sprint(fset.Position(n.Stmt.Pos()).Line)
	}
	for _, n := range g.Nodes {
		succs := make([]string, 0, len(n.Succs))
		for _, s := range n.Succs {
			succs = append(succs, line(s))
		}
		sort.Strings(succs)
		fmt.Fprintf(&b, "%s -> %s\n", line(n), strings.Join(succs, " "))
	}
	return b.String()
}

// nodeAtLine finds the (first) statement node on the given source line.
func nodeAtLine(t *testing.T, g *FlowGraph, fset *token.FileSet, line int) *FlowNode {
	t.Helper()
	for _, n := range g.Nodes {
		if fset.Position(n.Stmt.Pos()).Line == line {
			return n
		}
	}
	t.Fatalf("no statement node on line %d", line)
	return nil
}

func TestFlowIfElse(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) int {
	x := 0          // line 3
	if a {          // line 4
		x = 1       // line 5
	} else {
		x = 2       // line 7
	}
	return x        // line 9
}`)
	want := strings.TrimLeft(`
3 -> 4
4 -> 5 7
5 -> 9
7 -> 9
9 -> E
`, "\n")
	if got := render(g, fset); got != want {
		t.Fatalf("if/else CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestFlowIfWithoutElseFallsThrough(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) {
	if a {      // line 3
		work()  // line 4
	}
	done()      // line 6
}`)
	want := strings.TrimLeft(`
3 -> 4 6
4 -> 6
6 -> E
`, "\n")
	if got := render(g, fset); got != want {
		t.Fatalf("if CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestFlowForLoop(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(n int) {
	for i := 0; i < n; i++ { // line 3
		if i == 2 {          // line 4
			break            // line 5
		}
		step()               // line 7
	}
	done()                   // line 9
}`)
	want := strings.TrimLeft(`
3 -> 4 9
4 -> 5 7
5 -> 9
7 -> 3
9 -> E
`, "\n")
	if got := render(g, fset); got != want {
		t.Fatalf("for CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestFlowInfiniteLoopOnlyExitsViaBreak(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F() {
	for {          // line 3
		step()     // line 4
	}
	unreachable()  // line 6
}`)
	// The loop head must NOT fall through to line 6: the only edge into 6
	// would be a break, and there is none.
	n := nodeAtLine(t, g, fset, 3)
	for _, s := range n.Succs {
		if s != g.Exit && s.Stmt != nil && fset.Position(s.Stmt.Pos()).Line == 6 {
			t.Fatalf("for{} head falls through past the loop:\n%s", render(g, fset))
		}
	}
	if got := g.PathAvoiding(nodeAtLine(t, g, fset, 4), func(ast.Stmt) bool { return false }); got {
		t.Fatal("body of for{} without break must not reach Exit")
	}
}

func TestFlowLabeledContinueAndBreak(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(m, n int) {
outer:
	for i := 0; i < m; i++ {     // line 4
		for j := 0; j < n; j++ { // line 5
			if bad(i, j) {       // line 6
				continue outer   // line 7
			}
			if worse(i, j) {     // line 9
				break outer      // line 10
			}
		}
	}
	done()                       // line 14
}`)
	// continue outer -> outer loop head (line 4); break outer -> line 14.
	cont := nodeAtLine(t, g, fset, 7)
	if len(cont.Succs) != 1 || fset.Position(cont.Succs[0].Stmt.Pos()).Line != 4 {
		t.Fatalf("continue outer should target the outer for head:\n%s", render(g, fset))
	}
	brk := nodeAtLine(t, g, fset, 10)
	if len(brk.Succs) != 1 || fset.Position(brk.Succs[0].Stmt.Pos()).Line != 14 {
		t.Fatalf("break outer should target the statement after the loop:\n%s", render(g, fset))
	}
}

func TestFlowSwitchFallthroughAndDefault(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(x int) {
	switch x {       // line 3
	case 1:
		one()        // line 5
		fallthrough  // line 6
	case 2:
		two()        // line 8
	}
	after()          // line 10
}`)
	// fallthrough: line 6 -> line 8; no default: head -> after() too.
	ft := nodeAtLine(t, g, fset, 6)
	if len(ft.Succs) != 1 || fset.Position(ft.Succs[0].Stmt.Pos()).Line != 8 {
		t.Fatalf("fallthrough should feed the next case body:\n%s", render(g, fset))
	}
	head := nodeAtLine(t, g, fset, 3)
	skips := false
	for _, s := range head.Succs {
		if s.Stmt != nil && fset.Position(s.Stmt.Pos()).Line == 10 {
			skips = true
		}
	}
	if !skips {
		t.Fatalf("switch without default must be skippable:\n%s", render(g, fset))
	}

	g2, fset2 := buildFromSource(t, `package p
func F(x int) {
	switch {        // line 3
	case x > 0:
		pos()       // line 5
	default:
		neg()       // line 7
	}
	after()         // line 9
}`)
	head2 := nodeAtLine(t, g2, fset2, 3)
	for _, s := range head2.Succs {
		if s.Stmt != nil && fset2.Position(s.Stmt.Pos()).Line == 9 {
			t.Fatalf("switch with default must not skip all clauses:\n%s", render(g2, fset2))
		}
	}
}

func TestFlowDeferCollectedInOrder(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) {
	defer first()      // line 3
	if a {
		defer second() // line 5
	}
	work()             // line 7
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2:\n%s", len(g.Defers), render(g, fset))
	}
	if l := fset.Position(g.Defers[0].Pos()).Line; l != 3 {
		t.Fatalf("first defer on line %d, want 3", l)
	}
	if l := fset.Position(g.Defers[1].Pos()).Line; l != 5 {
		t.Fatalf("second defer on line %d, want 5", l)
	}
	// Defers inside nested function literals belong to the literal.
	g2, _ := buildFromSource(t, `package p
func F() {
	f := func() {
		defer inner()
	}
	f()
}`)
	if len(g2.Defers) != 0 {
		t.Fatalf("defer inside FuncLit leaked into enclosing graph (%d)", len(g2.Defers))
	}
}

func TestFlowGoto(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(n int) {
	i := 0        // line 3
loop:
	if i < n {    // line 5
		i++       // line 6
		goto loop // line 7
	}
	done()        // line 9
}`)
	gt := nodeAtLine(t, g, fset, 7)
	// goto resolves to the label node (line 4, the labeled statement).
	if len(gt.Succs) != 1 {
		t.Fatalf("goto should have exactly the label edge:\n%s", render(g, fset))
	}
	if l := fset.Position(gt.Succs[0].Stmt.Pos()).Line; l != 4 {
		t.Fatalf("goto targets line %d, want the label on 4:\n%s", l, render(g, fset))
	}
	// The goto must NOT fall through to line 9; but line 5's false branch does.
	if !g.PathAvoiding(nodeAtLine(t, g, fset, 3), func(s ast.Stmt) bool { return false }) {
		t.Fatal("function with goto loop must still reach Exit via the false branch")
	}
}

func TestFlowPathAvoiding(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) {
	acquire()       // line 3
	if a {
		return      // line 5
	}
	release()       // line 7
}`)
	isRelease := func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "release"
	}
	if !g.PathAvoiding(nodeAtLine(t, g, fset, 3), isRelease) {
		t.Fatal("early return on line 5 is a path that avoids release()")
	}
	// Remove the early return: every path now passes release().
	g2, fset2 := buildFromSource(t, `package p
func F(a bool) {
	acquire()       // line 3
	if a {
		log()       // line 5
	}
	release()       // line 7
}`)
	if g2.PathAvoiding(nodeAtLine(t, g2, fset2, 3), isRelease) {
		t.Fatal("with no early return, no path should avoid release()")
	}
}

func TestFlowTerminalCallsEndPaths(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) {
	if a {
		panic("boom") // line 4
	}
	work()            // line 6
}`)
	p := nodeAtLine(t, g, fset, 4)
	if len(p.Succs) != 0 {
		t.Fatalf("panic must not fall through:\n%s", render(g, fset))
	}
}

func TestFlowReachable(t *testing.T) {
	g, fset := buildFromSource(t, `package p
func F(a bool) {
	one()       // line 3
	if a {
		return  // line 5
	}
	two()       // line 7
	three()     // line 8
}`)
	reach := g.Reachable(nodeAtLine(t, g, fset, 7))
	lines := map[int]bool{}
	for n := range reach {
		lines[fset.Position(n.Stmt.Pos()).Line] = true
	}
	if !lines[8] || lines[3] || lines[5] {
		t.Fatalf("Reachable(7) lines = %v, want exactly {8}", lines)
	}
}
