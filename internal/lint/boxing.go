package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Boxing is the intra-procedural interface-conversion enforcer of the
// //ttdc:hotpath contract. Storing a concrete value into an interface —
// by conversion, assignment, argument passing (most commonly variadic
// ...interface{} formatting calls), or return — heap-allocates the boxed
// payload for anything wider than a pointer word, and capturing a method
// value allocates its receiver binding. allocflow sees none of these
// (there is no make/new/call in the syntax), so boxing owns them. Cold
// paths (panic arguments, error returns) are exempt via the shared ranges
// in alloc.go: fmt.Errorf on the error path boxes its operands, and that
// is fine — error paths are cold by definition.
var Boxing = &Analyzer{
	Name: "boxing",
	Doc:  "//ttdc:hotpath functions must not box concrete values into interfaces or capture method values",
	Run:  runBoxing,
}

func runBoxing(pkg *Package) []Diagnostic {
	if pkg.Prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, fi := range pkg.Prog.FuncsOf(pkg) {
		if !fi.Hotpath || strings.HasSuffix(pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		diags = append(diags, boxingIn(pkg, fi)...)
	}
	return diags
}

func boxingIn(pkg *Package, fi *FuncInfo) []Diagnostic {
	info := pkg.Info
	h := fi.allocFacts(pkg.Prog)
	qual := types.RelativeTo(pkg.Types)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		if h.inCold(pos) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "boxing",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// boxes reports whether storing src into a dst-typed slot crosses the
	// concrete→interface boundary, with printable type names. Untyped
	// constants are judged by their default type (go/types records the
	// final type of constant operands, so a bare literal reads as string
	// or int here, never as the interface it lands in); nil never boxes.
	boxes := func(dst types.Type, src ast.Expr) (srcS, dstS string, ok bool) {
		if dst == nil || !types.IsInterface(dst) {
			return "", "", false
		}
		tv, found := info.Types[src]
		if !found || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
			return "", "", false
		}
		return types.TypeString(types.Default(tv.Type), qual), types.TypeString(dst, qual), true
	}

	// Selector expressions in call position are calls, not method values.
	calleeFuns := map[ast.Expr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calleeFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	// The walk tracks the signature returns resolve against: statements in
	// a nested function literal return to the literal's own results.
	var inspect func(root ast.Node, sig *types.Signature)
	inspect = func(root ast.Node, sig *types.Signature) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				litSig, _ := info.Types[e].Type.(*types.Signature)
				inspect(e.Body, litSig)
				return false
			case *ast.CallExpr:
				tv, found := info.Types[e.Fun]
				if !found || tv.Type == nil {
					return true
				}
				if tv.IsType() {
					if len(e.Args) == 1 {
						if srcS, dstS, ok := boxes(tv.Type, e.Args[0]); ok {
							report(e.Pos(), "conversion boxes %s into %s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
						}
					}
					return true
				}
				csig, ok := tv.Type.Underlying().(*types.Signature)
				if !ok {
					return true // builtin
				}
				params := csig.Params()
				for i, arg := range e.Args {
					var pt types.Type
					variadic := false
					switch {
					case csig.Variadic() && i >= params.Len()-1:
						if e.Ellipsis.IsValid() {
							continue // xs... forwards the slice itself
						}
						if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
							pt = sl.Elem()
							variadic = true
						}
					case i < params.Len():
						pt = params.At(i).Type()
					}
					srcS, dstS, ok := boxes(pt, arg)
					if !ok {
						continue
					}
					if variadic {
						report(arg.Pos(), "argument boxes %s into variadic ...%s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
					} else {
						report(arg.Pos(), "argument boxes %s into %s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
					}
				}
			case *ast.AssignStmt:
				if e.Tok != token.ASSIGN || len(e.Lhs) != len(e.Rhs) {
					return true // := infers concrete types; tuple unpacks convert nothing
				}
				for i, lhs := range e.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					ltv, found := info.Types[lhs]
					if !found || ltv.Type == nil {
						continue
					}
					if srcS, dstS, ok := boxes(ltv.Type, e.Rhs[i]); ok {
						report(e.Rhs[i].Pos(), "assignment boxes %s into %s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
					}
				}
			case *ast.ValueSpec:
				if e.Type == nil {
					return true
				}
				dtv, found := info.Types[e.Type]
				if !found || dtv.Type == nil {
					return true
				}
				for _, v := range e.Values {
					if srcS, dstS, ok := boxes(dtv.Type, v); ok {
						report(v.Pos(), "assignment boxes %s into %s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
					}
				}
			case *ast.ReturnStmt:
				if sig == nil {
					return true
				}
				results := sig.Results()
				if len(e.Results) != results.Len() {
					return true // bare return or forwarded tuple
				}
				for i, r := range e.Results {
					if srcS, dstS, ok := boxes(results.At(i).Type(), r); ok {
						report(r.Pos(), "return boxes %s into %s in a //ttdc:hotpath function; keep warm-path values concrete", srcS, dstS)
					}
				}
			case *ast.SelectorExpr:
				if calleeFuns[e] {
					return true
				}
				if s, ok := info.Selections[e]; ok && s.Kind() == types.MethodVal {
					report(e.Pos(), "method value %s captures its receiver binding on the warm path; bind it once at construction", e.Sel.Name)
				}
			}
			return true
		})
	}
	fsig, _ := fi.Obj.Type().(*types.Signature)
	inspect(fi.Decl.Body, fsig)
	return diags
}
