// Pooled-escape shapes: the analyzer follows pooled values through getter
// and releaser functions via call-graph summaries, so the Get, the Put,
// and the escape can all live in different functions.
package poolescape

import "sync"

type scratch struct {
	buf []int
	n   int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

type holder struct{ s *scratch }

var leaked *scratch

var ch = make(chan *scratch, 1)

// getScratch is a getter: returning a direct Get transfers ownership out,
// and the ReturnsPooled summary bit follows the value to every caller.
func getScratch() *scratch {
	s := pool.Get().(*scratch)
	return s
}

// putScratch releases its parameter; summaries mark position 0.
func putScratch(s *scratch) { pool.Put(s) }

// storeInto parks its first parameter in the holder.
func storeInto(s *scratch, h *holder) { h.s = s }

// borrow keeps the scratch within the call: no findings.
func borrow() int {
	s := getScratch()
	n := len(s.buf)
	putScratch(s)
	return n
}

// stashField parks pooled scratch where it outlives the Put.
func stashField(h *holder) {
	s := getScratch()
	h.s = s // want `outlives the call`
	putScratch(s)
}

// stashGlobal leaks through a package variable.
func stashGlobal() {
	s := pool.Get().(*scratch)
	leaked = s // want `package variable`
	pool.Put(s)
}

// sendAway hands the scratch to whoever drains the channel.
func sendAway() {
	s := getScratch()
	ch <- s // want `sent on a channel`
	putScratch(s)
}

// passToStorer escapes through a callee that stores its parameter.
func passToStorer(h *holder) {
	s := getScratch()
	storeInto(s, h) // want `passed to poolescape\.storeInto`
	putScratch(s)
}

// goCapture races the pool's next owner.
func goCapture() {
	s := getScratch()
	go func() { s.n++ }() // want `captured by a goroutine`
	putScratch(s)
}

// returnDeferred returns the value a deferred release recycles.
func returnDeferred() *scratch {
	s := getScratch()
	defer putScratch(s)
	return s // want `deferred release`
}

// returnReleased returns on a path after the release.
func returnReleased() *scratch {
	s := getScratch()
	putScratch(s)
	return s // want `after its release`
}
