// Fixture for //lint:ignore handling, exercised by TestIgnoreDirectives
// with in-code assertions (the malformed directive cannot carry a // want
// comment on its own line).
package ignores

import "math/big"

// missingReason carries a malformed directive: no written reason, so the
// directive itself is a finding and does NOT suppress the comparison.
func missingReason(a, b *big.Rat) bool {
	//lint:ignore ratcompare
	return a == b
}

// justified carries a well-formed suppression covering the finding.
func justified(a, b *big.Rat) bool {
	//lint:ignore ratcompare pointer identity is exactly what this check wants
	return a == b
}

// wrongAnalyzer suppresses a different analyzer, so the ratcompare finding
// survives.
func wrongAnalyzer(a, b *big.Rat) bool {
	//lint:ignore maporder this reason names the wrong analyzer
	return a == b
}
