// Float-provenance shapes over a journal-bound Summary: every float
// stored into it must trace to integer counts, constants, or this tree's
// approved fromCounts finalizer — through any chain of locals and calls.
package floatflow

// Summary mirrors a journal-bound result struct (registered with the
// analyzer alongside engine.Metrics and sim's result types).
type Summary struct {
	Energy float64
	Rate   float64
	Count  int
}

// fromCounts is this tree's approved integer-census finalizer.
func fromCounts(n int) float64 { return float64(n) * 0.125 }

// price derives cleanly through the finalizer; callers inherit it via the
// FloatDerived summary bit.
func price(n int) float64 { return fromCounts(n) + 1 }

// leak returns its float parameter: provenance unknown.
func leak(x float64) float64 { return x }

// fillClean stores only derived floats: finalizer results, int-conversion
// arithmetic, a clean accumulator, and a journal field read back.
func fillClean(s *Summary, tx, rx int) {
	s.Energy = fromCounts(tx + rx)
	s.Rate = float64(tx) / float64(tx+rx)
	s.Count = tx
	e := 0.0
	for i := 0; i < tx; i++ {
		e += price(i)
	}
	s.Energy = e
	s.Rate = s.Energy / 2
}

// fillParam stores a float of unknown provenance.
func fillParam(s *Summary, x float64) {
	s.Energy = x // want `does not trace to an approved finalizer`
}

// fillViaHelper launders the parameter through a helper call: the
// summary says leak is not float-derived.
func fillViaHelper(s *Summary, x float64) {
	s.Rate = leak(x) // want `does not trace to an approved finalizer`
}

// build stores a dirty float through a composite literal.
func build(x float64, n int) Summary {
	return Summary{Energy: x, Count: n} // want `floatflow\.Summary\.Energy does not trace`
}

// buildClean mirrors build with a derived value.
func buildClean(n int) Summary {
	return Summary{Energy: fromCounts(n), Count: n}
}

// fillIgnored carries a justified suppression.
func fillIgnored(s *Summary, x float64) {
	//lint:ignore floatflow calibration constant validated offline against the reference runs
	s.Energy = x
}
