// Warm-path allocation shapes: the //ttdc:hotpath contract is enforced
// on the annotated functions themselves and transitively through every
// static callee, with the witness chain naming each hop down to the
// originating site. Cold paths (panic arguments, error returns), the
// cap-guard grow-once idiom, callback literals, and hotpath→hotpath calls
// are the sanctioned exemptions.
package allocflow

import (
	"fmt"
	"strings"
)

// point gives the composite-literal case a concrete struct.
type point struct{ x, y int }

// build allocates a fresh row per call — no contract here, so no finding
// here; annotated callers inherit it through the summary instead.
func build(n int) []int {
	return make([]int, n)
}

// hot allocates directly and through build; both sites flag, and the call
// finding carries the full witness chain.
//
//ttdc:hotpath fixture warm path
func hot(n int) []int {
	buf := make([]int, n) // want `make allocates in a //ttdc:hotpath function`
	row := build(n)       // want `call allocates through allocflow\.build -> make`
	copy(buf, row)
	return buf
}

// warm calls hot: a hotpath callee is audited in its own body, never
// re-flagged at the call site, so one fix cannot ripple through callers.
//
//ttdc:hotpath fixture warm path
func warm(n int) []int {
	return hot(n)
}

// cold allocates only on the cold paths: panic arguments and returns that
// hand back a non-nil error are exempt by construction.
//
//ttdc:hotpath fixture warm path
func cold(i, n int) (int, error) {
	if i < 0 {
		panic(fmt.Sprintf("allocflow: negative index %d", i))
	}
	if i >= n {
		return 0, fmt.Errorf("index %d out of range [0,%d)", i, n)
	}
	return i, nil
}

// shout leaves the module on the warm path; external callees are assumed
// to allocate unless allowlisted.
//
//ttdc:hotpath fixture warm path
func shout(s string) string {
	return strings.ToUpper(s) // want `call to strings\.ToUpper allocates in a //ttdc:hotpath function`
}

// capture returns a closure over its locals — an escaping capture, unlike
// a literal handed straight to a callee as a callback.
//
//ttdc:hotpath fixture warm path
func capture(xs []int) func() int {
	i := 0
	f := func() int { i++; return xs[i-1] } // want `closure capture allocates`
	return f
}

// key crosses the string ↔ []byte boundary, which copies the payload.
//
//ttdc:hotpath fixture warm path
func key(b []byte) string {
	return string(b) // want `string conversion allocates`
}

// pair materializes a heap object per call.
//
//ttdc:hotpath fixture warm path
func pair(a, b int) *point {
	return &point{a, b} // want `composite literal allocates`
}

// push appends outside any loop: allocflow owns it (growloop owns loop
// appends) because the base is not provably pre-sized.
//
//ttdc:hotpath fixture warm path
func push(q []int, x int) []int {
	return append(q, x) // want `append may grow its slice in a //ttdc:hotpath function`
}

// visit hands its literal straight to a callee: callback position matches
// the compiler's escape analysis for non-leaking parameters, so the
// literal is exempt — but its body is still on the warm path, and the
// conversion inside it still flags.
//
//ttdc:hotpath fixture warm path
func visit(names []string, each func([]byte)) {
	forEach(names, func(s string) {
		each([]byte(s)) // want `string conversion allocates`
	})
}

// forEach is the dynamic-dispatch boundary: calls through the function
// value are optimistically allocation-free (the gates catch liars).
func forEach(names []string, f func(string)) {
	for _, s := range names {
		f(s)
	}
}

// scratch owns a reusable buffer for the cap-guard case below.
type scratch struct{ buf []int }

// grown uses the sanctioned cap-guard idiom: the make runs O(log n) times
// across a campaign, not once per call, so the guard body is exempt.
//
//ttdc:hotpath fixture warm path
func (s *scratch) grown(n int) []int {
	if cap(s.buf) < n {
		s.buf = make([]int, n)
	}
	return s.buf[:n]
}
