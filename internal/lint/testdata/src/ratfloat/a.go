// Fixture for the ratfloat analyzer: Rat.Float64 outside the sanctioned
// RatFloat/ratF helpers is a finding; the helpers themselves and
// big.Float's unrelated Float64 method are the near-misses.
package ratfloat

import "math/big"

func bad(r *big.Rat) float64 {
	f, _ := r.Float64() // want `lossy Rat\.Float64 outside a sanctioned helper`
	return f
}

// RatFloat is a sanctioned display helper and may convert.
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// ratF is the package-local sanctioned spelling.
func ratF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// good is the near-miss: big.Float.Float64 is a different method and must
// not be reported.
func good(x *big.Float) float64 {
	f, _ := x.Float64()
	return f
}
