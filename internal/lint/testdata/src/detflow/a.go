// Interprocedural determinism shapes: nondeterminism reaches results only
// through helper calls, which is exactly what the intra-procedural
// walltime/seededrand/maporder analyzers cannot see. Each finding's
// message carries the witness chain down to the external source.
package detflow

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock directly (walltime's finding, not ours).
func stamp() int64 { return time.Now().UnixNano() }

// indirect reaches the clock one call deep.
func indirect() int64 {
	return stamp() // want `reaches time.Now through detflow\.stamp -> time\.Now`
}

// deep reaches it two calls deep; the chain names every hop.
func deep() int64 {
	return indirect() // want `detflow\.indirect -> detflow\.stamp -> time\.Now`
}

// draw uses the global generator directly.
func draw() int { return rand.Intn(6) }

// roll inherits the unseeded source from draw.
func roll() int {
	return draw() // want `rand\.Intn`
}

// firstKey returns whichever key map iteration yields first.
func firstKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return -1
}

// pick launders iteration order through firstKey.
func pick(m map[int]int) int {
	return firstKey(m) // want `map iteration order`
}

// seeded builds an explicitly seeded generator: no taint, methods on a
// caller-seeded *rand.Rand are exempt.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// injected reads through a caller-supplied clock: dynamic calls carry no
// taint, so the sanctioned injection pattern stays clean transitively.
func injected(now func() time.Time) int64 {
	return now().UnixNano()
}

// useInjected stays clean through the whole chain.
func useInjected(now func() time.Time) int64 {
	return injected(now)
}
