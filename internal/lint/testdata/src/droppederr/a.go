// Fixture for the droppederr analyzer: discarding the error of a core
// constructor is a finding; handled errors, unguarded packages (fmt), and
// Example documentation functions are the near-misses.
package droppederr

import (
	"fmt"

	"repro/internal/core"
)

func bad() {
	core.NonSleeping(2, [][]int{{0}, {1}})                    // want `error from core\.NonSleeping discarded by using the call as a statement`
	s, _ := core.New(2, [][]int{{0}, {1}}, [][]int{{1}, {0}}) // want `error from core\.New assigned to _`
	_ = s
}

func good() error {
	s, err := core.New(2, [][]int{{0}, {1}}, [][]int{{1}, {0}})
	if err != nil {
		return err
	}
	fmt.Println(s.L())
	return nil
}

// ExampleNonSleeping is the near-miss for the godoc idiom: documentation
// examples may elide error handling.
func ExampleNonSleeping() {
	s, _ := core.NonSleeping(2, [][]int{{0}, {1}})
	_ = s
}
