// Fixture for the ratcompare analyzer: ==/!= between two *big.Rat values
// is a finding; comparisons against the nil literal are the near-miss.
package ratcompare

import "math/big"

func bad(a, b *big.Rat) bool {
	if a == b { // want `\*big\.Rat compared with == compares pointers`
		return true
	}
	return a != b // want `\*big\.Rat compared with != compares pointers`
}

// good is the near-miss: nil checks and Cmp are the sanctioned forms.
func good(a, b *big.Rat) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Cmp(b) == 0
}
