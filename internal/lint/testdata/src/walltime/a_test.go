// Test files are exempt from walltime: measuring wall time in a test
// does not leak into a journal. Nothing here may be reported.
package walltime

import (
	"testing"
	"time"
)

func TestStamp(t *testing.T) {
	e := newEngine()
	if e.stamp().After(time.Now().Add(time.Hour)) {
		t.Fatal("clock skew")
	}
}
