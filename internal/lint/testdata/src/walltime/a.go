// Fixture for the walltime analyzer: wall-clock reads in a deterministic
// package are findings; the injected-clock pattern (one suppressed
// injection point, all other reads through it) and pure duration
// arithmetic are the sanctioned near-misses.
package walltime

import "time"

type engine struct {
	now func() time.Time
}

// newEngine is the single sanctioned injection point.
func newEngine() *engine {
	return &engine{
		//lint:ignore walltime single injection point; everything else reads e.now
		now: time.Now,
	}
}

// bad reads the wall clock directly.
func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// badSince derives a wall-clock-dependent duration.
func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// badTicker plants a wall-clock timer.
func badTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `time\.NewTicker reads the wall clock`
}

// goodDurations is pure arithmetic: no clock read.
func goodDurations() time.Duration {
	return 3 * time.Millisecond
}

// stamp goes through the injected clock.
func (e *engine) stamp() time.Time {
	return e.now()
}
