// Interface-boxing shapes inside //ttdc:hotpath functions: conversions,
// assignments, interface-typed parameters (explicit and variadic), returns,
// and method-value captures. Cold paths are exempt via the shared ranges —
// fmt.Errorf on the error path boxes its operands, and error paths are
// allowed to.
package boxing

import "fmt"

// sink is where the assignment case lands.
var sink interface{}

// store boxes through a plain assignment to an interface-typed location.
//
//ttdc:hotpath fixture warm path
func store(v int) {
	sink = v // want `assignment boxes int into interface\{\} in a //ttdc:hotpath function`
}

// declare boxes through a var declaration with an explicit interface type.
//
//ttdc:hotpath fixture warm path
func declare(v float64) {
	var x interface{} = v // want `assignment boxes float64 into interface\{\}`
	_ = x
}

// convert boxes through an explicit conversion.
//
//ttdc:hotpath fixture warm path
func convert(v uint32) interface{} {
	x := interface{}(v) // want `conversion boxes uint32 into interface\{\}`
	return x
}

// ret boxes at the return site: the declared result is an interface.
//
//ttdc:hotpath fixture warm path
func ret(v int64) interface{} {
	return v // want `return boxes int64 into interface\{\}`
}

// logValue hits the variadic ...interface{} path every formatting call
// takes; each concrete argument is its own allocation.
//
//ttdc:hotpath fixture warm path
func logValue(v int) {
	fmt.Println(v) // want `argument boxes int into variadic`
}

// accept boxes into a declared (non-variadic) interface parameter.
//
//ttdc:hotpath fixture warm path
func accept(v int) {
	consume(v) // want `argument boxes int into interface\{\}`
}

// consume is the interface-taking helper; no contract, no finding.
func consume(x interface{}) { _ = x }

// counter gives the method-value case a receiver to capture.
type counter struct{ n int }

// bump is the method being captured.
func (c *counter) bump() { c.n++ }

// capture materializes a method value: the receiver binding allocates.
//
//ttdc:hotpath fixture warm path
func capture(c *counter) func() {
	f := c.bump // want `method value bump captures its receiver binding`
	return f
}

// direct calls the method normally — call position is not a capture.
//
//ttdc:hotpath fixture warm path
func direct(c *counter) {
	c.bump()
}

// coldError boxes only inside an error return: exempt, like every cold
// path.
//
//ttdc:hotpath fixture warm path
func coldError(i, n int) (int, error) {
	if i >= n {
		return 0, fmt.Errorf("index %d out of range [0,%d)", i, n)
	}
	return i, nil
}

// passThrough hands one interface to another: interface→interface moves a
// descriptor, it does not box.
//
//ttdc:hotpath fixture warm path
func passThrough(x interface{}) interface{} {
	return x
}
