// Fixture for the ctxcancel analyzer: discarded and path-leaked cancel
// funcs are findings; defer cancel(), per-path calls, and handing the
// cancel func to the caller are the sanctioned near-misses.
package ctxcancel

import (
	"context"
	"errors"
	"time"
)

var errEarly = errors.New("early")

// leak loses the cancel func on the error path.
func leak(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent) // want `can leak on an early return`
	if fail {
		return errEarly
	}
	use(ctx)
	cancel()
	return nil
}

// discarded can never cancel: the func is assigned to the blank
// identifier.
func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `discarded`
	return ctx
}

// goodDefer is the sanctioned idiom.
func goodDefer(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	if fail {
		return errEarly
	}
	use(ctx)
	return nil
}

// goodHandoff transfers the obligation to the caller on every path.
func goodHandoff(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

// goodPerPath calls cancel on each path explicitly.
func goodPerPath(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent)
	if fail {
		cancel()
		return errEarly
	}
	use(ctx)
	cancel()
	return nil
}

func use(context.Context) {}
