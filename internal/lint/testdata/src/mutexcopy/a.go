// Fixture for the mutexcopy analyzer: lock-bearing values passed,
// returned, assigned, or ranged by value are findings; pointers and
// fresh composite literals are the sanctioned near-misses.
package mutexcopy

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type stats struct {
	hits atomic.Int64
}

// byValueParam forks the mutex: caller and callee unlock different locks.
func byValueParam(g guarded) int { // want `parameter copies guarded`
	return g.n
}

// byValueMethod does the same through the receiver.
func (g guarded) byValueMethod() int { // want `receiver copies guarded`
	return g.n
}

// byValueResult copies the lock out to every caller.
func byValueResult() guarded { // want `result copies guarded`
	return guarded{}
}

// snapshotStats copies a typed atomic, losing its atomicity guarantees.
func snapshotStats(s stats) int64 { // want `parameter copies stats`
	return 0
}

// assignCopy duplicates the lock state into a local.
func assignCopy(g *guarded) {
	snapshot := *g // want `assignment copies guarded`
	_ = snapshot.n
}

// rangeCopy duplicates each element's lock into the loop variable.
func rangeCopy(gs []guarded) int {
	sum := 0
	for _, g := range gs { // want `range value copies guarded`
		sum += g.n
	}
	return sum
}

// goodPointer shares the lock instead of copying it.
func goodPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// goodInit builds fresh values; composite literals copy nothing.
func goodInit() *guarded {
	g := guarded{}
	p := &g
	return p
}

// goodIndexLoop avoids the copy by indexing.
func goodIndexLoop(gs []guarded) int {
	sum := 0
	for i := range gs {
		sum += gs[i].n
	}
	return sum
}
