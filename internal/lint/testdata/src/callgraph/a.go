// Call-graph builder shapes, exercised directly by callgraph_test.go:
// recursion, mutual recursion through a tainted cycle, method values,
// interface dispatch, and float-provenance recursion that must converge.
package callgraph

import "time"

// fact is simple self-recursion: one EdgeCall back to itself.
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

// isEven and isOdd form a mutually recursive cycle; clock taint enters
// through stamp and must reach both at the fixpoint.
func isEven(n int) bool {
	if n == 0 {
		return true
	}
	return isOdd(n - 1)
}

func isOdd(n int) bool {
	if n == 0 {
		return stamp()
	}
	return isEven(n - 1)
}

func stamp() bool { return time.Now().IsZero() }

type T struct{ v int }

func (t *T) Get() int { return t.v }

// methodValue references Get without calling it: an EdgeRef, not a call.
func methodValue() func() int {
	t := &T{v: 1}
	f := t.Get
	return f
}

// callMethod calls Get statically through a concrete receiver.
func callMethod(t *T) int {
	return t.Get()
}

type Iface interface{ M() int }

// dyn dispatches through an interface: a DynamicSite, no edge.
func dyn(i Iface) int {
	return i.M()
}

// cleanRec is float recursion with clean provenance: the optimistic
// fixpoint must converge to FloatDerived = true.
func cleanRec(n int) float64 {
	if n == 0 {
		return 0
	}
	return cleanRec(n-1) / 2
}

// dirtyRec forwards a float parameter: FloatDerived must settle false and
// stay false through the recursive cycle.
func dirtyRec(x float64, n int) float64 {
	if n == 0 {
		return x
	}
	return dirtyRec(x, n-1)
}
