// Fixture for the poolput analyzer: pool leaks on error paths, uses
// after Put, and returns under a deferred Put are findings; deferred
// release, per-path release, and ownership transfer are the sanctioned
// near-misses.
package poolput

import (
	"errors"
	"sync"
)

var errEarly = errors.New("early")

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// leak loses the pooled object on the error path: nothing Puts it back
// before the early return.
func leak(fail bool) error {
	b := pool.Get().(*buf) // want `can reach a return with no Put`
	if fail {
		return errEarly
	}
	pool.Put(b)
	return nil
}

// useAfterPut touches the object after handing it back to the pool.
func useAfterPut() int {
	b := pool.Get().(*buf)
	pool.Put(b)
	return len(b.b) // want `used after Put`
}

// deferReturn returns the object while a deferred Put is pending, so the
// caller receives memory the pool is about to recycle.
func deferReturn() *buf {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return b // want `returned while a deferred Put`
}

// goodDefer is the sanctioned idiom: the deferred Put covers every path.
func goodDefer(fail bool) error {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if fail {
		return errEarly
	}
	b.b = b.b[:0]
	return nil
}

// goodTransfer hands ownership to the caller; the caller must release.
func goodTransfer() *buf {
	b := pool.Get().(*buf)
	b.b = b.b[:0]
	return b
}

type scratch struct{ sums []uint64 }

func (s *scratch) Release() {}

var spool = sync.Pool{New: func() any { return new(scratch) }}

// goodReleaseMethod releases through the wrapper method on each path.
func goodReleaseMethod(fail bool) error {
	s := spool.Get().(*scratch)
	if fail {
		s.Release()
		return errEarly
	}
	s.Release()
	return nil
}
