// Fixture for the seededrand analyzer: global math/rand state and
// time-based seeding are findings; explicitly seeded local generators are
// the sanctioned near-miss.
package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"

	"repro/internal/stats"
)

func bad() int {
	rand.Seed(42)        // want `rand\.Seed uses the global math/rand source`
	x := rand.Intn(10)   // want `rand\.Intn uses the global math/rand source`
	y := randv2.IntN(10) // want `rand/v2\.IntN uses the unseedable global generator`
	return x + y
}

func timeSeeded() *stats.RNG {
	src := rand.NewSource(time.Now().UnixNano()) // want `NewSource seeded from time\.Now`
	_ = src
	return stats.NewRNG(uint64(time.Now().UnixNano())) // want `NewRNG seeded from time\.Now`
}

// good is the near-miss: rand.New(rand.NewSource(seed)) and stats.NewRNG
// are explicitly seeded, so neither may be reported.
func good() int {
	r := rand.New(rand.NewSource(7))
	rng := stats.NewRNG(7)
	return r.Intn(10) + rng.Intn(10)
}

func ignored() {
	//lint:ignore seededrand fixture demonstrating a justified suppression
	rand.Shuffle(0, func(i, j int) {})
}
