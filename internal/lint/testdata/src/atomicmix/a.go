// Fixture for the atomicmix analyzer: plain loads/stores of variables
// elsewhere accessed through sync/atomic are findings; all-atomic access
// is the sanctioned near-miss.
package atomicmix

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// read races with inc: a plain load of an atomically-written field.
func (c *counter) read() int64 {
	return c.n // want `n is accessed atomically at a\.go:\d+ but with a plain load/store`
}

var total int64

func bump() {
	atomic.AddInt64(&total, 1)
}

// reset races with bump: a plain store to an atomically-added variable.
func reset() {
	total = 0 // want `total is accessed atomically at a\.go:\d+ but with a plain load/store`
}

// allAtomic is the sanctioned pattern: every access goes through
// sync/atomic.
func allAtomic(c *counter) int64 {
	atomic.StoreInt64(&c.hits, 0)
	atomic.AddInt64(&c.hits, 1)
	return atomic.LoadInt64(&c.hits)
}

var plain int64

// neverAtomic is fine: plain is never touched by sync/atomic.
func neverAtomic() int64 {
	plain++
	return plain
}
