// Loop-growth shapes inside //ttdc:hotpath functions: an append whose
// statement sits on a CFG cycle runs an unbounded number of times per
// call, so it must be provably pre-sized — reset by self-reslice or grown
// once behind a cap guard. Appends outside loops are allocflow's.
package growloop

// rows is package state for the appends below.
var rows []int

// gather grows an unreset slice inside the scan loop: the classic warm-
// path leak this analyzer exists for.
//
//ttdc:hotpath fixture warm path
func gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want `append inside a loop is not provably pre-sized`
		}
	}
	return out
}

// spill appends to package state from inside a counted loop.
//
//ttdc:hotpath fixture warm path
func spill(n int) {
	for i := 0; i < n; i++ {
		rows = append(rows, i) // want `append inside a loop is not provably pre-sized`
	}
}

// buffer owns reusable scratch for the sanctioned shapes below.
type buffer struct{ buf []int }

// fill resets its scratch by self-reslice before the loop: pre-sized, no
// finding — this is the simulator kernels' idiom.
//
//ttdc:hotpath fixture warm path
func (b *buffer) fill(xs []int) {
	b.buf = b.buf[:0]
	for _, x := range xs {
		b.buf = append(b.buf, x)
	}
}

// guarded grows once behind a cap check, then appends into capacity.
//
//ttdc:hotpath fixture warm path
func (b *buffer) guarded(xs []int) {
	if cap(b.buf) < len(xs) {
		b.buf = make([]int, 0, len(xs))
	}
	b.buf = b.buf[:0]
	for _, x := range xs {
		b.buf = append(b.buf, x)
	}
}

// once appends outside any loop: allocflow's finding, not growloop's.
//
//ttdc:hotpath fixture warm path
func once(q []int, x int) []int {
	return append(q, x)
}
