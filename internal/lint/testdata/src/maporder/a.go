// Fixture for the maporder analyzer: appends and output calls inside a
// range over a map are findings; the collect-then-sort idiom, iteration-
// local slices, and commutative accumulation are the near-misses.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append inside range over map depends on iteration order`
	}
	return out
}

func badPrint(m map[int]string) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println call inside range over map`
	}
}

func badBuilder(m map[int]string, b *strings.Builder) {
	for _, v := range m {
		b.WriteString(v) // want `WriteString call inside range over map`
	}
}

// goodSorted is the sanctioned collect-then-sort idiom: the appended slice
// is sorted after the loop, so iteration order cannot leak.
func goodSorted(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// goodLocal appends to a slice declared inside the loop body: it is
// rebuilt per iteration, so map order cannot affect its contents.
func goodLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var squares []int
		for _, v := range vs {
			squares = append(squares, v*v)
		}
		total += len(squares)
	}
	return total
}

// goodCommutative accumulates order-independently.
func goodCommutative(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
