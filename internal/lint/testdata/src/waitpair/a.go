// Fixture for the waitpair analyzer: detached goroutines with no
// completion signal are findings; WaitGroup pairing, channel sends,
// closes, and join handles passed as arguments are the sanctioned
// near-misses.
package waitpair

import "sync"

// detached has no join: nobody can observe its completion.
func detached() {
	go func() { // want `no WaitGroup or channel join`
		work()
	}()
}

// detachedCall spawns a plain call with no join handle among the
// arguments.
func detachedCall() {
	go work() // want `no WaitGroup or channel join`
}

// goodWaitGroup is the canonical paired spawn.
func goodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// goodChannelSend signals completion by sending.
func goodChannelSend() <-chan int {
	done := make(chan int)
	go func() {
		work()
		done <- 1
	}()
	return done
}

// goodClose signals completion by closing.
func goodClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// goodJoinArg hands the join handle to the spawned function.
func goodJoinArg() {
	done := make(chan struct{})
	go worker(done)
	<-done
}

// goodRange drains a channel; the range is itself the join.
func goodRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func worker(done chan struct{}) {
	defer close(done)
	work()
}

func work() {}
