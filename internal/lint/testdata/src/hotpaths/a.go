// Directive-hygiene shapes for //ttdc:hotpath: a marker with no written
// reason and a well-formed directive outside a function declaration's doc
// comment are findings of the pseudo-analyzer "hotpath"; a fused marker is
// an ordinary comment; a well-formed doc directive sets the contract.
package hotpaths

// kernel carries a well-formed contract.
//
//ttdc:hotpath saturation inner loop
func kernel(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//ttdc:hotpath
func bare() {}

func dangling() {
	//ttdc:hotpath tight loop
	_ = 0
}

//ttdc:hotpaths fused marker is an ordinary comment, not a contract
func fused() {}
