package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr guards the validity invariants of the schedule constructors
// and decoders: core.New and friends reject malformed ⟨T,R⟩ inputs, and a
// discarded error means an invalid schedule flows into analysis that
// assumes Requirement 1-3 preconditions. It reports any call to a
// package-level function of the root ttdc package ("repro") or
// repro/internal/core whose trailing error result is discarded — either by
// using the call as a statement (including go/defer) or by assigning the
// error to the blank identifier.
//
// Example* documentation functions are exempt: they follow the godoc
// idiom of eliding error handling for readability, and their // Output:
// blocks already fail the test suite if a constructor misbehaves.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "errors from ttdc/core constructors and decoders must be handled",
	Run:  runDroppedErr,
}

// droppedErrPackages are the import paths whose function errors must not
// be discarded.
var droppedErrPackages = map[string]bool{
	"repro":               true,
	"repro/internal/core": true,
}

func runDroppedErr(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	var file *ast.File
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		if strings.HasPrefix(enclosingFuncName(file, call.Pos()), "Example") {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(call.Pos()),
			Analyzer: "droppederr",
			Message:  fmt.Sprintf("error from %s.%s %s; constructors and decoders reject invalid schedules", fn.Pkg().Name(), fn.Name(), how),
		})
	}
	for _, f := range pkg.Files {
		file = f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, fn := guardedCall(pkg, n.X); fn != nil {
					report(call, fn, "discarded by using the call as a statement")
				}
			case *ast.GoStmt:
				if _, fn := guardedCall(pkg, n.Call); fn != nil {
					report(n.Call, fn, "discarded by go statement")
				}
			case *ast.DeferStmt:
				if _, fn := guardedCall(pkg, n.Call); fn != nil {
					report(n.Call, fn, "discarded by defer statement")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, fn := guardedCall(pkg, n.Rhs[0])
				if fn == nil {
					return true
				}
				// The error is the last result; flag when its LHS slot is
				// the blank identifier.
				if len(n.Lhs) == fn.Type().(*types.Signature).Results().Len() {
					if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
						report(call, fn, "assigned to _")
					}
				}
			}
			return true
		})
	}
	return diags
}

// guardedCall reports whether expr is a call to a package-level function
// of a guarded package whose last result is error.
func guardedCall(pkg *Package, expr ast.Expr) (*ast.CallExpr, *types.Func) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || !droppedErrPackages[fn.Pkg().Path()] {
		return nil, nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		return nil, nil
	}
	res := sig.Results()
	if res.Len() == 0 {
		return nil, nil
	}
	last := res.At(res.Len() - 1).Type()
	if !isNamedError(last) {
		return nil, nil
	}
	return call, fn
}

// isNamedError reports whether t is the built-in error interface type.
func isNamedError(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
