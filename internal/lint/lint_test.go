package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a `// want `+"`...`"+“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// expectation is one `// want` comment in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadExpectations scans every fixture file in dir for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
			}
			wants = append(wants, &expectation{file: abs, line: i + 1, pattern: re})
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzer through Lint
// (so //lint:ignore suppression applies exactly as in production), and
// checks the findings against the want comments both ways: every finding
// must be expected, and every expectation must fire.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages in %s", dir)
	}
	wants := loadExpectations(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	for _, d := range Lint(pkgs, []*Analyzer{a}) {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestSeededRandFixture(t *testing.T) { runFixture(t, SeededRand, "seededrand") }
func TestRatCompareFixture(t *testing.T) { runFixture(t, RatCompare, "ratcompare") }
func TestRatFloatFixture(t *testing.T)   { runFixture(t, RatFloat, "ratfloat") }
func TestMapOrderFixture(t *testing.T)   { runFixture(t, MapOrder, "maporder") }
func TestDroppedErrFixture(t *testing.T) { runFixture(t, DroppedErr, "droppederr") }
func TestPoolPutFixture(t *testing.T)    { runFixture(t, PoolPut, "poolput") }
func TestCtxCancelFixture(t *testing.T)  { runFixture(t, CtxCancel, "ctxcancel") }
func TestWaitPairFixture(t *testing.T)   { runFixture(t, WaitPair, "waitpair") }
func TestAtomicMixFixture(t *testing.T)  { runFixture(t, AtomicMix, "atomicmix") }
func TestMutexCopyFixture(t *testing.T)  { runFixture(t, MutexCopy, "mutexcopy") }
func TestWallTimeFixture(t *testing.T)   { runFixture(t, WallTime, "walltime") }
func TestFloatFlowFixture(t *testing.T)  { runFixture(t, FloatFlow, "floatflow") }
func TestPoolEscapeFixture(t *testing.T) { runFixture(t, PoolEscape, "poolescape") }
func TestDetFlowFixture(t *testing.T)    { runFixture(t, DetFlow, "detflow") }
func TestAllocFlowFixture(t *testing.T)  { runFixture(t, AllocFlow, "allocflow") }
func TestBoxingFixture(t *testing.T)     { runFixture(t, Boxing, "boxing") }
func TestGrowLoopFixture(t *testing.T)   { runFixture(t, GrowLoop, "growloop") }

// TestIgnoreDirectives checks suppression semantics directly: a malformed
// directive is itself a finding and suppresses nothing; a well-formed one
// suppresses only the analyzers it names.
func TestIgnoreDirectives(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(filepath.Join("testdata", "src", "ignores"), true)
	if err != nil {
		t.Fatal(err)
	}
	diags := Lint(pkgs, []*Analyzer{RatCompare})
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	// missingReason: 1 "ignore" finding + 1 surviving ratcompare finding;
	// justified: fully suppressed; wrongAnalyzer: 1 surviving ratcompare.
	if byAnalyzer["ignore"] != 1 {
		t.Errorf("ignore findings = %d, want 1 (missing reason)", byAnalyzer["ignore"])
	}
	if byAnalyzer["ratcompare"] != 2 {
		t.Errorf("ratcompare findings = %d, want 2 (malformed + wrong-analyzer directives must not suppress)", byAnalyzer["ratcompare"])
	}
	for _, d := range diags {
		if d.Analyzer == "ignore" && !strings.Contains(d.Message, "no written reason") {
			t.Errorf("ignore finding should demand a reason, got %q", d.Message)
		}
	}
}

// TestDiagnosticString pins the canonical file:line: analyzer: message form.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "ratcompare", Message: "msg"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 7
	if got, want := d.String(), "x.go:7: ratcompare: msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestLoaderResolvesModuleAndStdlib loads a real module package and checks
// both halves of import resolution plus deterministic file order.
func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "repro" {
		t.Fatalf("module = %q, want repro", loader.Module)
	}
	pkgs, err := loader.LoadDir(filepath.Join("..", "report"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("units = %d, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "repro/internal/report" {
		t.Fatalf("path = %q", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Generate") == nil {
		t.Fatal("type-checked package missing Generate")
	}
	for i := 1; i < len(p.Files); i++ {
		a := p.Fset.Position(p.Files[i-1].Pos()).Filename
		b := p.Fset.Position(p.Files[i].Pos()).Filename
		if a >= b {
			t.Fatalf("files out of order: %s >= %s", a, b)
		}
	}
}

// TestLoadTreeParallelMatchesSerial pins the loader equivalence contract:
// the parallel tree load must produce the same units, in the same order,
// with byte-identical lint output, as the serial one.
func TestLoadTreeParallelMatchesSerial(t *testing.T) {
	render := func(pkgs []*Package) string {
		var b strings.Builder
		for _, p := range pkgs {
			fmt.Fprintf(&b, "%s %d\n", p.Path, len(p.Files))
		}
		for _, d := range Lint(pkgs, All()) {
			fmt.Fprintln(&b, d)
		}
		return b.String()
	}
	root := ".." // repro/internal: several interdependent packages

	serial, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	spkgs, err := serial.LoadTree(root, true)
	if err != nil {
		t.Fatal(err)
	}

	parallel, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	ppkgs, err := parallel.LoadTreeParallel(root, true, 4)
	if err != nil {
		t.Fatal(err)
	}

	got, want := render(ppkgs), render(spkgs)
	if got != want {
		t.Fatalf("parallel load differs from serial:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
	if len(ppkgs) == 0 {
		t.Fatal("no packages loaded")
	}
}

// TestAnalyzerNamesUnique guards the suppression namespace.
func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 17 {
		t.Fatalf("analyzer count = %d, want 17", len(seen))
	}
}

// TestLintSortsDeterministically shuffles nothing but verifies ordering of
// the combined output across a multi-file fixture run twice.
func TestLintSortsDeterministically(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(filepath.Join("testdata", "src", "maporder"), true)
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var b strings.Builder
		for _, d := range Lint(pkgs, All()) {
			fmt.Fprintln(&b, d)
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("expected findings in the maporder fixture")
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("lint output not deterministic:\n%s\nvs\n%s", got, first)
		}
	}
	// Positional order: findings must come out by ascending line number.
	var prev int
	for _, d := range Lint(pkgs, All()) {
		if d.Pos.Line < prev {
			t.Fatalf("output not sorted by line: %d after %d", d.Pos.Line, prev)
		}
		prev = d.Pos.Line
	}
}
