package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// cgPath is the import path of the call-graph fixture package.
const cgPath = "repro/internal/lint/testdata/src/callgraph"

// loadCallgraph builds the interprocedural program over the callgraph
// fixture tree.
func loadCallgraph(t *testing.T) *Program {
	t.Helper()
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(filepath.Join("testdata", "src", "callgraph"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages in callgraph fixture")
	}
	return BuildProgram(pkgs)
}

// edgesTo counts fi's edges of the given kind to callee.
func edgesTo(fi *FuncInfo, callee string, kind EdgeKind) int {
	n := 0
	for _, e := range fi.Edges {
		if e.Callee == callee && e.Kind == kind {
			n++
		}
	}
	return n
}

// mustFunc fetches a function from the program or fails the test.
func mustFunc(t *testing.T, prog *Program, sym string) *FuncInfo {
	t.Helper()
	fi := prog.Func(sym)
	if fi == nil {
		var have []string
		for s := range prog.Funcs {
			have = append(have, s)
		}
		sort.Strings(have)
		t.Fatalf("function %s not in program; have:\n%s", sym, strings.Join(have, "\n"))
	}
	return fi
}

// TestCallGraphSelfRecursion: fact carries a static call edge back to
// itself, and the recursive cycle does not invent taint or break the
// fixpoint.
func TestCallGraphSelfRecursion(t *testing.T) {
	prog := loadCallgraph(t)
	fact := mustFunc(t, prog, cgPath+".fact")
	if got := edgesTo(fact, cgPath+".fact", EdgeCall); got != 1 {
		t.Fatalf("fact self-call edges = %d, want 1", got)
	}
	if fact.Summary.Taint != [numTaints]bool{} {
		t.Fatalf("fact acquired taint through self-recursion: %+v", fact.Summary)
	}
}

// TestCallGraphMutualRecursionTaint: clock taint enters the isEven/isOdd
// cycle through stamp and the fixpoint carries it to both members, with a
// witness chain that bottoms out at time.Now.
func TestCallGraphMutualRecursionTaint(t *testing.T) {
	prog := loadCallgraph(t)
	even := mustFunc(t, prog, cgPath+".isEven")
	odd := mustFunc(t, prog, cgPath+".isOdd")
	stamp := mustFunc(t, prog, cgPath+".stamp")

	if edgesTo(even, cgPath+".isOdd", EdgeCall) != 1 || edgesTo(odd, cgPath+".isEven", EdgeCall) != 1 {
		t.Fatal("mutual recursion edges missing")
	}
	for _, fi := range []*FuncInfo{even, odd, stamp} {
		if !fi.Summary.Taint[TaintClock] {
			t.Errorf("%s not clock-tainted at fixpoint", fi.Sym)
		}
		if got := fi.Summary.Src[TaintClock]; got != "time.Now" {
			t.Errorf("%s taint source = %q, want time.Now", fi.Sym, got)
		}
	}
	// The chain from isEven must route through the cycle to the source —
	// and terminate, despite the cycle.
	chain := prog.taintChain(cgPath+".isEven", TaintClock)
	if !strings.Contains(chain, "stamp") || !strings.HasSuffix(chain, "time.Now") {
		t.Fatalf("witness chain %q does not reach time.Now through stamp", chain)
	}
}

// TestCallGraphMethodValue: `f := t.Get` is a reference, not a call —
// the graph records an EdgeRef — while `t.Get()` is a static EdgeCall.
func TestCallGraphMethodValue(t *testing.T) {
	prog := loadCallgraph(t)
	getSym := "(*" + cgPath + ".T).Get"
	mv := mustFunc(t, prog, cgPath+".methodValue")
	if got := edgesTo(mv, getSym, EdgeRef); got != 1 {
		t.Fatalf("methodValue EdgeRef to Get = %d, want 1 (edges: %+v)", got, mv.Edges)
	}
	if got := edgesTo(mv, getSym, EdgeCall); got != 0 {
		t.Fatalf("methodValue must not have a call edge to Get, got %d", got)
	}
	cm := mustFunc(t, prog, cgPath+".callMethod")
	if got := edgesTo(cm, getSym, EdgeCall); got != 1 {
		t.Fatalf("callMethod EdgeCall to Get = %d, want 1 (edges: %+v)", got, cm.Edges)
	}
}

// TestCallGraphInterfaceDispatch: a call through an interface cannot be
// resolved statically — it lands in Dynamic, not Edges.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadCallgraph(t)
	dyn := mustFunc(t, prog, cgPath+".dyn")
	if len(dyn.Dynamic) != 1 || !strings.Contains(dyn.Dynamic[0].Desc, "interface dispatch") {
		t.Fatalf("dyn dynamic sites = %+v, want one interface dispatch", dyn.Dynamic)
	}
	for _, e := range dyn.Edges {
		if e.Kind == EdgeCall && strings.Contains(e.Callee, ".M") {
			t.Fatalf("interface dispatch produced a static edge: %+v", e)
		}
	}
}

// TestFixpointFloatRecursion: the optimistic float-provenance fixpoint
// must converge true for a clean recursive accumulator and settle false
// when the cycle forwards an unproven float parameter.
func TestFixpointFloatRecursion(t *testing.T) {
	prog := loadCallgraph(t)
	if fi := mustFunc(t, prog, cgPath+".cleanRec"); !fi.Summary.FloatDerived {
		t.Error("cleanRec: FloatDerived = false, want true (clean recursion must converge)")
	}
	if fi := mustFunc(t, prog, cgPath+".dirtyRec"); fi.Summary.FloatDerived {
		t.Error("dirtyRec: FloatDerived = true, want false (forwarded float parameter)")
	}
}

// renderSummaries serialises every function summary in symbol order.
func renderSummaries(prog *Program) string {
	syms := make([]string, 0, len(prog.Funcs))
	for s := range prog.Funcs {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var b strings.Builder
	for _, s := range syms {
		fmt.Fprintf(&b, "%s %+v\n", s, prog.Funcs[s].Summary)
	}
	return b.String()
}

// TestBuildProgramSerialParallelIdentical pins the determinism contract
// for the interprocedural layer: summaries computed over a parallel tree
// load are byte-identical to the serial ones.
func TestBuildProgramSerialParallelIdentical(t *testing.T) {
	root := ".."

	serial, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	spkgs, err := serial.LoadTree(root, true)
	if err != nil {
		t.Fatal(err)
	}

	parallel, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	ppkgs, err := parallel.LoadTreeParallel(root, true, 4)
	if err != nil {
		t.Fatal(err)
	}

	got, want := renderSummaries(BuildProgram(ppkgs)), renderSummaries(BuildProgram(spkgs))
	if got == "" {
		t.Fatal("no summaries rendered")
	}
	if got != want {
		t.Fatalf("summaries differ between parallel and serial loads:\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
}
