package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxCancel guards against leaked context cancel functions. Every
// context.WithCancel / WithTimeout / WithDeadline (and their Cause
// variants) returns a cancel func that must eventually run, or the parent
// context accumulates children until it is itself cancelled — in a
// long-lived server (ttdcserve) that is an unbounded leak. It reports
//
//   - a cancel func assigned to the blank identifier (it can never run);
//   - a cancel func that some path to the function exit neither calls,
//     defers, returns to the caller, nor hands to another function.
//
// `defer cancel()` right after the constructor covers every path at once
// and is the sanctioned idiom.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc:  "context cancel funcs must be called, deferred, or handed off on every path",
	Run:  runCtxCancel,
}

// cancelCtors are the context constructors whose second result is a
// CancelFunc (or CancelCauseFunc).
var cancelCtors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

func runCtxCancel(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			diags = append(diags, ctxCancelBody(pkg, body)...)
		})
	}
	return diags
}

func ctxCancelBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	type site struct {
		stmt ast.Stmt
		name string
		obj  types.Object // nil when the cancel func was discarded
	}
	var sites []site
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelCtors[fn.Name()] {
			return true
		}
		s := site{stmt: as, name: fn.Name()}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			s.obj = pkg.Info.Defs[id]
			if s.obj == nil {
				s.obj = pkg.Info.Uses[id]
			}
		}
		sites = append(sites, s)
		return true
	})
	if len(sites) == 0 {
		return nil
	}

	g := BuildFlow(body)
	var diags []Diagnostic
	for _, s := range sites {
		if s.obj == nil {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(s.stmt.Pos()),
				Analyzer: "ctxcancel",
				Message:  fmt.Sprintf("cancel func from context.%s discarded; it must run or the parent context leaks the child forever", s.name),
			})
			continue
		}
		// A deferred use (defer cancel(), or a deferred closure touching
		// it) covers every path.
		covered := false
		for _, d := range g.Defers {
			if usesObject(pkg, d, s.obj) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		// Otherwise every path must call it or hand it off: any statement
		// mentioning the cancel func counts (a call, a return, storing it
		// into a struct, passing it along).
		obj := s.obj
		uses := func(st ast.Stmt) bool { return st != nil && usesObjectAt(pkg, st, obj) }
		if g.PathAvoiding(g.NodeFor(s.stmt), uses) {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(s.stmt.Pos()),
				Analyzer: "ctxcancel",
				Message:  fmt.Sprintf("cancel func from context.%s can leak on an early return; defer cancel() (or call/hand it off on every path)", s.name),
			})
		}
	}
	return diags
}
