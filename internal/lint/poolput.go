package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// PoolPut guards the pooled-scratch discipline of the hot paths
// (engine.Metrics, sim's saturation scratch): an object taken from a
// sync.Pool must either be returned to the pool on every path out of the
// function or have its ownership explicitly transferred (returned to the
// caller, stored into a field, sent on a channel, or handed to another
// function). It reports
//
//   - a Pool.Get whose result can reach the function exit on some path
//     with neither a Put/Release nor an ownership transfer — the silent
//     pool-drain bug (each miss costs an allocation, never a crash, so
//     only a checker catches it);
//   - a use of the pooled object at a statement reachable after an inline
//     Put — by then another goroutine may own the object;
//   - a return statement whose results mention the object while a
//     deferred Put is pending — the defer recycles the object before the
//     caller ever sees it.
//
// A deferred Put (or Release) covers every path at once; calling the
// object's Release method counts as a Put (the repository's pooled types
// wrap their pool behind one).
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "sync.Pool Get must be paired with Put on every path, and objects must not be used after Put",
	Run:  runPoolPut,
}

func runPoolPut(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			diags = append(diags, poolPutBody(pkg, body)...)
		})
	}
	return diags
}

// poolGet matches one Get site: the assignment statement and the local
// variable that now owns a pooled object.
type poolGet struct {
	stmt ast.Stmt
	obj  types.Object
}

func poolPutBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	gets := collectPoolGets(pkg, body)
	if len(gets) == 0 {
		return nil
	}
	g := BuildFlow(body)
	var diags []Diagnostic
	for _, get := range gets {
		diags = append(diags, checkPoolGet(pkg, g, get)...)
	}
	return diags
}

// collectPoolGets finds `v := pool.Get().(T)`-shaped assignments to a
// plain identifier, at any statement depth of body but not inside nested
// function literals (those are analyzed as their own bodies).
func collectPoolGets(pkg *Package, body *ast.BlockStmt) []poolGet {
	var gets []poolGet
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		if !isPoolGetCall(pkg, as.Rhs[0]) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			gets = append(gets, poolGet{stmt: as, obj: obj})
		}
		return true
	})
	return gets
}

// isPoolGetCall reports whether expr is (possibly type-asserted)
// pool.Get() on a sync.Pool.
func isPoolGetCall(pkg *Package, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	return isSyncPool(pkg.Info.Types[sel.X].Type)
}

// isSyncPool reports whether t (or its pointee) is sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, "sync", "Pool")
}

// checkPoolGet verifies the three pooling rules for one Get site.
func checkPoolGet(pkg *Package, g *FlowGraph, get poolGet) []Diagnostic {
	var diags []Diagnostic
	// releasesAt is the per-node predicate: only the parts of a statement
	// executed at its own CFG node count (a Put nested in an if body must
	// not make the if head itself a release).
	releasesAt := func(s ast.Stmt) bool {
		for _, p := range ShallowParts(s) {
			if containsRelease(pkg, p, get.obj) {
				return true
			}
		}
		return false
	}

	// Rule 3: deferred Put + return mentioning the object. Deferred calls
	// are inspected in full: a deferred closure that Puts does run.
	deferred := false
	for _, d := range g.Defers {
		if containsRelease(pkg, d, get.obj) {
			deferred = true
			break
		}
	}
	if deferred {
		for _, n := range g.Nodes {
			ret, ok := n.Stmt.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			for _, res := range ret.Results {
				if aliasesObject(pkg, res, get.obj) {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(ret.Pos()),
						Analyzer: "poolput",
						Message:  "pooled object returned while a deferred Put will recycle it; the caller receives memory the pool may hand to another goroutine",
					})
				}
			}
		}
		return diags // the deferred Put covers every path for rules 1-2
	}

	// Rule 1: some path from Get to exit with no release and no transfer.
	getNode := g.NodeFor(get.stmt)
	satisfies := func(s ast.Stmt) bool {
		return s != nil && (releasesAt(s) || transfersOwnership(pkg, s, get.obj))
	}
	if g.PathAvoiding(getNode, satisfies) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(get.stmt.Pos()),
			Analyzer: "poolput",
			Message:  "sync.Pool Get result can reach a return with no Put on that path; release it (or transfer ownership) on every path or the pool silently drains",
		})
	}

	// Rule 2: a use reachable after an inline Put.
	for _, n := range g.Nodes {
		if _, isDefer := n.Stmt.(*ast.DeferStmt); isDefer || !releasesAt(n.Stmt) {
			continue
		}
		var after []*FlowNode
		for m := range g.Reachable(n) {
			after = append(after, m)
		}
		sort.Slice(after, func(i, j int) bool { return after[i].Stmt.Pos() < after[j].Stmt.Pos() })
		for _, m := range after {
			if reassigns(pkg, m.Stmt, get.obj) {
				continue
			}
			if m != n && usesObjectAt(pkg, m.Stmt, get.obj) {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(m.Stmt.Pos()),
					Analyzer: "poolput",
					Message:  "pooled object used after Put returned it to the pool; another goroutine may already own it",
				})
			}
		}
	}
	return diags
}

// aliasesObject reports whether expr evaluates to the pooled object or to
// memory reachable through it: the identifier itself, or a chain of
// selector / index / slice / dereference / address-of steps rooted at it.
// A value merely derived from the object through a call (len(s.sums)) is
// computed before any deferred Put runs and is safe to return.
func aliasesObject(pkg *Package, expr ast.Expr, obj types.Object) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.Ident:
			return pkg.Info.Uses[e] == obj
		default:
			return false
		}
	}
}

// containsRelease reports whether n contains a call that gives the pooled
// object back: pool.Put(obj ...) on a sync.Pool, or obj.Release().
func containsRelease(pkg *Package, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Put":
			if isSyncPool(pkg.Info.Types[sel.X].Type) {
				for _, arg := range call.Args {
					if usesObject(pkg, arg, obj) {
						found = true
					}
				}
			}
		case "Release":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// transfersOwnership reports whether stmt moves the pooled object out of
// the function's custody: returning it, storing it into a field / index /
// dereference, sending it on a channel, or passing it to a call (other
// than a release, which containsRelease already classifies).
func transfersOwnership(pkg *Package, stmt ast.Stmt, obj types.Object) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if usesObject(pkg, res, obj) {
				return true
			}
		}
	case *ast.SendStmt:
		return usesObject(pkg, s.Value, obj)
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			if !usesObject(pkg, s.Rhs[i], obj) {
				continue
			}
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if usesObject(pkg, arg, obj) {
					return true
				}
			}
		}
	}
	return false
}

// reassigns reports whether stmt rebinds obj (so later uses refer to a
// fresh value, not the released one).
func reassigns(pkg *Package, stmt ast.Stmt, obj types.Object) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if pkg.Info.Uses[id] == obj || pkg.Info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}
