package lint

import (
	"strings"
	"testing"
)

// FuzzHotpathDirective hammers the //ttdc:hotpath parser with arbitrary
// comment text and checks the same structural invariants the //lint:ignore
// fuzzer pins: it must never panic, it must be deterministic, a
// non-directive yields nothing, and a directive yields exactly one of a
// well-formed reason or a malformed-directive message. The seed corpus
// lives in testdata/fuzz/FuzzHotpathDirective.
func FuzzHotpathDirective(f *testing.F) {
	f.Add("//ttdc:hotpath saturation inner loop of the verifier kernel")
	f.Add("//ttdc:hotpath")
	f.Add("//ttdc:hotpath ")
	f.Add("//ttdc:hotpaths fused marker must not parse")
	f.Add("//ttdc:hotpath\t tab-separated \t reason")
	f.Add("// just a comment")
	f.Add("/*ttdc:hotpath block comments are not directives*/")
	f.Add("//ttdc:hotpath  doubled  spaces  collapse")

	f.Fuzz(func(t *testing.T, text string) {
		reason, bad, ok := parseHotpathDirective(text)

		r2, b2, ok2 := parseHotpathDirective(text)
		if ok != ok2 || bad != b2 || reason != r2 {
			t.Fatalf("parse not deterministic for %q", text)
		}

		if !ok {
			if reason != "" || bad != "" {
				t.Fatalf("non-directive %q produced output: %q / %q", text, reason, bad)
			}
			return
		}

		// A recognised directive starts with the exact marker, bounded by
		// end-of-comment or blank space — never fused into a longer word.
		rest := strings.TrimPrefix(text, "//"+hotpathPrefix)
		if rest == text || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			t.Fatalf("accepted %q as a directive", text)
		}

		wellFormed := reason != ""
		malformed := bad != ""
		if wellFormed == malformed {
			t.Fatalf("directive %q is both/neither well-formed and malformed: %q / %q", text, reason, bad)
		}
		if wellFormed && (strings.ContainsAny(reason, "\t\n\r") || strings.Contains(reason, "  ")) {
			t.Fatalf("reason %q from %q not whitespace-normalized", reason, text)
		}
	})
}
