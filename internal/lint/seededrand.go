package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SeededRand enforces the reproducibility contract of internal/stats: every
// randomized component takes an explicit seeded *stats.RNG, so experiment
// tables are bit-for-bit reproducible. It reports
//
//   - any use of a math/rand top-level function that reads or writes the
//     package-global generator (rand.Intn, rand.Seed, rand.Shuffle, ...);
//     locally constructed generators (rand.New(rand.NewSource(seed))) are
//     allowed because they are explicitly seeded;
//   - any use of a math/rand/v2 top-level function: the v2 global generator
//     cannot be seeded at all, so every such call is irreproducible;
//   - time-based seeding — a time.Now() call inside the arguments of
//     rand.Seed, rand.NewSource, or any function named NewRNG.
//
// internal/stats itself is exempt: it is the one place allowed to define
// what randomness means.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "randomness must flow through an explicitly seeded generator",
	Run:  runSeededRand,
}

// globalRandV1 lists the math/rand top-level functions backed by the
// package-global source. Constructors (New, NewSource, NewZipf) are absent:
// they build caller-seeded generators.
var globalRandV1 = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"NormFloat64": true, "ExpFloat64": true, "Read": true,
}

// localRandV2 lists the math/rand/v2 top-level constructors that do NOT
// touch the unseedable global generator.
var localRandV2 = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runSeededRand(pkg *Package) []Diagnostic {
	if strings.HasPrefix(pkg.Path, "repro/internal/stats") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pkg.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "math/rand":
					if globalRandV1[fn.Name()] {
						diags = append(diags, Diagnostic{
							Pos:      pkg.Fset.Position(n.Pos()),
							Analyzer: "seededrand",
							Message:  fmt.Sprintf("rand.%s uses the global math/rand source; take a seeded *stats.RNG instead", fn.Name()),
						})
					}
				case "math/rand/v2":
					if !localRandV2[fn.Name()] {
						diags = append(diags, Diagnostic{
							Pos:      pkg.Fset.Position(n.Pos()),
							Analyzer: "seededrand",
							Message:  fmt.Sprintf("rand/v2.%s uses the unseedable global generator; take a seeded *stats.RNG instead", fn.Name()),
						})
					}
				}
			case *ast.CallExpr:
				if d, ok := timeSeededCall(pkg, n); ok {
					diags = append(diags, d)
				}
			}
			return true
		})
	}
	return diags
}

// timeSeededCall reports a seed-taking call (rand.Seed, rand.NewSource, or
// any function named NewRNG) whose arguments contain a time.Now() call.
func timeSeededCall(pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	fn := funcObj(pkg.Info, call)
	if fn == nil {
		return Diagnostic{}, false
	}
	seeder := fn.Name() == "NewRNG" ||
		(fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && (fn.Name() == "Seed" || fn.Name() == "NewSource"))
	if !seeder {
		return Diagnostic{}, false
	}
	for _, arg := range call.Args {
		var found ast.Node
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				if inner := funcObj(pkg.Info, c); inner != nil && isPkgFunc(inner, "time", "Now") {
					found = c
					return false
				}
			}
			return true
		})
		if found != nil {
			return Diagnostic{
				Pos:      pkg.Fset.Position(found.Pos()),
				Analyzer: "seededrand",
				Message:  fmt.Sprintf("%s seeded from time.Now(); derive seeds from configuration so runs are reproducible", fn.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}
