package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MutexCopy guards against copied locks: a sync.Mutex (or any type
// containing one) that is passed, returned, or assigned by value forks
// the lock state — both copies unlock independently and the critical
// section silently stops excluding anything. `go vet -copylocks` catches
// many of these, but not in this repository's stdlib-only lint pass, and
// not for the typed atomics (atomic.Int64 & friends) the engine's
// counters rely on. It reports
//
//   - function parameters, results, and receivers whose type carries a
//     lock by value;
//   - assignments whose right-hand side copies an existing lock-bearing
//     value (composite literals are fresh values and are fine);
//   - range clauses whose value variable copies lock-bearing elements.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "types containing sync or atomic state must be passed by pointer, never copied",
	Run:  runMutexCopy,
}

// lockTypes are the by-value-uncopyable types of sync and sync/atomic.
var lockTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

func runMutexCopy(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, what string, t types.Type) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos.Pos()),
			Analyzer: "mutexcopy",
			Message:  fmt.Sprintf("%s copies %s, which contains lock or atomic state; use a pointer", what, types.TypeString(t, types.RelativeTo(pkg.Types))),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					diags = append(diags, checkFieldList(pkg, n.Recv, "receiver")...)
				}
				diags = append(diags, checkFuncType(pkg, n.Type)...)
			case *ast.FuncLit:
				diags = append(diags, checkFuncType(pkg, n.Type)...)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if !copiesExistingValue(rhs) {
						continue
					}
					if t := pkg.Info.Types[rhs].Type; t != nil && typeHasLock(t, nil) {
						report(rhs, "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && id.Name == "_" {
					return true
				}
				if t := valueType(pkg, n.Value); t != nil && typeHasLock(t, nil) {
					report(n.Value, "range value", t)
				}
			}
			return true
		})
	}
	return diags
}

// checkFuncType reports lock-bearing by-value parameters and results.
func checkFuncType(pkg *Package, ft *ast.FuncType) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, checkFieldList(pkg, ft.Params, "parameter")...)
	if ft.Results != nil {
		diags = append(diags, checkFieldList(pkg, ft.Results, "result")...)
	}
	return diags
}

func checkFieldList(pkg *Package, fl *ast.FieldList, what string) []Diagnostic {
	var diags []Diagnostic
	for _, field := range fl.List {
		t := pkg.Info.Types[field.Type].Type
		if t == nil || !typeHasLock(t, nil) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(field.Type.Pos()),
			Analyzer: "mutexcopy",
			Message:  fmt.Sprintf("%s copies %s, which contains lock or atomic state; use a pointer", what, types.TypeString(t, types.RelativeTo(pkg.Types))),
		})
	}
	return diags
}

// valueType resolves the type of an assignment/range target. Identifiers
// introduced by `:=` are recorded in Defs rather than Types, so the plain
// expression lookup alone would miss them.
func valueType(pkg *Package, expr ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[expr]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesExistingValue reports whether expr reads an existing storage
// location (so assigning it copies state): an identifier, field selector,
// dereference, or index. Fresh values — composite literals, calls — are
// legitimate initializations.
func copiesExistingValue(expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// typeHasLock reports whether t carries lock/atomic state by value:
// it is (or is a struct/array transitively containing) one of lockTypes.
// Pointers, slices, maps, channels, and funcs break the chain — sharing
// through them is exactly the sanctioned fix.
func typeHasLock(t types.Type, seen map[*types.Named]bool) bool {
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && lockTypes[obj.Pkg().Path()][obj.Name()] {
			return true
		}
		if seen[n] {
			return false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[n] = true
		return typeHasLock(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasLock(u.Elem(), seen)
	}
	return false
}
