package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked unit: either a package (its compile files
// plus in-package test files) or the external _test package of a directory.
type Package struct {
	// Path is the import path ("repro/internal/core", or with a "_test"
	// suffix for external test packages).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the loader's shared file set; all Diagnostic positions
	// resolve through it.
	Fset *token.FileSet
	// Files are the parsed files of the unit, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the unit.
	Types *types.Package
	Info  *types.Info
	// Prog is the module-wide interprocedural index, shared by every unit
	// of one lint run; LintAll fills it before any analyzer runs.
	Prog *Program
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Imports inside the module are resolved
// against the module root; everything else is delegated to the go/importer
// source importer, which type-checks the standard library from GOROOT.
type Loader struct {
	// Module is the module path from go.mod.
	Module string
	// Root is the absolute module root directory.
	Root string
	// Fset is shared by every parse, including the source importer's.
	Fset *token.FileSet

	std     types.ImporterFrom
	mu      sync.Mutex                // guards cache and loading
	cache   map[string]*types.Package // import path -> checked (non-test files only)
	loading map[string]bool
	stdMu   sync.Mutex // the source importer is not documented as concurrency-safe
}

// NewLoader locates the enclosing module by walking up from dir (or the
// working directory if dir is "") to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := modulePath(string(data))
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Module:  module,
		Root:    root,
		Fset:    fset,
		std:     std,
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import resolves an import path for the type checker: module-internal
// paths are checked from source under Root, anything else goes to the
// source importer. Loader itself implements types.Importer so checked
// packages can import each other.
//
// Import is safe for concurrent use, with one caveat: two goroutines may
// not concurrently import module-internal packages whose dependency
// closures overlap, or the in-progress marker reads as a cycle.
// LoadTreeParallel avoids this by pre-filling the cache in dependency
// order, so its phase-B checks only ever hit the cache.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	pkg, ok := l.cache[path]
	l.mu.Unlock()
	if ok {
		return pkg, nil
	}
	dir, internal := l.dirFor(path)
	if !internal {
		l.stdMu.Lock()
		defer l.stdMu.Unlock()
		return l.std.ImportFrom(path, l.Root, 0)
	}
	l.mu.Lock()
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, path)
		l.mu.Unlock()
	}()

	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err = conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (dir string, internal bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses the Go files of dir, sorted by name. With tests false it
// keeps only compile files; with tests true it returns compile files,
// in-package test files, and external test files as three slices appended
// in that order by the caller via splitting on package name.
func (l *Loader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the package in dir for linting. It returns up to two
// units: the package itself (compile files plus in-package test files when
// tests is true) and, when present and tests is true, the external _test
// package. Directories with no Go files return no units and no error.
func (l *Loader) LoadDir(dir string, tests bool) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, err := l.parseDir(abs, tests)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	path := l.pathFor(abs)

	// Split into the primary unit and the external test package by
	// package name: "foo_test" files form their own unit.
	var primary, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			primary = append(primary, f)
		}
	}
	var units []*Package
	if len(primary) > 0 {
		u, err := l.check(path, abs, primary)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(xtest) > 0 {
		u, err := l.check(path+"_test", abs, xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// pathFor derives the import path of an absolute directory inside (or
// outside) the module root.
func (l *Loader) pathFor(abs string) string {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// check type-checks one unit with full Info for the analyzers.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

// LoadTree loads every package directory under root (which must be inside
// the module), skipping testdata, hidden, and underscore directories.
func (l *Loader) LoadTree(root string, tests bool) ([]*Package, error) {
	dirs, err := l.walkDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.LoadDir(dir, tests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// walkDirs collects the package directories under root, sorted, skipping
// testdata, hidden, and underscore directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadTreeParallel is LoadTree with concurrent type-checking. It runs in
// two phases so the shared import cache is only ever read concurrently,
// never raced on:
//
//   - Phase A walks the module-internal import DAG (imports of the target
//     directories plus their transitive internal closure), then checks it
//     into the cache level by level — a package is checked only after all
//     of its dependencies, and packages within a level are independent, so
//     they check in parallel. Leftover nodes mean an import cycle.
//   - Phase B checks the target units themselves (with test files and full
//     Info) across `workers` goroutines; every internal import is a cache
//     hit by construction.
//
// The result is identical to LoadTree: same units, same order.
func (l *Loader) LoadTreeParallel(root string, tests bool, workers int) ([]*Package, error) {
	dirs, err := l.walkDirs(root)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return l.LoadTree(root, tests)
	}
	if err := l.prefill(dirs, tests, workers); err != nil {
		return nil, err
	}
	units := make([][]*Package, len(dirs))
	errs := make([]error, len(dirs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				units[i], errs[i] = l.LoadDir(dirs[i], tests)
			}
		}()
	}
	for i := range dirs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var pkgs []*Package
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pkgs = append(pkgs, units[i]...)
	}
	return pkgs, nil
}

// prefill type-checks the module-internal dependency closure of dirs into
// the import cache, in dependency order, parallel within each level.
func (l *Loader) prefill(dirs []string, tests bool, workers int) error {
	// deps maps each internal import path to the internal paths its
	// compile (and, for target dirs, in-package test) files import — the
	// edges that constrain check order. External-test imports only seed
	// new nodes: package p_test may depend on packages that import p.
	deps := map[string][]string{}
	var queue []string
	seed := func(path string) {
		if _, ok := deps[path]; !ok {
			deps[path] = nil
			queue = append(queue, path)
		}
	}
	for _, dir := range dirs {
		ordering, extra, err := l.importsOf(dir, tests)
		if err != nil {
			return err
		}
		if ordering == nil && extra == nil {
			continue // no Go files
		}
		path := l.pathFor(dir)
		seed(path)
		deps[path] = ordering
		for _, p := range append(ordering, extra...) {
			seed(p)
		}
	}
	// Expand the closure: every seeded non-target node contributes its own
	// compile imports.
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if deps[path] != nil {
			continue
		}
		dir, internal := l.dirFor(path)
		if !internal {
			delete(deps, path)
			continue
		}
		ordering, _, err := l.importsOf(dir, false)
		if err != nil {
			return err
		}
		deps[path] = ordering
		for _, p := range ordering {
			seed(p)
		}
	}
	// Kahn's algorithm by levels, checking each level in parallel.
	done := map[string]bool{}
	for len(done) < len(deps) {
		var ready []string
		for path, ds := range deps {
			if done[path] {
				continue
			}
			ok := true
			for _, d := range ds {
				if _, tracked := deps[d]; tracked && !done[d] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, path)
			}
		}
		if len(ready) == 0 {
			var left []string
			for path := range deps {
				if !done[path] {
					left = append(left, path)
				}
			}
			sort.Strings(left)
			return fmt.Errorf("lint: import cycle among %s", strings.Join(left, ", "))
		}
		sort.Strings(ready)
		errs := make([]error, len(ready))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, path := range ready {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, path string) {
				defer wg.Done()
				defer func() { <-sem }()
				_, errs[i] = l.Import(path)
			}(i, path)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for _, path := range ready {
			done[path] = true
		}
	}
	return nil
}

// importsOf parses the import clauses of dir's Go files (ImportsOnly — no
// bodies) and splits the module-internal paths into ordering edges
// (compile and in-package test files, which the checker treats exactly
// like Go's import-cycle rules) and extras (external _test package files,
// which may legally import packages that import this one).
func (l *Loader) importsOf(dir string, tests bool) (ordering, extra []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	seenOrd := map[string]bool{}
	seenExtra := map[string]bool{}
	found := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, nil, err
		}
		found = true
		xtest := strings.HasSuffix(f.Name.Name, "_test")
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if _, internal := l.dirFor(path); !internal {
				continue
			}
			if xtest {
				if !seenExtra[path] {
					seenExtra[path] = true
					extra = append(extra, path)
				}
			} else if !seenOrd[path] {
				seenOrd[path] = true
				ordering = append(ordering, path)
			}
		}
	}
	if !found {
		return nil, nil, nil
	}
	if ordering == nil {
		ordering = []string{}
	}
	return ordering, extra, nil
}
