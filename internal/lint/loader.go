package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit: either a package (its compile files
// plus in-package test files) or the external _test package of a directory.
type Package struct {
	// Path is the import path ("repro/internal/core", or with a "_test"
	// suffix for external test packages).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the loader's shared file set; all Diagnostic positions
	// resolve through it.
	Fset *token.FileSet
	// Files are the parsed files of the unit, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the unit.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Imports inside the module are resolved
// against the module root; everything else is delegated to the go/importer
// source importer, which type-checks the standard library from GOROOT.
type Loader struct {
	// Module is the module path from go.mod.
	Module string
	// Root is the absolute module root directory.
	Root string
	// Fset is shared by every parse, including the source importer's.
	Fset *token.FileSet

	std     types.ImporterFrom
	cache   map[string]*types.Package // import path -> checked (non-test files only)
	loading map[string]bool
}

// NewLoader locates the enclosing module by walking up from dir (or the
// working directory if dir is "") to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := modulePath(string(data))
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Module:  module,
		Root:    root,
		Fset:    fset,
		std:     std,
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import resolves an import path for the type checker: module-internal
// paths are checked from source under Root, anything else goes to the
// source importer. Loader itself implements types.Importer so checked
// packages can import each other.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, internal := l.dirFor(path)
	if !internal {
		return l.std.ImportFrom(path, l.Root, 0)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (dir string, internal bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses the Go files of dir, sorted by name. With tests false it
// keeps only compile files; with tests true it returns compile files,
// in-package test files, and external test files as three slices appended
// in that order by the caller via splitting on package name.
func (l *Loader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the package in dir for linting. It returns up to two
// units: the package itself (compile files plus in-package test files when
// tests is true) and, when present and tests is true, the external _test
// package. Directories with no Go files return no units and no error.
func (l *Loader) LoadDir(dir string, tests bool) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, err := l.parseDir(abs, tests)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	path := l.pathFor(abs)

	// Split into the primary unit and the external test package by
	// package name: "foo_test" files form their own unit.
	var primary, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			primary = append(primary, f)
		}
	}
	var units []*Package
	if len(primary) > 0 {
		u, err := l.check(path, abs, primary)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(xtest) > 0 {
		u, err := l.check(path+"_test", abs, xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// pathFor derives the import path of an absolute directory inside (or
// outside) the module root.
func (l *Loader) pathFor(abs string) string {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// check type-checks one unit with full Info for the analyzers.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

// LoadTree loads every package directory under root (which must be inside
// the module), skipping testdata, hidden, and underscore directories.
func (l *Loader) LoadTree(root string, tests bool) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.LoadDir(dir, tests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}
