package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Per-function summaries over a boolean lattice, propagated to a fixpoint
// over the call graph. Every component is monotone — the taint, store,
// release, and pooled bits only move false→true across passes, and
// FloatDerived only moves true→false — so iterating until no summary
// changes terminates, and because both the function order (level, then
// symbol) and the per-function edge order (source order) are fixed by the
// sorted loader output, the fixpoint is byte-identical between -workers=1
// and parallel runs.

// TaintKind indexes the determinism-taint dimensions of a Summary.
type TaintKind int

const (
	// TaintClock: the function (transitively) reads the wall clock.
	TaintClock TaintKind = iota
	// TaintRand: the function (transitively) draws from an unseeded
	// global random source.
	TaintRand
	// TaintMapOrder: the function (transitively) returns data whose value
	// depends on map iteration order.
	TaintMapOrder
	numTaints
)

// taintNames are the human phrases used in detflow messages.
var taintNames = [numTaints]string{
	"wall-clock time",
	"unseeded randomness",
	"map iteration order",
}

// Summary is the interprocedural abstract of one function.
type Summary struct {
	// Taint[k] reports that kind-k nondeterminism reaches this function's
	// behavior; Via[k] is the callee symbol the taint arrived through (""
	// for a direct source), and Src[k] names the ultimate source
	// ("time.Now", "rand.Intn", ...). Via/Src are frozen at the pass that
	// first sets Taint[k], which keeps witness chains acyclic: a chain
	// recorded at pass p can only point at taint established before p.
	Taint [numTaints]bool
	Via   [numTaints]string
	Src   [numTaints]string
	// FloatDerived: every float the function returns traces to integer
	// counts, constants, an approved finalizer, or an approved package.
	// Vacuously true for functions with no float results.
	FloatDerived bool
	// ReturnsPooled: the function is a pool getter — it returns a value
	// obtained from a sync.Pool (directly or through another getter).
	ReturnsPooled bool
	// StoresParam[i]: parameter i (receiver first, matching
	// FuncInfo.Params) is stored into a location that outlives the call —
	// a field, an element, a package variable, a channel, or a goroutine.
	StoresParam []bool
	// ReleasesParam[i]: parameter i is returned to its pool (Pool.Put or
	// a Release method, directly or transitively).
	ReleasesParam []bool
	// Allocates: the function performs a warm-path heap allocation, itself
	// or through any static callee. Cold shapes — panic arguments, error
	// returns, cap-guarded growth, pre-sized appends, callback literals —
	// are excluded by construction (see alloc.go). AllocVia is the callee
	// symbol the fact arrived through ("" for a direct site) and AllocSrc
	// names the ultimate site ("make", "fmt.Sprintf", ...); both are frozen
	// at the pass that first sets Allocates, exactly like taint witnesses.
	Allocates bool
	AllocVia  string
	AllocSrc  string
}

func (s Summary) equal(o Summary) bool {
	if s.Taint != o.Taint || s.Via != o.Via || s.Src != o.Src ||
		s.FloatDerived != o.FloatDerived || s.ReturnsPooled != o.ReturnsPooled ||
		s.Allocates != o.Allocates || s.AllocVia != o.AllocVia || s.AllocSrc != o.AllocSrc ||
		len(s.StoresParam) != len(o.StoresParam) || len(s.ReleasesParam) != len(o.ReleasesParam) {
		return false
	}
	for i := range s.StoresParam {
		if s.StoresParam[i] != o.StoresParam[i] {
			return false
		}
	}
	for i := range s.ReleasesParam {
		if s.ReleasesParam[i] != o.ReleasesParam[i] {
			return false
		}
	}
	return true
}

// approvedFinalizers are the symbols allowed to originate result-bound
// floats: the shared integer-census finalizers whose single evaluation
// order is what makes legacy and fast simulator paths byte-identical, plus
// the sanctioned big.Rat display converters. (The testdata entries keep
// the floatflow fixtures exercisable end to end.)
var approvedFinalizers = map[string]bool{
	"repro/internal/sim.energyFromCounts":                   true,
	"repro/internal/sim.finishSaturation":                   true,
	"repro/internal/sim.finishConvergecast":                 true,
	"(repro/internal/sim.EnergyModel).slotEnergy":           true,
	"repro.RatFloat":                                        true,
	"repro/internal/combin.RatFloat":                        true,
	"repro/internal/lint/testdata/src/floatflow.fromCounts": true,
	"repro/cmd/ttdclint/testdata/bad.fromCounts":            true,
	"repro/cmd/ttdclint/testdata/good.fromCounts":           true,
}

// approvedFloatPkgs may produce floats without provenance checks:
// internal/stats defines what aggregate statistics mean, the same way it
// is the one package allowed to define randomness.
var approvedFloatPkgs = map[string]bool{
	"repro/internal/stats": true,
}

// journalBound names the result structs whose float fields end up in
// journals, SARIF, or result tables — the sinks floatflow protects.
var journalBound = map[string]bool{
	"repro/internal/engine.Metrics":                      true,
	"repro/internal/sim.SaturationResult":                true,
	"repro/internal/sim.ConvergecastResult":              true,
	"repro/internal/sim.FloodResult":                     true,
	"repro/internal/lint/testdata/src/floatflow.Summary": true,
	"repro/cmd/ttdclint/testdata/bad.Summary":            true,
	"repro/cmd/ttdclint/testdata/good.Summary":           true,
}

// fixpoint computes every summary, iterating the (level, symbol)-sorted
// function order until nothing changes. Each component is monotone, so the
// pass count is bounded by the lattice height; the explicit cap is a
// backstop, not a correctness requirement.
func (p *Program) fixpoint() {
	for _, sym := range p.order {
		fi := p.Funcs[sym]
		fi.Summary = Summary{
			FloatDerived:  true, // optimistic: lets clean recursion converge clean
			StoresParam:   make([]bool, len(fi.Params)),
			ReleasesParam: make([]bool, len(fi.Params)),
		}
	}
	for pass := 0; pass < len(p.order)+2; pass++ {
		changed := false
		for _, sym := range p.order {
			fi := p.Funcs[sym]
			ns := p.summarize(fi)
			if !ns.equal(fi.Summary) {
				changed = true
				fi.Summary = ns
			}
		}
		if !changed {
			return
		}
	}
}

// summarize recomputes one function's summary from its body and the
// current summaries of its callees.
func (p *Program) summarize(fi *FuncInfo) Summary {
	old := fi.Summary
	s := Summary{
		StoresParam:   make([]bool, len(fi.Params)),
		ReleasesParam: make([]bool, len(fi.Params)),
	}
	// Taint and allocation bits are sticky and their witnesses frozen: once
	// set, a later pass never rewrites Via/Src (see the Summary doc comment).
	s.Taint, s.Via, s.Src = old.Taint, old.Via, old.Src
	s.Allocates, s.AllocVia, s.AllocSrc = old.Allocates, old.AllocVia, old.AllocSrc
	p.directTaints(fi, &s)
	if !s.Allocates {
		if site, ok := fi.allocFacts(p).firstSite(); ok {
			s.Allocates, s.AllocVia, s.AllocSrc = true, "", site.src
		}
	}
	for _, e := range fi.Edges {
		if e.Kind != EdgeCall {
			continue
		}
		callee := p.Funcs[e.Callee]
		if callee == nil {
			continue
		}
		for k := TaintKind(0); k < numTaints; k++ {
			if !s.Taint[k] && callee.Summary.Taint[k] {
				s.Taint[k] = true
				s.Via[k] = e.Callee
				s.Src[k] = callee.Summary.Src[k]
			}
		}
		if !s.Allocates && callee != fi && callee.Summary.Allocates &&
			!fi.allocFacts(p).inCold(e.Pos) {
			s.Allocates = true
			s.AllocVia = e.Callee
			s.AllocSrc = callee.Summary.AllocSrc
		}
	}
	s.FloatDerived = p.floatDerived(fi)
	s.ReturnsPooled = p.returnsPooled(fi)
	for i, par := range fi.Params {
		if par == nil || !hasPointerShare(par.Type()) {
			continue
		}
		s.StoresParam[i] = p.paramStored(fi, par)
		s.ReleasesParam[i] = p.paramReleased(fi, par)
	}
	return s
}

// directTaints marks the taint kinds fi sources itself: calls into the
// clock-reading part of package time, the global math/rand generators
// (methods are exempt — a *rand.Rand is caller-seeded), and returns of
// map-iteration values. Function *references* (EdgeRef) do not taint: an
// injected `now func() time.Time` field is the sanctioned clock pattern,
// and the single injection point is where a walltime suppression belongs.
func (p *Program) directTaints(fi *FuncInfo, s *Summary) {
	set := func(k TaintKind, src string) {
		if !s.Taint[k] {
			s.Taint[k] = true
			s.Via[k] = ""
			s.Src[k] = src
		}
	}
	for _, e := range fi.Edges {
		if e.Kind != EdgeCall || e.Fn == nil || e.Fn.Pkg() == nil {
			continue
		}
		if sig, ok := e.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue
		}
		switch e.Fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[e.Fn.Name()] {
				set(TaintClock, "time."+e.Fn.Name())
			}
		case "math/rand":
			if globalRandV1[e.Fn.Name()] {
				set(TaintRand, "rand."+e.Fn.Name())
			}
		case "math/rand/v2":
			if !localRandV2[e.Fn.Name()] {
				set(TaintRand, "rand/v2."+e.Fn.Name())
			}
		}
	}
	if mapOrderReturn(fi) {
		set(TaintMapOrder, "range over map")
	}
}

// mapOrderReturn reports whether fi returns a value derived from the
// iteration variables of a range over a map — the shape where iteration
// order directly selects the result ("return the first key found"). Taint
// that escapes a map loop through accumulation into non-deterministically
// ordered containers is the intra-procedural maporder analyzer's job.
func mapOrderReturn(fi *FuncInfo) bool {
	pkg := fi.Pkg
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		var iterObjs []types.Object
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if o := pkg.Info.Defs[id]; o != nil {
				iterObjs = append(iterObjs, o)
			} else if o := pkg.Info.Uses[id]; o != nil {
				iterObjs = append(iterObjs, o)
			}
		}
		if len(iterObjs) == 0 {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			if found {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := m.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, r := range ret.Results {
				for _, o := range iterObjs {
					if usesObject(pkg, r, o) {
						found = true
					}
				}
			}
			return true
		})
		return true
	})
	return found
}

// --- float provenance ---

// floatDerived reports whether every float fi returns is provenance-clean.
func (p *Program) floatDerived(fi *FuncInfo) bool {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return true
	}
	results := sig.Results()
	needs := false
	for i := 0; i < results.Len(); i++ {
		if isFloatType(results.At(i).Type()) {
			needs = true
		}
	}
	if !needs {
		return true
	}
	clean := true
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if !clean {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == 0:
			// Bare return with named results: the named result variables
			// of the unit's own signature are the objects the body assigns.
			for i := 0; i < results.Len(); i++ {
				v := results.At(i)
				if v.Name() == "" || !isFloatType(v.Type()) {
					continue
				}
				if !p.localFloatClean(fi, v, map[types.Object]bool{}) {
					clean = false
				}
			}
		case len(ret.Results) == 1 && results.Len() > 1:
			// return f() forwarding a tuple.
			if !p.floatClean(fi, ret.Results[0], map[types.Object]bool{}) {
				clean = false
			}
		default:
			for i, r := range ret.Results {
				if i < results.Len() && isFloatType(results.At(i).Type()) {
					if !p.floatClean(fi, r, map[types.Object]bool{}) {
						clean = false
					}
				}
			}
		}
		return true
	})
	return clean
}

// floatClean reports whether expr's float value provably traces to integer
// counts, constants, approved finalizers/packages, journal-bound fields
// (checked at their own store sites), or compositions thereof. stack
// guards local-variable recursion: a variable encountered while its own
// definitions are being judged is treated as clean, so accumulator shapes
// (sum = sum + term) reduce to judging their increments.
func (p *Program) floatClean(fi *FuncInfo, expr ast.Expr, stack map[types.Object]bool) bool {
	expr = ast.Unparen(expr)
	info := fi.Pkg.Info
	if tv, ok := info.Types[expr]; ok {
		if tv.Value != nil {
			return true // constant expression
		}
		if tv.Type != nil && !typeCarriesFloat(tv.Type) {
			return true // int-derived: conversions of these are the sanctioned origin
		}
	}
	switch e := expr.(type) {
	case *ast.BasicLit:
		return true
	case *ast.BinaryExpr:
		return p.floatClean(fi, e.X, stack) && p.floatClean(fi, e.Y, stack)
	case *ast.UnaryExpr:
		return p.floatClean(fi, e.X, stack)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: float64(x) is clean iff x is.
			if len(e.Args) == 1 {
				return p.floatClean(fi, e.Args[0], stack)
			}
			return false
		}
		fn, _, _, _ := resolveCallee(fi.Pkg, e)
		if fn == nil {
			return false // dynamic call: provenance unknown
		}
		sym := symbolOf(fn)
		if approvedFinalizers[sym] {
			return true
		}
		if fn.Pkg() != nil {
			pp := fn.Pkg().Path()
			if approvedFloatPkgs[pp] {
				return true
			}
			if pp == "math" {
				for _, a := range e.Args {
					if !p.floatClean(fi, a, stack) {
						return false
					}
				}
				return true
			}
		}
		if callee := p.Funcs[sym]; callee != nil {
			return callee.Summary.FloatDerived
		}
		return false
	case *ast.SelectorExpr:
		// A float field of a journal-bound struct was checked at its own
		// store site; reading it back is clean by induction.
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil && journalBound[typeSym(named)] {
				return true
			}
		}
		return false
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if fi.paramSet[obj] {
			return false // float parameter: caller provenance unknown
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return false // package variable: mutable from anywhere
		}
		return p.localFloatClean(fi, obj, stack)
	}
	return false
}

// localFloatClean judges a local variable by every definition recorded for
// it in fi's body (including op-assign increments, whose old-value half is
// covered by the variable's other definitions).
func (p *Program) localFloatClean(fi *FuncInfo, obj types.Object, stack map[types.Object]bool) bool {
	if stack[obj] {
		return true // accumulator cycle: judged by its other definitions
	}
	stack[obj] = true
	defer delete(stack, obj)
	if fi.floatDefs == nil {
		fi.floatDefs = collectFloatDefs(fi)
	}
	defs, ok := fi.floatDefs[obj]
	if !ok || len(defs) == 0 {
		return false // range variable, closure-written, or untracked
	}
	for _, d := range defs {
		if d == nil || !p.floatClean(fi, d, stack) {
			return false
		}
	}
	return true
}

// zeroDef stands in for the implicit zero value of a `var x float64`
// declaration with no initializer.
var zeroDef ast.Expr = &ast.BasicLit{}

// collectFloatDefs records every expression assigned to each local of fi,
// including assignments inside nested function literals (the objects are
// shared, and a closure write is still a definition). A nil entry marks a
// definition whose value cannot be tracked (range iteration variables).
func collectFloatDefs(fi *FuncInfo) map[types.Object][]ast.Expr {
	pkg := fi.Pkg
	defs := map[types.Object][]ast.Expr{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		defs[obj] = append(defs[obj], rhs)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				for _, l := range s.Lhs {
					mark(l, s.Rhs[0]) // tuple assign: the call judges it
				}
			} else {
				for i, l := range s.Lhs {
					if i < len(s.Rhs) {
						mark(l, s.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(s.Values) == 0:
				for _, nm := range s.Names {
					mark(nm, zeroDef)
				}
			case len(s.Values) == 1 && len(s.Names) > 1:
				for _, nm := range s.Names {
					mark(nm, s.Values[0])
				}
			default:
				for i, nm := range s.Names {
					if i < len(s.Values) {
						mark(nm, s.Values[i])
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if e != nil {
					mark(e, nil)
				}
			}
		}
		return true
	})
	return defs
}

// --- pooled-value provenance ---

// returnsPooled reports whether fi returns a pool-obtained value: directly
// from Pool.Get, or through a callee already summarized as a getter.
func (p *Program) returnsPooled(fi *FuncInfo) bool {
	pkg := fi.Pkg
	pooled := pooledLocals(p, fi)
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if p.isPooledSource(pkg, r) {
				found = true
				continue
			}
			for _, obj := range pooled {
				if aliasesObject(pkg, r, obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// pooledLocals collects, in source order, the locals of fi bound to a
// pooled value: `v := pool.Get().(T)` or `v := getScratch()` where the
// callee's summary says ReturnsPooled.
func pooledLocals(p *Program, fi *FuncInfo) []types.Object {
	pkg := fi.Pkg
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		if !p.isPooledSource(pkg, as.Rhs[0]) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// isPooledSource reports whether expr yields a pooled value: a (possibly
// type-asserted) Pool.Get, or a call to a getter per current summaries.
func (p *Program) isPooledSource(pkg *Package, expr ast.Expr) bool {
	if isPoolGetCall(pkg, expr) {
		return true
	}
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, _, _, _ := resolveCallee(pkg, call)
	if fn == nil {
		return false
	}
	callee := p.Funcs[symbolOf(fn)]
	return callee != nil && callee.Summary.ReturnsPooled
}

// paramStored reports whether fi stores par somewhere that outlives the
// call: a field/element/pointee, a package variable, a channel send, a
// goroutine capture, or (transitively) an argument position a callee
// stores. External callees are trusted not to store — the soundness trade
// documented in DESIGN.md §12.
func (p *Program) paramStored(fi *FuncInfo, par types.Object) bool {
	pkg := fi.Pkg
	stored := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if stored {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				} else if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				if rhs == nil || !aliasesObject(pkg, rhs, par) || !exprShares(pkg, rhs) {
					continue
				}
				if aliasesObject(pkg, lhs, par) {
					continue // self-store (p.f = p.buf[:n]) does not extend p's lifetime
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					stored = true
				case *ast.Ident:
					if v := pkg.Info.Uses[l]; v != nil && isPkgLevelVar(v) {
						stored = true
					}
				}
			}
		case *ast.SendStmt:
			if usesObject(pkg, s.Value, par) {
				stored = true
			}
		case *ast.GoStmt:
			if usesObject(pkg, s.Call, par) {
				stored = true
			}
		}
		return true
	})
	if stored {
		return true
	}
	for _, e := range fi.Edges {
		if e.Kind != EdgeCall {
			continue
		}
		callee := p.Funcs[e.Callee]
		if callee == nil {
			continue
		}
		for j, sp := range callee.Summary.StoresParam {
			if !sp {
				continue
			}
			if arg := calleeArg(e, callee, j); arg != nil && aliasesObject(pkg, arg, par) {
				return true
			}
		}
	}
	return false
}

// paramReleased reports whether fi gives par back to its pool, directly
// (Pool.Put / Release) or through a callee that releases that position.
func (p *Program) paramReleased(fi *FuncInfo, par types.Object) bool {
	if containsRelease(fi.Pkg, fi.Decl.Body, par) {
		return true
	}
	for _, e := range fi.Edges {
		if e.Kind != EdgeCall {
			continue
		}
		callee := p.Funcs[e.Callee]
		if callee == nil {
			continue
		}
		for j, rp := range callee.Summary.ReleasesParam {
			if !rp {
				continue
			}
			if arg := calleeArg(e, callee, j); arg != nil && aliasesObject(fi.Pkg, arg, par) {
				return true
			}
		}
	}
	return false
}

// calleeArg maps a callee parameter position (receiver first) back to the
// caller-side expression at a call edge. Variadic trailing arguments clamp
// to the last position.
func calleeArg(e Edge, callee *FuncInfo, pos int) ast.Expr {
	if callee.Decl.Recv != nil {
		if pos == 0 {
			return e.Recv
		}
		pos--
	}
	if e.Call == nil || len(e.Call.Args) == 0 || pos < 0 {
		return nil
	}
	if pos >= len(e.Call.Args) {
		pos = len(e.Call.Args) - 1
	}
	return e.Call.Args[pos]
}

// --- small type helpers ---

// isFloatType reports whether t's underlying type is a float.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// typeCarriesFloat reports whether a value of type t contains a float
// component: a float itself, or a tuple with a float element (the result
// of a multi-value call being forwarded).
func typeCarriesFloat(t types.Type) bool {
	if isFloatType(t) {
		return true
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isFloatType(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// hasPointerShare reports whether a value of type t can share memory with
// another value: pointers, slices, maps, channels, funcs, interfaces, and
// aggregates containing them. Plain scalars copied out of a pooled object
// do not alias it.
func hasPointerShare(t types.Type) bool {
	seen := map[types.Type]bool{}
	var rec func(t types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch tt := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
			return true
		case *types.Struct:
			for i := 0; i < tt.NumFields(); i++ {
				if rec(tt.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(tt.Elem())
		}
		return false
	}
	return rec(t)
}

// exprShares reports whether expr's value can share memory (see
// hasPointerShare); unknown types share, conservatively.
func exprShares(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	return hasPointerShare(tv.Type)
}

// isPkgLevelVar reports whether obj is a package-level variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if pt, ok := t.(*types.Pointer); ok {
		t = types.Unalias(pt.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeSym renders a named type as "pkgpath.Name", the journalBound key.
func typeSym(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// shortSym compresses a symbol for diagnostics: import paths shrink to
// their last element ("repro/internal/sim.f" → "sim.f", including inside
// method receivers).
func shortSym(sym string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(sym, "(") {
		if i := strings.Index(sym, ")"); i > 0 {
			recv := sym[1:i]
			ptr := ""
			if strings.HasPrefix(recv, "*") {
				ptr = "*"
				recv = recv[1:]
			}
			return "(" + ptr + trim(recv) + ")" + sym[i+1:]
		}
	}
	return trim(sym)
}

// taintChain renders the witness path from sym to the ultimate source of
// kind-k taint, following the frozen Via links. The visited guard is a
// backstop for hand-built Programs; fixpoint-produced chains are acyclic.
func (p *Program) taintChain(sym string, k TaintKind) string {
	var parts []string
	seen := map[string]bool{}
	for cur := sym; cur != "" && !seen[cur]; {
		seen[cur] = true
		parts = append(parts, shortSym(cur))
		fi := p.Funcs[cur]
		if fi == nil {
			break
		}
		if fi.Summary.Via[k] == "" {
			if src := fi.Summary.Src[k]; src != "" {
				parts = append(parts, src)
			}
			break
		}
		cur = fi.Summary.Via[k]
	}
	return strings.Join(parts, " -> ")
}
