// Package wire defines the compact binary serving format for
// topology-transparent schedules. The JSON document of EncodeSchedule is
// the right shape for humans and pipelines; it is the wrong shape for a
// fleet of 10^6 sensor nodes each pulling its frame — per-slot node lists
// as ASCII decimal arrays cost ~5 bytes per membership bit. The wire
// format stores each slot set as a delta-encoded varint vector (sorted
// ascending, so gaps are small and most elements fit one byte), carries
// the analysis summary a node needs (exact Theorem-2 average throughput,
// active fraction) alongside the schedule, and frames everything with a
// magic number, a version byte, an explicit payload length, and a CRC32
// so a truncated or corrupted download is detected before any of it is
// trusted.
//
// Encoding is canonical: bitset element order is ascending, big.Rat is
// normalized, and there is exactly one encoding of a given Frame. That
// makes the SHA-256 content digest of the encoded bytes a stable identity
// for the frame, which the serving tier uses as the HTTP ETag — a node
// that already holds a schedule revalidates with If-None-Match and pays a
// 304 instead of a re-download.
//
// The decoder is strict and bounded: every length is validated against
// both absolute caps and the bytes actually remaining, so hostile input
// cannot force large allocations, and any leftover byte after the CRC is
// an error.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"

	"repro/internal/core"
)

// Format constants. Version is bumped on any layout change; decoders
// reject versions they do not know rather than guessing.
const (
	// Magic opens every frame: "TTDW" (topology-transparent duty-cycling
	// wire).
	Magic = "TTDW"
	// Version is the current layout version.
	Version = 1
)

// Decoder bounds. MaxDim matches the JSON decoder's dimension cap;
// MaxCells bounds the n×L footprint of a decoded schedule so one frame
// cannot demand gigabytes of bitsets before validation finishes.
const (
	MaxDim   = 1 << 20
	MaxCells = 1 << 28
	// maxRatBytes bounds the numerator/denominator magnitude of the
	// carried rational. Exact throughputs of servable schedules are tiny;
	// 4 KiB of big-endian magnitude is far beyond any of them.
	maxRatBytes = 4096
)

// Frame is one served schedule with its analysis summary: the class
// parameters the schedule answers for, the schedule itself, and the
// figures every client wants without re-deriving them.
type Frame struct {
	// Class parameters (request echo): the schedule serves N(n, D) with
	// transmitter/receiver caps (αT, αR) under the given division
	// strategy. AlphaT = AlphaR = 0 is the non-sleeping base schedule.
	N, D           int
	AlphaT, AlphaR int
	Strategy       core.DivisionStrategy

	// Schedule is the ⟨T,R⟩ activity schedule; Schedule.N() == N.
	Schedule *core.Schedule

	// AvgThroughput is the exact Theorem-2 expected worst-case
	// throughput for N(n, D). Never nil in an encodable frame.
	AvgThroughput *big.Rat
	// ActiveFraction is the fraction of (node, slot) pairs awake.
	ActiveFraction float64
}

// validate reports whether f is encodable.
func (f *Frame) validate() error {
	if f == nil || f.Schedule == nil {
		return fmt.Errorf("wire: nil frame or schedule")
	}
	if f.N != f.Schedule.N() {
		return fmt.Errorf("wire: frame n = %d but schedule universe is %d", f.N, f.Schedule.N())
	}
	if f.N < 1 || f.N > MaxDim {
		return fmt.Errorf("wire: n = %d outside [1, %d]", f.N, MaxDim)
	}
	if f.D < 0 || f.D > MaxDim {
		return fmt.Errorf("wire: D = %d outside [0, %d]", f.D, MaxDim)
	}
	if f.AlphaT < 0 || f.AlphaR < 0 || f.AlphaT > f.N || f.AlphaR > f.N {
		return fmt.Errorf("wire: caps (%d, %d) outside [0, n]", f.AlphaT, f.AlphaR)
	}
	if f.Strategy != core.Sequential && f.Strategy != core.Balanced {
		return fmt.Errorf("wire: unknown division strategy %d", int(f.Strategy))
	}
	if l := f.Schedule.L(); l > MaxDim || int64(f.N)*int64(l) > MaxCells {
		return fmt.Errorf("wire: schedule %d×%d exceeds wire bounds", f.N, l)
	}
	if f.AvgThroughput == nil || f.AvgThroughput.Sign() < 0 {
		return fmt.Errorf("wire: avg throughput missing or negative")
	}
	if f.ActiveFraction < 0 || f.ActiveFraction > 1 || math.IsNaN(f.ActiveFraction) {
		return fmt.Errorf("wire: active fraction %v outside [0, 1]", f.ActiveFraction)
	}
	return nil
}

// Encode renders f in the version-1 layout:
//
//	magic "TTDW" | version byte | uvarint payloadLen | payload | crc32(all preceding)
//
// payload:
//
//	uvarint n, D, αT, αR, strategy, L
//	L × ( slot transmitter set | slot receiver set )   delta-varint sets
//	uvarint |num|, num bytes, uvarint |den|, den bytes  exact avg throughput
//	8 bytes little-endian IEEE-754                      active fraction
//
// A delta-varint set is: uvarint count, then the first element, then each
// successive gap minus one — sortedness is therefore structural, not a
// convention the decoder must re-check.
func Encode(f *Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	s := f.Schedule
	payload := make([]byte, 0, 64+s.L()*4)
	payload = appendUvarints(payload,
		uint64(f.N), uint64(f.D), uint64(f.AlphaT), uint64(f.AlphaR),
		uint64(f.Strategy), uint64(s.L()))
	for i := 0; i < s.L(); i++ {
		payload = appendSet(payload, s.T(i).Elements())
		payload = appendSet(payload, s.R(i).Elements())
	}
	num, den := f.AvgThroughput.Num().Bytes(), f.AvgThroughput.Denom().Bytes()
	if len(num) > maxRatBytes || len(den) > maxRatBytes {
		return nil, fmt.Errorf("wire: avg throughput magnitude exceeds %d bytes", maxRatBytes)
	}
	payload = binary.AppendUvarint(payload, uint64(len(num)))
	payload = append(payload, num...)
	payload = binary.AppendUvarint(payload, uint64(len(den)))
	payload = append(payload, den...)
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(f.ActiveFraction))

	out := make([]byte, 0, len(Magic)+1+binary.MaxVarintLen64+len(payload)+crc32.Size)
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

func appendUvarints(b []byte, vs ...uint64) []byte {
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// appendSet writes a sorted element list as count, first element, then
// successive gaps minus one.
func appendSet(b []byte, elems []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(elems)))
	prev := 0
	for i, e := range elems {
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(e))
		} else {
			b = binary.AppendUvarint(b, uint64(e-prev-1))
		}
		prev = e
	}
	return b
}

// reader is a bounds-checked cursor over the encoded bytes. Every read
// method returns an error instead of panicking, and uvarints are rejected
// if they are non-minimal garbage (binary.Uvarint's overflow signal) or
// run past the buffer.
type reader struct {
	b   []byte
	off int
}

//ttdc:hotpath bounds cursor arithmetic on the decode path; two loads and a subtract
func (r *reader) remaining() int { return len(r.b) - r.off }

//ttdc:hotpath one call per encoded integer of every decoded frame; allocation belongs only to the cold error returns
func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated or oversized varint reading %s at offset %d", what, r.off)
	}
	// Reject non-minimal encodings (0x80 0x00 is another spelling of 0):
	// a multi-byte varint whose final, continuation-free byte is zero
	// carries no information there. Without this, Decode(x) could succeed
	// on bytes Encode would never produce, and the content digest would
	// stop being a stable identity.
	if n > 1 && r.b[r.off+n-1] == 0 {
		return 0, fmt.Errorf("wire: non-minimal varint reading %s at offset %d", what, r.off)
	}
	r.off += n
	return v, nil
}

// intIn reads a uvarint and range-checks it into [0, max] as an int.
//
//ttdc:hotpath range-checked varint read on the decode path; cold error returns only
func (r *reader) intIn(what string, max int) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("wire: %s = %d exceeds %d", what, v, max)
	}
	return int(v), nil
}

//ttdc:hotpath zero-copy subslice read on the decode path; cold error returns only
func (r *reader) bytes(what string, n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("wire: truncated reading %d bytes of %s at offset %d", n, what, r.off)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Decode parses one encoded frame. It rejects bad magic, unknown
// versions, CRC mismatches, truncations, dimension-bound violations, and
// trailing bytes; on success Decode(Encode(f)) is structurally equal to f
// and re-encodes to identical bytes.
func Decode(data []byte) (*Frame, error) {
	r := &reader{b: data}
	magic, err := r.bytes("magic", len(Magic))
	if err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("wire: bad magic %q", magic)
	}
	ver, err := r.bytes("version", 1)
	if err != nil {
		return nil, err
	}
	if ver[0] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (have %d)", ver[0], Version)
	}
	plen, err := r.intIn("payload length", MaxDim*64)
	if err != nil {
		return nil, err
	}
	if plen != r.remaining()-crc32.Size {
		return nil, fmt.Errorf("wire: payload length %d does not match %d remaining bytes", plen, r.remaining()-crc32.Size)
	}
	crcStart := r.off + plen
	wantCRC := binary.LittleEndian.Uint32(data[crcStart:])
	if got := crc32.ChecksumIEEE(data[:crcStart]); got != wantCRC {
		return nil, fmt.Errorf("wire: CRC mismatch (frame says %08x, content is %08x)", wantCRC, got)
	}

	f := &Frame{}
	if f.N, err = r.intIn("n", MaxDim); err != nil {
		return nil, err
	}
	if f.N < 1 {
		return nil, fmt.Errorf("wire: n = 0")
	}
	if f.D, err = r.intIn("D", MaxDim); err != nil {
		return nil, err
	}
	if f.AlphaT, err = r.intIn("alphaT", f.N); err != nil {
		return nil, err
	}
	if f.AlphaR, err = r.intIn("alphaR", f.N); err != nil {
		return nil, err
	}
	strat, err := r.intIn("strategy", 1)
	if err != nil {
		return nil, err
	}
	f.Strategy = core.DivisionStrategy(strat)
	l, err := r.intIn("frame length", MaxDim)
	if err != nil {
		return nil, err
	}
	if l < 1 {
		return nil, fmt.Errorf("wire: frame length 0")
	}
	if int64(f.N)*int64(l) > MaxCells {
		return nil, fmt.Errorf("wire: schedule %d×%d exceeds %d cells", f.N, l, MaxCells)
	}
	t := make([][]int, l)
	rs := make([][]int, l)
	for i := 0; i < l; i++ {
		if t[i], err = r.set(fmt.Sprintf("slot %d transmitters", i), f.N); err != nil {
			return nil, err
		}
		if rs[i], err = r.set(fmt.Sprintf("slot %d receivers", i), f.N); err != nil {
			return nil, err
		}
	}
	sched, err := core.New(f.N, t, rs)
	if err != nil {
		return nil, fmt.Errorf("wire: decoded schedule invalid: %w", err)
	}
	f.Schedule = sched

	num, err := r.ratPart("throughput numerator")
	if err != nil {
		return nil, err
	}
	den, err := r.ratPart("throughput denominator")
	if err != nil {
		return nil, err
	}
	if den.Sign() == 0 {
		return nil, fmt.Errorf("wire: zero throughput denominator")
	}
	f.AvgThroughput = new(big.Rat).SetFrac(num, den)
	// SetFrac reduces; an unreduced fraction on the wire would decode
	// fine but re-encode differently, so it is non-canonical input.
	if f.AvgThroughput.Num().Cmp(num) != 0 || f.AvgThroughput.Denom().Cmp(den) != 0 {
		return nil, fmt.Errorf("wire: unreduced throughput %s/%s (non-canonical)", num, den)
	}
	afBits, err := r.bytes("active fraction", 8)
	if err != nil {
		return nil, err
	}
	f.ActiveFraction = math.Float64frombits(binary.LittleEndian.Uint64(afBits))
	if f.ActiveFraction < 0 || f.ActiveFraction > 1 || math.IsNaN(f.ActiveFraction) {
		return nil, fmt.Errorf("wire: active fraction %v outside [0, 1]", f.ActiveFraction)
	}
	if r.off != crcStart {
		return nil, fmt.Errorf("wire: %d trailing payload bytes", crcStart-r.off)
	}
	// The canonical-form check: a frame that decodes must re-encode to
	// the exact bytes it came from, or its digest would not be a stable
	// identity. Cheap relative to the schedule construction above.
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// set reads a delta-varint element list whose members must lie in [0, n).
func (r *reader) set(what string, n int) ([]int, error) {
	count, err := r.intIn(what+" count", n)
	if err != nil {
		return nil, err
	}
	// Each element costs at least one encoded byte; a count beyond the
	// remaining bytes is structurally impossible, so reject it before
	// allocating.
	if count > r.remaining() {
		return nil, fmt.Errorf("wire: %s count %d exceeds %d remaining bytes", what, count, r.remaining())
	}
	elems := make([]int, count)
	prev := -1
	for i := range elems {
		gap, err := r.uvarint(what)
		if err != nil {
			return nil, err
		}
		e := uint64(prev) + 1 + gap
		if i == 0 {
			e = gap
		}
		if e >= uint64(n) {
			return nil, fmt.Errorf("wire: %s element %d outside [0, %d)", what, e, n)
		}
		elems[i] = int(e)
		prev = int(e)
	}
	return elems, nil
}

// ratPart reads one length-prefixed big-endian magnitude.
func (r *reader) ratPart(what string) (*big.Int, error) {
	n, err := r.intIn(what+" length", maxRatBytes)
	if err != nil {
		return nil, err
	}
	b, err := r.bytes(what, n)
	if err != nil {
		return nil, err
	}
	if n > 0 && b[0] == 0 {
		return nil, fmt.Errorf("wire: %s has a leading zero byte (non-canonical)", what)
	}
	return new(big.Int).SetBytes(b), nil
}

// Digest returns the lowercase-hex SHA-256 of an encoded frame, truncated
// to 128 bits. The encoding is canonical, so this is a stable identity
// for the frame's content across processes and platforms; the serving
// tier uses it as the HTTP ETag.
func Digest(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:16])
}
