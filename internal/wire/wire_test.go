package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/big"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/schedcache"
)

// frameMatrix builds the schedule matrix the simulator differential tests
// use — base and duty-cycled schedules over several classes and both
// division strategies — each wrapped with its exact analysis summary.
func frameMatrix(t testing.TB) []*Frame {
	t.Helper()
	keys := []schedcache.Key{
		{N: 9, D: 2},
		{N: 9, D: 2, AlphaT: 2, AlphaR: 4},
		{N: 16, D: 2, AlphaT: 2, AlphaR: 4, Strategy: core.Balanced},
		{N: 25, D: 2, AlphaT: 3, AlphaR: 5},
		{N: 25, D: 2, AlphaT: 3, AlphaR: 5, Strategy: core.Balanced},
		{N: 25, D: 3, AlphaT: 1, AlphaR: 1},
	}
	frames := make([]*Frame, 0, len(keys))
	for _, k := range keys {
		s, err := schedcache.Build(k)
		if err != nil {
			t.Fatalf("Build(%+v): %v", k, err)
		}
		frames = append(frames, &Frame{
			N: k.N, D: k.D, AlphaT: k.AlphaT, AlphaR: k.AlphaR, Strategy: k.Strategy,
			Schedule:       s,
			AvgThroughput:  core.AvgThroughput(s, k.D),
			ActiveFraction: s.ActiveFraction(),
		})
	}
	return frames
}

func schedulesEqual(a, b *core.Schedule) bool {
	if a.N() != b.N() || a.L() != b.L() {
		return false
	}
	for i := 0; i < a.L(); i++ {
		if !a.T(i).Equal(b.T(i)) || !a.R(i).Equal(b.R(i)) {
			return false
		}
	}
	return true
}

func TestRoundTripMatrix(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range frameMatrix(t) {
		enc, err := Encode(f)
		if err != nil {
			t.Fatalf("Encode(n=%d αT=%d): %v", f.N, f.AlphaT, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(n=%d αT=%d): %v", f.N, f.AlphaT, err)
		}
		if got.N != f.N || got.D != f.D || got.AlphaT != f.AlphaT ||
			got.AlphaR != f.AlphaR || got.Strategy != f.Strategy {
			t.Fatalf("class echo changed: %+v vs %+v", got, f)
		}
		if !schedulesEqual(got.Schedule, f.Schedule) {
			t.Fatalf("n=%d αT=%d: decoded schedule differs", f.N, f.AlphaT)
		}
		if got.AvgThroughput.Cmp(f.AvgThroughput) != 0 {
			t.Fatalf("throughput %s vs %s", got.AvgThroughput, f.AvgThroughput)
		}
		if got.ActiveFraction != f.ActiveFraction {
			t.Fatalf("active fraction %v vs %v", got.ActiveFraction, f.ActiveFraction)
		}
		// Canonical form: the round trip must re-encode byte-identically,
		// and the digest must be stable and unique per frame.
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("n=%d αT=%d: re-encode is not byte-identical", f.N, f.AlphaT)
		}
		d := Digest(enc)
		if len(d) != 32 || strings.ToLower(d) != d {
			t.Fatalf("digest %q is not 32 lowercase hex chars", d)
		}
		if d != Digest(re) {
			t.Fatal("digest unstable across identical encodings")
		}
		if seen[d] {
			t.Fatalf("digest collision across distinct frames: %s", d)
		}
		seen[d] = true
	}
}

// TestWireSmallerThanJSON pins the point of the format: the binary frame
// must be substantially smaller than the JSON schedule document alone
// (which does not even carry the analysis summary).
func TestWireSmallerThanJSON(t *testing.T) {
	for _, f := range frameMatrix(t) {
		enc, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		jsonSize := 0
		for i := 0; i < f.Schedule.L(); i++ {
			// A decimal node list costs ≥ 2 bytes per element plus
			// brackets; this underestimates EncodeSchedule output.
			jsonSize += 4 + 2*(f.Schedule.T(i).Count()+f.Schedule.R(i).Count())
		}
		if len(enc) >= jsonSize {
			t.Errorf("n=%d αT=%d: wire %dB not smaller than JSON floor %dB", f.N, f.AlphaT, len(enc), jsonSize)
		}
	}
}

func validFrameBytes(t testing.TB) []byte {
	t.Helper()
	f := frameMatrix(t)[1] // duty-cycled 9-node schedule: small but non-trivial
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestDecodeRejections(t *testing.T) {
	valid := validFrameBytes(t)

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte("TT")},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", corrupt(func(b []byte) []byte { b[4] = 99; return b })},
		{"flipped payload byte (CRC)", corrupt(func(b []byte) []byte { b[10] ^= 0x40; return b })},
		{"flipped CRC byte", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })},
		{"truncated", valid[:len(valid)-5]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
		{"oversize varint", []byte("TTDW\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02")},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestDecodeRejectsNonCanonical rebuilds hostile payloads through the
// encoder's own framing so only the targeted field is wrong.
func TestDecodeRejectsNonCanonical(t *testing.T) {
	frame := func(payload []byte) []byte {
		out := []byte("TTDW\x01")
		out = append(out, byte(len(payload))) // single-byte uvarint; payloads kept < 128
		out = append(out, payload...)
		return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"zero n", []byte{0}},
		{"n over bound", []byte{0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"zero frame length", []byte{2, 1, 0, 0, 0, 0}},
		{"strategy out of range", []byte{2, 1, 0, 0, 2, 1}},
		{"set count beyond n", []byte{2, 1, 0, 0, 0, 1, 3, 0, 1, 0}},
		{"element outside universe", []byte{2, 1, 0, 0, 0, 1, 1, 5, 0}},
		{"non-minimal varint", []byte{0x82, 0x00, 1, 0, 0, 0, 1}},
		// n=2, D=1, L=1, T={0}, R={1}, then an unreduced 2/4 rational.
		{"unreduced rational", []byte{2, 1, 0, 0, 0, 1, 1, 0, 1, 1, 1, 2, 1, 4,
			0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		if _, err := Decode(frame(tc.payload)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestEncodeRejectsInvalidFrames(t *testing.T) {
	s, err := schedcache.Build(schedcache.Key{N: 9, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok := &Frame{N: 9, D: 2, Schedule: s, AvgThroughput: big.NewRat(1, 3), ActiveFraction: 1}
	if _, err := Encode(ok); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	bad := []*Frame{
		nil,
		{N: 9, D: 2, AvgThroughput: big.NewRat(1, 3)},                                     // no schedule
		{N: 8, D: 2, Schedule: s, AvgThroughput: big.NewRat(1, 3), ActiveFraction: 1},     // n mismatch
		{N: 9, D: 2, Schedule: s, ActiveFraction: 1},                                      // no throughput
		{N: 9, D: 2, Schedule: s, AvgThroughput: big.NewRat(-1, 3), ActiveFraction: 1},    // negative
		{N: 9, D: 2, Schedule: s, AvgThroughput: big.NewRat(1, 3), ActiveFraction: 1.5},   // af > 1
		{N: 9, D: 2, Schedule: s, AvgThroughput: big.NewRat(1, 3), Strategy: 7},           // bad strategy
		{N: 9, D: 2, AlphaT: -1, Schedule: s, AvgThroughput: big.NewRat(1, 3)},            // negative cap
		{N: 9, D: 2, AlphaT: 10, AlphaR: 1, Schedule: s, AvgThroughput: big.NewRat(1, 3)}, // cap > n
	}
	for i, f := range bad {
		if _, err := Encode(f); err == nil {
			t.Errorf("bad frame %d encoded without error", i)
		}
	}
}
