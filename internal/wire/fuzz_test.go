package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire hardens the binary entry point the fleet path trusts:
// arbitrary bytes must never panic or over-allocate, and — the canonical-
// form contract — any input that decodes must re-encode to exactly the
// bytes it came from, so the content digest is a stable identity. The
// checked-in corpus under testdata/fuzz/FuzzDecodeWire holds valid
// frames, truncations, CRC damage, and varint pathologies; f.Add seeds
// below regenerate the interesting shapes from the live encoder so the
// corpus tracks format changes.
func FuzzDecodeWire(f *testing.F) {
	for _, frame := range frameMatrix(f) {
		enc, err := Encode(frame)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)-3]) // truncated inside the CRC
		f.Add(enc[:len(enc)/2]) // truncated mid-payload
		bad := append([]byte(nil), enc...)
		bad[len(bad)/2] ^= 0x20 // CRC mismatch
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("TTDW"))
	f.Add([]byte("TTDW\x01"))
	f.Add([]byte("TTDW\x02\x00"))                                     // unknown version
	f.Add([]byte("TTDW\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02")) // oversized varint length
	f.Add([]byte("TTDW\x01\x02\x82\x00\x00\x00\x00\x00"))             // non-minimal varint
	f.Add([]byte("JSON{\"n\":3}"))                                    // wrong protocol entirely
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(frame)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical input decoded: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		if Digest(re) != Digest(data) {
			t.Fatal("digest mismatch on identical bytes")
		}
	})
}
