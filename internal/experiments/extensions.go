package experiments

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/topology"
)

// runE12 — worst-case hop latency: the abstract's "bounding packet latency
// in the presence of collisions". The analytical bound (largest cyclic gap
// between guaranteed slots, over every link and neighbourhood in the class)
// must dominate the worst wait a saturated simulation ever observes, and be
// at most L-1 for every topology-transparent schedule.
func runE12() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Worst-case hop latency: analytic bound vs saturated simulation",
		"schedule", "n", "D", "L", "analytic bound (slots)", "<= L-1", "sim max gap", "sim <= bound")
	type cse struct {
		name string
		n, d int
		mk   func() (*core.Schedule, error)
	}
	cases := []cse{
		{"tdma10", 10, 2, func() (*core.Schedule, error) { return familySchedule(mustIdentity(10)) }},
		{"poly9", 9, 2, func() (*core.Schedule, error) {
			f, err := cff.PolynomialFor(9, 2)
			if err != nil {
				return nil, err
			}
			return familySchedule(f)
		}},
		{"poly9-constructed(2,3)", 9, 2, func() (*core.Schedule, error) {
			f, err := cff.PolynomialFor(9, 2)
			if err != nil {
				return nil, err
			}
			ns, err := familySchedule(f)
			if err != nil {
				return nil, err
			}
			return core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
		}},
		{"steiner12-constructed(2,4)", 12, 2, func() (*core.Schedule, error) {
			ns, err := familySchedule(mustSteiner(12))
			if err != nil {
				return nil, err
			}
			return core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 4, D: 2})
		}},
	}
	for _, c := range cases {
		s, err := c.mk()
		if err != nil {
			return nil, err
		}
		bound, ok := core.WorstCaseHopLatency(s, c.d)
		if !ok {
			res.fail("%s: no finite latency bound (not TT?)", c.name)
			continue
		}
		withinL := bound <= s.L()-1
		if !withinL {
			res.fail("%s: bound %d exceeds L-1 = %d", c.name, bound, s.L()-1)
		}
		g := topology.Regularish(c.n, c.d)
		sat, err := sim.RunSaturation(g, s, 4, sim.DefaultEnergy())
		if err != nil {
			return nil, err
		}
		within := sat.MaxInterDeliveryGap <= bound
		if !within {
			res.fail("%s: simulated gap %d exceeds analytic bound %d",
				c.name, sat.MaxInterDeliveryGap, bound)
		}
		tab.AddRow(c.name, c.n, c.d, s.L(), bound, withinL, sat.MaxInterDeliveryGap, within)
	}
	res.Table = tab
	if res.Pass {
		res.note("Every topology-transparent schedule bounds the wait for a collision-free slot by its largest guaranteed-slot gap (<= L-1); saturated simulation never waits longer — the latency guarantee the abstract promises.")
	}
	return res, nil
}

// runE13 — ablation of the §7 balanced-energy division: Sequential vs
// Balanced must agree on frame length and average throughput exactly
// (Theorems 7-8 are division-independent), while Balanced equalizes
// per-node activity.
func runE13() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Division-strategy ablation (αT=2, αR=3): invariants vs energy spread",
		"input", "strategy", "L̄", "Thr^ave", "node activity min..max", "spread", "Gini")
	inputs, ds, err := constructionInputs()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"tdma12", "poly25"} {
		ns := inputs[name]
		d := ds[name]
		var lengths [2]int
		var thrs [2]string
		var spreads [2]int
		for si, strat := range []core.DivisionStrategy{core.Sequential, core.Balanced} {
			out, err := core.Construct(ns, core.ConstructOptions{
				AlphaT: 2, AlphaR: 3, D: d, Strategy: strat,
			})
			if err != nil {
				return nil, err
			}
			minAct, maxAct := out.L()*2, 0
			activity := make([]float64, out.N())
			for x := 0; x < out.N(); x++ {
				act := out.Tran(x).Count() + out.Recv(x).Count()
				activity[x] = float64(act)
				if act < minAct {
					minAct = act
				}
				if act > maxAct {
					maxAct = act
				}
			}
			thr := core.AvgThroughput(out, d)
			lengths[si] = out.L()
			thrs[si] = thr.RatString()
			spreads[si] = maxAct - minAct
			tab.AddRow(name, strat.String(), out.L(), thr.RatString(),
				intRange(minAct, maxAct), maxAct-minAct,
				fmt.Sprintf("%.4f", stats.Gini(activity)))
		}
		if lengths[0] != lengths[1] {
			res.fail("%s: frame length differs across strategies (%d vs %d)", name, lengths[0], lengths[1])
		}
		if thrs[0] != thrs[1] {
			res.fail("%s: Thr^ave differs across strategies (%s vs %s)", name, thrs[0], thrs[1])
		}
		if spreads[1] > spreads[0] {
			res.fail("%s: balanced spread %d worse than sequential %d", name, spreads[1], spreads[0])
		}
		// For tdma12 the divisibility conditions of the §7 remark hold
		// (every slot has one transmitter; the 12 receiver-extras spread
		// one per node), so near-exact balance is achievable.
		if name == "tdma12" && spreads[1] > 2 {
			res.fail("%s: balanced spread %d despite divisible input", name, spreads[1])
		}
	}
	res.Table = tab
	if res.Pass {
		res.note("Frame length and average throughput are bit-identical across division strategies (as Theorems 7-8 require). The balanced division never widens the per-node activity spread and achieves near-exact balance whenever the §7 divisibility conditions hold; where subset sizes do not divide the slot populations (poly25: coverage 6/5 and 21/20), a residual spread is unavoidable for any division.")
	}
	return res, nil
}

func intRange(lo, hi int) string {
	return fmt.Sprintf("%d..%d", lo, hi)
}
