package experiments

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/tablewriter"
)

// runE17 — frame-length optimality of the Figure 2 construction: is the
// paper's two-step approach (cover-free family, then Construct) leaving
// frame length on the table? For each instance we compare Construct's
// Theorem 7 frame length against the counting lower bound
// L >= ⌈n·⌈(n-1)/αR⌉/αT⌉ that ANY topology-transparent (αT, αR)-schedule
// must satisfy, and (for αT = 1, where it converges) let the direct
// min-conflicts searcher look for anything shorter.
func runE17() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Frame-length optimality of Construct (TDMA base)",
		"n", "αT", "αR", "counting bound", "Construct L̄", "optimal", "direct search")
	type inst struct {
		n, d, alphaT, alphaR int
		trySearch            bool
	}
	instances := []inst{
		{6, 2, 1, 2, true},
		{6, 2, 1, 3, true},
		{8, 2, 1, 3, true},
		{8, 2, 1, 7, true},
		{10, 2, 2, 4, false}, // αT >= 2: search omitted (see optimize docs)
		{12, 3, 2, 6, false},
	}
	for _, in := range instances {
		fam, err := cff.Identity(in.n)
		if err != nil {
			return nil, err
		}
		ns, err := core.ScheduleFromFamily(fam.L, fam.Sets)
		if err != nil {
			return nil, err
		}
		built, err := core.Construct(ns, core.ConstructOptions{
			AlphaT: in.alphaT, AlphaR: in.alphaR, D: in.d,
		})
		if err != nil {
			return nil, err
		}
		bound := core.MinFrameLowerBound(in.n, in.alphaT, in.alphaR)
		if built.L() < bound {
			res.fail("n=%d (%d,%d): Construct beat the lower bound — bound derivation broken", in.n, in.alphaT, in.alphaR)
		}
		optimal := built.L() == bound
		searchCell := "-"
		if in.trySearch {
			if s, err := optimize.SearchAlpha(optimize.Options{
				N: in.n, D: in.d, AlphaT: in.alphaT, AlphaR: in.alphaR,
				L: built.L(), Seed: 17, MaxIters: 150000,
			}); err == nil {
				searchCell = fmt.Sprintf("found L=%d", s.L())
				if w := core.CheckRequirement3(s, in.d); w != nil {
					res.fail("n=%d (%d,%d): searched schedule not TT: %v", in.n, in.alphaT, in.alphaR, w)
				}
			} else {
				searchCell = "budget exhausted"
			}
		}
		tab.AddRow(in.n, in.alphaT, in.alphaR, bound, built.L(), optimal, searchCell)
	}
	res.Table = tab
	if res.Pass {
		res.note("With a TDMA base, Construct's Theorem 7 frame length meets the counting lower bound exactly on every αT = 1 instance — the paper's two-step construction is frame-length OPTIMAL there, and the direct searcher independently certifies feasibility at that length. For αT >= 2 the bound leaves a gap (Construct splits per input slot), quantifying where smarter constructions could shorten frames.")
	}
	return res, nil
}
