// Package experiments implements the reproduction harness: one experiment
// per paper artifact (Figure 1, Theorems 2-4 and 7-9, Requirements 1-3) plus
// the simulation studies the paper's introduction motivates. Each
// experiment regenerates a table and verifies the paper's claim; the same
// code backs cmd/ttdcsweep, the repository-level benchmarks, and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/tablewriter"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Table holds the regenerated rows.
	Table *tablewriter.Table
	// Notes record the paper-claim-vs-measured comparison in prose.
	Notes []string
	// Pass reports whether every checked claim held.
	Pass bool
}

func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) fail(format string, args ...interface{}) {
	r.Pass = false
	r.note("FAIL: "+format, args...)
}

type runner func() (*Result, error)

var registry = map[string]struct {
	title string
	run   runner
}{
	"E1":  {"Figure 1: sleeping preserves per-topology throughput", runE1},
	"E2":  {"Theorem 2: closed-form average throughput == brute force", runE2},
	"E3":  {"Theorem 3: general upper bound and optimal transmitter count", runE3},
	"E4":  {"Theorem 4: (αT, αR) upper bound and optimal capped count", runE4},
	"E5":  {"Theorem 7: constructed frame length", runE5},
	"E6":  {"Theorem 8: optimality ratio of the construction", runE6},
	"E7":  {"Theorem 9: minimum-throughput lower bound", runE7},
	"E8":  {"Theorem 1: Requirement 2 ⇔ Requirement 3", runE8},
	"E9":  {"Simulation vs analysis on worst-case topologies", runE9},
	"E10": {"Energy/latency/throughput trade-off of duty cycling", runE10},
	"E11": {"Topology transparency under churn; construction comparison", runE11},
	"E12": {"Worst-case hop latency bound vs simulation", runE12},
	"E13": {"Balanced-energy division ablation (§7)", runE13},
	"E14": {"Adaptive duty cycling under bursty load", runE14},
	"E15": {"Robustness: erasures, capture, clock drift", runE15},
	"E16": {"Neighbour discovery: the one-frame corollary", runE16},
	"E17": {"Frame-length optimality of Construct", runE17},
}

// IDs returns all experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E2 < E10 numerically.
		a, b := ids[i], ids[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

// Run executes one experiment by ID.
func Run(id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	res, err := e.run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = e.title
	return res, nil
}

// RunAll executes every experiment in order.
func RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
