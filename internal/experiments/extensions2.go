package experiments

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/topology"
)

// runE14 — adaptive duty cycling under bursty load: switching between a
// low-power and a high-throughput topology-transparent schedule at frame
// boundaries (the natural extension of the paper's static (αT, αR) choice;
// every frame played is still a full TT frame, so the per-frame link
// guarantee survives adaptation).
func runE14() (*Result, error) {
	res := &Result{Pass: true}
	const n, d = 25, 2
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	high, err := familySchedule(fam)
	if err != nil {
		return nil, err
	}
	low, err := core.Construct(high, core.ConstructOptions{AlphaT: 2, AlphaR: 4, D: d})
	if err != nil {
		return nil, err
	}
	g := topology.RandomBoundedDegree(n, d, 3, stats.NewRNG(14))
	// Bursty load: long quiet stretches punctuated by heavy bursts.
	phases := []sim.TrafficPhase{
		{Slots: 6000, Rate: 0.0001},
		{Slots: 1500, Rate: 0.01},
	}
	const slots = 45000
	type variant struct {
		name  string
		proto sim.Protocol
	}
	mkAdaptive := func() sim.Protocol {
		p, err := sim.NewAdaptive(low, high, 0.04, 0.005)
		if err != nil {
			panic(err)
		}
		return p
	}
	variants := []variant{
		{"static high (non-sleeping)", sim.ScheduleProtocol{S: high}},
		{"static low (2,4)", sim.ScheduleProtocol{S: low}},
		{"adaptive", mkAdaptive()},
	}
	tab := tablewriter.New("Adaptive duty cycling under bursty load (quiet 6000 slots / burst 1500 slots)",
		"protocol", "delivered", "delivery ratio", "p95 latency", "energy (J)", "J/delivered", "switches")
	type outcome struct {
		name     string
		res      *sim.ConvergecastResult
		switches int
	}
	var outs []outcome
	for _, v := range variants {
		frames := slots / v.proto.FrameLen()
		cc, err := sim.RunConvergecastProtocol(g, v.proto, sim.ConvergecastConfig{
			Sink: 0, Frames: frames, Seed: 5, Phases: phases,
		})
		if err != nil {
			return nil, err
		}
		switches := 0
		if ap, ok := v.proto.(*sim.AdaptiveProtocol); ok {
			switches = ap.Switches()
		}
		outs = append(outs, outcome{v.name, cc, switches})
		tab.AddRow(v.name, cc.Delivered, fmt.Sprintf("%.3f", cc.DeliveryRatio),
			cc.Latency.Percentile(95), fmt.Sprintf("%.3f", cc.TotalEnergy),
			fmt.Sprintf("%.4f", cc.EnergyPerDelivered), switches)
	}
	res.Table = tab
	highOut, lowOut, adOut := outs[0], outs[1], outs[2]
	if adOut.switches == 0 {
		res.fail("adaptive protocol never switched under bursty load")
	}
	if adOut.res.EnergyPerDelivered >= highOut.res.EnergyPerDelivered {
		res.fail("adaptive J/delivered %.4f not below always-on %.4f",
			adOut.res.EnergyPerDelivered, highOut.res.EnergyPerDelivered)
	}
	if adOut.res.DeliveryRatio <= lowOut.res.DeliveryRatio {
		res.fail("adaptive delivery %.3f not above static low %.3f",
			adOut.res.DeliveryRatio, lowOut.res.DeliveryRatio)
	}
	if res.Pass {
		res.note("Adaptive switching (%d transitions) delivers more than the static low-power schedule while spending less energy per delivered packet than the always-on schedule — and every frame played is still a full TT frame, so no link ever loses its guarantee.", adOut.switches)
	}
	return res, nil
}

// runE15 — robustness beyond the paper's model: the paper restricts
// failures to collisions (§3) and assumes synchronization (§1). This
// experiment measures how the guarantees degrade under erasures, capture,
// and clock drift, and confirms the RequiredResyncInterval threshold.
func runE15() (*Result, error) {
	res := &Result{Pass: true}
	const n, d = 16, 3
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	ns, err := familySchedule(fam)
	if err != nil {
		return nil, err
	}
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 3, AlphaR: 6, D: d})
	if err != nil {
		return nil, err
	}
	g := topology.Regularish(n, d)
	tab := tablewriter.New("Robustness beyond the collision-only model (duty-cycled schedule, saturated-ish convergecast)",
		"condition", "delivery ratio", "p50 latency", "collisions", "note")
	base := sim.ConvergecastConfig{Sink: 0, Rate: 0.002, Frames: 40000 / duty.L(), Seed: 15}
	run := func(name string, mod func(*sim.ConvergecastConfig), note string) *sim.ConvergecastResult {
		cfg := base
		mod(&cfg)
		cc, err := sim.RunConvergecast(g, duty, cfg)
		if err != nil {
			panic(err)
		}
		tab.AddRow(name, fmt.Sprintf("%.3f", cc.DeliveryRatio), cc.Latency.Median(),
			cc.Collisions, note)
		return cc
	}
	ideal := run("ideal channel", func(*sim.ConvergecastConfig) {}, "paper's model")
	loss10 := run("10% erasures", func(c *sim.ConvergecastConfig) {
		c.Channel = sim.Channel{LossProb: 0.1}
	}, "retransmissions absorb it")
	loss30 := run("30% erasures", func(c *sim.ConvergecastConfig) {
		c.Channel = sim.Channel{LossProb: 0.3}
	}, "graceful degradation")
	clockGood := run("40ppm drift, resync ok", func(c *sim.ConvergecastConfig) {
		m := sim.ClockModel{MaxDriftPPM: 40, GuardFraction: 0.1, Seed: 2}
		m.ResyncInterval = sim.RequiredResyncInterval(m)
		c.Clock = &m
	}, "within guard band")
	clockBad := run("40ppm drift, no resync", func(c *sim.ConvergecastConfig) {
		c.Clock = &sim.ClockModel{MaxDriftPPM: 40, GuardFraction: 0.1, Seed: 2}
	}, "sync assumption violated")

	if ideal.DeliveryRatio < 0.99 {
		res.fail("ideal-channel delivery %.3f below 0.99", ideal.DeliveryRatio)
	}
	if loss10.DeliveryRatio < 0.95 {
		res.fail("10%% erasures crushed delivery to %.3f", loss10.DeliveryRatio)
	}
	if !(loss30.DeliveryRatio <= loss10.DeliveryRatio && loss10.DeliveryRatio <= ideal.DeliveryRatio) {
		res.fail("delivery not monotone in loss rate")
	}
	if loss10.Latency.Median() <= ideal.Latency.Median() {
		res.fail("erasures should raise median latency")
	}
	if clockGood.DeliveryRatio < 0.99 {
		res.fail("adequately resynced clocks should not hurt delivery (%.3f)", clockGood.DeliveryRatio)
	}
	if clockBad.DeliveryRatio >= clockGood.DeliveryRatio {
		res.fail("unsynchronized clocks should hurt delivery")
	}
	res.Table = tab
	if res.Pass {
		res.note("The per-frame guaranteed slot turns erasures into latency (retransmissions) rather than loss; delivery degrades monotonically and gracefully. The synchronization assumption is load-bearing: resyncing within RequiredResyncInterval keeps the ideal behaviour, never resyncing eventually severs links.")
	}
	return res, nil
}
