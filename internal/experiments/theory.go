package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/bitset"
	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tablewriter"
)

// randomSchedule builds an arbitrary (not necessarily TT) schedule for the
// theorem-identity experiments.
func randomSchedule(rng *stats.RNG, n, l int, pT, pR float64) *core.Schedule {
	t := make([]*bitset.Set, l)
	r := make([]*bitset.Set, l)
	for i := 0; i < l; i++ {
		t[i] = bitset.New(n)
		r[i] = bitset.New(n)
		for x := 0; x < n; x++ {
			if rng.Bool(pT) {
				t[i].Add(x)
			} else if rng.Bool(pR) {
				r[i].Add(x)
			}
		}
	}
	s, err := core.FromSets(n, t, r)
	if err != nil {
		panic(err)
	}
	return s
}

func familySchedule(f *cff.Family) (*core.Schedule, error) {
	return core.ScheduleFromFamily(f.L, f.Sets)
}

// cyclicSchedule builds a non-sleeping schedule with |T[i]| == k in every
// slot (cyclic windows), used to hit the Theorem 3 equality condition.
func cyclicSchedule(n, k, l int) (*core.Schedule, error) {
	t := make([][]int, l)
	for i := range t {
		slot := make([]int, k)
		for j := range slot {
			slot[j] = (i + j) % n
		}
		t[i] = slot
	}
	return core.NonSleeping(n, t)
}

// runE2 — Theorem 2: the closed form equals the Definition 2 brute force.
func runE2() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 2: closed form vs brute force (exact rationals)",
		"seed", "n", "L", "D", "closed-form", "brute-force", "equal")
	rng := stats.NewRNG(20070326)
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		l := 2 + rng.Intn(5)
		d := 1 + rng.Intn(n-1)
		s := randomSchedule(rng, n, l, 0.3, 0.7)
		cf := core.AvgThroughput(s, d)
		bf := core.AvgThroughputBruteForce(s, d)
		eq := cf.Cmp(bf) == 0
		tab.AddRow(trial, n, l, d, cf.RatString(), bf.RatString(), eq)
		if !eq {
			res.fail("trial %d: closed form %s != brute force %s", trial, cf, bf)
		}
	}
	res.Table = tab
	if res.Pass {
		res.note("All 12 random schedules: Theorem 2 closed form exactly equals Definition 2.")
	}
	return res, nil
}

// runE3 — Theorem 3: general upper bound, optimum, and equality condition.
func runE3() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 3: Thr★ and the loose bound nD^D/((n-D)(D+1)^(D+1))",
		"n", "D", "αT★", "Thr★", "loose bound", "equality sched Thr", "attains")
	one := big.NewRat(1, 1)
	_ = one
	for _, nd := range [][2]int{{6, 2}, {9, 2}, {12, 2}, {12, 3}, {16, 3}, {20, 4}, {25, 2}, {30, 5}} {
		n, d := nd[0], nd[1]
		a := core.OptimalTransmitters(n, d)
		star := core.GeneralThroughputBound(n, d)
		loose := core.LooseGeneralBound(n, d)
		if star.Cmp(loose) > 0 {
			res.fail("n=%d D=%d: Thr★ %s above the loose bound %s", n, d, star, loose)
		}
		eq, err := cyclicSchedule(n, a, n)
		if err != nil {
			return nil, err
		}
		thr := core.AvgThroughput(eq, d)
		attains := thr.Cmp(star) == 0
		if !attains {
			res.fail("n=%d D=%d: equality schedule got %s, want %s", n, d, thr, star)
		}
		tab.AddRow(n, d, a, star.RatString(), fmt.Sprintf("%.6f", ratF(loose)), thr.RatString(), attains)
	}
	res.Table = tab
	if res.Pass {
		res.note("Every (n, D): Thr★ <= loose bound, and a non-sleeping schedule with |T[i]| = αT★ attains Thr★ exactly.")
	}
	return res, nil
}

// runE4 — Theorem 4: (αT, αR) bound, capped optimum, equality condition.
func runE4() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 4: Thr★(αT,αR) over caps (n=12, D=2)",
		"αT", "αR", "αT★", "Thr★(αT,αR)", "equality sched Thr", "attains", "loose bound")
	const n, d = 12, 2
	for _, caps := range [][2]int{{1, 4}, {2, 4}, {3, 4}, {5, 4}, {8, 4}, {3, 2}, {3, 6}, {3, 9}} {
		alphaT, alphaR := caps[0], caps[1]
		aStar := core.OptimalTransmittersCapped(n, d, alphaT)
		bound := core.CappedThroughputBound(n, d, alphaT, alphaR)
		loose := core.LooseCappedBound(n, d, alphaR)
		if bound.Cmp(loose) > 0 {
			res.fail("αT=%d αR=%d: bound above loose bound", alphaT, alphaR)
		}
		// Equality schedule: exactly aStar transmitters, exactly alphaR
		// receivers per slot.
		var tS, rS [][]int
		for i := 0; i < n; i++ {
			ts := make([]int, aStar)
			for j := range ts {
				ts[j] = (i + j) % n
			}
			rs := make([]int, alphaR)
			for j := range rs {
				rs[j] = (i + aStar + j) % n
			}
			tS = append(tS, ts)
			rS = append(rS, rs)
		}
		s, err := core.New(n, tS, rS)
		if err != nil {
			return nil, err
		}
		thr := core.AvgThroughput(s, d)
		attains := thr.Cmp(bound) == 0
		if !attains {
			res.fail("αT=%d αR=%d: equality schedule %s != bound %s", alphaT, alphaR, thr, bound)
		}
		tab.AddRow(alphaT, alphaR, aStar, bound.RatString(), thr.RatString(), attains,
			fmt.Sprintf("%.6f", ratF(loose)))
	}
	res.Table = tab
	if res.Pass {
		res.note("Every cap pair: the bound is attained exactly by |T[i]| = αT★, |R[i]| = αR schedules and never exceeds the closed-form relaxation.")
	}
	return res, nil
}

// constructionInputs returns named TT non-sleeping inputs for E5-E7.
func constructionInputs() (map[string]*core.Schedule, map[string]int, error) {
	inputs := map[string]*core.Schedule{}
	ds := map[string]int{}
	idFam, err := cff.Identity(12)
	if err != nil {
		return nil, nil, err
	}
	if inputs["tdma12"], err = familySchedule(idFam); err != nil {
		return nil, nil, err
	}
	ds["tdma12"] = 3
	polyFam, err := cff.PolynomialFor(25, 2)
	if err != nil {
		return nil, nil, err
	}
	if inputs["poly25"], err = familySchedule(polyFam); err != nil {
		return nil, nil, err
	}
	ds["poly25"] = 2
	stFam, err := cff.Steiner(13)
	if err != nil {
		return nil, nil, err
	}
	if inputs["steiner13"], err = familySchedule(stFam); err != nil {
		return nil, nil, err
	}
	ds["steiner13"] = 2
	return inputs, ds, nil
}

// runE5 — Theorem 7: constructed frame length equals the formula and
// respects the cap.
func runE5() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 7: frame length of Construct output",
		"input", "n", "L", "αT", "αR", "αT★", "L̄ measured", "L̄ formula", "cap", "ok")
	inputs, ds, err := constructionInputs()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"tdma12", "poly25", "steiner13"} {
		ns := inputs[name]
		d := ds[name]
		for _, caps := range [][2]int{{2, 3}, {3, 5}} {
			alphaT, alphaR := caps[0], caps[1]
			aStar := core.OptimalTransmittersCapped(ns.N(), d, alphaT)
			out, err := core.Construct(ns, core.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
			if err != nil {
				return nil, err
			}
			formula := core.ConstructedFrameLength(ns, aStar, alphaR)
			cap := core.FrameLengthCap(ns, aStar, alphaR)
			ok := out.L() == formula && out.L() <= cap
			if !ok {
				res.fail("%s αT=%d αR=%d: L̄=%d formula=%d cap=%d", name, alphaT, alphaR, out.L(), formula, cap)
			}
			tab.AddRow(name, ns.N(), ns.L(), alphaT, alphaR, aStar, out.L(), formula, cap, ok)
		}
	}
	res.Table = tab
	if res.Pass {
		res.note("Measured frame lengths equal Σ⌈|T[i]|/αT★⌉⌈(n-|T[i]|)/αR⌉ and never exceed the closed-form cap.")
	}
	return res, nil
}

// runE6 — Theorem 8: measured optimality ratio vs the lower bound; equality
// when M_in >= αT★.
func runE6() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 8: Thr^ave/Thr★ of Construct output vs lower bound",
		"input", "αT", "αR", "αT★", "M_in", "ratio", "T8 bound", "ratio>=bound", "optimal")
	inputs, ds, err := constructionInputs()
	if err != nil {
		return nil, err
	}
	one := big.NewRat(1, 1)
	for _, name := range []string{"tdma12", "poly25", "steiner13"} {
		ns := inputs[name]
		d := ds[name]
		for _, caps := range [][2]int{{1, 3}, {2, 3}, {3, 5}, {4, 6}} {
			alphaT, alphaR := caps[0], caps[1]
			if alphaT+alphaR > ns.N() {
				continue
			}
			aStar := core.OptimalTransmittersCapped(ns.N(), d, alphaT)
			out, err := core.Construct(ns, core.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
			if err != nil {
				return nil, err
			}
			ratio := core.OptimalityRatio(out, d, alphaT, alphaR)
			bound := core.Theorem8LowerBound(ns, d, alphaT, alphaR)
			min := ns.MinTransmitters()
			holds := ratio.Cmp(bound) >= 0 && ratio.Cmp(one) <= 0
			optimal := ratio.Cmp(one) == 0
			if !holds {
				res.fail("%s αT=%d αR=%d: ratio %s vs bound %s", name, alphaT, alphaR, ratio, bound)
			}
			if min >= aStar && !optimal {
				res.fail("%s αT=%d αR=%d: M_in >= αT★ but ratio %s != 1", name, alphaT, alphaR, ratio)
			}
			tab.AddRow(name, alphaT, alphaR, aStar, min,
				fmt.Sprintf("%.6f", ratF(ratio)), fmt.Sprintf("%.6f", ratF(bound)), holds, optimal)
		}
	}
	res.Table = tab
	if res.Pass {
		res.note("The measured ratio always lies in [Theorem-8 bound, 1], and equals 1 exactly when min_i |T[i]| >= αT★ (the paper's optimality condition).")
	}
	return res, nil
}

// runE7 — Theorem 9: minimum throughput of the construction.
func runE7() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 9: Thr^min of Construct output vs (L/L̄)·Thr^min(input)",
		"input", "αT", "αR", "Thr^min input", "Thr^min output", "T9 bound", "holds")
	inputs, ds, err := constructionInputs()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"tdma12", "poly25", "steiner13"} {
		ns := inputs[name]
		d := ds[name]
		alphaT, alphaR := 2, 3
		out, err := core.Construct(ns, core.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
		if err != nil {
			return nil, err
		}
		inMin := core.MinThroughput(ns, d)
		outMin := core.MinThroughput(out, d)
		bound := core.Theorem9Bound(ns, d, alphaT, alphaR)
		holds := outMin.Cmp(bound) >= 0 && outMin.Sign() > 0
		if !holds {
			res.fail("%s: Thr^min %s vs bound %s", name, outMin, bound)
		}
		tab.AddRow(name, alphaT, alphaR, inMin.RatString(), outMin.RatString(),
			fmt.Sprintf("%.6f", ratF(bound)), holds)
	}
	res.Table = tab
	if res.Pass {
		res.note("Constructed schedules keep strictly positive minimum throughput, always at or above (L/L̄)·Thr^min of the input.")
	}
	return res, nil
}

// runE8 — Theorem 1: Requirements 2 and 3 agree on every random schedule.
func runE8() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Theorem 1: Requirement 2 ⇔ Requirement 3 (random schedules)",
		"batch", "schedules", "TT by Req2", "TT by Req3", "disagreements")
	rng := stats.NewRNG(71)
	for batch := 0; batch < 5; batch++ {
		tt2, tt3, dis := 0, 0, 0
		const per = 60
		for i := 0; i < per; i++ {
			n := 3 + rng.Intn(4)
			l := 2 + rng.Intn(5)
			d := 1 + rng.Intn(n-1)
			s := randomSchedule(rng, n, l, 0.25+0.4*rng.Float64(), 0.4+0.5*rng.Float64())
			a := core.CheckRequirement2(s, d) == nil
			b := core.CheckRequirement3(s, d) == nil
			if a {
				tt2++
			}
			if b {
				tt3++
			}
			if a != b {
				dis++
			}
		}
		if dis != 0 {
			res.fail("batch %d: %d disagreements", batch, dis)
		}
		tab.AddRow(batch, per, tt2, tt3, dis)
	}
	res.Table = tab
	if res.Pass {
		res.note("300 random schedules: the two formulations of topology transparency never disagree.")
	}
	return res, nil
}

func ratF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
