package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/topology"
)

// runE1 — Figure 1: on a specific topology, scheduling nodes to sleep can
// preserve the delivered throughput of the non-sleeping schedule. The
// paper's figure is a worked instance of this phenomenon; we reconstruct it
// behaviourally: TDMA over a ring, with each receiver awake only in its
// neighbours' slots, delivers exactly as much per frame as full TDMA while
// sleeping most radios.
func runE1() (*Result, error) {
	res := &Result{Pass: true}
	const n = 6
	full, err := familySchedule(mustIdentity(n))
	if err != nil {
		return nil, err
	}
	ring := topology.Ring(n)
	// Sleeping variant: node v listens only in the slots of its actual ring
	// neighbours.
	tSets := make([][]int, n)
	rSets := make([][]int, n)
	for i := 0; i < n; i++ {
		tSets[i] = []int{i}
		rSets[i] = append([]int(nil), ring.Neighbors(i)...)
	}
	// rSets above is per-slot: slot i is node i's transmission slot, so its
	// receivers are i's neighbours.
	sleepy, err := core.New(n, tSets, rSets)
	if err != nil {
		return nil, err
	}
	em := sim.DefaultEnergy()
	fullRes, err := sim.RunSaturation(ring, full, 4, em)
	if err != nil {
		return nil, err
	}
	sleepRes, err := sim.RunSaturation(ring, sleepy, 4, em)
	if err != nil {
		return nil, err
	}
	tab := tablewriter.New("Figure 1: non-sleeping vs sleeping schedule on the ring topology",
		"schedule", "active fraction", "min link/frame", "avg link/frame", "energy (J)", "J per delivery")
	tab.AddRow("non-sleeping ⟨T⟩", fullRes.ActiveFraction, fullRes.MinLinkPerFrame,
		fullRes.AvgLinkPerFrame, fullRes.TotalEnergy, fullRes.EnergyPerDelivery)
	tab.AddRow("sleeping ⟨T,R⟩", sleepRes.ActiveFraction, sleepRes.MinLinkPerFrame,
		sleepRes.AvgLinkPerFrame, sleepRes.TotalEnergy, sleepRes.EnergyPerDelivery)
	res.Table = tab
	if sleepRes.MinLinkPerFrame != fullRes.MinLinkPerFrame ||
		sleepRes.AvgLinkPerFrame != fullRes.AvgLinkPerFrame {
		res.fail("per-topology throughput changed when nodes slept")
	}
	if sleepRes.ActiveFraction >= fullRes.ActiveFraction {
		res.fail("sleeping schedule did not reduce the active fraction")
	}
	if sleepRes.TotalEnergy >= fullRes.TotalEnergy {
		res.fail("sleeping schedule did not save energy")
	}
	if res.Pass {
		res.note("On the fixed ring, the sleeping schedule delivers the same packets per frame with %.0f%% of nodes awake instead of 100%%, cutting energy %.1fx — the paper's Figure 1 phenomenon.",
			100*sleepRes.ActiveFraction, fullRes.TotalEnergy/sleepRes.TotalEnergy)
	}
	return res, nil
}

func mustIdentity(n int) *cff.Family {
	f, err := cff.Identity(n)
	if err != nil {
		panic(err)
	}
	return f
}

// runE9 — simulation vs analysis: the saturation simulator must observe
// exactly the analytical guaranteed per-link counts, and its minimum link
// throughput must dominate Thr^min.
func runE9() (*Result, error) {
	res := &Result{Pass: true}
	tab := tablewriter.New("Simulation vs analysis (saturation, worst-case D-regular topologies)",
		"schedule", "n", "D", "L", "analytic Thr^min", "sim min thr", "sim avg thr", "exact link match")
	type cse struct {
		name string
		n, d int
		mk   func() (*core.Schedule, error)
	}
	cases := []cse{
		{"tdma", 10, 2, func() (*core.Schedule, error) { return familySchedule(mustIdentity(10)) }},
		{"poly", 9, 2, func() (*core.Schedule, error) {
			f, err := cff.PolynomialFor(9, 2)
			if err != nil {
				return nil, err
			}
			return familySchedule(f)
		}},
		{"poly-constructed", 9, 2, func() (*core.Schedule, error) {
			f, err := cff.PolynomialFor(9, 2)
			if err != nil {
				return nil, err
			}
			ns, err := familySchedule(f)
			if err != nil {
				return nil, err
			}
			return core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 3, D: 2})
		}},
		{"steiner-constructed", 12, 2, func() (*core.Schedule, error) {
			ns, err := familySchedule(mustSteiner(12))
			if err != nil {
				return nil, err
			}
			return core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 4, D: 2})
		}},
	}
	for _, c := range cases {
		s, err := c.mk()
		if err != nil {
			return nil, err
		}
		g := topology.Regularish(c.n, c.d)
		sat, err := sim.RunSaturation(g, s, 3, sim.DefaultEnergy())
		if err != nil {
			return nil, err
		}
		want := sim.GuaranteedPerLink(g, s)
		exact := true
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if sat.Delivered[u][v] != want[u][v]*sat.Frames {
					exact = false
				}
			}
		}
		minThr := ratF(core.MinThroughput(s, c.d))
		if !exact {
			res.fail("%s: simulated per-link counts diverge from the analytical 𝒯 sets", c.name)
		}
		if sat.MinLinkThroughput < minThr-1e-12 {
			res.fail("%s: simulated min %v below analytical Thr^min %v", c.name, sat.MinLinkThroughput, minThr)
		}
		tab.AddRow(c.name, c.n, c.d, s.L(), fmt.Sprintf("%.6f", minThr),
			sat.MinLinkThroughput, sat.AvgLinkThroughput, exact)
	}
	res.Table = tab
	if res.Pass {
		res.note("Under saturation the simulator reproduces the analytical guaranteed slot counts link-for-link, and every per-link rate dominates Thr^min (which minimizes over all class topologies).")
	}
	return res, nil
}

func mustSteiner(n int) *cff.Family {
	f, err := cff.Steiner(n)
	if err != nil {
		panic(err)
	}
	return f
}

// runE10 — the energy/latency/throughput trade-off duty cycling buys,
// swept over (αT, αR).
func runE10() (*Result, error) {
	res := &Result{Pass: true}
	const n, d = 25, 2
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	ns, err := familySchedule(fam)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(2007)
	g := topology.RandomBoundedDegree(n, d, 3, rng)
	tab := tablewriter.New("Energy/latency/throughput trade-off (n=25, D=2, polynomial base, Poisson convergecast)",
		"schedule", "αT", "αR", "L", "active frac", "Thr^ave", "Thr^min",
		"delivery ratio", "p50 latency (slots)", "mJ/delivered")
	type row struct {
		name           string
		alphaT, alphaR int
		s              *core.Schedule
	}
	rows := []row{{name: "non-sleeping", s: ns, alphaT: ns.MaxTransmitters(), alphaR: n}}
	for _, caps := range [][2]int{{5, 20}, {5, 10}, {3, 6}, {2, 4}, {1, 2}} {
		out, err := core.Construct(ns, core.ConstructOptions{AlphaT: caps[0], AlphaR: caps[1], D: d})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{
			name:   fmt.Sprintf("construct(%d,%d)", caps[0], caps[1]),
			alphaT: caps[0], alphaR: caps[1], s: out,
		})
	}
	const slotsBudget = 40000
	var prevActive float64 = 2
	for _, r := range rows {
		frames := slotsBudget / r.s.L()
		if frames < 2 {
			frames = 2
		}
		cc, err := sim.RunConvergecast(g, r.s, sim.ConvergecastConfig{
			Sink: 0, Rate: 0.001, Frames: frames, WarmupFrames: frames / 10, Seed: 99,
		})
		if err != nil {
			return nil, err
		}
		active := r.s.ActiveFraction()
		tab.AddRow(r.name, r.alphaT, r.alphaR, r.s.L(),
			fmt.Sprintf("%.3f", active),
			fmt.Sprintf("%.6f", ratF(core.AvgThroughput(r.s, d))),
			fmt.Sprintf("%.6f", ratF(core.MinThroughput(r.s, d))),
			fmt.Sprintf("%.3f", cc.DeliveryRatio),
			cc.Latency.Median(),
			fmt.Sprintf("%.3f", 1000*cc.EnergyPerDelivered))
		if active > prevActive+1e-9 {
			res.fail("active fraction did not fall monotonically down the sweep (%s)", r.name)
		}
		prevActive = active
		if cc.Generated > 0 && cc.Delivered == 0 {
			res.fail("%s delivered nothing", r.name)
		}
	}
	res.Table = tab
	if res.Pass {
		res.note("Tighter (αT, αR) caps monotonically cut the awake fraction (energy) while frames lengthen and latency grows — the trade-off the paper's αT/αR knobs express. All configurations keep delivering (topology transparency).")
	}
	return res, nil
}

// runE11 — topology transparency under churn, against the
// topology-dependent coloring baseline; plus the frame-length comparison of
// the three cover-free constructions.
func runE11() (*Result, error) {
	res := &Result{Pass: true}
	const n, d = 20, 3
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	ns, err := familySchedule(fam)
	if err != nil {
		return nil, err
	}
	tt, err := core.Construct(ns, core.ConstructOptions{AlphaT: 3, AlphaR: 6, D: d})
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(1234)
	dep := topology.RandomGeometric(n, 0.35, rng)
	dep.Graph.EnforceMaxDegree(d, rng)
	coloring, err := baseline.ColoringTDMA(dep.Graph)
	if err != nil {
		return nil, err
	}
	tab := tablewriter.New("Topology churn: TT duty cycling vs topology-dependent coloring TDMA (n=20, D=3)",
		"step", "edges", "TT starved links", "coloring starved links")
	ttStarvedTotal, colStarvedTotal := 0, 0
	for step := 0; step <= 6; step++ {
		g := dep.Graph.Clone()
		g.EnforceMaxDegree(d, rng)
		ttRes, err := sim.RunSaturation(g, tt, 1, sim.DefaultEnergy())
		if err != nil {
			return nil, err
		}
		colRes, err := sim.RunSaturation(g, coloring, 1, sim.DefaultEnergy())
		if err != nil {
			return nil, err
		}
		ttStarved := countStarved(g, ttRes)
		colStarved := countStarved(g, colRes)
		ttStarvedTotal += ttStarved
		colStarvedTotal += colStarved
		tab.AddRow(step, g.EdgeCount(), ttStarved, colStarved)
		dep.Step(0.12, rng)
	}
	res.Table = tab
	if ttStarvedTotal != 0 {
		res.fail("topology-transparent schedule starved %d links across churn", ttStarvedTotal)
	}
	if colStarvedTotal == 0 {
		res.fail("coloring TDMA never starved a link under churn — the baseline contrast did not materialize")
	}
	if res.Pass {
		res.note("Across 7 churn steps the TT schedule starved 0 links while the coloring baseline starved %d — exactly the guarantee topology transparency buys (and what the topology-dependent scheme loses when nodes move).", colStarvedTotal)
	}

	// Second table: construction comparison.
	tab2 := tablewriter.New("Cover-free constructions (D=2): frame length vs node capacity",
		"n", "TDMA L", "polynomial L", "steiner L", "projective L")
	for _, n2 := range []int{7, 12, 25, 60, 100} {
		pf, err := cff.PolynomialFor(n2, 2)
		if err != nil {
			return nil, err
		}
		sf, err := cff.Steiner(n2)
		if err != nil {
			return nil, err
		}
		gf2, err := cff.ProjectiveFor(n2, 2)
		if err != nil {
			return nil, err
		}
		tab2.AddRow(n2, n2, pf.L, sf.L, gf2.L)
	}
	res.Notes = append(res.Notes, "Construction comparison (second table printed by cmd/ttdcsweep -exp E11):")
	var b strings.Builder
	if err := tab2.WriteText(&b); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, b.String())
	return res, nil
}

func countStarved(g *topology.Graph, r *sim.SaturationResult) int {
	starved := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if r.Delivered[u][v] == 0 {
				starved++
			}
		}
	}
	return starved
}
