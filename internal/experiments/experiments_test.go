package experiments

import (
	"strings"
	"testing"
)

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 17 {
		t.Fatalf("got %d experiments, want 17: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[1] != "E2" || ids[9] != "E10" || ids[16] != "E17" {
		t.Fatalf("bad ordering: %v", ids)
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestAllExperimentsPass is the repository's master reproduction check:
// every experiment must regenerate its table and verify its paper claim.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Fatal("experiment produced no table rows")
			}
			if !res.Pass {
				t.Fatalf("claims failed:\n%s", strings.Join(res.Notes, "\n"))
			}
			var b strings.Builder
			if err := res.Table.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatal("empty table rendering")
			}
			t.Logf("%s: %s\n%s%s", res.ID, res.Title, b.String(), strings.Join(res.Notes, "\n"))
		})
	}
}
