package experiments

import (
	"fmt"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablewriter"
	"repro/internal/topology"
)

// runE16 — neighbour discovery: the one-frame corollary. Topology
// transparency guarantees each node a collision-free slot toward every
// neighbour once per frame even when ALL nodes transmit — which is exactly
// the neighbour-discovery workload (everyone beaconing). So a TT schedule
// completes full bidirectional discovery within the first frame on every
// topology of the class, across deployment shapes; contention beaconing
// enjoys no bound.
func runE16() (*Result, error) {
	res := &Result{Pass: true}
	const n, d = 16, 3
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		return nil, err
	}
	ns, err := familySchedule(fam)
	if err != nil {
		return nil, err
	}
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 3, AlphaR: 6, D: d})
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(16)
	shapes := []struct {
		name string
		g    *topology.Graph
	}{
		{"regular(16,3)", topology.Regularish(16, 3)},
		{"corridor(2x8)", trim(topology.Corridor(2, 8), d, rng)},
		{"scale-free", trim(topology.ScaleFreeBounded(16, 1, d, rng), d, rng)},
		{"communities", trim(topology.TwoCommunities(8, 8, 2, d, rng), d, rng)},
	}
	tab := tablewriter.New("Neighbour discovery (all nodes beaconing): slots to discover every directed link",
		"topology", "links", "TT non-sleeping (L=?)", "TT duty (L=?)", "ALOHA p=0.3 (same slots)")
	for _, sh := range shapes {
		if sh.g.MaxDegree() > d {
			return nil, fmt.Errorf("E16: %s degree %d exceeds class", sh.name, sh.g.MaxDegree())
		}
		nsRes, err := sim.RunDiscovery(sh.g, sim.ScheduleProtocol{S: ns}, 1, sim.DefaultEnergy(), 1)
		if err != nil {
			return nil, err
		}
		dutyRes, err := sim.RunDiscovery(sh.g, sim.ScheduleProtocol{S: duty}, 1, sim.DefaultEnergy(), 1)
		if err != nil {
			return nil, err
		}
		budget := duty.L() // give ALOHA the same slot budget as the duty frame
		alRes, err := sim.RunDiscovery(sh.g, sim.NewAloha(0.3, 7), budget, sim.DefaultEnergy(), 7)
		if err != nil {
			return nil, err
		}
		if nsRes.DiscoveredLinks != nsRes.TotalLinks {
			res.fail("%s: non-sleeping schedule missed links in frame 1", sh.name)
		}
		if dutyRes.DiscoveredLinks != dutyRes.TotalLinks {
			res.fail("%s: duty-cycled schedule missed links in frame 1", sh.name)
		}
		alCell := "incomplete"
		if alRes.CompleteSlot >= 0 {
			alCell = fmt.Sprintf("slot %d", alRes.CompleteSlot)
		}
		tab.AddRow(sh.name, nsRes.TotalLinks,
			fmt.Sprintf("slot %d of %d", nsRes.CompleteSlot, ns.L()),
			fmt.Sprintf("slot %d of %d", dutyRes.CompleteSlot, duty.L()),
			alCell)
	}
	res.Table = tab
	if res.Pass {
		res.note("Both TT schedules discover every directed link within their first frame on every deployment shape — the guarantee is the saturation worst case itself. ALOHA beaconing, given the same slot budget, carries no such bound (and often fails on hub nodes).")
	}
	return res, nil
}

// trim enforces the class degree bound on generated shapes.
func trim(g *topology.Graph, d int, rng *stats.RNG) *topology.Graph {
	g.EnforceMaxDegree(d, rng)
	return g
}
