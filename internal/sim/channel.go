package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Channel models non-collision packet losses. The paper restricts its
// analysis to collision failures (§3); this extension checks how the
// guarantees degrade under the failures it sets aside. The zero value is
// the paper's ideal channel.
type Channel struct {
	// LossProb is an independent per-(transmission, receiver, slot)
	// Bernoulli erasure probability (fading, interference bursts).
	LossProb float64
	// CaptureProb is the probability that a collision of two or more
	// transmissions still delivers one of them (chosen uniformly) — the
	// capture effect of real receivers. 0 reproduces the paper's model
	// where every collision destroys everything.
	CaptureProb float64
}

func (c Channel) validate() error {
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("sim: LossProb %v out of [0, 1]", c.LossProb)
	}
	if c.CaptureProb < 0 || c.CaptureProb > 1 {
		return fmt.Errorf("sim: CaptureProb %v out of [0, 1]", c.CaptureProb)
	}
	return nil
}

// ideal reports whether the channel is the paper's lossless model.
func (c Channel) ideal() bool { return c == Channel{} }

// resolve decides the outcome of a reception attempt at one receiver given
// the transmitting neighbours. senders must be the transmitting neighbours
// of the receiver this slot; pick receives the winning sender index in
// senders, or -1 when nothing is received. collided reports whether a
// collision occurred (for accounting), regardless of capture.
func (c Channel) resolve(senders []int, rng *stats.RNG) (pick int, collided bool) {
	switch {
	case len(senders) == 0:
		return -1, false
	case len(senders) == 1:
		if c.LossProb > 0 && rng.Bool(c.LossProb) {
			return -1, false
		}
		return 0, false
	default:
		if c.CaptureProb > 0 && rng.Bool(c.CaptureProb) {
			w := rng.Intn(len(senders))
			if c.LossProb > 0 && rng.Bool(c.LossProb) {
				return -1, true
			}
			return w, true
		}
		return -1, true
	}
}

// ClockModel models imperfect slot synchronization: each node's clock
// drifts at a constant rate (uniform in ±MaxDriftPPM), and a
// synchronization protocol re-zeroes all offsets every ResyncInterval
// slots. A transmission is only decodable when sender and receiver slot
// boundaries are misaligned by less than GuardFraction of a slot. The
// paper assumes "an efficient synchronization scheme is available"; this
// substrate quantifies how efficient it has to be.
type ClockModel struct {
	// MaxDriftPPM bounds each node's crystal drift rate (parts per
	// million). Commodity sensor crystals are 20-100 ppm.
	MaxDriftPPM float64
	// GuardFraction is the tolerated misalignment as a fraction of the
	// slot duration (guard time / slot time).
	GuardFraction float64
	// ResyncInterval is the number of slots between global
	// re-synchronizations; 0 means never resync.
	ResyncInterval int
	// Seed draws the per-node drift rates.
	Seed uint64
}

// clockState is the runtime instantiation of a ClockModel.
type clockState struct {
	model ClockModel
	drift []float64 // per-node drift, in slot-fractions per slot
}

// newClockState draws per-node drifts. slotSeconds cancels out: a drift of
// r ppm accumulates r·1e-6 slot-fractions of offset per elapsed slot.
func newClockState(m ClockModel, n int) (*clockState, error) {
	if m.MaxDriftPPM < 0 || m.GuardFraction < 0 || m.ResyncInterval < 0 {
		return nil, fmt.Errorf("sim: invalid clock model %+v", m)
	}
	cs := &clockState{model: m, drift: make([]float64, n)}
	rng := stats.NewRNG(m.Seed)
	for i := range cs.drift {
		cs.drift[i] = (rng.Float64()*2 - 1) * m.MaxDriftPPM * 1e-6
	}
	return cs, nil
}

// offset returns node v's clock offset at the given absolute slot, in
// slot-fractions, relative to the last resync.
func (cs *clockState) offset(v, slot int) float64 {
	since := slot
	if cs.model.ResyncInterval > 0 {
		since = slot % cs.model.ResyncInterval
	}
	return cs.drift[v] * float64(since)
}

// aligned reports whether u and v are synchronized tightly enough in this
// slot for a transmission between them to be decodable.
func (cs *clockState) aligned(u, v, slot int) bool {
	d := cs.offset(u, slot) - cs.offset(v, slot)
	if d < 0 {
		d = -d
	}
	return d <= cs.model.GuardFraction
}

// RequiredResyncInterval returns the largest resync interval (in slots)
// that keeps every node pair within the guard band: two clocks drifting
// apart at up to 2·MaxDriftPPM accumulate GuardFraction of misalignment
// after GuardFraction / (2·MaxDriftPPM·1e-6) slots. Returns 0 when drift
// is zero (no resync ever needed).
func RequiredResyncInterval(m ClockModel) int {
	if m.MaxDriftPPM <= 0 {
		return 0
	}
	return int(m.GuardFraction / (2 * m.MaxDriftPPM * 1e-6))
}
