package sim

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

func TestConvergecastTracer(t *testing.T) {
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	counter := trace.NewCounter()
	ring := trace.NewRing(64)
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 100, Seed: 3,
		Tracer: trace.Multi{counter, ring},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trace counts must be consistent with the result (warmup 0, so the
	// measured window is the whole run).
	if counter.Count(trace.Generate) != res.Generated {
		t.Fatalf("tracer generate %d != result %d", counter.Count(trace.Generate), res.Generated)
	}
	// Deliveries include intermediate hops; sink deliveries are a subset.
	if counter.Count(trace.Deliver) < res.Delivered {
		t.Fatalf("tracer deliveries %d below sink count %d", counter.Count(trace.Deliver), res.Delivered)
	}
	if counter.Count(trace.Collision) != res.Collisions {
		t.Fatalf("tracer collisions %d != result %d", counter.Count(trace.Collision), res.Collisions)
	}
	if counter.Count(trace.Transmit) < counter.Count(trace.Deliver) {
		t.Fatal("more deliveries than transmissions")
	}
	if ring.Total() == 0 || len(ring.Events()) == 0 {
		t.Fatal("ring captured nothing")
	}
	// Per-node energy sums to the total.
	sum := 0.0
	for _, e := range res.EnergyPerNode {
		sum += e
	}
	if diff := sum - res.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-node energy %v != total %v", sum, res.TotalEnergy)
	}
}

func TestChannelValidate(t *testing.T) {
	if err := (Channel{}).validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Channel{
		{LossProb: -0.1}, {LossProb: 1.1}, {CaptureProb: -1}, {CaptureProb: 2},
	} {
		if err := c.validate(); err == nil {
			t.Fatalf("%+v accepted", c)
		}
	}
}

func TestChannelResolveIdeal(t *testing.T) {
	ch := Channel{}
	rng := stats.NewRNG(1)
	if pick, col := ch.resolve(nil, rng); pick != -1 || col {
		t.Fatal("empty senders should yield nothing")
	}
	if pick, col := ch.resolve([]int{5}, rng); pick != 0 || col {
		t.Fatal("single sender should always deliver on the ideal channel")
	}
	if pick, col := ch.resolve([]int{5, 7}, rng); pick != -1 || !col {
		t.Fatal("two senders must collide with no capture")
	}
}

func TestChannelLossRate(t *testing.T) {
	ch := Channel{LossProb: 0.3}
	rng := stats.NewRNG(9)
	lost := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if pick, _ := ch.resolve([]int{1}, rng); pick < 0 {
			lost++
		}
	}
	frac := float64(lost) / trials
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("loss fraction %v, want ~0.3", frac)
	}
}

func TestChannelCapture(t *testing.T) {
	ch := Channel{CaptureProb: 0.5}
	rng := stats.NewRNG(4)
	captured := 0
	winners := map[int]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		pick, col := ch.resolve([]int{3, 8}, rng)
		if !col {
			t.Fatal("multi-sender resolve must report a collision")
		}
		if pick >= 0 {
			captured++
			winners[pick]++
		}
	}
	frac := float64(captured) / trials
	if frac < 0.46 || frac > 0.54 {
		t.Fatalf("capture fraction %v, want ~0.5", frac)
	}
	// Winner roughly uniform.
	if winners[0] == 0 || winners[1] == 0 {
		t.Fatalf("capture winners skewed: %v", winners)
	}
}

func TestConvergecastWithLossStillDelivers(t *testing.T) {
	// Retransmissions overcome erasures: delivery ratio dips but stays
	// well above the per-attempt success rate.
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	clean, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.005, Frames: 800, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.005, Frames: 800, Seed: 3,
		Channel: Channel{LossProb: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.DeliveryRatio < 0.8*clean.DeliveryRatio {
		t.Fatalf("loss crushed delivery: %v vs %v", lossy.DeliveryRatio, clean.DeliveryRatio)
	}
	if lossy.Latency.Mean() <= clean.Latency.Mean() {
		t.Fatalf("erasures should raise mean latency: %v vs %v",
			lossy.Latency.Mean(), clean.Latency.Mean())
	}
}

func TestIdealChannelBitIdentical(t *testing.T) {
	// The zero channel must not consume randomness: results identical to
	// the pre-channel behaviour with the same seed.
	g := topology.Star(6)
	s := tdmaSchedule(t, 6)
	a, err := RunConvergecast(g, s, ConvergecastConfig{Sink: 0, Rate: 0.02, Frames: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.02, Frames: 200, Seed: 5, Channel: Channel{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Generated != b.Generated || a.Collisions != b.Collisions {
		t.Fatal("zero channel changed results")
	}
}

func TestCaptureRecoversCollisions(t *testing.T) {
	// On a collision-heavy ALOHA star, capture strictly improves delivery.
	g := topology.Star(8)
	base := ConvergecastConfig{Sink: 0, Rate: 0.05, Frames: 3000, Seed: 7}
	noCap, err := RunConvergecastProtocol(g, NewAloha(0.4, 1), base)
	if err != nil {
		t.Fatal(err)
	}
	withCap := base
	withCap.Channel = Channel{CaptureProb: 0.8}
	cap, err := RunConvergecastProtocol(g, NewAloha(0.4, 1), withCap)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Delivered <= noCap.Delivered {
		t.Fatalf("capture should increase deliveries: %d vs %d", cap.Delivered, noCap.Delivered)
	}
}

func TestTrafficPhases(t *testing.T) {
	g := topology.Line(3)
	s := tdmaSchedule(t, 3)
	// Bursty pattern: 300 quiet slots, 300 busy slots.
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Frames: 400, Seed: 8,
		Phases: []TrafficPhase{{Slots: 300, Rate: 0}, {Slots: 300, Rate: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("bursty run generated nothing")
	}
	// Expected generation: half the time at 0.05/node/slot for 2 sources.
	expect := 400.0 * 3.0 / 2.0 * 0.05 * 2
	if float64(res.Generated) < 0.7*expect || float64(res.Generated) > 1.3*expect {
		t.Fatalf("generated %d, expect ~%.0f", res.Generated, expect)
	}
	// Invalid phase rejected.
	if _, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Frames: 10, Phases: []TrafficPhase{{Slots: 0, Rate: 1}},
	}); err == nil {
		t.Fatal("zero-length phase accepted")
	}
}

func TestClockModelAlignment(t *testing.T) {
	cs, err := newClockState(ClockModel{MaxDriftPPM: 50, GuardFraction: 0.1, Seed: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// At slot 0 everything is aligned.
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if !cs.aligned(u, v, 0) {
				t.Fatal("slot 0 should be aligned")
			}
		}
	}
	// Far in the future without resync, some pair drifts apart.
	misaligned := false
	for u := 0; u < 4 && !misaligned; u++ {
		for v := 0; v < 4; v++ {
			if u != v && !cs.aligned(u, v, 10_000_000) {
				misaligned = true
				break
			}
		}
	}
	if !misaligned {
		t.Fatal("50 ppm drift should eventually break a 10% guard band")
	}
}

func TestClockResyncKeepsAlignment(t *testing.T) {
	m := ClockModel{MaxDriftPPM: 50, GuardFraction: 0.1, Seed: 2}
	interval := RequiredResyncInterval(m)
	if interval <= 0 {
		t.Fatalf("RequiredResyncInterval = %d", interval)
	}
	// 0.1 / (2·50e-6) = 1000 slots.
	if interval != 1000 {
		t.Fatalf("interval = %d, want 1000", interval)
	}
	m.ResyncInterval = interval
	cs, err := newClockState(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []int{0, 500, 999, 1000, 123456, 999999} {
		for u := 0; u < 6; u++ {
			for v := 0; v < 6; v++ {
				if !cs.aligned(u, v, slot) {
					t.Fatalf("pair (%d,%d) misaligned at slot %d despite adequate resync", u, v, slot)
				}
			}
		}
	}
	if RequiredResyncInterval(ClockModel{GuardFraction: 0.1}) != 0 {
		t.Fatal("zero drift should need no resync")
	}
}

func TestConvergecastUnderClockDrift(t *testing.T) {
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	base := ConvergecastConfig{Sink: 0, Rate: 0.01, Frames: 1500, Seed: 6}

	// Adequate resync: behaves like the ideal system.
	good := base
	good.Clock = &ClockModel{MaxDriftPPM: 40, GuardFraction: 0.1, ResyncInterval: 1000, Seed: 3}
	gres, err := RunConvergecast(g, s, good)
	if err != nil {
		t.Fatal(err)
	}
	if gres.DeliveryRatio < 0.95 {
		t.Fatalf("well-synced network should deliver: %v", gres.DeliveryRatio)
	}
	// No resync at all: clocks drift apart and the network eventually
	// stops delivering new packets.
	bad := base
	bad.Clock = &ClockModel{MaxDriftPPM: 40, GuardFraction: 0.1, Seed: 3}
	bres, err := RunConvergecast(g, s, bad)
	if err != nil {
		t.Fatal(err)
	}
	if bres.DeliveryRatio >= gres.DeliveryRatio {
		t.Fatalf("unsynchronized network should deliver less: %v vs %v",
			bres.DeliveryRatio, gres.DeliveryRatio)
	}
}

func TestFloodWithChannelAndClock(t *testing.T) {
	g := topology.Grid(3, 3)
	s := tdmaSchedule(t, 9)
	res, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{
		Source: 0, MaxFrames: 60, Seed: 4,
		Channel: Channel{LossProb: 0.2},
		Clock:   &ClockModel{MaxDriftPPM: 30, GuardFraction: 0.1, ResyncInterval: 1000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 9 {
		t.Fatalf("lossy flood with retransmissions should still complete: covered %d", res.Covered)
	}
	// Invalid channel rejected.
	if _, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{
		Source: 0, MaxFrames: 2, Channel: Channel{LossProb: 2},
	}); err == nil {
		t.Fatal("invalid channel accepted")
	}
}
