package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file pins the struct-of-arrays fast paths byte-identical to the
// legacy reference loops: every field of every result struct — including
// the float-valued rates, energies, and latency summaries — must satisfy
// reflect.DeepEqual, not a tolerance. The identity holds because both
// paths derive all floats through the shared integer-census finalizers
// (finishSaturation, finishConvergecast) and consume the arrival RNG in
// the same order; a tolerance here would hide a broken pinning contract.

// dutySchedule builds an (alphaT, alphaR) duty-cycled schedule via the
// Figure 2 construction from the polynomial cover-free family.
func dutySchedule(t *testing.T, n, d, alphaT, alphaR int) *core.Schedule {
	t.Helper()
	ns := polySchedule(t, n, d)
	s, err := core.Construct(ns, core.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// diffTopologies returns the topology matrix for a given node count.
func diffTopologies(t *testing.T, n int) map[string]*topology.Graph {
	t.Helper()
	rng := stats.NewRNG(77)
	rows := 2
	return map[string]*topology.Graph{
		"ring":    topology.Ring(n),
		"line":    topology.Line(n),
		"star":    topology.Star(n),
		"grid":    topology.Grid(rows, (n+rows-1)/rows),
		"regular": topology.Regularish(n, 4),
		"random":  topology.RandomBoundedDegree(n, 4, n/2, rng),
	}
}

func assertSaturationIdentical(t *testing.T, g *topology.Graph, s *core.Schedule, frames int, em EnergyModel) {
	t.Helper()
	fast, errFast := RunSaturation(g, s, frames, em)
	legacy, errLegacy := RunSaturationLegacy(g, s, frames, em)
	if (errFast == nil) != (errLegacy == nil) {
		t.Fatalf("error disagreement: fast=%v legacy=%v", errFast, errLegacy)
	}
	if errFast != nil {
		if errFast.Error() != errLegacy.Error() {
			t.Fatalf("error text disagreement: fast=%q legacy=%q", errFast, errLegacy)
		}
		return
	}
	if !reflect.DeepEqual(fast, legacy) {
		t.Fatalf("saturation fast path diverged from legacy:\nfast:   %+v\nlegacy: %+v", fast, legacy)
	}
	// Shard counts and the CSR representation must change nothing. At small
	// n the word-aligned ranges collapse to one shard (the clamp is itself
	// worth covering); TestShardedKernelsWordRanges exercises real
	// multi-shard splits.
	for _, shards := range []int{0, 2, 3, -1} {
		sharded, err := RunSaturationSharded(g, s, frames, em, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(sharded, fast) {
			t.Fatalf("shards=%d diverged from sequential:\nsharded: %+v\nseq:     %+v", shards, sharded, fast)
		}
	}
	cg := g.Compress()
	for _, shards := range []int{1, 2} {
		cfast, err := RunSaturationSharded(cg, s, frames, em, shards)
		if err != nil {
			t.Fatalf("csr shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(cfast, fast) {
			t.Fatalf("csr shards=%d diverged from dense:\ncsr:   %+v\ndense: %+v", shards, cfast, fast)
		}
	}
}

func assertConvergecastIdentical(t *testing.T, g *topology.Graph, s *core.Schedule, cfg ConvergecastConfig) {
	t.Helper()
	cfg.Legacy = false
	fast, errFast := RunConvergecast(g, s, cfg)
	cfg.Legacy = true
	legacy, errLegacy := RunConvergecast(g, s, cfg)
	if (errFast == nil) != (errLegacy == nil) {
		t.Fatalf("error disagreement: fast=%v legacy=%v", errFast, errLegacy)
	}
	if errFast != nil {
		if errFast.Error() != errLegacy.Error() {
			t.Fatalf("error text disagreement: fast=%q legacy=%q", errFast, errLegacy)
		}
		return
	}
	if !reflect.DeepEqual(fast, legacy) {
		t.Fatalf("convergecast fast path diverged from legacy:\nfast:   %+v\nlegacy: %+v", fast, legacy)
	}
	// Sweep shard counts and the CSR representation against the sequential
	// fast result — cfg.Shards must be invisible in the output.
	cfg.Legacy = false
	cg := g.Compress()
	for _, shards := range []int{2, -1} {
		cfg.Shards = shards
		sharded, err := RunConvergecast(g, s, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(sharded, fast) {
			t.Fatalf("shards=%d diverged from sequential:\nsharded: %+v\nseq:     %+v", shards, sharded, fast)
		}
		csr, err := RunConvergecast(cg, s, cfg)
		if err != nil {
			t.Fatalf("csr shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(csr, fast) {
			t.Fatalf("csr shards=%d diverged from dense:\ncsr:   %+v\ndense: %+v", shards, csr, fast)
		}
	}
}

// TestSaturationDifferentialMatrix sweeps workload × topology class ×
// schedule construction (including duty points) × frame count, asserting
// field-for-field identity — MaxInterDeliveryGap and CollisionSlots
// included — between the kernel fast path and the legacy loop.
func TestSaturationDifferentialMatrix(t *testing.T) {
	const n = 12
	schedules := map[string]*core.Schedule{
		"tdma":     tdmaSchedule(t, n),
		"poly-d2":  polySchedule(t, n, 2),
		"duty-2-3": dutySchedule(t, n, 2, 2, 3),
		"duty-3-5": dutySchedule(t, n, 3, 3, 5),
	}
	for sname, s := range schedules {
		for gname, g := range diffTopologies(t, n) {
			for _, frames := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/%s/frames=%d", sname, gname, frames), func(t *testing.T) {
					assertSaturationIdentical(t, g, s, frames, DefaultEnergy())
				})
			}
		}
	}
}

// TestConvergecastDifferentialMatrix sweeps the traffic knobs — rate, queue
// bound, warmup, phase cycling, seed — across topology classes and duty
// points, asserting the Legacy toggle changes nothing, bit for bit.
func TestConvergecastDifferentialMatrix(t *testing.T) {
	const n = 12
	schedules := map[string]*core.Schedule{
		"tdma":     tdmaSchedule(t, n),
		"poly-d2":  polySchedule(t, n, 2),
		"duty-2-3": dutySchedule(t, n, 2, 2, 3),
	}
	configs := map[string]ConvergecastConfig{
		"base":    {Sink: 0, Rate: 0.3, Frames: 4, Seed: 1},
		"seed2":   {Sink: 0, Rate: 0.3, Frames: 4, Seed: 2},
		"sink3":   {Sink: 3, Rate: 0.5, Frames: 3, Seed: 5},
		"queue1":  {Sink: 0, Rate: 0.9, Frames: 4, MaxQueue: 1, Seed: 3},
		"warmup":  {Sink: 0, Rate: 0.4, Frames: 3, WarmupFrames: 2, Seed: 4},
		"hotrate": {Sink: 0, Rate: 2.0, Frames: 3, MaxQueue: 2, Seed: 6},
		"phases": {Sink: 0, Frames: 5, Seed: 7,
			Phases: []TrafficPhase{{Slots: 3, Rate: 1.5}, {Slots: 2, Rate: 0}, {Slots: 4, Rate: 0.2}}},
	}
	for sname, s := range schedules {
		for gname, g := range diffTopologies(t, n) {
			for cname, cfg := range configs {
				t.Run(fmt.Sprintf("%s/%s/%s", sname, gname, cname), func(t *testing.T) {
					assertConvergecastIdentical(t, g, s, cfg)
				})
			}
		}
	}
}

// TestSaturationKernelReuse shares one kernel across topologies of the same
// node count — the campaign usage pattern — and checks each run still
// matches the legacy loop, i.e. no per-run state leaks through the kernel
// or the pooled scratch.
func TestSaturationKernelReuse(t *testing.T) {
	const n = 10
	s := polySchedule(t, n, 2)
	k, err := NewSaturationKernel(s, n)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*topology.Graph{
		topology.Ring(n),
		topology.Star(n),
		topology.Regularish(n, 4),
		topology.Ring(n), // repeat: pooled scratch must be fully reset
	}
	for i, g := range graphs {
		fast, err := k.Run(g, 2, DefaultEnergy())
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := RunSaturationLegacy(g, s, 2, DefaultEnergy())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, legacy) {
			t.Fatalf("run %d: shared kernel diverged from legacy:\nfast:   %+v\nlegacy: %+v", i, fast, legacy)
		}
	}
	if k.N() != n {
		t.Fatalf("kernel N = %d, want %d", k.N(), n)
	}
}

// TestSaturationKernelErrors pins the kernel's validation to the legacy
// loop's error surface.
func TestSaturationKernelErrors(t *testing.T) {
	s := tdmaSchedule(t, 4)
	if _, err := NewSaturationKernel(s, 0); err == nil {
		t.Fatal("want error for n = 0")
	}
	if _, err := NewSaturationKernel(s, 5); err == nil {
		t.Fatal("want error for n > schedule universe")
	}
	k, err := NewSaturationKernel(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(topology.Ring(4), 1, DefaultEnergy()); err == nil {
		t.Fatal("want error for mismatched graph size")
	}
	if _, err := k.Run(topology.Ring(3), 0, DefaultEnergy()); err == nil {
		t.Fatal("want error for frames = 0")
	}
	// The wrapper must agree with the legacy loop on bad inputs too.
	assertSaturationIdentical(t, topology.Ring(5), s, 1, DefaultEnergy())
	assertSaturationIdentical(t, topology.Ring(3), s, 0, DefaultEnergy())
}

// TestShardedKernelsWordRanges runs the kernels at n = 130 — three scratch
// words, so resolveShards keeps real multi-shard splits and the worker
// goroutines actually run — and requires shards ∈ {2, 3, per-CPU} to
// reproduce the shards=1 result bit for bit, on both representations.
// `make race-sim-par` runs this under the race detector, which would flag
// any overlap in the word ranges the workers write.
func TestShardedKernelsWordRanges(t *testing.T) {
	const n = 130
	s := polySchedule(t, n, 3)
	graphs := map[string]*topology.Graph{
		"ring":    topology.Ring(n),
		"grid":    topology.Grid(10, 13),
		"regular": topology.Regularish(n, 4),
	}
	ccCfg := ConvergecastConfig{Sink: 0, Rate: 0.4, Frames: 3, WarmupFrames: 1, Seed: 11}
	for gname, g := range graphs {
		for repr, gg := range map[string]*topology.Graph{"dense": g, "csr": g.Compress()} {
			t.Run(gname+"/"+repr, func(t *testing.T) {
				satSeq, err := RunSaturationSharded(gg, s, 2, DefaultEnergy(), 1)
				if err != nil {
					t.Fatal(err)
				}
				cfg := ccCfg
				cfg.Shards = 1
				ccSeq, err := RunConvergecast(gg, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{2, 3, -1} {
					satPar, err := RunSaturationSharded(gg, s, 2, DefaultEnergy(), shards)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if !reflect.DeepEqual(satPar, satSeq) {
						t.Fatalf("saturation shards=%d diverged from shards=1", shards)
					}
					cfg.Shards = shards
					ccPar, err := RunConvergecast(gg, s, cfg)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if !reflect.DeepEqual(ccPar, ccSeq) {
						t.Fatalf("convergecast shards=%d diverged from shards=1", shards)
					}
				}
			})
		}
	}
}

// fuzzSchedule decodes 2 bits per (node, slot) into a schedule: 1 →
// transmit, 2 → receive, 0/3 → sleep. Disjointness is structural, so
// FromSets always accepts.
func fuzzSchedule(n, l int, bits []byte) (*core.Schedule, error) {
	ts := make([]*bitset.Set, l)
	rs := make([]*bitset.Set, l)
	for i := 0; i < l; i++ {
		ts[i] = bitset.New(n)
		rs[i] = bitset.New(n)
	}
	for v := 0; v < n; v++ {
		for i := 0; i < l; i++ {
			idx := v*l + i
			var b byte
			if len(bits) > 0 {
				b = bits[(idx/4)%len(bits)] >> uint((idx%4)*2) & 3
			}
			switch b {
			case 1:
				ts[i].Add(v)
			case 2:
				rs[i].Add(v)
			}
		}
	}
	return core.FromSets(n, ts, rs)
}

// fuzzGraph builds a connected graph: a spanning line plus extra edges
// drawn from the seed.
func fuzzGraph(n, extra int, seed uint64) *topology.Graph {
	g := topology.NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	rng := stats.NewRNG(seed)
	for e := 0; e < extra; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// FuzzSimEquivalence feeds random small (topology, schedule, traffic)
// triples to both simulator paths and requires byte-identical results.
func FuzzSimEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{5, 2, 11, 3, 0x1b, 0x6c, 0x9e, 0x27})
	f.Add([]byte{9, 5, 200, 9, 0xff, 0x00, 0x55, 0xaa, 0x12})
	f.Add([]byte{3, 1, 42, 250, 0x99, 0x42})
	f.Add([]byte{7, 3, 77, 128, 0x24, 0x8d, 0xe1, 0x5a, 0x36, 0x6d})
	f.Add([]byte{8, 4, 31, 65, 0x6d, 0xb6, 0x49, 0x92, 0x24, 0xdb}) // parallel-kernel seed: Shards = 2
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 3 + int(data[0])%10 // 3..12
		l := 1 + int(data[1])%6  // 1..6
		seed := uint64(data[2])
		extra := int(data[3]) % 8
		s, err := fuzzSchedule(n, l, data[4:])
		if err != nil {
			t.Fatalf("fuzzSchedule: %v", err)
		}
		g := fuzzGraph(n, extra, seed)
		frames := 1 + int(data[2])%3
		assertSaturationIdentical(t, g, s, frames, DefaultEnergy())
		cfg := ConvergecastConfig{
			Sink:         int(data[3]) % n,
			Rate:         0.2 + float64(data[0]%4)*0.4,
			Frames:       2,
			MaxQueue:     int(data[1]) % 3, // 0 means the 64 default
			WarmupFrames: int(data[2]) % 2,
			Seed:         seed,
			Shards:       int(data[0]) % 3, // the asserts re-sweep shard counts anyway
		}
		assertConvergecastIdentical(t, g, s, cfg)
	})
}
