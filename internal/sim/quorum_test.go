package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestQuorumRendezvousGuarantee(t *testing.T) {
	// Any two nodes share at least two awake slots per frame (row/column
	// intersections).
	q, err := NewQuorum(20, 5, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if u == v {
				continue
			}
			if got := len(q.OverlapSlots(u, v)); got < 2 {
				t.Fatalf("nodes %d,%d overlap in %d slots", u, v, got)
			}
		}
	}
}

func TestQuorumDutyCycle(t *testing.T) {
	// Awake fraction per node is (2·side - 1)/side².
	q, err := NewQuorum(10, 5, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	L := q.FrameLen()
	for v := 0; v < 10; v++ {
		awake := 0
		for i := 0; i < L; i++ {
			if q.Awake(v, i) {
				awake++
			}
		}
		if awake != 2*5-1 {
			t.Fatalf("node %d awake %d slots, want 9", v, awake)
		}
	}
	// Roles: asleep outside the quorum; never transmit without traffic.
	for i := 0; i < L; i++ {
		for v := 0; v < 10; v++ {
			r := q.Role(v, i, false)
			if q.Awake(v, i) && r != core.Receive {
				t.Fatalf("awake idle node should listen, got %v", r)
			}
			if !q.Awake(v, i) && r != core.Sleep {
				t.Fatalf("sleeping node role %v", r)
			}
		}
	}
}

func TestQuorumValidation(t *testing.T) {
	if _, err := NewQuorum(0, 5, 0.3, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewQuorum(5, 1, 0.3, 1); err == nil {
		t.Fatal("side=1 accepted")
	}
	if _, err := NewQuorum(5, 3, 0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestQuorumRendezvousWithoutCollisionFreedom(t *testing.T) {
	// The point of the comparison: quorum discovery eventually hears
	// neighbours (rendezvous) but has no one-frame guarantee, and it
	// collides where the TT schedule cannot.
	g := topology.Regularish(16, 3)
	s := polySchedule(t, 16, 3)
	tt, err := RunDiscovery(g, ScheduleProtocol{S: s}, 1, DefaultEnergy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tt.DiscoveredLinks != tt.TotalLinks {
		t.Fatal("TT discovery must finish in one frame")
	}
	q, err := NewQuorum(16, 5, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunDiscovery(g, q, 1, DefaultEnergy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if one.DiscoveredLinks == one.TotalLinks {
		t.Log("quorum finished in one frame (lucky); the guarantee difference still holds by construction")
	}
	if one.Collisions == 0 {
		// With p=0.4 and everyone beaconing in overlapping quorums,
		// collisions are essentially certain on a regular graph.
		t.Fatal("quorum beaconing should collide")
	}
	// Given many frames, quorum eventually discovers (rendezvous + luck).
	many, err := RunDiscovery(g, q, 60, DefaultEnergy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if many.DiscoveredLinks != many.TotalLinks {
		t.Fatalf("quorum discovery incomplete after 60 frames: %d/%d",
			many.DiscoveredLinks, many.TotalLinks)
	}
}

func TestQuorumEnergyBelowAlwaysOn(t *testing.T) {
	g := topology.Ring(9)
	q, err := NewQuorum(9, 3, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConvergecastProtocol(g, q, ConvergecastConfig{
		Sink: 0, Rate: 0.01, Frames: 300, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Awake fraction ~ (2·3-1)/9 = 5/9 plus tx; must be well below 1.
	if res.ActiveFraction >= 0.75 {
		t.Fatalf("quorum active fraction %v too high", res.ActiveFraction)
	}
}
