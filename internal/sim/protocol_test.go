package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestScheduleProtocolRoles(t *testing.T) {
	s := tdmaSchedule(t, 4)
	p := ScheduleProtocol{S: s}
	if p.FrameLen() != 4 || p.Name() == "" {
		t.Fatal("metadata wrong")
	}
	// Transmit-eligible with traffic: Transmit. Without: Sleep.
	if p.Role(0, 0, true) != core.Transmit {
		t.Fatal("eligible sender should transmit")
	}
	if p.Role(0, 0, false) != core.Sleep {
		t.Fatal("eligible sender without traffic should sleep")
	}
	if p.Role(1, 0, false) != core.Receive {
		t.Fatal("scheduled receiver should listen")
	}
	// Wraps modulo frame.
	if p.Role(1, 5, true) != core.Transmit {
		t.Fatal("frame wrap broken")
	}
	// Target awareness.
	if !p.ShouldTransmit(0, 1, 0) {
		t.Fatal("0→1 should be allowed in slot 0")
	}
	if p.ShouldTransmit(1, 0, 0) {
		t.Fatal("1 is not scheduled to transmit in slot 0")
	}
}

func TestAlohaProtocolBehaviour(t *testing.T) {
	p := NewAloha(0.5, 3)
	if p.FrameLen() != 1 {
		t.Fatal("ALOHA frame should be 1")
	}
	// Idle nodes always listen.
	for v := 0; v < 5; v++ {
		if p.Role(v, 0, false) != core.Receive {
			t.Fatal("idle ALOHA node should listen")
		}
	}
	// With traffic, transmit sometimes; repeated queries in a slot agree.
	tx := 0
	const slots = 2000
	for slot := 1; slot <= slots; slot++ {
		r1 := p.Role(0, slot, true)
		r2 := p.Role(0, slot, true)
		if r1 != r2 {
			t.Fatal("role not stable within a slot")
		}
		if r1 == core.Transmit {
			tx++
		}
	}
	frac := float64(tx) / slots
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("ALOHA transmit fraction %v, want ~0.5", frac)
	}
	// Never sleeps.
	if p.Role(0, 99999, false) == core.Sleep {
		t.Fatal("ALOHA should never sleep")
	}
}

func TestAlohaRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 accepted")
		}
	}()
	NewAloha(0, 1)
}

func TestDutyAlohaSleeps(t *testing.T) {
	p := NewDutyAloha(0.1, 0.3, 9)
	counts := map[core.Role]int{}
	const slots = 5000
	for slot := 0; slot < slots; slot++ {
		counts[p.Role(0, slot, true)]++
	}
	if counts[core.Sleep] == 0 {
		t.Fatal("duty-ALOHA never slept")
	}
	if counts[core.Transmit] == 0 {
		t.Fatal("duty-ALOHA never transmitted")
	}
	frac := float64(counts[core.Transmit]) / slots
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("transmit fraction %v, want ~0.1", frac)
	}
}

func TestConvergecastALOHADegradesUnderLoad(t *testing.T) {
	// ALOHA on a star under heavy load must collide a lot; a TT schedule
	// delivers everything.
	g := topology.Star(8)
	sched := tdmaSchedule(t, 8)
	cfg := ConvergecastConfig{Sink: 0, Rate: 0.05, Frames: 100, Seed: 5}

	tt, err := RunConvergecast(g, sched, ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 100 * 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	al, err := RunConvergecastProtocol(g, NewAloha(0.4, 7), ConvergecastConfig{
		Sink: 0, Rate: cfg.Rate, Frames: 100 * sched.L(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if al.Collisions == 0 {
		t.Fatal("loaded ALOHA star should collide")
	}
	if tt.Collisions != 0 {
		t.Fatalf("TDMA should be collision-free, got %d", tt.Collisions)
	}
	if al.Protocol == "" || tt.Protocol == "" {
		t.Fatal("protocol names missing")
	}
}

func TestFloodCompletesWithinEccentricityFrames(t *testing.T) {
	// The analytic guarantee: a TT schedule floods within ecc frames.
	for _, tc := range []struct {
		g   *topology.Graph
		n   int
		src int
	}{
		{topology.Line(8), 8, 0},
		{topology.Ring(9), 9, 2},
		{topology.Grid(3, 3), 9, 0},
	} {
		s := tdmaSchedule(t, tc.n)
		ecc := Eccentricity(tc.g, tc.src)
		res, err := RunFlood(tc.g, ScheduleProtocol{S: s}, FloodConfig{
			Source: tc.src, MaxFrames: ecc + 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Covered != tc.n {
			t.Fatalf("flood covered %d of %d", res.Covered, tc.n)
		}
		if res.CompletionSlot < 0 || res.CompletionSlot >= ecc*s.L()+s.L() {
			t.Fatalf("completion slot %d exceeds ecc %d frames", res.CompletionSlot, ecc)
		}
		// First receptions are BFS-monotone: a node at distance k cannot
		// receive before frame k-1 begins... at minimum after its parent.
		_, dist := tc.g.BFSTree(tc.src)
		for v := 0; v < tc.n; v++ {
			if v == tc.src {
				continue
			}
			if res.FirstReception[v] < dist[v]-1 {
				t.Fatalf("node %d at distance %d received impossibly early (%d)",
					v, dist[v], res.FirstReception[v])
			}
		}
	}
}

func TestFloodIncompleteWhenCutShort(t *testing.T) {
	// Flooding a TDMA line from node 9 fights the slot order: node k
	// transmits in slot k, which has already passed by the time the
	// message arrives from k+1, so the frontier advances exactly one hop
	// per frame. Two frames therefore cover only {9, 8, 7}.
	g := topology.Line(10)
	s := tdmaSchedule(t, 10)
	res, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{Source: 9, MaxFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionSlot != -1 {
		t.Fatal("2 frames cannot flood a 9-hop line against the slot order")
	}
	if res.Covered != 3 {
		t.Fatalf("covered = %d, want 3", res.Covered)
	}
	// Uncovered nodes report -1; covered ones a slot.
	for v, fr := range res.FirstReception {
		covered := v >= 7
		if covered == (fr == -1) {
			t.Fatalf("FirstReception inconsistent at %d: %v", v, res.FirstReception)
		}
	}
	// The same flood with the slot order (source 0) completes in frame 0.
	fast, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{Source: 0, MaxFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fast.CompletionSlot < 0 || fast.CompletionSlot >= s.L() {
		t.Fatalf("aligned flood should finish within one frame, got slot %d", fast.CompletionSlot)
	}
}

func TestFloodValidation(t *testing.T) {
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	if _, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{Source: 7, MaxFrames: 2}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{Source: 0, MaxFrames: 0}); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestFloodALOHAMayCollideOnDenseGraphs(t *testing.T) {
	// With aggressive p on a dense graph, ALOHA flooding collides; it still
	// usually completes eventually thanks to randomness.
	g := topology.Regularish(12, 4)
	res, err := RunFlood(g, NewAloha(0.6, 3), FloodConfig{Source: 0, MaxFrames: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Fatal("dense aggressive ALOHA flood should collide")
	}
}

func TestEccentricity(t *testing.T) {
	if got := Eccentricity(topology.Line(5), 0); got != 4 {
		t.Fatalf("line ecc = %d", got)
	}
	if got := Eccentricity(topology.Ring(8), 3); got != 4 {
		t.Fatalf("ring ecc = %d", got)
	}
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	if got := Eccentricity(g, 0); got != -1 {
		t.Fatalf("disconnected ecc = %d", got)
	}
}
