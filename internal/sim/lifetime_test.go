package sim

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestEstimateLifetimeTDMA(t *testing.T) {
	s := tdmaSchedule(t, 4)
	em := EnergyModel{TxPower: 2, RxPower: 1, SleepPower: 0, SlotSeconds: 1}
	est, err := EstimateLifetime(s, em, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Per frame (4 slots): 1 tx (2 J) + 3 rx (3 J) = 5 J over 4 s → 1.25 W.
	want := 100.0 / 1.25
	for x, got := range est.PerNodeSeconds {
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d lifetime %v, want %v", x, got, want)
		}
	}
	if est.MinSeconds != want || math.Abs(est.MeanSeconds-want) > 1e-9 {
		t.Fatalf("min/mean %v/%v, want %v", est.MinSeconds, est.MeanSeconds, want)
	}
	if est.MinNode < 0 || est.MinNode > 3 {
		t.Fatalf("MinNode = %d", est.MinNode)
	}
}

func TestDutyCyclingExtendsLifetime(t *testing.T) {
	ns := polySchedule(t, 25, 2)
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 3, AlphaR: 5, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	em := DefaultEnergy()
	full, err := EstimateLifetime(ns, em, 20000)
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := EstimateLifetime(duty, em, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if cycled.MinSeconds <= full.MinSeconds {
		t.Fatalf("duty cycling should extend first-death lifetime: %v vs %v",
			cycled.MinSeconds, full.MinSeconds)
	}
	ratio := cycled.MinSeconds / full.MinSeconds
	// Active fraction 0.32 vs 1.0 with rx-dominated power: expect roughly
	// 1/0.32 ≈ 3x, allow slack for tx/rx mix.
	if ratio < 2 || ratio > 5 {
		t.Fatalf("lifetime extension ratio %v implausible", ratio)
	}
}

func TestEstimateLifetimeValidation(t *testing.T) {
	s := tdmaSchedule(t, 3)
	if _, err := EstimateLifetime(s, DefaultEnergy(), 0); err == nil {
		t.Fatal("zero battery accepted")
	}
	if _, err := EstimateLifetime(s, EnergyModel{TxPower: 1, RxPower: 1}, 10); err == nil {
		t.Fatal("zero slot duration accepted")
	}
}
