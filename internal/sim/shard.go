package sim

import "runtime"

// Node-range sharding for the struct-of-arrays kernels. A shard owns a
// contiguous, word-aligned range of receiver rows [lo, hi): alignment to
// 64-node boundaries means two shards never write the same word of a
// packed per-receiver bitset, so workers need no locks, and the
// deterministic ascending-shard reduction of their integer counters makes
// results independent of the shard count (integer sums and maxima are
// associative and commutative; see DESIGN.md §14).

// resolveShards normalizes a shard-count request for n nodes: zero or one
// means sequential, negative means one shard per available CPU, and the
// count is clamped to the number of 64-node words so every shard owns at
// least one word.
func resolveShards(shards, n int) int {
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		shards = 1
	}
	if words := (n + wordBits - 1) / wordBits; shards > words {
		shards = words
	}
	return shards
}

// shardRanges splits the n receiver rows into the given number of
// contiguous word-aligned ranges of near-equal size. The last range ends
// at n (only its tail may be a partial word).
func shardRanges(n, shards int) [][2]int {
	words := (n + wordBits - 1) / wordBits
	base, rem := words/shards, words%shards
	out := make([][2]int, 0, shards)
	lo := 0
	for s := 0; s < shards; s++ {
		w := base
		if s < rem {
			w++
		}
		hi := lo + w*wordBits
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
