// Package sim is a slot-level discrete-event simulator for duty-cycled
// wireless sensor networks. It executes a schedule (roles per slot) over a
// topology with the paper's collision model — a reception succeeds exactly
// when the receiver is awake in receive mode and exactly one of its
// neighbours transmits in that slot — and accounts packets, latency, duty
// cycle, and radio energy.
//
// Two workloads are provided: RunSaturation drives the paper's worst case
// (every node transmits in every eligible slot; per-link guaranteed
// deliveries are counted and can be compared against the analytical
// 𝒯-slot counts), and RunConvergecast drives a realistic data-collection
// workload (Poisson traffic routed hop-by-hop to a sink over a BFS tree).
package sim

// EnergyModel holds radio power draws (watts) and the slot duration. The
// defaults are CC2420-class figures; the experiments only depend on the
// ordering Tx ≈ Rx ≫ sleep, which holds for every published sensor radio
// and which makes idle listening the dominant cost duty cycling attacks.
type EnergyModel struct {
	// TxPower is drawn during a slot spent transmitting.
	TxPower float64
	// RxPower is drawn during a slot spent in receive mode (whether or not
	// a packet arrives: idle listening costs the same as receiving).
	RxPower float64
	// SleepPower is drawn with the radio off.
	SleepPower float64
	// SlotSeconds is the duration of one slot.
	SlotSeconds float64
}

// DefaultEnergy returns a CC2420-class model: 52.2 mW transmit, 56.4 mW
// receive/listen, 3 µW sleep, 10 ms slots.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		TxPower:     0.0522,
		RxPower:     0.0564,
		SleepPower:  0.000003,
		SlotSeconds: 0.010,
	}
}

// slotEnergy returns the energy (joules) one node spends in one slot in
// the given state.
func (e EnergyModel) slotEnergy(tx, rx bool) float64 {
	switch {
	case tx:
		return e.TxPower * e.SlotSeconds
	case rx:
		return e.RxPower * e.SlotSeconds
	default:
		return e.SleepPower * e.SlotSeconds
	}
}
