//go:build !race

// The race detector instruments memory operations in ways that can
// allocate, so the allocation pins only run in the plain test pass
// (`make test`); `make race` still runs every functional test.

package sim

import (
	"testing"

	"repro/internal/topology"
)

// Result sinks keep the measured runs from being optimized away without
// allocating inside the measured closures.
var (
	sinkSat *SaturationResult
	sinkCC  *ConvergecastResult
)

// TestKernelAllocsWarm pins the simulator kernels' steady-state allocation
// budget: after pool warmup, a run may allocate only its result — the
// SaturationResult / ConvergecastResult struct and the per-node maps and
// slices inside it — never per-frame or per-shard scratch, which all comes
// from the sync.Pools. Three invariants:
//
//  1. each warm run stays under a fixed budget (the measured count plus a
//     little headroom);
//  2. a sharded run allocates exactly as much as the sequential run of the
//     same workload — the shard fan-out is fully pooled;
//  3. the saturation count is flat in the frame count. (Convergecast is
//     exempt from 3 only because its Delivered map grows with the traffic
//     actually delivered, which is result size, not scratch.)
func TestKernelAllocsWarm(t *testing.T) {
	const n = 24
	s := polySchedule(t, n, 2)
	g := topology.Regularish(n, 4)

	sat, err := NewSaturationKernel(s, n)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewConvergecastKernel(g, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	ccCfg := func(frames, shards int) ConvergecastConfig {
		return ConvergecastConfig{Sink: 0, Rate: 0.05, Frames: frames, Seed: 7, Shards: shards}
	}

	measure := func(call func()) float64 {
		call() // warm the pools before measuring
		return testing.AllocsPerRun(20, call)
	}

	const satBudget, ccBudget = 64.0, 32.0

	satSeq := measure(func() { sinkSat, _ = sat.Run(g, 2, DefaultEnergy()) })
	if satSeq > satBudget {
		t.Errorf("Saturation: %v allocs per warm run, budget %v", satSeq, satBudget)
	}
	satShard := measure(func() { sinkSat, _ = sat.RunSharded(g, 2, DefaultEnergy(), 4) })
	if satShard != satSeq {
		t.Errorf("SaturationSharded: %v allocs vs %v sequential; shard scratch must come from the pool", satShard, satSeq)
	}
	satLong := measure(func() { sinkSat, _ = sat.Run(g, 8, DefaultEnergy()) })
	if satLong != satSeq {
		t.Errorf("Saturation: %v allocs at 8 frames vs %v at 2; the warm path must not allocate per frame", satLong, satSeq)
	}

	ccSeq := measure(func() { sinkCC, _ = cc.Run(ccCfg(2, 1)) })
	if ccSeq > ccBudget {
		t.Errorf("Convergecast: %v allocs per warm run, budget %v", ccSeq, ccBudget)
	}
	ccShard := measure(func() { sinkCC, _ = cc.Run(ccCfg(2, 4)) })
	if ccShard != ccSeq {
		t.Errorf("ConvergecastSharded: %v allocs vs %v sequential; shard scratch must come from the pool", ccShard, ccSeq)
	}

	if sinkSat == nil || sinkCC == nil {
		t.Fatal("measured runs returned no results")
	}
}
