package sim

import (
	"fmt"

	"repro/internal/core"
)

// LifetimeEstimate is the analytical battery-lifetime projection for a
// schedule under an energy model: no simulation, just the schedule's role
// densities. It conservatively assumes saturated traffic (a node transmits
// in every transmit-eligible slot).
type LifetimeEstimate struct {
	// PerNodeSeconds[x] is node x's projected lifetime.
	PerNodeSeconds []float64
	// MinSeconds is the first-death time — the usual WSN lifetime metric.
	MinSeconds float64
	// MeanSeconds averages over nodes.
	MeanSeconds float64
	// MinNode is a node achieving MinSeconds.
	MinNode int
}

// EstimateLifetime projects per-node battery lifetime under schedule s:
// node x's average power is
//
//	( |tran(x)|·Tx + |recv(x)|·Rx + (L-|tran(x)|-|recv(x)|)·Sleep ) / L
//
// per slot-duration, and lifetime = batteryJoules / power. Because the
// projection assumes every transmit opportunity is used, it lower-bounds
// real lifetimes under lighter traffic.
func EstimateLifetime(s *core.Schedule, em EnergyModel, batteryJoules float64) (*LifetimeEstimate, error) {
	if batteryJoules <= 0 {
		return nil, fmt.Errorf("sim: battery %v J", batteryJoules)
	}
	if em.SlotSeconds <= 0 {
		return nil, fmt.Errorf("sim: slot duration %v", em.SlotSeconds)
	}
	n := s.N()
	L := float64(s.L())
	est := &LifetimeEstimate{PerNodeSeconds: make([]float64, n), MinNode: -1}
	sum := 0.0
	for x := 0; x < n; x++ {
		tx := float64(s.Tran(x).Count())
		rx := float64(s.Recv(x).Count())
		sleep := L - tx - rx
		energyPerFrame := (tx*em.TxPower + rx*em.RxPower + sleep*em.SleepPower) * em.SlotSeconds
		if energyPerFrame <= 0 {
			return nil, fmt.Errorf("sim: node %d draws no energy; degenerate model", x)
		}
		power := energyPerFrame / (L * em.SlotSeconds)
		life := batteryJoules / power
		est.PerNodeSeconds[x] = life
		sum += life
		if est.MinNode < 0 || life < est.MinSeconds {
			est.MinSeconds = life
			est.MinNode = x
		}
	}
	est.MeanSeconds = sum / float64(n)
	return est, nil
}
