package sim

import (
	"fmt"

	"repro/internal/core"
)

// AdaptiveProtocol switches between two topology-transparent schedules at
// frame boundaries, tracking offered load: a low-power (αT, αR)-schedule
// while the network is quiet and a high-throughput one under backlog. Since
// every frame played is a complete frame of a topology-transparent
// schedule, every link keeps its guaranteed slot in every frame — adaptivity
// costs none of the paper's guarantees. This realizes the natural
// future-work extension of the paper's static (αT, αR) choice.
//
// Load is measured per frame as the fraction of node-slots with backlog
// (ShouldTransmit consultations when the driver is target-aware, wantTx
// flags otherwise) and compared against the hysteresis thresholds.
type AdaptiveProtocol struct {
	// Low is the energy-saving schedule; High the throughput schedule.
	// Both must cover the same universe.
	Low, High *core.Schedule
	// UpThreshold switches Low→High when frame load exceeds it;
	// DownThreshold switches High→Low when load falls below it. Hysteresis
	// requires DownThreshold <= UpThreshold.
	UpThreshold, DownThreshold float64

	cur      *core.Schedule
	lastSlot int
	pos      int // position within the current frame
	// load accounting for the current frame
	shouldCalls int // ShouldTransmit consultations (backlogged node-slots)
	roleWantTx  int // Role calls with wantTx (fallback signal)
	roleCalls   int
	sawShould   bool
	switches    int
}

// NewAdaptive builds an adaptive protocol. Both schedules must share the
// node universe; thresholds must satisfy 0 <= down <= up <= 1.
func NewAdaptive(low, high *core.Schedule, up, down float64) (*AdaptiveProtocol, error) {
	if low == nil || high == nil || low.N() != high.N() {
		return nil, fmt.Errorf("sim: adaptive schedules must share a universe")
	}
	if down < 0 || up > 1 || down > up {
		return nil, fmt.Errorf("sim: adaptive thresholds down=%v up=%v invalid", down, up)
	}
	return &AdaptiveProtocol{
		Low: low, High: high,
		UpThreshold: up, DownThreshold: down,
		cur:      low,
		lastSlot: -1,
		pos:      -1,
	}, nil
}

// Name implements Protocol.
func (p *AdaptiveProtocol) Name() string { return "adaptive" }

// FrameLen implements Protocol; drivers size runs by the low-power frame
// (the longer period), which upper-bounds the guarantee interval.
func (p *AdaptiveProtocol) FrameLen() int {
	if p.Low.L() > p.High.L() {
		return p.Low.L()
	}
	return p.High.L()
}

// Current returns the schedule in force (for inspection in tests/reports).
func (p *AdaptiveProtocol) Current() *core.Schedule { return p.cur }

// Switches returns how many schedule changes have occurred.
func (p *AdaptiveProtocol) Switches() int { return p.switches }

// sync advances frame-tracking state when the driver moves to a new slot.
// Drivers query nodes in ascending order within a slot, and slots in
// ascending order, which makes the first query of a slot a reliable edge.
func (p *AdaptiveProtocol) sync(slot int) {
	if slot == p.lastSlot {
		return
	}
	p.lastSlot = slot
	p.pos++
	if p.pos < p.cur.L() {
		return
	}
	// Frame boundary: evaluate the frame that just ended, maybe switch.
	frameNodeSlots := float64(p.cur.N() * p.cur.L())
	var load float64
	if p.sawShould {
		load = float64(p.shouldCalls) / frameNodeSlots
	} else if p.roleCalls > 0 {
		load = float64(p.roleWantTx) / frameNodeSlots
	}
	switch {
	case p.cur == p.Low && load > p.UpThreshold:
		p.cur = p.High
		p.switches++
	case p.cur == p.High && load < p.DownThreshold:
		p.cur = p.Low
		p.switches++
	}
	p.pos = 0
	p.shouldCalls = 0
	p.roleWantTx = 0
	p.roleCalls = 0
	p.sawShould = false
}

// slotInFrame maps the driver's absolute slot onto the current schedule's
// frame position (switches always land on frame boundaries).
func (p *AdaptiveProtocol) slotInFrame() int { return p.pos }

// Role implements Protocol.
func (p *AdaptiveProtocol) Role(node, slot int, wantTx bool) core.Role {
	p.sync(slot)
	p.roleCalls++
	if wantTx {
		p.roleWantTx++
	}
	r := p.cur.RoleOf(node, p.slotInFrame())
	if r == core.Transmit && !wantTx {
		return core.Sleep
	}
	return r
}

// ShouldTransmit implements TargetAware against the schedule currently in
// force.
func (p *AdaptiveProtocol) ShouldTransmit(node, target, slot int) bool {
	p.sync(slot)
	p.sawShould = true
	p.shouldCalls++
	i := p.slotInFrame()
	return p.cur.RoleOf(node, i) == core.Transmit && p.cur.RoleOf(target, i) == core.Receive
}
