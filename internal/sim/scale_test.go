package sim

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
)

// Scale demonstrations and benchmarks, gated behind TTDC_SCALE: they build
// schedules and CSR topologies far beyond the tier-1 test budget. `make
// bench-scale` runs the benchmarks once each and merges the entries into
// BENCH_sim.json; each entry records GOMAXPROCS, NumCPU, and the process
// peak RSS, so a number taken on an affinity-pinned single-core host
// explains itself.

// readPeakRSSMB returns the process peak resident set (VmHWM) in MiB.
func readPeakRSSMB() (int, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0, false
		}
		kb, err := strconv.Atoi(f[1])
		if err != nil {
			return 0, false
		}
		return kb >> 10, true
	}
	return 0, false
}

// reportScaleMetrics attaches the host context to a scale benchmark entry.
func reportScaleMetrics(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
	if mb, ok := readPeakRSSMB(); ok {
		b.ReportMetric(float64(mb), "peakRSS-MB")
	}
}

func skipUnlessScale(tb testing.TB, what string) {
	tb.Helper()
	if os.Getenv("TTDC_SCALE") == "" {
		tb.Skip("set TTDC_SCALE=1 to run " + what)
	}
}

// TestSaturationScale1M is the million-node milestone: one saturation frame
// at n = 10⁶ on a streamed CSR topology, within an 8 GB peak-RSS budget,
// with the sharded run byte-identical to the sequential one.
func TestSaturationScale1M(t *testing.T) {
	skipUnlessScale(t, "the n=1000000 scale demonstration")
	const n, d = 1_000_000, 4
	start := time.Now()
	s := benchPolySchedule(t, n, d)
	t.Logf("schedule built: n=%d L=%d (%.1fs)", s.N(), s.L(), time.Since(start).Seconds())
	g := topology.Regularish(n, d)
	if !g.IsCompressed() {
		t.Fatal("n=1e6 topology should stream to CSR above topology.DenseLimit")
	}
	t.Logf("topology built: %d nodes, %d edges, CSR (%.1fs)", g.N(), g.EdgeCount(), time.Since(start).Seconds())

	runStart := time.Now()
	seq, err := RunSaturationSharded(g, s, 1, DefaultEnergy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential frame: min=%v avg=%v collisions=%d gap=%d in %.1fs",
		seq.MinLinkPerFrame, seq.AvgLinkPerFrame, seq.CollisionSlots, seq.MaxInterDeliveryGap,
		time.Since(runStart).Seconds())
	if seq.AvgLinkPerFrame <= 0 {
		t.Fatal("scale run delivered nothing")
	}

	runStart = time.Now()
	par, err := RunSaturationSharded(g, s, 1, DefaultEnergy(), -1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded frame (per-CPU) in %.1fs", time.Since(runStart).Seconds())
	if !reflect.DeepEqual(par, seq) {
		t.Fatal("sharded n=1e6 frame diverged from the sequential run")
	}

	if mb, ok := readPeakRSSMB(); ok {
		t.Logf("peak RSS: %d MiB", mb)
		if mb > 8192 {
			t.Fatalf("peak RSS %d MiB exceeds the 8 GiB budget", mb)
		}
	}
}

// TestConvergecastScale100k runs the 10⁵-node convergecast grid with the
// kernel fast path and pins shards=1 against shards=N at scale.
func TestConvergecastScale100k(t *testing.T) {
	skipUnlessScale(t, "the n=100000 convergecast scale demonstration")
	const n, d = 100_000, 4
	start := time.Now()
	s := benchPolySchedule(t, n, d)
	g := topology.Grid(250, 400)
	t.Logf("built: L=%d, %d nodes, %d edges (%.1fs)", s.L(), g.N(), g.EdgeCount(), time.Since(start).Seconds())
	k, err := NewConvergecastKernel(g, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConvergecastConfig{Sink: 0, Rate: 0.002, Frames: 2, Seed: 7, Shards: 1}
	runStart := time.Now()
	seq, err := k.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential: generated=%d delivered=%d collisions=%d in %.1fs",
		seq.Generated, seq.Delivered, seq.Collisions, time.Since(runStart).Seconds())
	cfg.Shards = -1
	par, err := k.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatal("sharded n=1e5 convergecast diverged from the sequential run")
	}
}

// The Shards1/ShardsMax suffix pairs below are recognized by cmd/ttdcbench,
// which derives sequential-vs-sharded speedups into BENCH_sim.json.

func benchScaleSaturation1M(b *testing.B, shards int) {
	skipUnlessScale(b, "the n=1000000 saturation benchmark")
	const n, d = 1_000_000, 4
	s := benchPolySchedule(b, n, d)
	g := topology.Regularish(n, d)
	k, err := NewSaturationKernel(s, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.RunSharded(g, 1, DefaultEnergy(), shards); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportScaleMetrics(b)
}

func BenchmarkScaleSaturation1MShards1(b *testing.B)   { benchScaleSaturation1M(b, 1) }
func BenchmarkScaleSaturation1MShardsMax(b *testing.B) { benchScaleSaturation1M(b, -1) }

func benchScaleConvergecast100k(b *testing.B, shards int) {
	skipUnlessScale(b, "the n=100000 convergecast benchmark")
	const n, d = 100_000, 4
	s := benchPolySchedule(b, n, d)
	g := topology.Grid(250, 400)
	k, err := NewConvergecastKernel(g, s, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ConvergecastConfig{Sink: 0, Rate: 0.002, Frames: 2, Seed: 7, Shards: shards}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportScaleMetrics(b)
}

func BenchmarkScaleConvergecast100kShards1(b *testing.B)   { benchScaleConvergecast100k(b, 1) }
func BenchmarkScaleConvergecast100kShardsMax(b *testing.B) { benchScaleConvergecast100k(b, -1) }
