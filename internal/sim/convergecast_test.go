package sim

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// TestConvergecastForwardingQueueDrop forces a drop at a relay rather than
// at generation: on a line 2→1→0 with MaxQueue=1, node 1's own packet
// occupies its queue, so a packet forwarded up from node 2 finds the relay
// full and is dropped in the reception path. Distinguishes the two Dropped
// accounting sites in the loop.
func TestConvergecastForwardingQueueDrop(t *testing.T) {
	g := topology.Line(3)
	s := tdmaSchedule(t, 3)
	for _, legacy := range []bool{false, true} {
		res, err := RunConvergecast(g, s, ConvergecastConfig{
			Sink: 0, Rate: 0.8, Frames: 60, MaxQueue: 1, Seed: 9, Legacy: legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped == 0 {
			t.Fatalf("legacy=%v: relay under load with MaxQueue=1 dropped nothing", legacy)
		}
		if res.Delivered == 0 {
			t.Fatalf("legacy=%v: nothing delivered", legacy)
		}
		// Conservation: everything generated is delivered, dropped, or
		// still queued (no in-flight leakage across the measurement cut in
		// a warmup-free run).
		if res.Generated != res.Delivered+res.Dropped+res.InFlight {
			t.Fatalf("legacy=%v: %d generated != %d delivered + %d dropped + %d in flight",
				legacy, res.Generated, res.Delivered, res.Dropped, res.InFlight)
		}
	}
}

// TestConvergecastWarmupEnergySemantics pins the WarmupFrames contract:
// warmup slots are simulated (they cost energy and shape queues) but are
// excluded from the packet counters. A run with W warmup + F measured
// frames spends exactly the energy of a W+F-frame run with no warmup —
// same seed, same trajectory, different measurement cut — while counting
// strictly fewer generated packets.
func TestConvergecastWarmupEnergySemantics(t *testing.T) {
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	const w, f = 6, 10
	warm, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.2, Frames: f, WarmupFrames: w, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.2, Frames: w + f, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalEnergy != full.TotalEnergy {
		t.Fatalf("warmup energy %v != full-run energy %v (identical trajectories)", warm.TotalEnergy, full.TotalEnergy)
	}
	if !reflect.DeepEqual(warm.EnergyPerNode, full.EnergyPerNode) {
		t.Fatal("per-node energy differs between identical trajectories")
	}
	if warm.Generated >= full.Generated {
		t.Fatalf("warmup run counted %d generated, full run %d — warmup not excluded", warm.Generated, full.Generated)
	}
	if warm.ActiveFraction != full.ActiveFraction {
		t.Fatalf("ActiveFraction %v != %v on identical trajectories", warm.ActiveFraction, full.ActiveFraction)
	}
}

// TestConvergecastSinglePhaseEqualsConstantRate pins the Phases cycling
// semantics: one phase spanning any duration is indistinguishable — field
// for field — from the constant Rate it encodes, whatever the phase length
// relative to the frame.
func TestConvergecastSinglePhaseEqualsConstantRate(t *testing.T) {
	g := topology.Ring(5)
	s := tdmaSchedule(t, 5)
	base := ConvergecastConfig{Sink: 0, Rate: 0.3, Frames: 8, Seed: 13}
	constant, err := RunConvergecast(g, s, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, phaseSlots := range []int{1, 3, 7} { // shorter than, incommensurate with, longer than L=5
		phased := base
		phased.Rate = 0.9 // must be ignored when Phases is set
		phased.Phases = []TrafficPhase{{Slots: phaseSlots, Rate: 0.3}}
		res, err := RunConvergecast(g, s, phased)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, constant) {
			t.Fatalf("phase of %d slots at the constant rate diverged from the plain-rate run", phaseSlots)
		}
	}
}

// TestConvergecastZeroRatePhaseGeneratesNothing: an all-quiet phase
// pattern consumes no randomness and generates no traffic, on both paths.
func TestConvergecastZeroRatePhaseGeneratesNothing(t *testing.T) {
	g := topology.Ring(5)
	s := tdmaSchedule(t, 5)
	for _, legacy := range []bool{false, true} {
		res, err := RunConvergecast(g, s, ConvergecastConfig{
			Sink: 0, Frames: 6, Seed: 17, Legacy: legacy,
			Phases: []TrafficPhase{{Slots: 4, Rate: 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Generated != 0 || res.Delivered != 0 || res.InFlight != 0 {
			t.Fatalf("legacy=%v: quiet network moved packets: %+v", legacy, res)
		}
		if res.DeliveryRatio != 1 {
			t.Fatalf("legacy=%v: empty run DeliveryRatio = %v, want 1", legacy, res.DeliveryRatio)
		}
	}
}

func TestConvergecastInvalidPhaseRejected(t *testing.T) {
	g := topology.Ring(5)
	s := tdmaSchedule(t, 5)
	for _, phases := range [][]TrafficPhase{
		{{Slots: 0, Rate: 0.5}},
		{{Slots: -2, Rate: 0.5}},
		{{Slots: 3, Rate: -0.1}},
		{{Slots: 3, Rate: 0.5}, {Slots: 0, Rate: 1}},
	} {
		if _, err := RunConvergecast(g, s, ConvergecastConfig{
			Sink: 0, Frames: 2, Phases: phases,
		}); err == nil {
			t.Fatalf("invalid phases %+v accepted", phases)
		}
	}
}
