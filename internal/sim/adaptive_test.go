package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

func adaptivePair(t *testing.T) (low, high *core.Schedule) {
	t.Helper()
	high = polySchedule(t, 25, 2) // non-sleeping: max throughput
	var err error
	low, err = core.Construct(high, core.ConstructOptions{AlphaT: 2, AlphaR: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	return low, high
}

func TestNewAdaptiveValidation(t *testing.T) {
	low, high := adaptivePair(t)
	if _, err := NewAdaptive(nil, high, 0.5, 0.1); err == nil {
		t.Fatal("nil schedule accepted")
	}
	other := tdmaSchedule(t, 5)
	if _, err := NewAdaptive(low, other, 0.5, 0.1); err == nil {
		t.Fatal("universe mismatch accepted")
	}
	if _, err := NewAdaptive(low, high, 0.1, 0.5); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	if _, err := NewAdaptive(low, high, 1.5, 0.1); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

func TestAdaptiveStaysLowWhenIdle(t *testing.T) {
	low, high := adaptivePair(t)
	p, err := NewAdaptive(low, high, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.RandomBoundedDegree(25, 2, 3, statsRNG(1))
	res, err := RunConvergecastProtocol(g, p, ConvergecastConfig{
		Sink: 0, Rate: 0, Frames: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Switches() != 0 {
		t.Fatalf("idle network switched %d times", p.Switches())
	}
	if p.Current() != low {
		t.Fatal("idle network should stay on the low-power schedule")
	}
	_ = res
}

func TestAdaptiveSwitchesUpUnderLoad(t *testing.T) {
	low, high := adaptivePair(t)
	p, err := NewAdaptive(low, high, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.RandomBoundedDegree(25, 2, 3, statsRNG(2))
	_, err = RunConvergecastProtocol(g, p, ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Switches() == 0 {
		t.Fatal("loaded network never switched up")
	}
}

func TestAdaptiveBeatsStaticExtremes(t *testing.T) {
	// Under heavy load, adaptive should deliver more than the low-power
	// static schedule per slot; under light load it should spend less
	// energy per slot than the always-on schedule.
	low, high := adaptivePair(t)
	g := topology.RandomBoundedDegree(25, 2, 3, statsRNG(3))
	slots := 20000

	runWith := func(proto Protocol, rate float64) *ConvergecastResult {
		frames := slots / proto.FrameLen()
		res, err := RunConvergecastProtocol(g, proto, ConvergecastConfig{
			Sink: 0, Rate: rate, Frames: frames, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Heavy load: adaptive vs static low.
	pHeavy, _ := NewAdaptive(low, high, 0.05, 0.01)
	adaptHeavy := runWith(pHeavy, 0.01)
	staticLowHeavy := runWith(ScheduleProtocol{S: low}, 0.01)
	if adaptHeavy.Delivered <= staticLowHeavy.Delivered {
		t.Fatalf("adaptive under load delivered %d <= static low %d",
			adaptHeavy.Delivered, staticLowHeavy.Delivered)
	}

	// Light load: adaptive vs static high (energy per slot).
	pLight, _ := NewAdaptive(low, high, 0.05, 0.01)
	adaptLight := runWith(pLight, 0.0002)
	staticHighLight := runWith(ScheduleProtocol{S: high}, 0.0002)
	aSlots := float64((slots / pLight.FrameLen()) * pLight.FrameLen())
	hSlots := float64((slots / high.L()) * high.L())
	if adaptLight.TotalEnergy/aSlots >= staticHighLight.TotalEnergy/hSlots {
		t.Fatalf("adaptive under light load spent %.6f J/slot >= always-on %.6f",
			adaptLight.TotalEnergy/aSlots, staticHighLight.TotalEnergy/hSlots)
	}
}

func TestAdaptiveFrameAlignedSwitching(t *testing.T) {
	// Roles within one frame always come from a single schedule: replaying
	// the queries slot by slot, the role pattern of each frame must match
	// either Low or High exactly.
	low, high := adaptivePair(t)
	p, err := NewAdaptive(low, high, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	n := low.N()
	slot := 0
	for f := 0; f < 6; f++ {
		// The switch decision happens lazily at the first query of a new
		// frame, so prime the protocol with one query, then read Current().
		wantTxOf := func(v int) bool { return (f%2 == 0) && v%2 == 0 }
		first := p.Role(0, slot, wantTxOf(0))
		sched := p.Current()
		frameLen := sched.L()
		checkRole := func(v, i int, got core.Role) {
			want := sched.RoleOf(v, i)
			if want == core.Transmit && !wantTxOf(v) {
				want = core.Sleep
			}
			if got != want {
				t.Fatalf("frame %d slot %d node %d: role %v, want %v (mid-frame switch?)",
					f, i, v, got, want)
			}
		}
		checkRole(0, 0, first)
		for v := 1; v < n; v++ {
			checkRole(v, 0, p.Role(v, slot, wantTxOf(v)))
		}
		slot++
		for i := 1; i < frameLen; i++ {
			for v := 0; v < n; v++ {
				checkRole(v, i, p.Role(v, slot, wantTxOf(v)))
			}
			slot++
		}
	}
}

// statsRNG is a tiny helper so tests read naturally.
func statsRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }
