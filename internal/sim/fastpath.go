package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

const wordBits = 64

// energyFromCounts prices a node-slot census under an energy model. Both the
// legacy reference loops and the SoA fast paths compute radio energy through
// this one expression, from identical integer counters, which is what makes
// the energy fields of their results byte-identical rather than merely close:
// float addition is not associative, so the two paths must not accumulate
// per-slot terms in different orders.
//
//ttdc:hotpath the single energy-pricing expression both simulator paths fold their censuses through
func energyFromCounts(em EnergyModel, tx, rx, sleep int) float64 {
	return float64(tx)*em.TxPower*em.SlotSeconds +
		float64(rx)*em.RxPower*em.SlotSeconds +
		float64(sleep)*em.SleepPower*em.SlotSeconds
}

// finishSaturation derives every reported field of res from the integer core
// of a saturation run: whole-run delivery counts per directed link in u-major
// order (u ascending, then v ascending within Neighbors(u)), and whole-run
// transmit-role / receive-role node-slot counts. The legacy loop and the fast
// path both end here, so the derived floats (per-frame rates, throughputs,
// energy, active fraction) are structurally identical between them.
func finishSaturation(res *SaturationResult, g *topology.Graph, em EnergyModel, linkCounts []int, txSlots, rxSlots int) {
	n := g.N()
	frames, L := res.Frames, res.SlotsPerFrame
	delivered := make(map[int]map[int]int, n)
	totalLinks := 0
	totalDeliveries := 0
	minPerFrame := -1.0
	id := 0
	for u := 0; u < n; u++ {
		delivered[u] = make(map[int]int)
		g.ForEachNeighbor(u, func(v int) bool {
			d := linkCounts[id]
			id++
			if d > 0 {
				delivered[u][v] = d
			}
			totalLinks++
			totalDeliveries += d
			perFrame := float64(d) / float64(frames)
			if minPerFrame < 0 || perFrame < minPerFrame {
				minPerFrame = perFrame
			}
			return true
		})
	}
	res.Delivered = delivered
	if totalLinks > 0 {
		res.MinLinkPerFrame = minPerFrame
		res.AvgLinkPerFrame = float64(totalDeliveries) / float64(totalLinks) / float64(frames)
		res.MinLinkThroughput = res.MinLinkPerFrame / float64(L)
		res.AvgLinkThroughput = res.AvgLinkPerFrame / float64(L)
	}
	res.TotalEnergy = energyFromCounts(em, txSlots, rxSlots, n*L*frames-txSlots-rxSlots)
	if totalDeliveries > 0 {
		res.EnergyPerDelivery = res.TotalEnergy / float64(totalDeliveries)
	} else {
		res.EnergyPerDelivery = 0
		if res.TotalEnergy > 0 {
			res.EnergyPerDelivery = res.TotalEnergy // degenerate; callers inspect deliveries
		}
	}
	res.ActiveFraction = float64(txSlots+rxSlots) / float64(n*L*frames)
}

// SaturationKernel is the topology-independent precomputation of the
// saturation fast path: per-node transmit-slot words, receive-role slot
// words (recv \ tran — RoleOf gives Transmit precedence), and the per-frame
// role census. A kernel is a pure function of (schedule, n); it is immutable
// after construction and safe for concurrent Run calls, so a campaign can
// build it once per grid point and share it across every replication's
// topology on the engine worker pool.
type SaturationKernel struct {
	s  *core.Schedule
	n  int
	l  int
	lw int // words per L-bit slot row
	// tran[u] aliases the schedule's tran(u) backing words (read-only).
	tran [][]uint64
	// rxOnly is the flat n×lw struct-of-arrays row block: rxOnly[u*lw:(u+1)*lw]
	// holds recv(u) &^ tran(u), the slots in which u has the Receive role.
	rxOnly []uint64
	// txPerFrame and rxPerFrame are Σ_u |tran(u)| and Σ_u |recv(u) \ tran(u)|:
	// the per-frame node-slot role census that prices energy and duty cycle.
	txPerFrame, rxPerFrame int
}

// NewSaturationKernel precomputes the fast-path state for saturation runs of
// schedule s over graphs on exactly n nodes (n may be smaller than the
// schedule's universe; the extra schedule nodes exist in no topology and are
// ignored, as in the legacy loop).
func NewSaturationKernel(s *core.Schedule, n int) (*SaturationKernel, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: kernel needs n >= 1, got %d", n)
	}
	if n > s.N() {
		return nil, fmt.Errorf("sim: graph has %d nodes but schedule supports %d", n, s.N())
	}
	l := s.L()
	lw := (l + wordBits - 1) / wordBits
	k := &SaturationKernel{
		s:      s,
		n:      n,
		l:      l,
		lw:     lw,
		tran:   make([][]uint64, n),
		rxOnly: make([]uint64, n*lw),
	}
	for u := 0; u < n; u++ {
		tw := s.Tran(u).Words()
		rw := s.Recv(u).Words()
		k.tran[u] = tw
		row := k.rxOnly[u*lw : (u+1)*lw]
		for j := 0; j < lw; j++ {
			t := tw[j]
			r := rw[j] &^ t
			row[j] = r
			k.txPerFrame += bits.OnesCount64(t)
			k.rxPerFrame += bits.OnesCount64(r)
		}
	}
	return k, nil
}

// N returns the node-universe size the kernel was built for.
func (k *SaturationKernel) N() int { return k.n }

// satFastScratch is the per-run working state of the fast path, pooled so a
// campaign of many runs reuses one buffer set per worker.
type satFastScratch struct {
	offset, cursor []int // u-major link-id assignment during the transpose
	vmaj           []int // whole-run deliveries per directed link, v-major
	linkCounts     []int // whole-run deliveries per directed link, u-major
}

var satFastPool = sync.Pool{New: func() any { return new(satFastScratch) }}

// reset sizes the scratch for n nodes and nLinks directed links, and clears
// what must start zeroed.
func (sc *satFastScratch) reset(n, nLinks int) {
	if cap(sc.offset) < n {
		sc.offset = make([]int, n)
		sc.cursor = make([]int, n)
	}
	sc.offset = sc.offset[:n]
	sc.cursor = sc.cursor[:n]
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
	if cap(sc.vmaj) < nLinks {
		sc.vmaj = make([]int, nLinks)
		sc.linkCounts = make([]int, nLinks)
	}
	sc.vmaj = sc.vmaj[:nLinks]
	sc.linkCounts = sc.linkCounts[:nLinks]
}

// satShardScratch is one shard worker's private slot rows, pooled
// separately from the run-wide scratch so shards=N runs borrow N row sets.
type satShardScratch struct {
	once, many, x1 []uint64 // L-bit rows: transmit-count parity, ≥2, exactly-1
}

var satShardPool = sync.Pool{New: func() any { return new(satShardScratch) }}

func (ss *satShardScratch) reset(lw int) {
	if cap(ss.once) < lw {
		ss.once = make([]uint64, lw)
		ss.many = make([]uint64, lw)
		ss.x1 = make([]uint64, lw)
	}
	ss.once = ss.once[:lw]
	ss.many = ss.many[:lw]
	ss.x1 = ss.x1[:lw]
}

// Run executes a saturation run on g using the word-parallel fast path. The
// saturation workload is frame-periodic — every node transmits in every
// eligible slot, so the delivery pattern of slot i is identical in every
// frame — which lets the fast path resolve a single frame with bitset word
// operations and scale the integer counters by the frame count. The result
// is field-for-field identical to RunSaturationLegacy on the same inputs
// (pinned by the differential matrix and fuzz harness in this package).
func (k *SaturationKernel) Run(g *topology.Graph, frames int, em EnergyModel) (*SaturationResult, error) {
	return k.RunSharded(g, frames, em, 1)
}

// resolveRange resolves the receiver rows [lo, hi) of one frame: for each
// receiver v, a saturating two-bit counter over its neighbours'
// transmit-slot words yields the slots with exactly one transmitting
// neighbour (once &^ many) and with two or more (many) in
// O(deg(v) · L/64) word operations, then each incoming link's delivery
// count and inter-delivery gaps are read off x1 ∩ tran(u). Whole-run
// per-link counts are written to vmaj in v-major order (the write range is
// vmaj[inOff[lo]:inOff[hi]], disjoint across shards). Returns the range's
// per-frame collision-slot count and its maximum inter-delivery gap.
//
//ttdc:hotpath per-shard saturation frame resolution; all rows come pooled and presized from the caller
func (k *SaturationKernel) resolveRange(g *topology.Graph, lo, hi, frames int,
	ss *satShardScratch, inOff []int, vmaj []int) (collPerFrame, maxGap int) {
	l, lw := k.l, k.lw
	once, many, x1 := ss.once, ss.many, ss.x1
	id := inOff[lo]
	for v := lo; v < hi; v++ {
		for j := range once {
			once[j] = 0
			many[j] = 0
		}
		g.ForEachNeighbor(v, func(u int) bool {
			tw := k.tran[u]
			for j := range once {
				carry := once[j] & tw[j]
				once[j] ^= tw[j]
				many[j] |= carry
			}
			return true
		})
		rx := k.rxOnly[v*lw : (v+1)*lw]
		for j := range rx {
			collPerFrame += bits.OnesCount64(rx[j] & many[j])
			x1[j] = rx[j] & once[j] &^ many[j]
		}
		// Per incoming link u→v: the delivery slots of one frame are
		// x1 ∩ tran(u) (if u is the unique transmitting neighbour of a
		// slot and u transmits, u is the sender). Inter-delivery gaps over
		// the whole run follow from the periodic pattern: consecutive
		// in-frame gaps, plus the frame-wrap gap when the run has a second
		// frame for the pattern to repeat into.
		g.ForEachNeighbor(v, func(u int) bool {
			tw := k.tran[u]
			cnt := 0
			first, prev := -1, -1
			for j := range x1 {
				w := x1[j] & tw[j]
				for w != 0 {
					b := j*wordBits + bits.TrailingZeros64(w)
					w &= w - 1
					if prev >= 0 {
						if gap := b - prev - 1; gap > maxGap {
							maxGap = gap
						}
					} else {
						first = b
					}
					prev = b
					cnt++
				}
			}
			if cnt > 0 && frames > 1 {
				if gap := first + l - prev - 1; gap > maxGap {
					maxGap = gap
				}
			}
			vmaj[id] = cnt * frames
			id++
			return true
		})
	}
	return collPerFrame, maxGap
}

// RunSharded is Run with the receiver-major frame resolution split across
// the given number of shards (see resolveShards for the count semantics:
// 0 or 1 sequential, negative one per CPU). Each shard resolves a
// contiguous word-aligned receiver range into its own pooled slot rows and
// a disjoint v-major span of the shared per-link counters; the shards'
// collision and gap counters are then merged in ascending shard order.
// Integer sums and maxima are associative, so the result is byte-identical
// at every shard count — RunSharded(g, f, em, n) and Run(g, f, em) return
// reflect.DeepEqual results (pinned by the differential matrix and fuzz
// harness in this package).
func (k *SaturationKernel) RunSharded(g *topology.Graph, frames int, em EnergyModel, shards int) (*SaturationResult, error) {
	if g.N() != k.n {
		return nil, fmt.Errorf("sim: kernel built for %d nodes but graph has %d", k.n, g.N())
	}
	if frames < 1 {
		return nil, fmt.Errorf("sim: frames = %d", frames)
	}
	n, lw := k.n, k.lw
	res := &SaturationResult{
		Frames:        frames,
		SlotsPerFrame: k.l,
	}
	// u-major link ids: offset[u] is the id of u's first outgoing link. The
	// same prefix array gives the v-major spans (in-neighbours equal
	// out-neighbours in an undirected graph).
	nLinks := 0
	sc := satFastPool.Get().(*satFastScratch)
	defer satFastPool.Put(sc)
	sc.reset(n, 2*g.EdgeCount())
	for u := 0; u < n; u++ {
		sc.offset[u] = nLinks
		nLinks += g.Degree(u)
	}
	collPerFrame := 0
	maxGap := 0
	ranges := shardRanges(n, resolveShards(shards, n))
	if len(ranges) == 1 {
		ss := satShardPool.Get().(*satShardScratch)
		ss.reset(lw)
		collPerFrame, maxGap = k.resolveRange(g, 0, n, frames, ss, sc.offset, sc.vmaj)
		satShardPool.Put(ss)
	} else {
		colls := make([]int, len(ranges))
		gaps := make([]int, len(ranges))
		var wg sync.WaitGroup
		for si, r := range ranges {
			wg.Add(1)
			//lint:ignore poolescape the goroutine reads sc.offset/sc.vmaj only until wg.Done; wg.Wait below joins every shard before the deferred Put releases sc
			go func(si, lo, hi int) {
				defer wg.Done()
				ss := satShardPool.Get().(*satShardScratch)
				ss.reset(lw)
				colls[si], gaps[si] = k.resolveRange(g, lo, hi, frames, ss, sc.offset, sc.vmaj)
				satShardPool.Put(ss)
			}(si, r[0], r[1])
		}
		wg.Wait()
		// Deterministic ascending-shard reduction (order-insensitive for
		// integer + and max, kept explicit as the documented discipline).
		for si := range ranges {
			collPerFrame += colls[si]
			if gaps[si] > maxGap {
				maxGap = gaps[si]
			}
		}
	}
	// Sequential v-major → u-major transpose: the id assignment below visits
	// links in exactly the order the pre-shard implementation wrote them, so
	// linkCounts is bit-for-bit the array finishSaturation always consumed.
	id := 0
	for v := 0; v < n; v++ {
		g.ForEachNeighbor(v, func(u int) bool {
			sc.linkCounts[sc.offset[u]+sc.cursor[u]] = sc.vmaj[id]
			sc.cursor[u]++
			id++
			return true
		})
	}
	res.CollisionSlots = collPerFrame * frames
	res.MaxInterDeliveryGap = maxGap
	finishSaturation(res, g, em, sc.linkCounts[:nLinks], k.txPerFrame*frames, k.rxPerFrame*frames)
	return res, nil
}
