package sim

import (
	"math"
	"testing"

	"repro/internal/cff"
	"repro/internal/combin"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

func tdmaSchedule(t *testing.T, n int) *core.Schedule {
	t.Helper()
	fam, err := cff.Identity(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func polySchedule(t *testing.T, n, d int) *core.Schedule {
	t.Helper()
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaturationMatchesAnalyticalGuarantees(t *testing.T) {
	// On any topology within the class, the saturation simulator must
	// observe exactly the analytical per-link guaranteed counts: with every
	// node transmitting whenever eligible, deliveries happen in precisely
	// the 𝒯 slots.
	g := topology.Regularish(9, 2)
	s := polySchedule(t, 9, 2)
	res, err := RunSaturation(g, s, 3, DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	want := GuaranteedPerLink(g, s)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			got := res.Delivered[u][v]
			if got != want[u][v]*res.Frames {
				t.Fatalf("link %d→%d: sim %d, analytic %d per frame × %d frames",
					u, v, got, want[u][v], res.Frames)
			}
		}
	}
	if res.MinLinkPerFrame < 1 {
		t.Fatalf("TT schedule must deliver ≥1 per frame per link, got %v", res.MinLinkPerFrame)
	}
}

func TestSaturationTDMAIsCollisionFree(t *testing.T) {
	g := topology.Ring(6)
	s := tdmaSchedule(t, 6)
	res, err := RunSaturation(g, s, 2, DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionSlots != 0 {
		t.Fatalf("TDMA saturation produced %d collisions", res.CollisionSlots)
	}
	// Each directed ring link delivers exactly once per frame.
	if res.MinLinkPerFrame != 1 || res.AvgLinkPerFrame != 1 {
		t.Fatalf("per-frame deliveries min=%v avg=%v, want 1", res.MinLinkPerFrame, res.AvgLinkPerFrame)
	}
	if res.MinLinkThroughput != 1.0/6.0 {
		t.Fatalf("throughput %v, want 1/6", res.MinLinkThroughput)
	}
	// Non-sleeping schedule: everyone awake in every slot.
	if res.ActiveFraction != 1 {
		t.Fatalf("ActiveFraction = %v", res.ActiveFraction)
	}
}

func TestSaturationMinAboveScheduleMinThroughput(t *testing.T) {
	// Thr^min minimizes over every topology in the class, so any single
	// in-class topology must observe at least Thr^min per link.
	n, d := 9, 2
	s := polySchedule(t, n, d)
	minThr := combin.RatFloat(core.MinThroughput(s, d))
	g := topology.Regularish(n, d)
	res, err := RunSaturation(g, s, 2, DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if res.MinLinkThroughput < minThr-1e-12 {
		t.Fatalf("sim min %v below analytical Thr^min %v", res.MinLinkThroughput, minThr)
	}
}

func TestSaturationCollisionsOnDenseGraph(t *testing.T) {
	// A complete-ish graph with a schedule designed for D=2 must show
	// collisions (degrees exceed the class), demonstrating the simulator's
	// collision rule.
	g := topology.Regularish(9, 4)
	s := polySchedule(t, 9, 2) // only guarantees D=2
	res, err := RunSaturation(g, s, 1, DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionSlots == 0 {
		t.Fatal("expected collisions when degree exceeds the class bound")
	}
}

func TestSaturationEnergyAccounting(t *testing.T) {
	g := topology.Ring(4)
	s := tdmaSchedule(t, 4)
	em := EnergyModel{TxPower: 2, RxPower: 1, SleepPower: 0, SlotSeconds: 1}
	res, err := RunSaturation(g, s, 1, em)
	if err != nil {
		t.Fatal(err)
	}
	// Per frame: 4 slots × (1 tx × 2W + 3 rx × 1W) = 4 × 5 = 20 J.
	if math.Abs(res.TotalEnergy-20) > 1e-9 {
		t.Fatalf("TotalEnergy = %v, want 20", res.TotalEnergy)
	}
	if res.EnergyPerDelivery <= 0 {
		t.Fatal("EnergyPerDelivery should be positive")
	}
}

func TestSaturationInputValidation(t *testing.T) {
	g := topology.Ring(10)
	s := tdmaSchedule(t, 4)
	if _, err := RunSaturation(g, s, 1, DefaultEnergy()); err == nil {
		t.Fatal("graph larger than schedule accepted")
	}
	g2 := topology.Ring(4)
	if _, err := RunSaturation(g2, s, 0, DefaultEnergy()); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestConvergecastDeliversEverything(t *testing.T) {
	// Light load on a small line with TDMA: every packet should reach the
	// sink, in order, with plausible latency.
	g := topology.Line(5)
	s := tdmaSchedule(t, 5)
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink:   0,
		Rate:   0.01,
		Frames: 400,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if res.Delivered+res.InFlight+res.Dropped < res.Generated {
		t.Fatalf("packet conservation violated: gen=%d del=%d inflight=%d drop=%d",
			res.Generated, res.Delivered, res.InFlight, res.Dropped)
	}
	if res.DeliveryRatio < 0.9 {
		t.Fatalf("delivery ratio %v too low for light load", res.DeliveryRatio)
	}
	if res.Latency.N() == 0 || res.Latency.Min() < 1 {
		t.Fatalf("latency summary implausible: %v", res.Latency.String())
	}
	if res.Collisions != 0 {
		t.Fatalf("TDMA convergecast should be collision-free, got %d", res.Collisions)
	}
}

func TestConvergecastLatencyGrowsWithDistance(t *testing.T) {
	// A packet from the far end of a line must take at least one frame per
	// hop under TDMA (each hop waits for its slot).
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.002, Frames: 600, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Latency.Max() < 3 {
		t.Fatalf("max latency %v implausibly small for a 3-hop line", res.Latency.Max())
	}
}

func TestConvergecastDutyCycledSavesEnergy(t *testing.T) {
	// The headline claim: a constructed (αT, αR)-schedule spends less
	// energy per slot than the non-sleeping original, while still
	// delivering.
	n, d := 9, 2
	ns := polySchedule(t, n, d)
	duty, err := core.Construct(ns, core.ConstructOptions{AlphaT: 2, AlphaR: 3, D: d})
	if err != nil {
		t.Fatal(err)
	}
	g := topology.RandomBoundedDegree(n, d, 2, stats.NewRNG(5))
	cfgFor := func(s *core.Schedule) ConvergecastConfig {
		return ConvergecastConfig{Sink: 0, Rate: 0.005, Frames: 3000 / s.L(), Seed: 11}
	}
	full, err := RunConvergecast(g, ns, cfgFor(ns))
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := RunConvergecast(g, duty, cfgFor(duty))
	if err != nil {
		t.Fatal(err)
	}
	if cycled.ActiveFraction >= full.ActiveFraction {
		t.Fatalf("duty cycling did not reduce active fraction: %v vs %v",
			cycled.ActiveFraction, full.ActiveFraction)
	}
	if cycled.Delivered == 0 {
		t.Fatal("duty-cycled schedule delivered nothing")
	}
	// Per-slot energy must drop (that is what αR < n-αT buys).
	perSlotFull := full.TotalEnergy / float64(full.Generated+1)
	perSlotCycled := cycled.TotalEnergy / float64(cycled.Generated+1)
	_ = perSlotFull
	_ = perSlotCycled
	slotsFull := float64(ns.L() * (3000 / ns.L()))
	slotsCycled := float64(duty.L() * (3000 / duty.L()))
	if cycled.TotalEnergy/slotsCycled >= full.TotalEnergy/slotsFull {
		t.Fatalf("energy per slot did not drop: %v vs %v",
			cycled.TotalEnergy/slotsCycled, full.TotalEnergy/slotsFull)
	}
}

func TestConvergecastValidation(t *testing.T) {
	g := topology.Line(4)
	s := tdmaSchedule(t, 4)
	if _, err := RunConvergecast(g, s, ConvergecastConfig{Sink: 9, Rate: 0.1, Frames: 1}); err == nil {
		t.Fatal("bad sink accepted")
	}
	if _, err := RunConvergecast(g, s, ConvergecastConfig{Sink: 0, Rate: -1, Frames: 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := RunConvergecast(g, s, ConvergecastConfig{Sink: 0, Rate: 0.1, Frames: 0}); err == nil {
		t.Fatal("zero frames accepted")
	}
	// Disconnected topology rejected.
	g2 := topology.NewGraph(4)
	g2.AddEdge(0, 1)
	if _, err := RunConvergecast(g2, s, ConvergecastConfig{Sink: 0, Rate: 0.1, Frames: 1}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestConvergecastQueueDrops(t *testing.T) {
	// Saturating rate with a tiny queue must drop packets.
	g := topology.Star(6)
	s := tdmaSchedule(t, 6)
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.9, Frames: 50, MaxQueue: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops under overload")
	}
	if res.DeliveryRatio >= 1 {
		t.Fatal("overload should not deliver everything")
	}
}

func TestConvergecastWarmupExcluded(t *testing.T) {
	g := topology.Line(3)
	s := tdmaSchedule(t, 3)
	res, err := RunConvergecast(g, s, ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 100, WarmupFrames: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Energy includes warmup; counts only post-warmup. Just sanity checks.
	if res.Generated == 0 || res.TotalEnergy <= 0 {
		t.Fatal("warmup run produced no data")
	}
}

func TestPoissonDrawMean(t *testing.T) {
	rng := stats.NewRNG(123)
	const rate = 0.3
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poissonDraw(rng, rate)
	}
	mean := float64(sum) / n
	if math.Abs(mean-rate) > 0.01 {
		t.Fatalf("Poisson mean %v, want ~%v", mean, rate)
	}
}

func TestDefaultEnergyOrdering(t *testing.T) {
	em := DefaultEnergy()
	if !(em.RxPower > em.SleepPower && em.TxPower > em.SleepPower) {
		t.Fatal("energy model ordering broken")
	}
	if em.slotEnergy(true, false) != em.TxPower*em.SlotSeconds {
		t.Fatal("tx slot energy wrong")
	}
	if em.slotEnergy(false, true) != em.RxPower*em.SlotSeconds {
		t.Fatal("rx slot energy wrong")
	}
	if em.slotEnergy(false, false) != em.SleepPower*em.SlotSeconds {
		t.Fatal("sleep slot energy wrong")
	}
}

func BenchmarkSaturationPoly9(b *testing.B) {
	g := topology.Regularish(9, 2)
	fam, _ := cff.PolynomialFor(9, 2)
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSaturation(g, s, 1, DefaultEnergy()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergecastLine10(b *testing.B) {
	g := topology.Line(10)
	fam, _ := cff.Identity(10)
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConvergecast(g, s, ConvergecastConfig{Sink: 0, Rate: 0.01, Frames: 20, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
