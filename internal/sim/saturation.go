package sim

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

// SaturationResult reports a saturation run: every node transmitted in
// every slot it was eligible, the paper's worst-case traffic assumption.
type SaturationResult struct {
	// Frames is the number of whole frames simulated.
	Frames int
	// SlotsPerFrame is the schedule's frame length.
	SlotsPerFrame int
	// Delivered[u][v] counts slots in which v (a neighbour of u) received
	// u's transmission collision-free, over the whole run.
	Delivered map[int]map[int]int
	// MinLinkPerFrame is the smallest per-frame delivery count over all
	// directed links u→v of the topology.
	MinLinkPerFrame float64
	// AvgLinkPerFrame is the mean per-frame delivery count over all
	// directed links.
	AvgLinkPerFrame float64
	// MinLinkThroughput and AvgLinkThroughput divide the above by the frame
	// length, making them directly comparable to Thr^min and the per-pair
	// contribution of Thr^ave.
	MinLinkThroughput float64
	AvgLinkThroughput float64
	// CollisionSlots counts (receiver, slot) pairs in which two or more
	// neighbours transmitted simultaneously.
	CollisionSlots int
	// MaxInterDeliveryGap is the largest observed wait, in slots, between
	// consecutive deliveries on any single directed link (0 when no link
	// delivered twice). Under saturation it is directly comparable to the
	// analytical worst-case hop latency bound.
	MaxInterDeliveryGap int
	// TotalEnergy is the radio energy spent by all nodes, in joules.
	TotalEnergy float64
	// EnergyPerDelivery is TotalEnergy divided by total deliveries (Inf if
	// nothing was delivered).
	EnergyPerDelivery float64
	// ActiveFraction is the measured fraction of node-slots spent awake.
	ActiveFraction float64
}

// satScratch is the per-run working state of RunSaturationLegacy, pooled so
// a campaign of many short runs (the engine's saturation grids) reuses one
// set of buffers per worker instead of allocating ~2n² ints per job.
type satScratch struct {
	transmitting []bool
	// counts[u*n+v] counts collision-free u→v deliveries.
	counts []int
	// lastDelivery[u*n+v] is the absolute slot of the last u→v delivery,
	// or -1 before the first.
	lastDelivery []int
	// links gathers the u-major per-link counts handed to finishSaturation.
	links []int
}

var satPool = sync.Pool{New: func() any { return new(satScratch) }}

// reset sizes the scratch for n nodes and clears it.
func (sc *satScratch) reset(n int) {
	if cap(sc.transmitting) < n {
		sc.transmitting = make([]bool, n)
		sc.counts = make([]int, n*n)
		sc.lastDelivery = make([]int, n*n)
	}
	sc.transmitting = sc.transmitting[:n]
	sc.counts = sc.counts[:n*n]
	sc.lastDelivery = sc.lastDelivery[:n*n]
	for i := range sc.counts {
		sc.counts[i] = 0
		sc.lastDelivery[i] = -1
	}
	sc.links = sc.links[:0]
}

// RunSaturation simulates the worst-case load: every node of g transmits a
// (broadcast) packet in every slot the schedule lets it, and every eligible
// receiver listens. A delivery u→v is recorded when v listens and u is the
// only transmitting neighbour of v. If the schedule is topology-transparent
// for a class containing g, every directed link is guaranteed at least one
// delivery per frame.
//
// RunSaturation runs the struct-of-arrays fast path (the toggle default).
// RunSaturationLegacy runs the per-node reference loop instead; the two are
// field-for-field identical, pinned by the differential tests in this
// package. Campaigns that run many topologies against one schedule should
// build a SaturationKernel once and call Run per topology.
func RunSaturation(g *topology.Graph, s *core.Schedule, frames int, em EnergyModel) (*SaturationResult, error) {
	k, err := NewSaturationKernel(s, g.N())
	if err != nil {
		return nil, err
	}
	return k.Run(g, frames, em)
}

// RunSaturationSharded is RunSaturation with the receiver-major frame
// resolution split across shards (0 or 1 sequential, negative one per
// CPU). Results are byte-identical at every shard count; see
// SaturationKernel.RunSharded.
func RunSaturationSharded(g *topology.Graph, s *core.Schedule, frames int, em EnergyModel, shards int) (*SaturationResult, error) {
	k, err := NewSaturationKernel(s, g.N())
	if err != nil {
		return nil, err
	}
	return k.RunSharded(g, frames, em, shards)
}

// RunSaturationLegacy is the original slot-by-slot, node-by-node saturation
// loop. It is retained as the trusted differential reference for the fast
// path (the same kernel-pinning discipline internal/core uses for its naive
// verification kernels) and as the escape hatch when the fast path is ever
// in doubt.
func RunSaturationLegacy(g *topology.Graph, s *core.Schedule, frames int, em EnergyModel) (*SaturationResult, error) {
	if g.N() > s.N() {
		return nil, fmt.Errorf("sim: graph has %d nodes but schedule supports %d", g.N(), s.N())
	}
	if frames < 1 {
		return nil, fmt.Errorf("sim: frames = %d", frames)
	}
	n := g.N()
	L := s.L()
	res := &SaturationResult{
		Frames:        frames,
		SlotsPerFrame: L,
	}
	sc := satPool.Get().(*satScratch)
	defer satPool.Put(sc)
	sc.reset(n)
	transmitting, counts, lastDelivery := sc.transmitting, sc.counts, sc.lastDelivery
	txSlots, rxSlots := 0, 0
	for f := 0; f < frames; f++ {
		for i := 0; i < L; i++ {
			abs := f*L + i
			for u := 0; u < n; u++ {
				role := s.RoleOf(u, i)
				transmitting[u] = role == core.Transmit
				switch role {
				case core.Transmit:
					txSlots++
				case core.Receive:
					rxSlots++
				}
			}
			for v := 0; v < n; v++ {
				if s.RoleOf(v, i) != core.Receive {
					continue
				}
				sender := -1
				count := 0
				g.ForEachNeighbor(v, func(u int) bool {
					if transmitting[u] {
						count++
						sender = u
					}
					return true
				})
				switch {
				case count == 1:
					key := sender*n + v
					counts[key]++
					if last := lastDelivery[key]; last >= 0 {
						if gap := abs - last - 1; gap > res.MaxInterDeliveryGap {
							res.MaxInterDeliveryGap = gap
						}
					}
					lastDelivery[key] = abs
				case count > 1:
					res.CollisionSlots++
				}
			}
		}
	}
	// Gather the flat counters into u-major link order and derive every
	// reported field through the finalizer shared with the fast path.
	for u := 0; u < n; u++ {
		g.ForEachNeighbor(u, func(v int) bool {
			sc.links = append(sc.links, counts[u*n+v])
			return true
		})
	}
	finishSaturation(res, g, em, sc.links, txSlots, rxSlots)
	return res, nil
}

// GuaranteedPerLink computes, for every directed edge u→v of g, the
// analytical number of guaranteed collision-free deliveries per frame under
// schedule s with v's actual neighbourhood: |𝒯(u, v, N(v)-{u})|. In a
// saturation run the simulator must observe exactly these counts, because
// with every node transmitting whenever eligible a delivery happens in
// precisely the guaranteed slots.
func GuaranteedPerLink(g *topology.Graph, s *core.Schedule) map[int]map[int]int {
	n := g.N()
	out := make(map[int]map[int]int, n)
	for u := 0; u < n; u++ {
		out[u] = make(map[int]int)
		for _, v := range g.Neighbors(u) {
			var others []int
			for _, w := range g.Neighbors(v) {
				if w != u {
					others = append(others, w)
				}
			}
			out[u][v] = s.TSlots(u, v, others).Count()
		}
	}
	return out
}
