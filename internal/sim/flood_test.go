package sim

import (
	"testing"

	"repro/internal/topology"
)

// TestFloodFirstReceptionTracksBFSDistance checks the per-node reception
// records of a completed flood: the source holds the message at slot 0,
// everyone else has a first-reception slot consistent with its hop
// distance — under a topology-transparent schedule the frontier advances
// at least one hop per frame, so a node at distance d hears the message
// within d frames.
func TestFloodFirstReceptionTracksBFSDistance(t *testing.T) {
	const n = 9
	g := topology.Line(n)
	s := polySchedule(t, n, 2)
	proto := ScheduleProtocol{S: s}
	ecc := Eccentricity(g, 0)
	res, err := RunFlood(g, proto, FloodConfig{Source: 0, MaxFrames: ecc + 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != n || res.CompletionSlot < 0 {
		t.Fatalf("flood incomplete: covered %d of %d, completion %d", res.Covered, n, res.CompletionSlot)
	}
	_, dist := g.BFSTree(0)
	L := s.L()
	for v := 0; v < n; v++ {
		fr := res.FirstReception[v]
		switch {
		case v == 0:
			if fr != 0 {
				t.Fatalf("source FirstReception = %d, want 0", fr)
			}
		case fr < 0:
			t.Fatalf("node %d never received", v)
		case fr >= dist[v]*L:
			t.Fatalf("node %d at distance %d received in slot %d, want < %d", v, dist[v], fr, dist[v]*L)
		}
	}
	if res.CompletionSlot >= (ecc+1)*L {
		t.Fatalf("completion slot %d beyond the eccentricity bound %d", res.CompletionSlot, (ecc+1)*L)
	}
}

// TestFloodActiveFractionDenominator pins the duty-cycle accounting: a
// completed flood divides awake node-slots by the slots actually run
// (completion truncates the run), an incomplete one by the full budget.
func TestFloodActiveFractionDenominator(t *testing.T) {
	const n = 6
	g := topology.Ring(n)
	s := tdmaSchedule(t, n)
	proto := ScheduleProtocol{S: s}
	res, err := RunFlood(g, proto, FloodConfig{Source: 0, MaxFrames: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionSlot < 0 {
		t.Fatal("TDMA ring flood should complete")
	}
	// Under non-sleeping TDMA every node is awake in every slot (the holder
	// transmits in its slot, everyone listens otherwise), so the fraction
	// must be exactly 1 regardless of the denominator — while an incomplete
	// run on a disconnected-at-schedule-level setup exercises the other
	// branch below.
	if res.ActiveFraction != 1 {
		t.Fatalf("TDMA flood ActiveFraction = %v, want 1", res.ActiveFraction)
	}

	// Cut the budget to a single frame on a long line, flooding from the
	// far end so the TDMA slot order runs against the hop direction: the
	// flood cannot finish, CompletionSlot stays -1, and the denominator is
	// the full budget MaxFrames*L.
	g2 := topology.Line(8)
	s2 := tdmaSchedule(t, 8)
	short, err := RunFlood(g2, ScheduleProtocol{S: s2}, FloodConfig{Source: 7, MaxFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if short.CompletionSlot != -1 {
		t.Fatalf("one-frame flood on an 8-line completed at %d", short.CompletionSlot)
	}
	if short.Covered >= 8 || short.Covered < 2 {
		t.Fatalf("one-frame flood covered %d nodes", short.Covered)
	}
	// Sender-initiated MAC: each of the 7 non-source nodes sleeps through
	// its own transmit slot while it has nothing to offer, so over the full
	// 8×8 budget exactly 7 node-slots are dark.
	if want := float64(8*8-7) / float64(8*8); short.ActiveFraction != want {
		t.Fatalf("incomplete TDMA flood ActiveFraction = %v, want %v", short.ActiveFraction, want)
	}
}

// TestFloodSchedulePreventsFrontierCollisions contrasts the
// topology-transparent schedule with blind flooding: on a dense graph the
// schedule's guaranteed slots keep the frontier advancing even though many
// holders transmit, while ALOHA-style blind transmission collides.
func TestFloodScheduleCollisionAccounting(t *testing.T) {
	// Complete-ish graph where every node neighbours every other: with TDMA
	// only one node transmits per slot, so no collision is possible.
	const n = 5
	g := topology.NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	s := tdmaSchedule(t, n)
	res, err := RunFlood(g, ScheduleProtocol{S: s}, FloodConfig{Source: 0, MaxFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Fatalf("TDMA flood collided %d times", res.Collisions)
	}
	if res.CompletionSlot < 0 || res.CompletionSlot > s.L() {
		t.Fatalf("complete-graph TDMA flood completion %d, want within one frame", res.CompletionSlot)
	}
}

func TestFloodInputValidation(t *testing.T) {
	g := topology.Ring(4)
	s := tdmaSchedule(t, 4)
	proto := ScheduleProtocol{S: s}
	if _, err := RunFlood(g, proto, FloodConfig{Source: -1, MaxFrames: 1}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := RunFlood(g, proto, FloodConfig{Source: 4, MaxFrames: 1}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := RunFlood(g, proto, FloodConfig{Source: 0, MaxFrames: 0}); err == nil {
		t.Fatal("zero MaxFrames accepted")
	}
}
