package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// QuorumProtocol is grid-quorum duty cycling (Tseng-Hsu-Hsieh style), the
// classic asynchronous power-saving scheme: the frame is a side×side grid
// of slots and each node stays awake exactly in one row and one column.
// Any two nodes' awake sets intersect in at least two slots per frame —
// guaranteed rendezvous — but nothing prevents collisions in those slots,
// which is precisely what separates quorum duty cycling from the paper's
// topology-transparent schedules: rendezvous is necessary, collision
// freedom is what topology transparency adds.
//
// Awake slots are Receive by default; a node with traffic transmits in an
// awake slot with probability P (contention within the quorum overlap).
type QuorumProtocol struct {
	// Side is the grid dimension; the frame length is Side².
	Side int
	// P is the per-awake-slot transmission probability under backlog.
	P float64
	// rows/cols assign each node its quorum.
	rows, cols []int
	rng        *stats.RNG
	cacheSlot  int
	cache      map[int]bool
}

// NewQuorum builds a quorum protocol for n nodes over a side×side grid
// frame. Node v gets row v mod side and column (v / side) mod side, so
// assignments spread deterministically.
func NewQuorum(n, side int, p float64, seed uint64) (*QuorumProtocol, error) {
	if n < 1 || side < 2 {
		return nil, fmt.Errorf("sim: NewQuorum(n=%d, side=%d)", n, side)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("sim: quorum transmission probability %v out of (0, 1]", p)
	}
	q := &QuorumProtocol{
		Side: side, P: p,
		rows: make([]int, n), cols: make([]int, n),
		rng: stats.NewRNG(seed), cacheSlot: -1, cache: map[int]bool{},
	}
	for v := 0; v < n; v++ {
		q.rows[v] = v % side
		q.cols[v] = (v / side) % side
	}
	return q, nil
}

// Name implements Protocol.
func (q *QuorumProtocol) Name() string { return fmt.Sprintf("quorum(%dx%d)", q.Side, q.Side) }

// FrameLen implements Protocol.
func (q *QuorumProtocol) FrameLen() int { return q.Side * q.Side }

// Awake reports whether node v is awake in frame slot i (i taken modulo
// the frame).
func (q *QuorumProtocol) Awake(v, slot int) bool {
	i := slot % (q.Side * q.Side)
	return i/q.Side == q.rows[v] || i%q.Side == q.cols[v]
}

// Role implements Protocol.
func (q *QuorumProtocol) Role(node, slot int, wantTx bool) core.Role {
	if !q.Awake(node, slot) {
		return core.Sleep
	}
	if !wantTx {
		return core.Receive
	}
	if slot != q.cacheSlot {
		q.cacheSlot = slot
		for k := range q.cache {
			delete(q.cache, k)
		}
	}
	tx, ok := q.cache[node]
	if !ok {
		tx = q.rng.Bool(q.P)
		q.cache[node] = tx
	}
	if tx {
		return core.Transmit
	}
	return core.Receive
}

// OverlapSlots returns the frame slots in which both u and v are awake —
// at least two for any pair, the quorum rendezvous guarantee.
func (q *QuorumProtocol) OverlapSlots(u, v int) []int {
	var out []int
	L := q.Side * q.Side
	for i := 0; i < L; i++ {
		if q.Awake(u, i) && q.Awake(v, i) {
			out = append(out, i)
		}
	}
	return out
}
