package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DiscoveryResult reports a neighbour-discovery run: every node broadcasts
// HELLO beacons in its transmit opportunities, and each node must learn of
// each neighbour by hearing it collision-free at least once.
type DiscoveryResult struct {
	// Protocol names the MAC that was driven.
	Protocol string
	// CompleteSlot is the absolute slot by which every directed link had
	// been discovered, or -1 if the run ended first.
	CompleteSlot int
	// DiscoveredLinks counts directed links discovered; TotalLinks is the
	// number of directed links in the topology.
	DiscoveredLinks, TotalLinks int
	// LinkDiscoverySlots summarizes, over directed links, the slot at
	// which each was discovered.
	LinkDiscoverySlots stats.Summary
	// TotalEnergy is the radio energy spent by all nodes (joules).
	TotalEnergy float64
	// Collisions counts (receiver, slot) collision events.
	Collisions int
}

// RunDiscovery simulates neighbour discovery: all nodes beacon in every
// transmit opportunity (everyone always has "traffic"), and a directed link
// u→v is discovered when v hears u collision-free. Under a
// topology-transparent schedule for a class containing the topology, every
// directed link is guaranteed discovery within the FIRST frame — the
// saturation worst case is exactly the discovery workload. Contention
// protocols enjoy no such bound.
func RunDiscovery(g *topology.Graph, proto Protocol, maxFrames int, em EnergyModel, seed uint64) (*DiscoveryResult, error) {
	n := g.N()
	if maxFrames < 1 {
		return nil, fmt.Errorf("sim: maxFrames = %d", maxFrames)
	}
	res := &DiscoveryResult{
		Protocol:     proto.Name(),
		CompleteSlot: -1,
		TotalLinks:   2 * g.EdgeCount(),
	}
	known := make(map[[2]int]bool, res.TotalLinks)
	rng := stats.NewRNG(seed)
	_ = rng

	L := proto.FrameLen()
	totalSlots := maxFrames * L
	roles := make([]core.Role, n)
	transmitting := make([]bool, n)
	for slot := 0; slot < totalSlots && res.DiscoveredLinks < res.TotalLinks; slot++ {
		for v := 0; v < n; v++ {
			roles[v] = proto.Role(v, slot, true) // beacons: always have traffic
			transmitting[v] = roles[v] == core.Transmit
			res.TotalEnergy += em.slotEnergy(transmitting[v], roles[v] == core.Receive)
		}
		for v := 0; v < n; v++ {
			if roles[v] != core.Receive {
				continue
			}
			sender := -1
			count := 0
			g.NeighborSet(v).ForEach(func(u int) bool {
				if transmitting[u] {
					count++
					sender = u
				}
				return true
			})
			switch {
			case count == 1:
				key := [2]int{sender, v}
				if !known[key] {
					known[key] = true
					res.DiscoveredLinks++
					res.LinkDiscoverySlots.Add(float64(slot))
					if res.DiscoveredLinks == res.TotalLinks {
						res.CompleteSlot = slot
					}
				}
			case count > 1:
				res.Collisions++
			}
		}
	}
	return res, nil
}
