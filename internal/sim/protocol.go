package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Protocol abstracts "who does what in a slot" so the workloads can compare
// schedule-driven MACs against the contention-based ones the WSN literature
// uses as references. Implementations must be deterministic given their
// seed and the (node, slot) call order, which the workload drivers fix.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// FrameLen returns the protocol's natural period in slots (1 for
	// memoryless protocols); workloads size runs in frames.
	FrameLen() int
	// Role returns the radio state of node in the given absolute slot.
	// wantTx reports whether the node has traffic it would like to send;
	// contention protocols gate their transmit decision on it.
	Role(node, slot int, wantTx bool) core.Role
}

// TargetAware is implemented by protocols whose senders know when their
// intended receiver listens (schedule-driven MACs: the schedule is global
// knowledge). Workloads consult it to avoid hopeless transmissions; for
// protocols without it, senders transmit blindly.
type TargetAware interface {
	// ShouldTransmit reports whether node should spend a transmission on
	// target in this slot.
	ShouldTransmit(node, target, slot int) bool
}

// ScheduleProtocol drives roles from a core.Schedule: the MAC this library
// is about.
type ScheduleProtocol struct {
	S *core.Schedule
}

// Name implements Protocol.
func (p ScheduleProtocol) Name() string { return "schedule" }

// FrameLen implements Protocol.
func (p ScheduleProtocol) FrameLen() int { return p.S.L() }

// Role implements Protocol. A transmit-eligible node with nothing to send
// keeps its radio off (sender-initiated MAC).
func (p ScheduleProtocol) Role(node, slot int, wantTx bool) core.Role {
	r := p.S.RoleOf(node, slot)
	if r == core.Transmit && !wantTx {
		return core.Sleep
	}
	return r
}

// ShouldTransmit implements TargetAware: transmit only when the schedule
// lets the sender transmit and the target receive.
func (p ScheduleProtocol) ShouldTransmit(node, target, slot int) bool {
	return p.S.RoleOf(node, slot) == core.Transmit && p.S.RoleOf(target, slot) == core.Receive
}

// AlohaProtocol is slotted ALOHA: a node with traffic transmits with
// probability P each slot and listens otherwise; idle nodes always listen.
// No sleeping — the energy-hungry reference point.
type AlohaProtocol struct {
	// P is the per-slot transmission probability.
	P   float64
	rng *stats.RNG
	// cache remembers the draw for (node, slot) so repeated Role queries in
	// one slot agree.
	cacheSlot int
	cache     map[int]bool
}

// NewAloha returns a slotted-ALOHA protocol with transmission probability
// p, seeded deterministically.
func NewAloha(p float64, seed uint64) *AlohaProtocol {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("sim: ALOHA probability %v out of (0, 1]", p))
	}
	return &AlohaProtocol{P: p, rng: stats.NewRNG(seed), cacheSlot: -1, cache: map[int]bool{}}
}

// Name implements Protocol.
func (p *AlohaProtocol) Name() string { return fmt.Sprintf("aloha(p=%.2f)", p.P) }

// FrameLen implements Protocol.
func (p *AlohaProtocol) FrameLen() int { return 1 }

// Role implements Protocol.
func (p *AlohaProtocol) Role(node, slot int, wantTx bool) core.Role {
	if !wantTx {
		return core.Receive
	}
	if slot != p.cacheSlot {
		p.cacheSlot = slot
		for k := range p.cache {
			delete(p.cache, k)
		}
	}
	tx, ok := p.cache[node]
	if !ok {
		tx = p.rng.Bool(p.P)
		p.cache[node] = tx
	}
	if tx {
		return core.Transmit
	}
	return core.Receive
}

// DutyAlohaProtocol is uncoordinated duty-cycled ALOHA (in the spirit of
// Dousse-Mannersalo-Thiran's uncoordinated power saving): each slot a node
// with traffic transmits with probability PTx; otherwise it listens with
// probability PListen and sleeps the rest of the time. Saves energy with
// no delivery guarantee — the foil for coordinated duty cycling.
type DutyAlohaProtocol struct {
	PTx, PListen float64
	rng          *stats.RNG
	cacheSlot    int
	cache        map[int]core.Role
}

// NewDutyAloha returns an uncoordinated duty-cycled ALOHA protocol.
func NewDutyAloha(pTx, pListen float64, seed uint64) *DutyAlohaProtocol {
	if pTx < 0 || pTx > 1 || pListen < 0 || pListen > 1 {
		panic("sim: duty-ALOHA probabilities out of range")
	}
	return &DutyAlohaProtocol{PTx: pTx, PListen: pListen, rng: stats.NewRNG(seed), cacheSlot: -1, cache: map[int]core.Role{}}
}

// Name implements Protocol.
func (p *DutyAlohaProtocol) Name() string {
	return fmt.Sprintf("duty-aloha(tx=%.2f, rx=%.2f)", p.PTx, p.PListen)
}

// FrameLen implements Protocol.
func (p *DutyAlohaProtocol) FrameLen() int { return 1 }

// Role implements Protocol.
func (p *DutyAlohaProtocol) Role(node, slot int, wantTx bool) core.Role {
	if slot != p.cacheSlot {
		p.cacheSlot = slot
		for k := range p.cache {
			delete(p.cache, k)
		}
	}
	if r, ok := p.cache[node]; ok {
		if r == core.Transmit && !wantTx {
			return core.Receive // drew transmit but has nothing: listen
		}
		return r
	}
	var r core.Role
	switch {
	case p.rng.Bool(p.PTx):
		r = core.Transmit
	case p.rng.Bool(p.PListen):
		r = core.Receive
	default:
		r = core.Sleep
	}
	p.cache[node] = r
	if r == core.Transmit && !wantTx {
		return core.Receive
	}
	return r
}
