package sim

import (
	"math"
	"testing"
)

func TestSlotEnergyPrecedence(t *testing.T) {
	em := EnergyModel{TxPower: 3, RxPower: 5, SleepPower: 7, SlotSeconds: 2}
	// Transmit wins when both flags are set (a radio cannot do both; the
	// simulator encodes tx-precedence, matching core.RoleOf).
	if got := em.slotEnergy(true, true); got != 6 {
		t.Fatalf("slotEnergy(tx, rx) = %v, want tx price 6", got)
	}
	if got := em.slotEnergy(false, true); got != 10 {
		t.Fatalf("slotEnergy(rx) = %v, want 10", got)
	}
	if got := em.slotEnergy(false, false); got != 14 {
		t.Fatalf("slotEnergy(sleep) = %v, want 14", got)
	}
}

func TestDefaultEnergyValues(t *testing.T) {
	em := DefaultEnergy()
	want := EnergyModel{TxPower: 0.0522, RxPower: 0.0564, SleepPower: 0.000003, SlotSeconds: 0.010}
	if em != want {
		t.Fatalf("DefaultEnergy() = %+v, want %+v", em, want)
	}
}

// TestEnergyFromCountsMatchesSlotEnergy ties the census-based pricing the
// fast and legacy paths share to the per-slot model: the two formulations
// must agree to float tolerance on an arbitrary census.
func TestEnergyFromCountsMatchesSlotEnergy(t *testing.T) {
	em := DefaultEnergy()
	const tx, rx, sleep = 13, 29, 58
	want := 0.0
	for i := 0; i < tx; i++ {
		want += em.slotEnergy(true, false)
	}
	for i := 0; i < rx; i++ {
		want += em.slotEnergy(false, true)
	}
	for i := 0; i < sleep; i++ {
		want += em.slotEnergy(false, false)
	}
	got := energyFromCounts(em, tx, rx, sleep)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energyFromCounts = %v, slot-by-slot sum = %v", got, want)
	}
}
