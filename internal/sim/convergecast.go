package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Packet is a unit of data travelling hop-by-hop toward the sink.
type Packet struct {
	// Origin is the node that generated the packet.
	Origin int
	// Created is the absolute slot of generation.
	Created int
}

// ConvergecastConfig parameterizes a data-collection run.
type ConvergecastConfig struct {
	// Sink is the collection node (root of the routing tree).
	Sink int
	// Rate is the per-node packet generation rate in packets per slot
	// (Poisson arrivals). The sink generates nothing.
	Rate float64
	// Frames is the number of protocol frames to simulate.
	Frames int
	// MaxQueue bounds each node's packet queue; arrivals beyond it are
	// dropped and counted. Zero means 64.
	MaxQueue int
	// Seed drives the arrival process.
	Seed uint64
	// Energy is the radio energy model; zero value means DefaultEnergy.
	Energy EnergyModel
	// WarmupFrames are simulated but excluded from statistics (queues fill,
	// the system reaches steady state). Zero means none.
	WarmupFrames int
	// Channel adds non-collision losses; the zero value is the paper's
	// ideal channel (and changes nothing, bit-for-bit).
	Channel Channel
	// Clock, when non-nil, models imperfect slot synchronization: a hop is
	// only decodable when sender and receiver are within the guard band.
	Clock *ClockModel
	// Phases, when non-empty, makes traffic time-varying: the run cycles
	// through the phases (each lasting Slots slots at the given rate),
	// ignoring Rate. Used for bursty-load experiments.
	Phases []TrafficPhase
	// Tracer, when non-nil, receives slot-level events (generation,
	// transmissions, deliveries, collisions, drops) for debugging and
	// post-mortem analysis.
	Tracer trace.Tracer
	// Shards splits the fast path's per-slot contention scatter across
	// goroutines owning word-aligned receiver ranges: 0 or 1 runs
	// sequentially, negative uses one shard per CPU. Results are
	// byte-identical at every shard count (the RNG-consuming generation
	// and the queue-mutating resolution stay sequential; only the
	// order-insensitive contention counting fans out). Ignored by the
	// legacy loop.
	Shards int
	// Legacy forces the per-node reference loop even where the
	// struct-of-arrays fast path applies (schedule-driven MAC, ideal
	// channel, perfect sync, no tracer). The zero value — fast path on —
	// is safe because the two paths are pinned byte-identical by the
	// differential tests in this package.
	Legacy bool
}

// TrafficPhase is one segment of a time-varying load pattern.
type TrafficPhase struct {
	// Slots is the phase duration.
	Slots int
	// Rate is the per-node Poisson rate during the phase.
	Rate float64
}

// ConvergecastResult reports a data-collection run.
type ConvergecastResult struct {
	// Protocol names the MAC that was driven.
	Protocol string
	// Generated, Delivered, Dropped count packets after warmup. Delivered
	// means arrived at the sink.
	Generated, Delivered, Dropped int
	// InFlight is the number of packets still queued at the end.
	InFlight int
	// Latency summarizes sink-arrival latencies in slots.
	Latency stats.Summary
	// HopLatency summarizes per-hop forwarding delays in slots.
	HopLatency stats.Summary
	// TotalEnergy is the radio energy spent by all nodes (joules),
	// including warmup.
	TotalEnergy float64
	// EnergyPerNode breaks TotalEnergy down by node — feed it to
	// stats.Gini for the §7 balance question on real workloads.
	EnergyPerNode []float64
	// EnergyPerDelivered is TotalEnergy / Delivered (0 when nothing
	// delivered).
	EnergyPerDelivered float64
	// DeliveryRatio is Delivered / Generated (1 when nothing generated).
	DeliveryRatio float64
	// ActiveFraction is the fraction of node-slots spent awake.
	ActiveFraction float64
	// Collisions counts slots lost to simultaneous transmissions at some
	// receiver.
	Collisions int
}

// RunConvergecast simulates Poisson data collection toward a sink under a
// schedule-driven MAC. It is shorthand for RunConvergecastProtocol with
// ScheduleProtocol{s}.
func RunConvergecast(g *topology.Graph, s *core.Schedule, cfg ConvergecastConfig) (*ConvergecastResult, error) {
	if g.N() > s.N() {
		return nil, fmt.Errorf("sim: graph has %d nodes but schedule supports %d", g.N(), s.N())
	}
	return RunConvergecastProtocol(g, ScheduleProtocol{S: s}, cfg)
}

// rateFunc builds the slot→rate map of a run: constant cfg.Rate, or the
// cycling phase pattern when Phases is set.
func rateFunc(cfg *ConvergecastConfig) (func(slot int) float64, error) {
	phaseLen := 0
	for _, ph := range cfg.Phases {
		if ph.Slots < 1 || ph.Rate < 0 {
			return nil, fmt.Errorf("sim: invalid traffic phase %+v", ph)
		}
		phaseLen += ph.Slots
	}
	phases := cfg.Phases
	rate := cfg.Rate
	return func(slot int) float64 {
		if phaseLen == 0 {
			return rate
		}
		t := slot % phaseLen
		for _, ph := range phases {
			if t < ph.Slots {
				return ph.Rate
			}
			t -= ph.Slots
		}
		return 0 // unreachable
	}, nil
}

// finishConvergecast derives the energy and ratio fields every convergecast
// run reports from the per-node integer role census. Shared between the
// legacy loop and the fast path so the derived floats are structurally
// identical (see energyFromCounts).
func finishConvergecast(res *ConvergecastResult, em EnergyModel, txSlots, rxSlots []int, totalSlots int) {
	n := len(txSlots)
	awake := 0
	for v := 0; v < n; v++ {
		e := energyFromCounts(em, txSlots[v], rxSlots[v], totalSlots-txSlots[v]-rxSlots[v])
		res.EnergyPerNode[v] = e
		res.TotalEnergy += e
		awake += txSlots[v] + rxSlots[v]
	}
	if res.Delivered > 0 {
		res.EnergyPerDelivered = res.TotalEnergy / float64(res.Delivered)
	}
	if res.Generated > 0 {
		res.DeliveryRatio = float64(res.Delivered) / float64(res.Generated)
	} else {
		res.DeliveryRatio = 1
	}
	res.ActiveFraction = float64(awake) / float64(n*totalSlots)
}

// RunConvergecastProtocol simulates Poisson data collection toward a sink.
// Routing uses a BFS tree of g rooted at the sink; each node forwards its
// queue head to its parent whenever the protocol gives it a transmit slot
// (and, for TargetAware protocols, the parent is known to listen). A hop
// succeeds when the parent is in receive mode and hears no other
// transmitting neighbour in that slot (senders learn the outcome
// immediately — an idealized acknowledgment — and retransmit otherwise).
//
// The topology must be connected so every node has a route to the sink.
//
// When the protocol is the schedule-driven MAC and the run uses the paper's
// ideal channel with perfect synchronization and no tracer, the run takes
// the struct-of-arrays fast path unless cfg.Legacy forces the reference
// loop; the two paths are byte-identical (see difftest_test.go).
func RunConvergecastProtocol(g *topology.Graph, proto Protocol, cfg ConvergecastConfig) (*ConvergecastResult, error) {
	n := g.N()
	if cfg.Sink < 0 || cfg.Sink >= n {
		return nil, fmt.Errorf("sim: sink %d out of range", cfg.Sink)
	}
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("sim: frames = %d", cfg.Frames)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("sim: negative rate")
	}
	parent, dist := g.BFSTree(cfg.Sink)
	for v := 0; v < n; v++ {
		if dist[v] < 0 {
			return nil, fmt.Errorf("sim: node %d cannot reach the sink", v)
		}
	}
	maxQ := cfg.MaxQueue
	if maxQ == 0 {
		maxQ = 64
	}
	em := cfg.Energy
	if em == (EnergyModel{}) {
		em = DefaultEnergy()
	}
	if err := cfg.Channel.validate(); err != nil {
		return nil, err
	}
	var clock *clockState
	if cfg.Clock != nil {
		var err error
		if clock, err = newClockState(*cfg.Clock, n); err != nil {
			return nil, err
		}
	}
	rateAt, err := rateFunc(&cfg)
	if err != nil {
		return nil, err
	}
	if sp, ok := proto.(ScheduleProtocol); ok && !cfg.Legacy &&
		cfg.Channel.ideal() && cfg.Clock == nil && cfg.Tracer == nil {
		// One-shot kernel: campaigns that replay one (graph, schedule,
		// sink) triple should build a ConvergecastKernel once and call
		// Run per configuration instead.
		k, err := NewConvergecastKernel(g, sp.S, cfg.Sink)
		if err != nil {
			return nil, err
		}
		return k.run(cfg, maxQ, em, rateAt), nil
	}
	return runConvergecastLegacy(g, proto, cfg, parent, maxQ, em, clock, rateAt)
}

// runConvergecastLegacy is the original per-node, per-slot reference loop.
// It handles every protocol and channel extension; the fast path handles
// the paper's core model and is pinned byte-identical to this loop there.
func runConvergecastLegacy(g *topology.Graph, proto Protocol, cfg ConvergecastConfig,
	parent []int, maxQ int, em EnergyModel, clock *clockState, rateAt func(int) float64) (*ConvergecastResult, error) {
	n := g.N()
	rng := stats.NewRNG(cfg.Seed)
	target, _ := proto.(TargetAware)

	queues := make([][]Packet, n)
	arrivedAt := make([]int, n) // slot when the queue-head arrived at this hop
	res := &ConvergecastResult{Protocol: proto.Name(), EnergyPerNode: make([]float64, n)}
	L := proto.FrameLen()
	totalSlots := (cfg.WarmupFrames + cfg.Frames) * L
	warmupSlots := cfg.WarmupFrames * L
	txSlots := make([]int, n)
	rxSlots := make([]int, n)

	roles := make([]core.Role, n)
	transmitTo := make([]int, n) // -1 = silent this slot
	senderBuf := make([]int, 0, n)
	for slot := 0; slot < totalSlots; slot++ {
		measuring := slot >= warmupSlots
		rate := rateAt(slot)
		// Packet generation (Poisson arrivals).
		if rate > 0 {
			for v := 0; v < n; v++ {
				if v == cfg.Sink {
					continue
				}
				for k := poissonDraw(rng, rate); k > 0; k-- {
					if measuring {
						res.Generated++
					}
					if cfg.Tracer != nil {
						cfg.Tracer.Record(trace.Event{Slot: slot, Kind: trace.Generate, Node: v, Peer: -1})
					}
					if len(queues[v]) >= maxQ {
						if measuring {
							res.Dropped++
						}
						if cfg.Tracer != nil {
							cfg.Tracer.Record(trace.Event{Slot: slot, Kind: trace.Drop, Node: v, Peer: -1})
						}
						continue
					}
					if len(queues[v]) == 0 {
						arrivedAt[v] = slot
					}
					queues[v] = append(queues[v], Packet{Origin: v, Created: slot})
				}
			}
		}
		// Roles and transmission decisions, nodes in ascending order (the
		// contract that keeps contention protocols deterministic).
		for v := 0; v < n; v++ {
			wantTx := v != cfg.Sink && len(queues[v]) > 0
			if wantTx && target != nil && !target.ShouldTransmit(v, parent[v], slot) {
				wantTx = false
			}
			roles[v] = proto.Role(v, slot, wantTx)
			transmitTo[v] = -1
			if wantTx && roles[v] == core.Transmit {
				transmitTo[v] = parent[v]
				if cfg.Tracer != nil {
					cfg.Tracer.Record(trace.Event{Slot: slot, Kind: trace.Transmit, Node: v, Peer: parent[v]})
				}
			}
			switch {
			case transmitTo[v] >= 0:
				txSlots[v]++
			case roles[v] == core.Receive:
				rxSlots[v]++
			}
		}
		// Resolve receptions.
		for v := 0; v < n; v++ {
			if roles[v] != core.Receive {
				continue
			}
			senders := senderBuf[:0]
			g.NeighborSet(v).ForEach(func(u int) bool {
				if transmitTo[u] >= 0 {
					senders = append(senders, u)
				}
				return true
			})
			pick, collided := cfg.Channel.resolve(senders, rng)
			if collided {
				if measuring {
					res.Collisions++
				}
				if cfg.Tracer != nil {
					cfg.Tracer.Record(trace.Event{Slot: slot, Kind: trace.Collision, Node: senders[0], Peer: v})
				}
			}
			if pick < 0 {
				continue
			}
			sender := senders[pick]
			if clock != nil && !clock.aligned(sender, v, slot) {
				continue // undecodable: slot boundaries drifted apart
			}
			if transmitTo[sender] == v {
				// Successful hop: move the packet.
				if cfg.Tracer != nil {
					cfg.Tracer.Record(trace.Event{Slot: slot, Kind: trace.Deliver, Node: sender, Peer: v})
				}
				pkt := queues[sender][0]
				queues[sender] = queues[sender][1:]
				if measuring {
					res.HopLatency.Add(float64(slot - arrivedAt[sender] + 1))
				}
				if len(queues[sender]) > 0 {
					arrivedAt[sender] = slot + 1
				}
				if v == cfg.Sink {
					if measuring {
						res.Delivered++
						res.Latency.Add(float64(slot - pkt.Created + 1))
					}
				} else if len(queues[v]) < maxQ {
					if len(queues[v]) == 0 {
						arrivedAt[v] = slot + 1
					}
					queues[v] = append(queues[v], pkt)
				} else if measuring {
					res.Dropped++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		res.InFlight += len(queues[v])
	}
	finishConvergecast(res, em, txSlots, rxSlots, totalSlots)
	return res, nil
}

// poissonDraw samples a Poisson(rate) count by inversion; rate is small in
// all workloads so the loop is short.
func poissonDraw(rng *stats.RNG, rate float64) int {
	limit := math.Exp(-rate)
	k := 0
	p := rng.Float64()
	for p > limit {
		p *= rng.Float64()
		k++
	}
	return k
}
