package sim

import (
	"testing"

	"repro/internal/topology"
)

func TestDiscoveryCompletesInOneFrameUnderTT(t *testing.T) {
	// The crisp corollary of topology transparency: with every node
	// beaconing, every directed link is heard collision-free within the
	// first frame.
	for _, tc := range []struct {
		name string
		g    *topology.Graph
		n, d int
	}{
		{"ring", topology.Ring(9), 9, 2},
		{"regular", topology.Regularish(9, 2), 9, 2},
		{"corridor", topology.Corridor(2, 5), 10, 5},
	} {
		var s = polySchedule(t, tc.n, tc.d)
		if tc.g.MaxDegree() > tc.d {
			t.Fatalf("%s: topology degree %d exceeds class %d", tc.name, tc.g.MaxDegree(), tc.d)
		}
		res, err := RunDiscovery(tc.g, ScheduleProtocol{S: s}, 1, DefaultEnergy(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.DiscoveredLinks != res.TotalLinks {
			t.Fatalf("%s: discovered %d/%d links in one frame",
				tc.name, res.DiscoveredLinks, res.TotalLinks)
		}
		if res.CompleteSlot < 0 || res.CompleteSlot >= s.L() {
			t.Fatalf("%s: completion slot %d outside first frame", tc.name, res.CompleteSlot)
		}
	}
}

func TestDiscoveryTDMA(t *testing.T) {
	g := topology.Grid(3, 3)
	s := tdmaSchedule(t, 9)
	res, err := RunDiscovery(g, ScheduleProtocol{S: s}, 1, DefaultEnergy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscoveredLinks != res.TotalLinks || res.Collisions != 0 {
		t.Fatalf("TDMA discovery: %d/%d links, %d collisions",
			res.DiscoveredLinks, res.TotalLinks, res.Collisions)
	}
	// Directed link u→v is discovered exactly in slot u.
	if res.LinkDiscoverySlots.Max() > 8 {
		t.Fatalf("discovery slot beyond frame: %v", res.LinkDiscoverySlots.Max())
	}
}

func TestDiscoveryALOHAHasNoBound(t *testing.T) {
	// Aggressive ALOHA beaconing on a dense graph collides persistently;
	// one "frame" (one slot) certainly cannot discover everything, and
	// even many slots may leave links unknown.
	g := topology.Regularish(12, 4)
	res, err := RunDiscovery(g, NewAloha(0.5, 3), 5, DefaultEnergy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Fatal("dense ALOHA beaconing should collide")
	}
	if res.DiscoveredLinks == res.TotalLinks && res.CompleteSlot < 3 {
		t.Fatal("ALOHA should not match the schedule's one-frame guarantee")
	}
}

func TestDiscoveryValidation(t *testing.T) {
	g := topology.Ring(4)
	s := tdmaSchedule(t, 4)
	if _, err := RunDiscovery(g, ScheduleProtocol{S: s}, 0, DefaultEnergy(), 1); err == nil {
		t.Fatal("zero frames accepted")
	}
}
