package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ConvergecastKernel is the reusable precomputation of the convergecast
// fast path for one (graph, schedule, sink) triple under the paper's core
// model (ideal channel, perfect synchronization, no tracer): the BFS
// routing tree, per-frame-slot transmit-eligibility and receive-role word
// rows, and the per-node receive census. Earlier revisions re-derived all
// of this inside every run; a campaign of R replications paid it R times.
// A kernel is immutable after construction and safe for concurrent Run
// calls, so the engine builds one per (schedule, topology, sink) grid
// point and shares it across the worker pool.
type ConvergecastKernel struct {
	s      *core.Schedule
	g      *topology.Graph
	sink   int
	n      int
	l      int
	nw     int // words per n-bit node row
	parent []int
	// txElig[i*nw:(i+1)*nw] is the n-bit set of nodes that would transmit
	// in frame-slot i if they had traffic: v ≠ sink with v ∈ T[i] and
	// parent[v] ∈ R[i] \ T[i] — exactly the nodes for which the legacy
	// loop's wantTx survives the ShouldTransmit gate and Role returns
	// Transmit. rxRole likewise holds the Receive-role rows R[i] \ T[i],
	// masked to the graph's n nodes (the schedule universe may be larger).
	txElig, rxRole []uint64
	// adjW holds the dense graph's adjacency rows as one flat word array
	// (row v at [v*nw, (v+1)*nw)), so the contention pass indexes straight
	// into it with no per-node pointer chase. nil on compressed graphs,
	// which keep their CSR rows.
	adjW []uint64
	// rxPerFrame[v] = |recv(v) \ tran(v)|: the Receive role is independent
	// of traffic, so each node's whole-run receive census is fixed per
	// frame at build time.
	rxPerFrame []int
}

// NewConvergecastKernel validates the triple and precomputes the fast-path
// state. The graph must be connected so every node has a route to the
// sink.
func NewConvergecastKernel(g *topology.Graph, s *core.Schedule, sink int) (*ConvergecastKernel, error) {
	n := g.N()
	if n > s.N() {
		return nil, fmt.Errorf("sim: graph has %d nodes but schedule supports %d", n, s.N())
	}
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("sim: sink %d out of range", sink)
	}
	parent, dist := g.BFSTree(sink)
	for v := 0; v < n; v++ {
		if dist[v] < 0 {
			return nil, fmt.Errorf("sim: node %d cannot reach the sink", v)
		}
	}
	L := s.L()
	nw := (n + wordBits - 1) / wordBits
	k := &ConvergecastKernel{
		s:          s,
		g:          g,
		sink:       sink,
		n:          n,
		l:          L,
		nw:         nw,
		parent:     parent,
		txElig:     make([]uint64, L*nw),
		rxRole:     make([]uint64, L*nw),
		rxPerFrame: make([]int, n),
	}
	lastMask := ^uint64(0)
	if r := n % wordBits; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}
	for i := 0; i < L; i++ {
		tW := s.T(i).Words()
		rW := s.R(i).Words()
		row := k.rxRole[i*nw : (i+1)*nw]
		for j := 0; j < nw; j++ {
			row[j] = rW[j] &^ tW[j]
		}
		row[nw-1] &= lastMask
	}
	if !g.IsCompressed() {
		k.adjW = make([]uint64, n*nw)
		for v := 0; v < n; v++ {
			copy(k.adjW[v*nw:(v+1)*nw], g.NeighborWords(v))
		}
	}
	for v := 0; v < n; v++ {
		tw := s.Tran(v).Words()
		rw := s.Recv(v).Words()
		rx := 0
		for j := range rw {
			rx += bits.OnesCount64(rw[j] &^ tw[j])
		}
		k.rxPerFrame[v] = rx
		if v == sink {
			continue
		}
		p := parent[v]
		s.Tran(v).ForEach(func(i int) bool {
			if k.rxRole[i*nw+p>>6]>>uint(p&63)&1 == 1 {
				k.txElig[i*nw+v>>6] |= uint64(1) << uint(v&63)
			}
			return true
		})
	}
	return k, nil
}

// N returns the node count the kernel was built for.
func (k *ConvergecastKernel) N() int { return k.n }

// Sink returns the collection node the kernel routes toward.
func (k *ConvergecastKernel) Sink() int { return k.sink }

// ccFastScratch is the pooled per-run working state of the convergecast
// fast path (the slot-invariant rows live in the kernel).
type ccFastScratch struct {
	hasTraffic []uint64 // nodes with a non-empty queue
	once, many []uint64 // saturating 2-bit contention counter over receivers
	parentTx   []uint64 // parents of this slot's transmitters
	txList     []int32  // this slot's transmitters, ascending
	childTx    []int32  // childTx[u]: the last transmitter whose parent is u
	txCnt      []int    // whole-run role census per node
	rxCnt      []int
	arrivedAt  []int // slot when the queue-head arrived at this hop
	qhead      []int32
	queues     [][]Packet
}

var ccFastPool = sync.Pool{New: func() any { return new(ccFastScratch) }}

// reset sizes the scratch for n nodes and nw-word node rows, and clears
// everything that must start zeroed.
func (sc *ccFastScratch) reset(n, nw int) {
	if cap(sc.hasTraffic) < nw {
		sc.hasTraffic = make([]uint64, nw)
		sc.once = make([]uint64, nw)
		sc.many = make([]uint64, nw)
		sc.parentTx = make([]uint64, nw)
	}
	sc.hasTraffic = sc.hasTraffic[:nw]
	sc.once = sc.once[:nw]
	sc.many = sc.many[:nw]
	sc.parentTx = sc.parentTx[:nw]
	for i := range sc.hasTraffic {
		sc.hasTraffic[i] = 0
		sc.once[i] = 0
		sc.many[i] = 0
		sc.parentTx[i] = 0
	}
	if cap(sc.childTx) < n {
		sc.txList = make([]int32, 0, n)
		sc.childTx = make([]int32, n)
		sc.txCnt = make([]int, n)
		sc.rxCnt = make([]int, n)
		sc.arrivedAt = make([]int, n)
		sc.qhead = make([]int32, n)
		sc.queues = make([][]Packet, n)
	}
	sc.childTx = sc.childTx[:n]
	sc.txCnt = sc.txCnt[:n]
	sc.rxCnt = sc.rxCnt[:n]
	sc.arrivedAt = sc.arrivedAt[:n]
	sc.qhead = sc.qhead[:n]
	sc.queues = sc.queues[:n]
	for v := 0; v < n; v++ {
		sc.txCnt[v] = 0
		sc.qhead[v] = 0
		sc.queues[v] = sc.queues[v][:0]
	}
}

// Run executes one convergecast run on the kernel's triple. The arrival
// RNG stream, the ascending-receiver resolution order, and the Summary
// contents replay the legacy loop exactly, so the result is
// reflect.DeepEqual-identical to RunConvergecastProtocol with cfg.Legacy
// on the same inputs — at every cfg.Shards value (pinned by the
// differential matrix and fuzz harness in this package). Fields of cfg
// outside the core model (Channel, Clock, Tracer, Legacy) must be unset,
// and cfg.Sink must match the kernel's sink.
func (k *ConvergecastKernel) Run(cfg ConvergecastConfig) (*ConvergecastResult, error) {
	if cfg.Sink != k.sink {
		return nil, fmt.Errorf("sim: kernel built for sink %d, config has %d", k.sink, cfg.Sink)
	}
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("sim: frames = %d", cfg.Frames)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("sim: negative rate")
	}
	if !cfg.Channel.ideal() || cfg.Clock != nil || cfg.Tracer != nil || cfg.Legacy {
		return nil, fmt.Errorf("sim: convergecast kernel only runs the ideal-channel fast path")
	}
	rateAt, err := rateFunc(&cfg)
	if err != nil {
		return nil, err
	}
	maxQ := cfg.MaxQueue
	if maxQ == 0 {
		maxQ = 64
	}
	em := cfg.Energy
	if em == (EnergyModel{}) {
		em = DefaultEnergy()
	}
	return k.run(cfg, maxQ, em, rateAt), nil
}

// ccShardWorkers runs the persistent contention workers of a sharded run.
// Each worker owns a contiguous word-aligned receiver range: it scans the
// slot's full transmitter words but accumulates contention only into the
// once/many counter words covering its own range, so every scratch word is
// written by exactly one worker. The main loop publishes the slot index on
// each worker's channel and joins the WaitGroup before resolving
// receptions sequentially.
type ccShardWorkers struct {
	work []chan int
	done sync.WaitGroup
}

func (k *ConvergecastKernel) startShardWorkers(sc *ccFastScratch, ranges [][2]int) *ccShardWorkers {
	w := &ccShardWorkers{work: make([]chan int, len(ranges))}
	for si, r := range ranges {
		ch := make(chan int, 1)
		w.work[si] = ch
		go func(lo, hi int, ch chan int) {
			for i := range ch {
				k.contentionRange(sc, i, lo, hi)
				w.done.Done()
			}
		}(r[0], r[1], ch)
	}
	return w
}

// contentionRange accumulates frame-slot i's per-receiver contention into
// the once/many saturating counter, restricted to receivers in [lo, hi)
// (word-aligned, hi == n allowed): after the pass, a Receive-role node u
// has once∧¬many set iff exactly one of its neighbours transmitted, and
// many set iff two or more did — all the channel model distinguishes. The
// counter is word-parallel, so on dense graphs each transmitter costs a
// handful of word ops per adjacency word with no per-receiver writes at
// all; on compressed graphs the sorted CSR row is walked bit by bit.
//
//ttdc:hotpath runs once per shard per occupied slot of every convergecast run; pure word arithmetic over pooled rows
func (k *ConvergecastKernel) contentionRange(sc *ccFastScratch, i, lo, hi int) {
	rxRow := k.rxRole[i*k.nw : (i+1)*k.nw]
	if k.adjW != nil {
		// Dense: word-major over the flat adjacency rows, so the counter
		// pair for each receiver word accumulates in registers and is
		// stored once.
		nw := k.nw
		loW, hiW := lo>>6, (hi+wordBits-1)>>6
		for wi := loW; wi < hiW; wi++ {
			rx := rxRow[wi]
			if rx == 0 {
				continue // counter words stay zero from the last clear
			}
			var once, many uint64
			for _, v := range sc.txList {
				t := k.adjW[int(v)*nw+wi] & rx
				many |= once & t
				once ^= t
			}
			sc.once[wi] = once
			sc.many[wi] = many
		}
		return
	}
	for _, v32 := range sc.txList {
		for _, u32 := range k.g.NeighborRow(int(v32)) {
			u := int(u32)
			if u < lo {
				continue
			}
			if u >= hi {
				break
			}
			b := uint64(1) << uint(u&63)
			if rxRow[u>>6]&b == 0 {
				continue
			}
			sc.many[u>>6] |= sc.once[u>>6] & b
			sc.once[u>>6] ^= b
		}
	}
}

// run is the slot loop. The ideal channel draws no randomness, so the RNG
// is consumed by packet generation alone, in the same (node, slot) order
// as the reference loop.
func (k *ConvergecastKernel) run(cfg ConvergecastConfig, maxQ int, em EnergyModel, rateAt func(int) float64) *ConvergecastResult {
	n, L, nw, sink, parent := k.n, k.l, k.nw, k.sink, k.parent
	// The RNG lives in a stack value (not behind NewRNG's heap pointer) so
	// the inlined draw calls in the generation loop keep its state in a
	// register instead of a load/store per draw. Same generator, same
	// stream.
	rng := *stats.NewRNG(cfg.Seed)
	res := &ConvergecastResult{Protocol: ScheduleProtocol{S: k.s}.Name(), EnergyPerNode: make([]float64, n)}
	totalSlots := (cfg.WarmupFrames + cfg.Frames) * L
	warmupSlots := cfg.WarmupFrames * L

	sc := ccFastPool.Get().(*ccFastScratch)
	defer ccFastPool.Put(sc)
	sc.reset(n, nw)
	for v := 0; v < n; v++ {
		sc.rxCnt[v] = k.rxPerFrame[v] * (cfg.WarmupFrames + cfg.Frames)
	}

	var workers *ccShardWorkers
	if ranges := shardRanges(n, resolveShards(cfg.Shards, n)); len(ranges) > 1 {
		//lint:ignore poolescape workers hold sc only between the channel send and wg.Done of each slot; the deferred close + drained WaitGroup below retires every worker before the deferred Put runs
		workers = k.startShardWorkers(sc, ranges)
		defer func() {
			for _, ch := range workers.work {
				close(ch)
			}
		}()
	}

	// The Poisson inversion limit e^-rate depends only on the slot's rate,
	// which is constant (or phase-periodic), so it is hoisted out of the
	// per-node draw — the RNG stream is untouched, only the redundant
	// math.Exp per (node, slot) goes away.
	lastRate := math.Inf(-1)
	limit := 0.0
	limitBits := uint64(0)
	queues := sc.queues
	for slot := 0; slot < totalSlots; slot++ {
		measuring := slot >= warmupSlots
		rate := rateAt(slot)
		// Packet generation: identical control flow (and RNG consumption) to
		// the legacy loop's poissonDraw calls.
		if rate > 0 {
			if rate != lastRate {
				lastRate = rate
				limit = math.Exp(-rate)
				// The RNG's Float64 is float64(Uint64()>>11) / 2⁵³ with an
				// exactly-representable 53-bit mantissa, and limit·2⁵³ only
				// shifts limit's exponent, so `draw > limit` is decidable in
				// the integer domain: m > ⌊limit·2⁵³⌋. The common no-arrival
				// case then skips the int→float conversion entirely.
				limitBits = uint64(math.Ldexp(limit, 53))
			}
			for v := 0; v < n; v++ {
				if v == sink {
					continue
				}
				m := rng.Uint64() >> 11
				if m <= limitBits {
					continue // no arrivals at v this slot
				}
				// Rare path: ≥1 arrival. Reconstruct the draw as Float64
				// would have returned it and continue the inversion product
				// exactly as the reference loop does.
				kk := 0
				for p := float64(m) / (1 << 53); p > limit; kk++ {
					p *= rng.Float64()
				}
				for ; kk > 0; kk-- {
					if measuring {
						res.Generated++
					}
					qlen := len(queues[v]) - int(sc.qhead[v])
					if qlen >= maxQ {
						if measuring {
							res.Dropped++
						}
						continue
					}
					if qlen == 0 {
						sc.arrivedAt[v] = slot
						sc.hasTraffic[v>>6] |= uint64(1) << uint(v&63)
					}
					queues[v] = append(queues[v], Packet{Origin: v, Created: slot})
				}
			}
		}
		i := slot % L
		elig := k.txElig[i*nw : (i+1)*nw]
		// Transmitters this slot: traffic ∧ eligibility, one AND per word.
		// Each transmitter also marks its parent and records itself as that
		// parent's transmitting child — the only receivers the resolution
		// pass must visit individually.
		sc.txList = sc.txList[:0]
		for j := 0; j < nw; j++ {
			w := sc.hasTraffic[j] & elig[j]
			for w != 0 {
				v := j*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				sc.txCnt[v]++
				sc.txList = append(sc.txList, int32(v))
				p := parent[v]
				sc.parentTx[p>>6] |= uint64(1) << uint(p&63)
				sc.childTx[p] = int32(v)
			}
		}
		if len(sc.txList) == 0 {
			continue
		}
		// Count per-receiver contention into the once/many words: across
		// the worker ranges when sharded, in one pass otherwise.
		if workers != nil {
			workers.done.Add(len(workers.work))
			for _, ch := range workers.work {
				ch <- i
			}
			workers.done.Wait()
		} else {
			k.contentionRange(sc, i, 0, n)
		}
		// Resolve receptions in ascending receiver order — the order that
		// fixes the legacy loop's Summary contents. Collisions are pure
		// popcounts over the many words. Deliveries happen exactly at
		// receivers that are the parent of a transmitter AND heard exactly
		// one transmitting neighbour — which is then necessarily that child
		// (a second transmitting neighbour would have set many), so the
		// sender needs no search and overhears drop out word-parallel. This
		// phase pops and pushes queues, so it stays sequential at every
		// shard count.
		for j := 0; j < nw; j++ {
			many := sc.many[j]
			if measuring && many != 0 {
				res.Collisions += bits.OnesCount64(many)
			}
			w := sc.once[j] &^ many & sc.parentTx[j]
			sc.once[j] = 0
			sc.many[j] = 0
			sc.parentTx[j] = 0
			for w != 0 {
				u := j*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				sdr := int(sc.childTx[u])
				h := sc.qhead[sdr]
				pkt := queues[sdr][h]
				h++
				if measuring {
					res.HopLatency.Add(float64(slot - sc.arrivedAt[sdr] + 1))
				}
				if int(h) < len(queues[sdr]) {
					sc.arrivedAt[sdr] = slot + 1
					if h >= 32 && int(h)*2 >= len(queues[sdr]) {
						// Compact the drained prefix so long-lived queues
						// keep reusing one backing array instead of
						// growing per pop (the 6146 allocs/op of the
						// pre-kernel bench were almost entirely this).
						q := queues[sdr]
						queues[sdr] = q[:copy(q, q[h:])]
						h = 0
					}
				} else {
					queues[sdr] = queues[sdr][:0]
					h = 0
					sc.hasTraffic[sdr>>6] &^= uint64(1) << uint(sdr&63)
				}
				sc.qhead[sdr] = h
				if u == sink {
					if measuring {
						res.Delivered++
						res.Latency.Add(float64(slot - pkt.Created + 1))
					}
				} else if qlen := len(queues[u]) - int(sc.qhead[u]); qlen < maxQ {
					if qlen == 0 {
						sc.arrivedAt[u] = slot + 1
						sc.hasTraffic[u>>6] |= uint64(1) << uint(u&63)
					}
					queues[u] = append(queues[u], pkt)
				} else if measuring {
					res.Dropped++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		res.InFlight += len(queues[v]) - int(sc.qhead[v])
	}
	finishConvergecast(res, em, sc.txCnt, sc.rxCnt, totalSlots)
	return res
}
