package sim

import (
	"math/bits"
	"sync"

	"repro/internal/stats"
	"repro/internal/topology"
)

// ccFastScratch is the pooled working state of the convergecast fast path.
// The role words are struct-of-arrays rows: txElig[i*nw:(i+1)*nw] is the
// n-bit set of nodes that would transmit in frame-slot i if they had
// traffic, rxRole likewise the nodes in the Receive role.
type ccFastScratch struct {
	txElig, rxRole []uint64 // L rows of nw words each
	hasTraffic     []uint64 // nodes with a non-empty queue
	rxTouched      []uint64 // receivers with ≥1 transmitting neighbour this slot
	nSenders       []int32  // transmitting-neighbour count per receiver this slot
	sender         []int32  // some transmitting neighbour (the sender when count is 1)
	touched        []int32  // receivers to reset after the slot
	txCnt, rxCnt   []int    // whole-run role census per node
	arrivedAt      []int    // slot when the queue-head arrived at this hop
	queues         [][]Packet
}

var ccFastPool = sync.Pool{New: func() any { return new(ccFastScratch) }}

// reset sizes the scratch for n nodes, frame length l, and nw-word node
// rows, and clears everything that must start zeroed.
func (sc *ccFastScratch) reset(n, l, nw int) {
	if cap(sc.txElig) < l*nw {
		sc.txElig = make([]uint64, l*nw)
		sc.rxRole = make([]uint64, l*nw)
	}
	sc.txElig = sc.txElig[:l*nw]
	sc.rxRole = sc.rxRole[:l*nw]
	for i := range sc.txElig {
		sc.txElig[i] = 0
	}
	if cap(sc.hasTraffic) < nw {
		sc.hasTraffic = make([]uint64, nw)
		sc.rxTouched = make([]uint64, nw)
	}
	sc.hasTraffic = sc.hasTraffic[:nw]
	sc.rxTouched = sc.rxTouched[:nw]
	for i := range sc.hasTraffic {
		sc.hasTraffic[i] = 0
		sc.rxTouched[i] = 0
	}
	if cap(sc.nSenders) < n {
		sc.nSenders = make([]int32, n)
		sc.sender = make([]int32, n)
		sc.txCnt = make([]int, n)
		sc.rxCnt = make([]int, n)
		sc.arrivedAt = make([]int, n)
		sc.queues = make([][]Packet, n)
	}
	sc.nSenders = sc.nSenders[:n]
	sc.sender = sc.sender[:n]
	sc.txCnt = sc.txCnt[:n]
	sc.rxCnt = sc.rxCnt[:n]
	sc.arrivedAt = sc.arrivedAt[:n]
	sc.queues = sc.queues[:n]
	for v := 0; v < n; v++ {
		sc.nSenders[v] = 0
		sc.txCnt[v] = 0
		sc.queues[v] = sc.queues[v][:0]
	}
	sc.touched = sc.touched[:0]
}

// runConvergecastFast is the struct-of-arrays convergecast loop for the
// schedule-driven MAC under the paper's core model (ideal channel, perfect
// synchronization, no tracer). It replays the legacy loop's semantics
// exactly — including the arrival RNG stream and the ascending-receiver
// order that fixes the latency Summary contents — but resolves each slot
// sparsely: transmitter candidates come from one word-AND of the traffic
// set with the precomputed per-slot eligibility row, and only receivers
// actually hearing a transmission are visited. The ideal channel draws no
// randomness, so the RNG is consumed by packet generation alone, in the
// same (node, slot) order as the reference loop.
func runConvergecastFast(g *topology.Graph, sp ScheduleProtocol, cfg ConvergecastConfig,
	parent []int, maxQ int, em EnergyModel, rateAt func(int) float64) (*ConvergecastResult, error) {
	n := g.N()
	s := sp.S
	L := s.L()
	nw := (n + wordBits - 1) / wordBits
	rng := stats.NewRNG(cfg.Seed)
	res := &ConvergecastResult{Protocol: sp.Name(), EnergyPerNode: make([]float64, n)}
	totalSlots := (cfg.WarmupFrames + cfg.Frames) * L
	warmupSlots := cfg.WarmupFrames * L

	sc := ccFastPool.Get().(*ccFastScratch)
	defer ccFastPool.Put(sc)
	sc.reset(n, L, nw)

	// Per-frame-slot role rows. RoleOf gives Transmit precedence, so the
	// Receive-role set of slot i is R[i] \ T[i], masked to the graph's n
	// nodes (the schedule universe may be larger).
	lastMask := ^uint64(0)
	if r := n % wordBits; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}
	for i := 0; i < L; i++ {
		tW := s.T(i).Words()
		rW := s.R(i).Words()
		row := sc.rxRole[i*nw : (i+1)*nw]
		for j := 0; j < nw; j++ {
			row[j] = rW[j] &^ tW[j]
		}
		row[nw-1] &= lastMask
	}
	// txElig[i] holds v ≠ sink with v ∈ T[i] and parent[v] ∈ R[i] \ T[i]:
	// exactly the nodes for which the legacy loop's wantTx survives the
	// ShouldTransmit gate and Role returns Transmit. The Receive role is
	// independent of traffic, so each node's whole-run receive census is
	// |recv(v) \ tran(v)| per frame, fixed at build time.
	for v := 0; v < n; v++ {
		tw := s.Tran(v).Words()
		rw := s.Recv(v).Words()
		rx := 0
		for j := range rw {
			rx += bits.OnesCount64(rw[j] &^ tw[j])
		}
		sc.rxCnt[v] = rx * (cfg.WarmupFrames + cfg.Frames)
		if v == cfg.Sink {
			continue
		}
		p := parent[v]
		s.Tran(v).ForEach(func(i int) bool {
			if sc.rxRole[i*nw+p>>6]>>uint(p&63)&1 == 1 {
				sc.txElig[i*nw+v>>6] |= uint64(1) << uint(v&63)
			}
			return true
		})
	}

	queues := sc.queues
	for slot := 0; slot < totalSlots; slot++ {
		measuring := slot >= warmupSlots
		rate := rateAt(slot)
		// Packet generation: identical control flow (and RNG consumption) to
		// the legacy loop.
		if rate > 0 {
			for v := 0; v < n; v++ {
				if v == cfg.Sink {
					continue
				}
				for k := poissonDraw(rng, rate); k > 0; k-- {
					if measuring {
						res.Generated++
					}
					if len(queues[v]) >= maxQ {
						if measuring {
							res.Dropped++
						}
						continue
					}
					if len(queues[v]) == 0 {
						sc.arrivedAt[v] = slot
						sc.hasTraffic[v>>6] |= uint64(1) << uint(v&63)
					}
					queues[v] = append(queues[v], Packet{Origin: v, Created: slot})
				}
			}
		}
		i := slot % L
		elig := sc.txElig[i*nw : (i+1)*nw]
		rxRow := sc.rxRole[i*nw : (i+1)*nw]
		touched := sc.touched[:0]
		// Transmitters this slot: traffic ∧ eligibility, one AND per word.
		// Scatter each onto its Receive-role neighbours to count per-receiver
		// contention.
		for j := 0; j < nw; j++ {
			w := sc.hasTraffic[j] & elig[j]
			for w != 0 {
				v := j*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				sc.txCnt[v]++
				g.NeighborSet(v).ForEach(func(u int) bool {
					if rxRow[u>>6]>>uint(u&63)&1 == 0 {
						return true
					}
					if sc.nSenders[u] == 0 {
						sc.rxTouched[u>>6] |= uint64(1) << uint(u&63)
						touched = append(touched, int32(u))
					}
					sc.nSenders[u]++
					sc.sender[u] = int32(v)
					return true
				})
			}
		}
		sc.touched = touched
		// Resolve receptions in ascending receiver order — the order that
		// fixes the legacy loop's Summary contents.
		for j := 0; j < nw; j++ {
			w := sc.rxTouched[j]
			for w != 0 {
				u := j*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				if sc.nSenders[u] >= 2 {
					if measuring {
						res.Collisions++
					}
					continue
				}
				sdr := int(sc.sender[u])
				if parent[sdr] != u {
					continue // overheard a hop addressed to another parent
				}
				pkt := queues[sdr][0]
				queues[sdr] = queues[sdr][1:]
				if measuring {
					res.HopLatency.Add(float64(slot - sc.arrivedAt[sdr] + 1))
				}
				if len(queues[sdr]) > 0 {
					sc.arrivedAt[sdr] = slot + 1
				} else {
					sc.hasTraffic[sdr>>6] &^= uint64(1) << uint(sdr&63)
				}
				if u == cfg.Sink {
					if measuring {
						res.Delivered++
						res.Latency.Add(float64(slot - pkt.Created + 1))
					}
				} else if len(queues[u]) < maxQ {
					if len(queues[u]) == 0 {
						sc.arrivedAt[u] = slot + 1
						sc.hasTraffic[u>>6] |= uint64(1) << uint(u&63)
					}
					queues[u] = append(queues[u], pkt)
				} else if measuring {
					res.Dropped++
				}
			}
		}
		for _, u := range sc.touched {
			sc.nSenders[u] = 0
			sc.rxTouched[u>>6] &^= uint64(1) << uint(u&63)
		}
	}
	for v := 0; v < n; v++ {
		res.InFlight += len(queues[v])
	}
	finishConvergecast(res, em, sc.txCnt, sc.rxCnt, totalSlots)
	return res, nil
}
