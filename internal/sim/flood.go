package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// FloodConfig parameterizes a dissemination (network-wide broadcast) run.
type FloodConfig struct {
	// Source is the node holding the message at slot 0.
	Source int
	// MaxFrames bounds the run; dissemination usually completes far
	// earlier under a topology-transparent schedule (within eccentricity
	// many frames).
	MaxFrames int
	// Energy is the radio energy model; zero value means DefaultEnergy.
	Energy EnergyModel
	// Channel adds non-collision losses; the zero value is the paper's
	// ideal channel.
	Channel Channel
	// Clock, when non-nil, models imperfect slot synchronization.
	Clock *ClockModel
	// Seed drives channel randomness (unused on the ideal channel).
	Seed uint64
}

// FloodResult reports a dissemination run.
type FloodResult struct {
	// Protocol names the MAC that was driven.
	Protocol string
	// Covered is the number of nodes holding the message at the end.
	Covered int
	// CompletionSlot is the absolute slot by which every node held the
	// message, or -1 if the run ended first.
	CompletionSlot int
	// FirstReception[v] is the absolute slot node v first received the
	// message (0 for the source, -1 if never).
	FirstReception []int
	// TotalEnergy is the radio energy spent by all nodes, in joules.
	TotalEnergy float64
	// ActiveFraction is the fraction of node-slots spent awake.
	ActiveFraction float64
	// Collisions counts (receiver, slot) pairs lost to simultaneous
	// transmissions.
	Collisions int
}

// RunFlood simulates network-wide dissemination: every node holding the
// message offers it in every transmit opportunity the protocol grants, and
// a listening node receives it when exactly one of its neighbours
// transmits. Under a topology-transparent schedule the frontier is
// guaranteed to advance at least one hop per frame (the guaranteed slot of
// each frontier link has no scheduled interferer at all, so a fortiori no
// transmitting one), hence completion within eccentricity(source) frames.
func RunFlood(g *topology.Graph, proto Protocol, cfg FloodConfig) (*FloodResult, error) {
	n := g.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return nil, fmt.Errorf("sim: flood source %d out of range", cfg.Source)
	}
	if cfg.MaxFrames < 1 {
		return nil, fmt.Errorf("sim: MaxFrames = %d", cfg.MaxFrames)
	}
	em := cfg.Energy
	if em == (EnergyModel{}) {
		em = DefaultEnergy()
	}
	if err := cfg.Channel.validate(); err != nil {
		return nil, err
	}
	var clock *clockState
	if cfg.Clock != nil {
		var err error
		if clock, err = newClockState(*cfg.Clock, n); err != nil {
			return nil, err
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	has := make([]bool, n)
	has[cfg.Source] = true
	res := &FloodResult{
		Protocol:       proto.Name(),
		Covered:        1,
		CompletionSlot: -1,
		FirstReception: make([]int, n),
	}
	for i := range res.FirstReception {
		res.FirstReception[i] = -1
	}
	res.FirstReception[cfg.Source] = 0

	L := proto.FrameLen()
	totalSlots := cfg.MaxFrames * L
	awake := 0
	roles := make([]core.Role, n)
	transmitting := make([]bool, n)
	senderBuf := make([]int, 0, n)
	for slot := 0; slot < totalSlots && res.Covered < n; slot++ {
		for v := 0; v < n; v++ {
			roles[v] = proto.Role(v, slot, has[v])
			transmitting[v] = has[v] && roles[v] == core.Transmit
			isTx := transmitting[v]
			rx := roles[v] == core.Receive
			res.TotalEnergy += em.slotEnergy(isTx, rx)
			if isTx || rx {
				awake++
			}
		}
		for v := 0; v < n; v++ {
			if has[v] || roles[v] != core.Receive {
				continue
			}
			senders := senderBuf[:0]
			g.NeighborSet(v).ForEach(func(u int) bool {
				if transmitting[u] {
					senders = append(senders, u)
				}
				return true
			})
			pick, collided := cfg.Channel.resolve(senders, rng)
			if collided {
				res.Collisions++
			}
			if pick < 0 {
				continue
			}
			if clock != nil && !clock.aligned(senders[pick], v, slot) {
				continue
			}
			has[v] = true
			res.Covered++
			res.FirstReception[v] = slot
			if res.Covered == n {
				res.CompletionSlot = slot
			}
		}
	}
	slotsRun := totalSlots
	if res.CompletionSlot >= 0 {
		slotsRun = res.CompletionSlot + 1
	}
	res.ActiveFraction = float64(awake) / float64(n*slotsRun)
	return res, nil
}

// Eccentricity returns the greatest BFS distance from src to any node of a
// connected graph, the analytic frame bound for flood completion under a
// topology-transparent schedule. It returns -1 if some node is unreachable.
func Eccentricity(g *topology.Graph, src int) int {
	_, dist := g.BFSTree(src)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
