package sim

import (
	"os"
	"testing"
	"time"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/topology"
)

// The Legacy/Fast suffix pairs below are recognized by cmd/ttdcbench,
// which derives reference-vs-SoA speedups into BENCH_sim.json on
// `make bench` — the simulator's analogue of core's Naive/Prefix pairs.

func benchPolySchedule(tb testing.TB, n, d int) *core.Schedule {
	tb.Helper()
	fam, err := cff.PolynomialFor(n, d)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func benchGraphs(n, d int) []*topology.Graph {
	return []*topology.Graph{
		topology.Regularish(n, d),
		topology.Ring(n),
		topology.Grid(32, n/32),
	}
}

func BenchmarkSaturationCampaignLegacy(b *testing.B) {
	const n, d, frames = 1024, 4, 8
	s := benchPolySchedule(b, n, d)
	graphs := benchGraphs(n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if _, err := RunSaturationLegacy(g, s, frames, DefaultEnergy()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSaturationCampaignFast(b *testing.B) {
	const n, d, frames = 1024, 4, 8
	s := benchPolySchedule(b, n, d)
	graphs := benchGraphs(n, d)
	k, err := NewSaturationKernel(s, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if _, err := k.Run(g, frames, DefaultEnergy()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkConvergecastGridLegacy(b *testing.B) { benchConvergecast(b, true) }

func BenchmarkConvergecastGridFast(b *testing.B) { benchConvergecast(b, false) }

func benchConvergecast(b *testing.B, legacy bool) {
	b.Helper()
	const n, d = 256, 4
	s := benchPolySchedule(b, n, d)
	g := topology.Grid(16, 16)
	cfg := ConvergecastConfig{Sink: 0, Rate: 0.02, Frames: 20, Seed: 7, Legacy: legacy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConvergecast(g, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSaturationScale100k demonstrates the tentpole target: a single
// saturation frame at n = 10^5 completes on one core. Gated behind
// TTDC_SCALE because building the 10^5-node schedule and adjacency takes
// gigabytes and minutes, far beyond the tier-1 budget.
func TestSaturationScale100k(t *testing.T) {
	if os.Getenv("TTDC_SCALE") == "" {
		t.Skip("set TTDC_SCALE=1 to run the n=100000 scale demonstration")
	}
	const n, d = 100000, 4
	start := time.Now()
	s := benchPolySchedule(t, n, d)
	t.Logf("schedule built: n=%d L=%d (%.1fs)", s.N(), s.L(), time.Since(start).Seconds())
	g := topology.Regularish(n, d)
	t.Logf("topology built: %d nodes, %d edges (%.1fs)", g.N(), g.EdgeCount(), time.Since(start).Seconds())
	runStart := time.Now()
	res, err := RunSaturation(g, s, 1, DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(runStart)
	t.Logf("saturation frame: min=%v avg=%v collisions=%d gap=%d in %.1fs",
		res.MinLinkPerFrame, res.AvgLinkPerFrame, res.CollisionSlots, res.MaxInterDeliveryGap, elapsed.Seconds())
	if res.AvgLinkPerFrame <= 0 {
		t.Fatal("scale run delivered nothing")
	}
	if elapsed > 10*time.Minute {
		t.Fatalf("n=100000 frame took %v, want minutes on one core", elapsed)
	}
}
