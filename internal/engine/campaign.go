package engine

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/schedcache"
)

// Decode bounds: a campaign document is untrusted input (it arrives over
// HTTP at ttdcserve's POST /jobs), so every axis is range-checked before
// expansion and the expanded job count is capped. Mirrors the
// maxDecodedDimension discipline of ttdc.DecodeSchedule.
const (
	// MaxJobs bounds Expand's output.
	MaxJobs = 1 << 16
	// MaxCampaignN bounds per-job class sizes. Streaming CSR topologies
	// and the sharded kernels put million-node single-job campaigns in
	// reach, so the bound is a sanity cap against typo-sized grids rather
	// than a memory guard; the dense-only topology models (geometric,
	// random) are additionally rejected at job time above
	// topology.DenseLimit, where they would materialize O(n²) bits.
	MaxCampaignN = 1 << 21
	// maxAxis bounds each grid axis's entry count.
	maxAxis = 1 << 12
	// maxShards bounds the intra-run shard count; the kernels clamp to the
	// scratch word count anyway, this just rejects nonsense documents.
	maxShards = 1 << 10
	// maxFrames and maxReplications bound per-job simulation length and
	// per-point repetition.
	maxFrames       = 1 << 16
	maxReplications = 1 << 12
)

// DutyPoint is one (αT, αR) pair of a campaign's duty axis. Both zero
// means the non-sleeping base schedule.
type DutyPoint struct {
	AlphaT int `json:"alphaT"`
	AlphaR int `json:"alphaR"`
}

// Campaign is the declarative spec of a batch run: a grid over class sizes
// and duty-cycle caps, one construction, one topology model, one workload,
// replicated and seeded. Expand flattens it into an ordered job list; the
// order (n, then D, then duty point, then replication) is part of the
// format, because job indices key both per-job seeds and journal resume.
type Campaign struct {
	// Name labels the campaign in journals and reports.
	Name string `json:"name,omitempty"`
	// Construction picks the base schedule: tdma, polynomial, steiner, or
	// projective. Empty means polynomial.
	Construction string `json:"construction,omitempty"`
	// N and D are the class-size grids.
	N []int `json:"n"`
	D []int `json:"d"`
	// Duty lists the (αT, αR) points; empty means the single non-sleeping
	// point {0, 0}.
	Duty []DutyPoint `json:"duty,omitempty"`
	// Strategy is the Construct division strategy: sequential (default) or
	// balanced.
	Strategy string `json:"strategy,omitempty"`
	// Topology picks the graph model: regular (default), ring, grid,
	// geometric, or random. Radius parameterizes geometric (0 = 0.3).
	Topology string  `json:"topology,omitempty"`
	Radius   float64 `json:"radius,omitempty"`
	// Workload picks what each job runs: analysis (default), saturation,
	// convergecast, or flood.
	Workload string `json:"workload,omitempty"`
	// Frames bounds each simulation run (0 = 10); Rate is the convergecast
	// arrival rate in packets/slot/node (0 = 0.002); Sink is the
	// convergecast sink / flood source.
	Frames int     `json:"frames,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Sink   int     `json:"sink,omitempty"`
	// Shards splits each job's slot kernel across word-aligned node
	// ranges: 0 or 1 runs sequentially, -1 uses one shard per CPU.
	// Results are byte-identical at every value — sharding one oversized
	// job trades the engine's job-level parallelism for intra-run
	// parallelism without touching the determinism contract. Ignored by
	// the analysis and flood workloads.
	Shards int `json:"shards,omitempty"`
	// Replications repeats every grid point with a distinct per-job seed
	// (0 = 1).
	Replications int `json:"replications,omitempty"`
	// Seed roots the campaign's seed stream: job i runs with
	// stats.DeriveSeed(Seed, i).
	Seed uint64 `json:"seed,omitempty"`
}

// JobSpec is one expanded grid point: everything a worker needs to run the
// job, flattened and JSON-stable.
type JobSpec struct {
	Campaign     string  `json:"campaign,omitempty"`
	Construction string  `json:"construction"`
	N            int     `json:"n"`
	D            int     `json:"d"`
	AlphaT       int     `json:"alphaT"`
	AlphaR       int     `json:"alphaR"`
	Strategy     string  `json:"strategy,omitempty"`
	Topology     string  `json:"topology"`
	Radius       float64 `json:"radius,omitempty"`
	Workload     string  `json:"workload"`
	Frames       int     `json:"frames"`
	Rate         float64 `json:"rate,omitempty"`
	Sink         int     `json:"sink,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Rep          int     `json:"rep"`
}

// ID names the job in journals and tables, e.g.
// "polynomial/n25/D2/aT3-aR5/regular/saturation/r0". Shards is
// deliberately absent: shard counts cannot change results, so a journal
// written at one count resumes cleanly at another.
func (sp JobSpec) ID() string {
	return fmt.Sprintf("%s/n%d/D%d/aT%d-aR%d/%s/%s/r%d",
		sp.Construction, sp.N, sp.D, sp.AlphaT, sp.AlphaR, sp.Topology, sp.Workload, sp.Rep)
}

// withDefaults returns a copy with zero-valued optional fields resolved.
func (c Campaign) withDefaults() Campaign {
	if c.Construction == "" {
		c.Construction = "polynomial"
	}
	if len(c.Duty) == 0 {
		c.Duty = []DutyPoint{{}}
	}
	if c.Topology == "" {
		c.Topology = "regular"
	}
	if c.Radius == 0 {
		c.Radius = 0.3
	}
	if c.Workload == "" {
		c.Workload = "analysis"
	}
	if c.Frames == 0 {
		c.Frames = 10
	}
	if c.Rate == 0 {
		c.Rate = 0.002
	}
	if c.Replications == 0 {
		c.Replications = 1
	}
	return c
}

var (
	constructions = map[string]bool{"tdma": true, "polynomial": true, "steiner": true, "projective": true}
	topologies    = map[string]bool{"regular": true, "ring": true, "grid": true, "geometric": true, "random": true}
	workloads     = map[string]bool{"analysis": true, "saturation": true, "convergecast": true, "flood": true}
)

// Validate range-checks the campaign without expanding it. Per-point
// feasibility (D < n, admissible fields, cap feasibility) is deliberately
// NOT checked here: an infeasible grid point fails its own job at run time
// and the rest of the campaign proceeds.
func (c *Campaign) Validate() error {
	cc := c.withDefaults()
	if !constructions[cc.Construction] {
		return fmt.Errorf("engine: unknown construction %q", cc.Construction)
	}
	if !topologies[cc.Topology] {
		return fmt.Errorf("engine: unknown topology %q", cc.Topology)
	}
	if !workloads[cc.Workload] {
		return fmt.Errorf("engine: unknown workload %q", cc.Workload)
	}
	if _, err := schedcache.ParseStrategy(cc.Strategy); err != nil {
		return err
	}
	if len(cc.N) == 0 || len(cc.D) == 0 {
		return fmt.Errorf("engine: campaign needs at least one n and one D")
	}
	for _, axis := range []struct {
		name string
		n    int
	}{{"n", len(cc.N)}, {"d", len(cc.D)}, {"duty", len(cc.Duty)}} {
		if axis.n > maxAxis {
			return fmt.Errorf("engine: %s axis has %d entries, max %d", axis.name, axis.n, maxAxis)
		}
	}
	for _, n := range cc.N {
		if n < 2 || n > MaxCampaignN {
			return fmt.Errorf("engine: n = %d outside [2, %d]", n, MaxCampaignN)
		}
	}
	for _, d := range cc.D {
		if d < 1 || d > MaxCampaignN {
			return fmt.Errorf("engine: D = %d outside [1, %d]", d, MaxCampaignN)
		}
	}
	for _, p := range cc.Duty {
		if p.AlphaT < 0 || p.AlphaR < 0 {
			return fmt.Errorf("engine: negative duty caps (%d, %d)", p.AlphaT, p.AlphaR)
		}
		if (p.AlphaT == 0) != (p.AlphaR == 0) {
			return fmt.Errorf("engine: duty point (%d, %d): set both caps or neither", p.AlphaT, p.AlphaR)
		}
		if p.AlphaT > MaxCampaignN || p.AlphaR > MaxCampaignN {
			return fmt.Errorf("engine: duty caps (%d, %d) exceed %d", p.AlphaT, p.AlphaR, MaxCampaignN)
		}
	}
	if cc.Frames < 1 || cc.Frames > maxFrames {
		return fmt.Errorf("engine: frames = %d outside [1, %d]", cc.Frames, maxFrames)
	}
	if cc.Rate < 0 || cc.Rate > 1 {
		return fmt.Errorf("engine: rate = %g outside [0, 1]", cc.Rate)
	}
	if cc.Radius < 0 || cc.Radius > 2 {
		return fmt.Errorf("engine: radius = %g outside [0, 2]", cc.Radius)
	}
	if cc.Sink < 0 {
		return fmt.Errorf("engine: negative sink %d", cc.Sink)
	}
	if cc.Replications < 1 || cc.Replications > maxReplications {
		return fmt.Errorf("engine: replications = %d outside [1, %d]", cc.Replications, maxReplications)
	}
	if cc.Shards < -1 || cc.Shards > maxShards {
		return fmt.Errorf("engine: shards = %d outside [-1, %d]", cc.Shards, maxShards)
	}
	total := len(cc.N) * len(cc.D) * len(cc.Duty) * cc.Replications
	if total > MaxJobs {
		return fmt.Errorf("engine: campaign expands to %d jobs, max %d", total, MaxJobs)
	}
	return nil
}

// Expand flattens the campaign into its ordered job list. The iteration
// order — n outermost, then D, then duty point, then replication — is
// fixed: job index i keys both the per-job seed stream and journal resume.
func (c *Campaign) Expand() ([]JobSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cc := c.withDefaults()
	specs := make([]JobSpec, 0, len(cc.N)*len(cc.D)*len(cc.Duty)*cc.Replications)
	for _, n := range cc.N {
		for _, d := range cc.D {
			for _, duty := range cc.Duty {
				for rep := 0; rep < cc.Replications; rep++ {
					specs = append(specs, JobSpec{
						Campaign:     cc.Name,
						Construction: cc.Construction,
						N:            n,
						D:            d,
						AlphaT:       duty.AlphaT,
						AlphaR:       duty.AlphaR,
						Strategy:     cc.Strategy,
						Topology:     cc.Topology,
						Radius:       cc.Radius,
						Workload:     cc.Workload,
						Frames:       cc.Frames,
						Rate:         cc.Rate,
						Sink:         cc.Sink,
						Shards:       cc.Shards,
						Rep:          rep,
					})
				}
			}
		}
	}
	return specs, nil
}

// maxCampaignBytes bounds the encoded document; a campaign is a few grids,
// not a data file.
const maxCampaignBytes = 1 << 20

// DecodeCampaign reads and validates a campaign JSON document from
// untrusted input. Unknown fields are rejected so typos ("alphaT" at the
// top level, say) fail loudly instead of silently running defaults.
func DecodeCampaign(r io.Reader) (*Campaign, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxCampaignBytes))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("engine: decode campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
