package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeCampaign hardens the campaign entry point the same way
// FuzzDecodeSchedule hardens the schedule decoder: arbitrary bytes must
// never panic, anything accepted must satisfy the expansion bounds, and a
// decoded campaign must survive an encode/decode round trip.
func FuzzDecodeCampaign(f *testing.F) {
	f.Add(`{"n":[9,16],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],"workload":"saturation","frames":2,"replications":3,"seed":42}`)
	f.Add(`{"name":"x","n":[25],"d":[2],"topology":"geometric","radius":0.3,"workload":"convergecast","rate":0.002}`)
	f.Add(`{"n":[4096],"d":[4095]}`)
	f.Add(`{"n":[9],"d":[2],"duty":[{"alphaT":1}]}`)  // half-set caps: must error
	f.Add(`{"n":[-1],"d":[2]}`)                       // out of range
	f.Add(`{"n":[9],"d":[2],"replications":1000000}`) // over the job cap
	f.Add(`{"n":[9],"d":[2],"alphaT":[2]}`)           // unknown field
	f.Add(`{"n":[9],"d":[2],"rate":1e308}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[]`)
	f.Add(`{"n":[9],"d":[2],"seed":18446744073709551615}`)
	f.Fuzz(func(t *testing.T, data string) {
		c, err := DecodeCampaign(strings.NewReader(data))
		if err != nil {
			return
		}
		specs, err := c.Expand()
		if err != nil {
			t.Fatalf("validated campaign failed to expand: %v", err)
		}
		if len(specs) == 0 || len(specs) > MaxJobs {
			t.Fatalf("expansion size %d outside (0, %d]", len(specs), MaxJobs)
		}
		// Round trip must preserve the expansion.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(c); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		c2, err := DecodeCampaign(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		specs2, err := c2.Expand()
		if err != nil {
			t.Fatalf("re-expand: %v", err)
		}
		if len(specs2) != len(specs) {
			t.Fatalf("round trip changed job count: %d != %d", len(specs2), len(specs))
		}
		for i := range specs {
			if specs[i] != specs2[i] {
				t.Fatalf("round trip changed job %d: %+v != %+v", i, specs[i], specs2[i])
			}
		}
	})
}
