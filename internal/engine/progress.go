package engine

import (
	"fmt"
	"time"
)

// Snapshot is a point-in-time view of a run's progress, safe to take from
// any goroutine while Run executes. It backs the TTY progress line in
// ttdcbatch/ttdcsweep and the /metrics and /jobs surfaces in ttdcserve.
type Snapshot struct {
	// Total is the campaign's job count; Done = Completed + Failed +
	// Skipped.
	Total int64 `json:"total"`
	Done  int64 `json:"done"`
	// Completed and Failed count jobs executed this run; Skipped counts
	// jobs replayed from the journal on resume.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Skipped   int64 `json:"skipped"`
	// InFlight is the number of jobs currently executing.
	InFlight int64 `json:"inFlight"`
	// ElapsedSeconds is wall-clock time since Run started; JobsPerSec is
	// executed jobs (not replays) divided by it.
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	JobsPerSec     float64 `json:"jobsPerSec"`
}

// Stats returns the current progress counters. Timing fields are zero
// before Run starts.
func (e *Engine) Stats() Snapshot {
	s := Snapshot{
		Total:     e.total.Load(),
		Completed: e.completed.Load(),
		Failed:    e.failed.Load(),
		Skipped:   e.skipped.Load(),
		InFlight:  e.inflight.Load(),
	}
	s.Done = s.Completed + s.Failed + s.Skipped
	if start := e.startNS.Load(); start > 0 {
		s.ElapsedSeconds = e.now().Sub(time.Unix(0, start)).Seconds()
		if s.ElapsedSeconds > 0 {
			s.JobsPerSec = float64(s.Completed+s.Failed) / s.ElapsedSeconds
		}
	}
	return s
}

// Line renders the snapshot as a one-line TTY progress string, e.g.
//
//	128/512 done (3 failed, 64 resumed) | 8 in flight | 41.2 jobs/s
func (s Snapshot) Line() string {
	return fmt.Sprintf("%d/%d done (%d failed, %d resumed) | %d in flight | %.1f jobs/s",
		s.Done, s.Total, s.Failed, s.Skipped, s.InFlight, s.JobsPerSec)
}
