package engine

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// SweepResult is the payload of one experiment job: whether the paper
// claim held, plus the fully rendered table block. Rendering happens
// inside the job so the engine's ordered writer reproduces, byte for
// byte, what the serial sweep prints.
type SweepResult struct {
	Pass   bool   `json:"pass"`
	Output string `json:"output"`
}

// RenderExperiment renders one experiment result exactly as cmd/ttdcsweep
// prints it: header, table (text or CSV), notes, status line, blank line.
func RenderExperiment(res *experiments.Result, csv bool) (string, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s ==\n", res.ID, res.Title)
	var err error
	if csv {
		err = res.Table.WriteCSV(&buf)
	} else {
		err = res.Table.WriteText(&buf)
	}
	if err != nil {
		return "", err
	}
	for _, n := range res.Notes {
		fmt.Fprintln(&buf, n)
	}
	status := "PASS"
	if !res.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&buf, "[%s] %s\n\n", status, res.ID)
	return buf.String(), nil
}

// ExperimentJobs wraps the E1..E17 reproduction suite as engine jobs, one
// per experiment ID. The experiments are internally seeded (their tables
// are pinned to the paper), so the per-job seed only labels the journal.
func ExperimentJobs(ids []string, csv bool, seed uint64) []Job {
	jobs := make([]Job, len(ids))
	for i, id := range ids {
		id := id
		jobs[i] = Job{
			ID:   id,
			Seed: stats.DeriveSeed(seed, uint64(i)),
			Run: func(ctx context.Context) (any, error) {
				res, err := experiments.Run(id)
				if err != nil {
					return nil, err
				}
				out, err := RenderExperiment(res, csv)
				if err != nil {
					return nil, err
				}
				return &SweepResult{Pass: res.Pass, Output: out}, nil
			},
		}
	}
	return jobs
}
