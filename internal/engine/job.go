package engine

import (
	"context"
	"fmt"
	"sync"

	ttdc "repro"
	"repro/internal/schedcache"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Metrics is the JSON payload of one campaign job's record. One flat
// struct for every workload keeps journal lines and CSV columns stable;
// workloads leave the fields they don't produce at their zero values.
type Metrics struct {
	// Schedule shape (every workload).
	L              int     `json:"l"`
	ActiveFraction float64 `json:"activeFraction"`
	// Analysis workload: the exact Theorem-2 average throughput and its
	// display float.
	AvgThroughput      string  `json:"avgThroughput,omitempty"`
	AvgThroughputFloat float64 `json:"avgThroughputFloat,omitempty"`
	// Topology shape (simulation workloads).
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
	// Saturation workload.
	MinLinkThroughput float64 `json:"minLinkThroughput,omitempty"`
	AvgLinkThroughput float64 `json:"avgLinkThroughput,omitempty"`
	// Convergecast workload.
	Generated        int     `json:"generated,omitempty"`
	Delivered        int     `json:"delivered,omitempty"`
	Dropped          int     `json:"dropped,omitempty"`
	DeliveryRatio    float64 `json:"deliveryRatio,omitempty"`
	MeanLatencySlots float64 `json:"meanLatencySlots,omitempty"`
	// Flood workload.
	Covered        int `json:"covered,omitempty"`
	CompletionSlot int `json:"completionSlot,omitempty"`
	// Shared simulation counters.
	Collisions        int     `json:"collisions,omitempty"`
	TotalEnergy       float64 `json:"totalEnergy,omitempty"`
	SimActiveFraction float64 `json:"simActiveFraction,omitempty"`
}

// metricsPool recycles Metrics between jobs: the engine serializes a job's
// result into its journal record and then calls Release, so under a worker
// pool each worker effectively reuses one Metrics for its whole job stream
// instead of leaving one garbage struct per job.
var metricsPool = sync.Pool{New: func() any { return new(Metrics) }}

// Release returns m to the job-result pool. The engine calls it after the
// record payload is serialized; callers holding a Metrics from a direct
// ExecuteJob call simply never release it.
func (m *Metrics) Release() {
	*m = Metrics{}
	metricsPool.Put(m)
}

// schedKey identifies the schedule a job needs. Jobs of one campaign that
// agree on the key share one built schedule: schedules are immutable, pure
// functions of these fields, and construction dominates small jobs.
type schedKey struct {
	construction   string
	n, d           int
	alphaT, alphaR int
	strategy       string
}

// schedMemo shares schedule builds across the jobs of one campaign with
// singleflight semantics: replications and topologies of the same grid
// point pay for construction once, including for the constructions
// (tdma, steiner, projective) the cross-campaign polynomial cache cannot
// serve. Unlike schedcache.Cache it is unbounded, which is safe because a
// campaign's distinct grid points are fixed at expansion time.
type schedMemo struct {
	mu sync.Mutex
	m  map[schedKey]*schedEntry
}

type schedEntry struct {
	once sync.Once
	s    *ttdc.Schedule
	err  error
}

func (sm *schedMemo) get(k schedKey, build func() (*ttdc.Schedule, error)) (*ttdc.Schedule, error) {
	sm.mu.Lock()
	e, ok := sm.m[k]
	if !ok {
		e = &schedEntry{}
		sm.m[k] = e
	}
	sm.mu.Unlock()
	e.once.Do(func() { e.s, e.err = build() })
	return e.s, e.err
}

// kernelKey identifies a saturation fast-path kernel: the schedule (by
// pointer — campaign schedules are deduplicated through schedMemo, so one
// pointer per grid point) and the topology's node count, which can differ
// from the spec's N (grid topologies round up to a full square).
type kernelKey struct {
	s *ttdc.Schedule
	n int
}

// kernelMemo shares saturation kernels across the jobs of one campaign
// with singleflight semantics: the replications and topologies of a grid
// point pay the kernel precomputation once, then shard their runs across
// the worker pool against the shared immutable kernel.
type kernelMemo struct {
	mu sync.Mutex
	m  map[kernelKey]*kernelEntry
}

type kernelEntry struct {
	once sync.Once
	k    *ttdc.SaturationKernel
	err  error
}

func (km *kernelMemo) get(key kernelKey) (*ttdc.SaturationKernel, error) {
	km.mu.Lock()
	e, ok := km.m[key]
	if !ok {
		e = &kernelEntry{}
		km.m[key] = e
	}
	km.mu.Unlock()
	e.once.Do(func() { e.k, e.err = ttdc.NewSaturationKernel(key.s, key.n) })
	return e.k, e.err
}

// graphKey identifies a deterministic topology build. Only the
// seed-independent models (regular, ring, grid) are memoized; geometric
// and random graphs differ per replication and stay per-job.
type graphKey struct {
	topology string
	n, d     int
}

// graphMemo shares deterministic topology builds across the jobs of one
// campaign with singleflight semantics. At the million-node end a single
// CSR build is seconds of work and tens of megabytes; replications and
// duty points of one grid point must not repeat it.
type graphMemo struct {
	mu sync.Mutex
	m  map[graphKey]*graphEntry
}

type graphEntry struct {
	once sync.Once
	g    *ttdc.Graph
	err  error
}

func (gm *graphMemo) get(k graphKey, build func() (*ttdc.Graph, error)) (*ttdc.Graph, error) {
	gm.mu.Lock()
	e, ok := gm.m[k]
	if !ok {
		e = &graphEntry{}
		gm.m[k] = e
	}
	gm.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
	return e.g, e.err
}

// ccKernelKey identifies a convergecast fast-path kernel: schedule and
// graph by pointer (both deduplicated through their campaign memos) plus
// the sink. Jobs whose graph is per-job (geometric, random) never reach
// the memo, so entries cannot leak one-shot graphs.
type ccKernelKey struct {
	s    *ttdc.Schedule
	g    *ttdc.Graph
	sink int
}

// ccKernelMemo shares convergecast kernels across a campaign's
// replications with singleflight semantics.
type ccKernelMemo struct {
	mu sync.Mutex
	m  map[ccKernelKey]*ccKernelEntry
}

type ccKernelEntry struct {
	once sync.Once
	k    *ttdc.ConvergecastKernel
	err  error
}

func (km *ccKernelMemo) get(key ccKernelKey) (*ttdc.ConvergecastKernel, error) {
	km.mu.Lock()
	e, ok := km.m[key]
	if !ok {
		e = &ccKernelEntry{}
		km.m[key] = e
	}
	km.mu.Unlock()
	e.once.Do(func() { e.k, e.err = ttdc.NewConvergecastKernel(key.g, key.s, key.sink) })
	return e.k, e.err
}

// Jobs expands the campaign and binds each spec to an executable engine
// Job. Job i's seed is stats.DeriveSeed(c.Seed, i), so a job's result
// depends only on the campaign seed and its own index — never on worker
// count or completion order. cache, when non-nil, additionally memoizes
// polynomial schedule construction across campaigns; within the campaign
// every construction is shared through a per-campaign memo regardless.
func Jobs(c *Campaign, cache *schedcache.Cache) ([]Job, error) {
	specs, err := c.Expand()
	if err != nil {
		return nil, err
	}
	seed := c.Seed
	memo := &schedMemo{m: make(map[schedKey]*schedEntry)}
	kernels := &kernelMemo{m: make(map[kernelKey]*kernelEntry)}
	graphs := &graphMemo{m: make(map[graphKey]*graphEntry)}
	ccKernels := &ccKernelMemo{m: make(map[ccKernelKey]*ccKernelEntry)}
	jobs := make([]Job, len(specs))
	for i, spec := range specs {
		spec := spec
		jobSeed := stats.DeriveSeed(seed, uint64(i))
		jobs[i] = Job{
			ID:   spec.ID(),
			Seed: jobSeed,
			Run: func(ctx context.Context) (any, error) {
				return executeJob(ctx, spec, jobSeed, cache, memo, kernels, graphs, ccKernels)
			},
		}
	}
	return jobs, nil
}

// ExecuteJob runs one grid point: build (or fetch) the schedule, build the
// topology from the job seed, run the workload, and collect metrics.
func ExecuteJob(ctx context.Context, spec JobSpec, seed uint64, cache *schedcache.Cache) (*Metrics, error) {
	return executeJob(ctx, spec, seed, cache, nil, nil, nil, nil)
}

func executeJob(ctx context.Context, spec JobSpec, seed uint64, cache *schedcache.Cache,
	memo *schedMemo, kernels *kernelMemo, graphs *graphMemo, ccKernels *ccKernelMemo) (*Metrics, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := buildSchedule(spec, cache, memo)
	if err != nil {
		return nil, err
	}
	m := metricsPool.Get().(*Metrics)
	m.L = s.L()
	m.ActiveFraction = s.ActiveFraction()
	if spec.Workload == "analysis" {
		avg := ttdc.AvgThroughput(s, spec.D)
		m.AvgThroughput = avg.RatString()
		m.AvgThroughputFloat = ttdc.RatFloat(avg)
		return m, nil
	}
	g, err := buildTopology(spec, seed, graphs)
	if err != nil {
		m.Release()
		return nil, err
	}
	m.Nodes = g.N()
	m.Edges = g.EdgeCount()
	switch spec.Workload {
	case "saturation":
		var res *ttdc.SaturationResult
		if kernels != nil {
			// Campaign path: share one kernel per (schedule, node count)
			// across the worker pool and shard the topologies over it.
			k, kerr := kernels.get(kernelKey{s: s, n: g.N()})
			if kerr != nil {
				m.Release()
				return nil, kerr
			}
			res, err = k.RunSharded(g, spec.Frames, ttdc.DefaultEnergy(), spec.Shards)
		} else {
			res, err = ttdc.RunSaturationSharded(g, s, spec.Frames, ttdc.DefaultEnergy(), spec.Shards)
		}
		if err != nil {
			m.Release()
			return nil, err
		}
		m.MinLinkThroughput = res.MinLinkThroughput
		m.AvgLinkThroughput = res.AvgLinkThroughput
		m.Collisions = res.CollisionSlots
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	case "convergecast":
		cfg := ttdc.ConvergecastConfig{
			Sink: spec.Sink, Rate: spec.Rate, Frames: spec.Frames, Seed: seed,
			Shards: spec.Shards,
		}
		var res *ttdc.ConvergecastResult
		if ccKernels != nil && deterministicTopology(spec.Topology) {
			// Campaign path: the graph came from the campaign memo, so the
			// (schedule, graph, sink) kernel is shared across replications.
			k, kerr := ccKernels.get(ccKernelKey{s: s, g: g, sink: spec.Sink})
			if kerr != nil {
				m.Release()
				return nil, kerr
			}
			res, err = k.Run(cfg)
		} else {
			res, err = ttdc.RunConvergecast(g, s, cfg)
		}
		if err != nil {
			m.Release()
			return nil, err
		}
		m.Generated = res.Generated
		m.Delivered = res.Delivered
		m.Dropped = res.Dropped
		m.DeliveryRatio = res.DeliveryRatio
		m.MeanLatencySlots = res.Latency.Mean()
		m.Collisions = res.Collisions
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	case "flood":
		res, err := ttdc.RunFlood(g, ttdc.ScheduleProtocol{S: s}, ttdc.FloodConfig{
			Source: spec.Sink, MaxFrames: spec.Frames, Seed: seed,
		})
		if err != nil {
			m.Release()
			return nil, err
		}
		m.Covered = res.Covered
		m.CompletionSlot = res.CompletionSlot
		m.Collisions = res.Collisions
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	default:
		m.Release()
		return nil, fmt.Errorf("engine: unknown workload %q", spec.Workload)
	}
	return m, nil
}

// buildSchedule constructs the job's schedule. memo, when non-nil, shares
// the build across the campaign's jobs; polynomial bases additionally go
// through the cross-campaign cache when one is supplied. Both layers are
// singleflight under concurrency.
func buildSchedule(spec JobSpec, cache *schedcache.Cache, memo *schedMemo) (*ttdc.Schedule, error) {
	strategy, err := schedcache.ParseStrategy(spec.Strategy)
	if err != nil {
		return nil, err
	}
	if memo != nil {
		k := schedKey{
			construction: spec.Construction,
			n:            spec.N, d: spec.D,
			alphaT: spec.AlphaT, alphaR: spec.AlphaR,
			strategy: schedcache.StrategyName(strategy),
		}
		return memo.get(k, func() (*ttdc.Schedule, error) {
			return buildScheduleDirect(spec, strategy, cache)
		})
	}
	return buildScheduleDirect(spec, strategy, cache)
}

func buildScheduleDirect(spec JobSpec, strategy ttdc.DivisionStrategy, cache *schedcache.Cache) (*ttdc.Schedule, error) {
	if spec.Construction == "polynomial" && cache != nil {
		// Get validates against the cache's own limits — serving bounds
		// for HTTP-fed caches, TrustedLimits for the local CLIs.
		key := schedcache.Key{N: spec.N, D: spec.D, AlphaT: spec.AlphaT, AlphaR: spec.AlphaR, Strategy: strategy}
		return cache.Get(key)
	}
	var base *ttdc.Schedule
	var err error
	switch spec.Construction {
	case "tdma":
		base, err = ttdc.TDMA(spec.N)
	case "polynomial":
		base, err = ttdc.PolynomialSchedule(spec.N, spec.D)
	case "steiner":
		base, err = ttdc.SteinerSchedule(spec.N)
	case "projective":
		base, err = ttdc.ProjectiveSchedule(spec.N, spec.D)
	default:
		return nil, fmt.Errorf("engine: unknown construction %q", spec.Construction)
	}
	if err != nil {
		return nil, err
	}
	if spec.AlphaT == 0 && spec.AlphaR == 0 {
		return base, nil
	}
	return ttdc.Construct(base, ttdc.ConstructOptions{
		AlphaT: spec.AlphaT, AlphaR: spec.AlphaR, D: spec.D, Strategy: strategy,
	})
}

// deterministicTopology reports whether the model is seed-independent —
// the precondition for sharing its graphs (and downstream kernels) across
// a campaign's jobs.
func deterministicTopology(kind string) bool {
	return kind == "regular" || kind == "ring" || kind == "grid"
}

// buildTopology realizes the job's graph. The RNG is rooted at the job
// seed, so randomized topologies differ across replications but are
// identical across reruns of the same job. Deterministic models go through
// the campaign graph memo when one is supplied; the seeded models are
// rejected above the dense-representation limit, where their per-node
// bitsets would cost O(n²) bits.
func buildTopology(spec JobSpec, seed uint64, graphs *graphMemo) (*ttdc.Graph, error) {
	if graphs != nil && deterministicTopology(spec.Topology) {
		return graphs.get(graphKey{topology: spec.Topology, n: spec.N, d: spec.D},
			func() (*ttdc.Graph, error) { return buildTopologyDirect(spec, seed) })
	}
	return buildTopologyDirect(spec, seed)
}

func buildTopologyDirect(spec JobSpec, seed uint64) (*ttdc.Graph, error) {
	switch spec.Topology {
	case "regular":
		return ttdc.Regularish(spec.N, spec.D), nil
	case "ring":
		return ttdc.Ring(spec.N), nil
	case "grid":
		side := 1
		for side*side < spec.N {
			side++
		}
		return ttdc.Grid(side, side), nil
	}
	if spec.N > topology.DenseLimit {
		return nil, fmt.Errorf("engine: topology %q builds dense per-node bitsets; n = %d exceeds the dense limit %d (use regular, ring, or grid at this scale)",
			spec.Topology, spec.N, topology.DenseLimit)
	}
	rng := stats.NewRNG(seed)
	switch spec.Topology {
	case "geometric":
		dep := ttdc.RandomGeometric(spec.N, spec.Radius, rng)
		dep.Graph.EnforceMaxDegree(spec.D, rng)
		return dep.Graph, nil
	case "random":
		return ttdc.RandomBoundedDegree(spec.N, spec.D, spec.N/4, rng), nil
	default:
		return nil, fmt.Errorf("engine: unknown topology %q", spec.Topology)
	}
}
