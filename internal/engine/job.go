package engine

import (
	"context"
	"fmt"

	ttdc "repro"
	"repro/internal/schedcache"
	"repro/internal/stats"
)

// Metrics is the JSON payload of one campaign job's record. One flat
// struct for every workload keeps journal lines and CSV columns stable;
// workloads leave the fields they don't produce at their zero values.
type Metrics struct {
	// Schedule shape (every workload).
	L              int     `json:"l"`
	ActiveFraction float64 `json:"activeFraction"`
	// Analysis workload: the exact Theorem-2 average throughput and its
	// display float.
	AvgThroughput      string  `json:"avgThroughput,omitempty"`
	AvgThroughputFloat float64 `json:"avgThroughputFloat,omitempty"`
	// Topology shape (simulation workloads).
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
	// Saturation workload.
	MinLinkThroughput float64 `json:"minLinkThroughput,omitempty"`
	AvgLinkThroughput float64 `json:"avgLinkThroughput,omitempty"`
	// Convergecast workload.
	Generated        int     `json:"generated,omitempty"`
	Delivered        int     `json:"delivered,omitempty"`
	Dropped          int     `json:"dropped,omitempty"`
	DeliveryRatio    float64 `json:"deliveryRatio,omitempty"`
	MeanLatencySlots float64 `json:"meanLatencySlots,omitempty"`
	// Flood workload.
	Covered        int `json:"covered,omitempty"`
	CompletionSlot int `json:"completionSlot,omitempty"`
	// Shared simulation counters.
	Collisions        int     `json:"collisions,omitempty"`
	TotalEnergy       float64 `json:"totalEnergy,omitempty"`
	SimActiveFraction float64 `json:"simActiveFraction,omitempty"`
}

// Jobs expands the campaign and binds each spec to an executable engine
// Job. Job i's seed is stats.DeriveSeed(c.Seed, i), so a job's result
// depends only on the campaign seed and its own index — never on worker
// count or completion order. cache, when non-nil, memoizes polynomial
// schedule construction across jobs (replications and topologies of the
// same grid point share one schedule build); other constructions build
// directly.
func Jobs(c *Campaign, cache *schedcache.Cache) ([]Job, error) {
	specs, err := c.Expand()
	if err != nil {
		return nil, err
	}
	seed := c.Seed
	jobs := make([]Job, len(specs))
	for i, spec := range specs {
		spec := spec
		jobSeed := stats.DeriveSeed(seed, uint64(i))
		jobs[i] = Job{
			ID:   spec.ID(),
			Seed: jobSeed,
			Run: func(ctx context.Context) (any, error) {
				return ExecuteJob(ctx, spec, jobSeed, cache)
			},
		}
	}
	return jobs, nil
}

// ExecuteJob runs one grid point: build (or fetch) the schedule, build the
// topology from the job seed, run the workload, and collect metrics.
func ExecuteJob(ctx context.Context, spec JobSpec, seed uint64, cache *schedcache.Cache) (*Metrics, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := buildSchedule(spec, cache)
	if err != nil {
		return nil, err
	}
	m := &Metrics{L: s.L(), ActiveFraction: s.ActiveFraction()}
	if spec.Workload == "analysis" {
		avg := ttdc.AvgThroughput(s, spec.D)
		m.AvgThroughput = avg.RatString()
		m.AvgThroughputFloat = ttdc.RatFloat(avg)
		return m, nil
	}
	g, err := buildTopology(spec, seed)
	if err != nil {
		return nil, err
	}
	m.Nodes = g.N()
	m.Edges = g.EdgeCount()
	switch spec.Workload {
	case "saturation":
		res, err := ttdc.RunSaturation(g, s, spec.Frames, ttdc.DefaultEnergy())
		if err != nil {
			return nil, err
		}
		m.MinLinkThroughput = res.MinLinkThroughput
		m.AvgLinkThroughput = res.AvgLinkThroughput
		m.Collisions = res.CollisionSlots
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	case "convergecast":
		res, err := ttdc.RunConvergecast(g, s, ttdc.ConvergecastConfig{
			Sink: spec.Sink, Rate: spec.Rate, Frames: spec.Frames, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		m.Generated = res.Generated
		m.Delivered = res.Delivered
		m.Dropped = res.Dropped
		m.DeliveryRatio = res.DeliveryRatio
		m.MeanLatencySlots = res.Latency.Mean()
		m.Collisions = res.Collisions
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	case "flood":
		res, err := ttdc.RunFlood(g, ttdc.ScheduleProtocol{S: s}, ttdc.FloodConfig{
			Source: spec.Sink, MaxFrames: spec.Frames, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		m.Covered = res.Covered
		m.CompletionSlot = res.CompletionSlot
		m.Collisions = res.Collisions
		m.TotalEnergy = res.TotalEnergy
		m.SimActiveFraction = res.ActiveFraction
	default:
		return nil, fmt.Errorf("engine: unknown workload %q", spec.Workload)
	}
	return m, nil
}

// buildSchedule constructs the job's schedule. Polynomial bases go through
// the shared cache when one is supplied — replications of the same grid
// point then pay for construction once, with singleflight dedup under
// concurrency.
func buildSchedule(spec JobSpec, cache *schedcache.Cache) (*ttdc.Schedule, error) {
	strategy, err := schedcache.ParseStrategy(spec.Strategy)
	if err != nil {
		return nil, err
	}
	if spec.Construction == "polynomial" && cache != nil {
		key := schedcache.Key{N: spec.N, D: spec.D, AlphaT: spec.AlphaT, AlphaR: spec.AlphaR, Strategy: strategy}
		if err := key.Validate(); err != nil {
			return nil, err
		}
		return cache.Get(key)
	}
	var base *ttdc.Schedule
	switch spec.Construction {
	case "tdma":
		base, err = ttdc.TDMA(spec.N)
	case "polynomial":
		base, err = ttdc.PolynomialSchedule(spec.N, spec.D)
	case "steiner":
		base, err = ttdc.SteinerSchedule(spec.N)
	case "projective":
		base, err = ttdc.ProjectiveSchedule(spec.N, spec.D)
	default:
		return nil, fmt.Errorf("engine: unknown construction %q", spec.Construction)
	}
	if err != nil {
		return nil, err
	}
	if spec.AlphaT == 0 && spec.AlphaR == 0 {
		return base, nil
	}
	return ttdc.Construct(base, ttdc.ConstructOptions{
		AlphaT: spec.AlphaT, AlphaR: spec.AlphaR, D: spec.D, Strategy: strategy,
	})
}

// buildTopology realizes the job's graph. The RNG is rooted at the job
// seed, so randomized topologies differ across replications but are
// identical across reruns of the same job.
func buildTopology(spec JobSpec, seed uint64) (*ttdc.Graph, error) {
	rng := stats.NewRNG(seed)
	switch spec.Topology {
	case "regular":
		return ttdc.Regularish(spec.N, spec.D), nil
	case "ring":
		return ttdc.Ring(spec.N), nil
	case "grid":
		side := 1
		for side*side < spec.N {
			side++
		}
		return ttdc.Grid(side, side), nil
	case "geometric":
		dep := ttdc.RandomGeometric(spec.N, spec.Radius, rng)
		dep.Graph.EnforceMaxDegree(spec.D, rng)
		return dep.Graph, nil
	case "random":
		return ttdc.RandomBoundedDegree(spec.N, spec.D, spec.N/4, rng), nil
	default:
		return nil, fmt.Errorf("engine: unknown topology %q", spec.Topology)
	}
}
