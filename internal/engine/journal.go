package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is the engine's checkpoint file: one JSON record per line, in
// job-index order, appended as jobs finish. Opening an existing journal
// loads its records, which Engine.Run uses as the finished set for resume.
//
// A run killed mid-write can leave a torn final line; Open truncates the
// file back to the last complete record, so the journal is always a clean
// prefix of the full campaign and appends continue from there. Because
// records carry no wall-clock fields and are written in index order, the
// journal of an interrupted-then-resumed campaign is byte-identical to the
// journal of an uninterrupted one.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	records []Record
}

// OpenJournal opens (creating if needed) the journal at path and loads any
// records a previous run left in it.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	j := &Journal{f: f}
	if err := j.load(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	return j, nil
}

// load parses the existing file and truncates any torn trailing line.
func (j *Journal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("engine: read journal: %w", err)
	}
	goodEnd := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // no newline: torn tail from a killed run
		}
		line := data[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // unparsable tail; keep the prefix before it
		}
		j.records = append(j.records, rec)
		off += nl + 1
		goodEnd = off
	}
	if goodEnd < len(data) {
		if err := j.f.Truncate(int64(goodEnd)); err != nil {
			return fmt.Errorf("engine: truncate torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		return fmt.Errorf("engine: seek journal: %w", err)
	}
	return nil
}

// Records returns the records loaded when the journal was opened. The
// engine treats their indices as already finished.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Append writes one record as a single line and flushes it to the file, so
// a kill between appends loses at most in-flight jobs, never recorded ones.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("engine: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("engine: append journal record: %w", err)
	}
	return nil
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
