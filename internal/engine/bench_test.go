package engine

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/schedcache"
)

// benchCampaign is the fixed workload of the engine perf trajectory
// (BENCH_engine.json): 24 saturation jobs over a duty-cycle grid with a
// shared schedule cache, the shape a parameter search over cover-free
// families actually has.
func benchCampaign() *Campaign {
	return &Campaign{
		Name:         "bench",
		Construction: "polynomial",
		N:            []int{25},
		D:            []int{2},
		Duty:         []DutyPoint{{}, {AlphaT: 2, AlphaR: 4}, {AlphaT: 3, AlphaR: 5}},
		Topology:     "geometric",
		Workload:     "saturation",
		Frames:       4,
		Replications: 8,
		Seed:         1,
	}
}

func benchmarkCampaign(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		jobs, err := Jobs(benchCampaign(), schedcache.New(16))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := New(Options{Workers: workers}).Run(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("%d jobs failed: %v", rep.Failed, rep.FailedIDs())
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B)   { benchmarkCampaign(b, 1) }
func BenchmarkCampaignWorkersMax(b *testing.B) { benchmarkCampaign(b, 0) }

func benchmarkSweep(b *testing.B, workers int) {
	ids := experiments.IDs()
	for i := 0; i < b.N; i++ {
		rep, err := New(Options{Workers: workers}).Run(context.Background(), ExperimentJobs(ids, false, 1))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("%d experiments failed: %v", rep.Failed, rep.FailedIDs())
		}
	}
}

// The serial-vs-parallel wall clock of the full E1..E17 suite — the
// ttdcsweep -parallel speedup, measured.
func BenchmarkSweepWorkers1(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepWorkersMax(b *testing.B) { benchmarkSweep(b, 0) }
